//! Criterion microbenchmark: the batch range-query API.
//!
//! Compares, on a sorted batch of empty-range queries, Grafite's
//! specialised `may_contain_ranges` — one forward pass over the Elias–Fano
//! codes for the whole batch — against the default one-`may_contain_range`-
//! per-query loop. The acceptance bar for the batch path is "no slower than
//! the default loop"; a correctness cross-check runs before timing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grafite_bench::registry::{BuildableFilter, FilterConfig};
use grafite_core::{GrafiteFilter, RangeFilter};
use grafite_workloads::{datasets::Dataset, generate, uncorrelated_queries};

fn batch_query(c: &mut Criterion) {
    let n = 100_000;
    let keys = generate(Dataset::Uniform, n, 42);
    let cfg = FilterConfig::new(&keys).bits_per_key(20.0).seed(42);
    let filter = GrafiteFilter::build(&cfg).expect("valid configuration");

    for (l, size_name) in [(32u64, "small"), (1024, "large")] {
        let mut queries: Vec<(u64, u64)> = uncorrelated_queries(&keys, 16_384, l, 7)
            .iter()
            .map(|q| (q.lo, q.hi))
            .collect();
        queries.sort_unstable();

        // Contract check outside the timed region: identical answers.
        let mut batched = Vec::new();
        filter.may_contain_ranges(&queries, &mut batched);
        let singles: Vec<bool> = queries
            .iter()
            .map(|&(a, b)| filter.may_contain_range(a, b))
            .collect();
        assert_eq!(
            batched, singles,
            "batch path diverged from the per-query path"
        );

        let mut group = c.benchmark_group("batch_query");
        group
            .sample_size(20)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1))
            .throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("default_loop", size_name),
            &queries,
            |b, queries| {
                let mut out = Vec::with_capacity(queries.len());
                b.iter(|| {
                    out.clear();
                    out.extend(queries.iter().map(|&(a, b)| filter.may_contain_range(a, b)));
                    out.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sorted_batch", size_name),
            &queries,
            |b, queries| {
                let mut out = Vec::with_capacity(queries.len());
                b.iter(|| {
                    filter.may_contain_ranges(queries, &mut out);
                    out.len()
                })
            },
        );
        group.finish();
    }
}

criterion_group!(benches, batch_query);
criterion_main!(benches);
