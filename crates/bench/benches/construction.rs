//! Criterion microbenchmark: filter construction throughput (Figure 7's
//! quantity at a fixed n, with statistical error bars).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grafite_bench::registry::{build_spec, FilterConfig, FilterSpec};
use grafite_workloads::{datasets::Dataset, generate, uncorrelated_queries};

fn construction(c: &mut Criterion) {
    let n = 50_000;
    let keys = generate(Dataset::Uniform, n, 42);
    let l = 32u64;
    let sample: Vec<(u64, u64)> = uncorrelated_queries(&keys, 512, l, 9)
        .iter()
        .map(|q| (q.lo, q.hi))
        .collect();
    let cfg = FilterConfig::new(&keys)
        .bits_per_key(20.0)
        .max_range(l)
        .sample(&sample)
        .seed(42);
    let mut group = c.benchmark_group("construction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(n as u64));
    for spec in FilterSpec::ALL_FIG3 {
        group.bench_with_input(BenchmarkId::new(spec.label(), n), &cfg, |b, cfg| {
            b.iter(|| std::hint::black_box(build_spec(spec, cfg).map(|f| f.size_in_bits())))
        });
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
