//! Criterion microbenchmark of the data-structure layer: Elias–Fano
//! `predecessor` (the single operation behind every Grafite query) against
//! the obvious alternatives — binary search on a plain sorted `Vec<u64>`
//! (uncompressed: ~3.3x the space) and `BTreeSet::range`. This is the
//! ablation behind Grafite's "compressed but still fast" design choice.

use std::collections::BTreeSet;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use grafite_succinct::EliasFano;
use grafite_workloads::WorkloadRng;

fn ef_predecessor(c: &mut Criterion) {
    let n = 1_000_000usize;
    let universe = (n as u64) << 14; // ~16 bits/key Elias-Fano regime
    let mut rng = WorkloadRng::new(7);
    let mut values: Vec<u64> = (0..n).map(|_| rng.below(universe)).collect();
    values.sort_unstable();
    values.dedup();
    let ef = EliasFano::new(&values, universe);
    let btree: BTreeSet<u64> = values.iter().copied().collect();
    let probes: Vec<u64> = (0..8192).map(|_| rng.below(universe)).collect();

    let mut group = c.benchmark_group("predecessor_1M");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("elias_fano", |b| {
        let mut i = 0;
        b.iter(|| {
            let y = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(ef.predecessor(y))
        })
    });
    group.bench_function("sorted_vec_binary_search", |b| {
        let mut i = 0;
        b.iter(|| {
            let y = probes[i % probes.len()];
            i += 1;
            let idx = values.partition_point(|&v| v <= y);
            std::hint::black_box(if idx > 0 { Some(values[idx - 1]) } else { None })
        })
    });
    group.bench_function("btreeset_range", |b| {
        let mut i = 0;
        b.iter(|| {
            let y = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(btree.range(..=y).next_back().copied())
        })
    });
    group.finish();

    // Space comparison printed once for the report.
    eprintln!(
        "[space] elias-fano: {:.2} bits/key; sorted vec: 64 bits/key; btree: >100 bits/key",
        ef.size_in_bits() as f64 / values.len() as f64
    );
}

criterion_group!(benches, ef_predecessor);
criterion_main!(benches);
