//! Criterion microbenchmark of Grafite's construction pipeline stages
//! (paper Algorithm 1 / §6.6: "BuildEliasFano runs in linear time, while
//! Sort takes the time to sort n integers" — i.e. construction is
//! sort-bound). Each stage is measured in isolation, plus the paper's
//! alternative sorts from the §6.6 ablation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grafite_core::sort;
use grafite_hash::LocalityHash;
use grafite_succinct::EliasFano;
use grafite_workloads::{datasets::Dataset, generate};

fn pipeline(c: &mut Criterion) {
    let n = 500_000usize;
    let keys = generate(Dataset::Uniform, n, 42);
    let r = (n as u64) << 14; // 16 bits/key regime
    let h = LocalityHash::from_seed(42, r);

    let hashed: Vec<u64> = keys.iter().map(|&k| h.eval(k)).collect();
    let mut sorted = hashed.clone();
    sorted.sort_unstable();
    sorted.dedup();

    let mut group = c.benchmark_group("grafite_pipeline_500k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(n as u64));

    group.bench_function("1_hash_keys", |b| {
        b.iter(|| {
            let codes: Vec<u64> = keys.iter().map(|&k| h.eval(k)).collect();
            std::hint::black_box(codes.len())
        })
    });
    group.bench_function("2_sort_codes_std", |b| {
        b.iter(|| {
            let mut v = hashed.clone();
            sort::std_sort(&mut v);
            std::hint::black_box(v[0])
        })
    });
    group.bench_function("2_sort_codes_radix", |b| {
        b.iter(|| {
            let mut v = hashed.clone();
            sort::radix_sort(&mut v);
            std::hint::black_box(v[0])
        })
    });
    group.bench_function("3_build_elias_fano", |b| {
        b.iter(|| {
            let ef = EliasFano::new(&sorted, r);
            std::hint::black_box(ef.size_in_bits())
        })
    });
    group.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
