//! Criterion microbenchmark: the persistence layer.
//!
//! Three measurements per filter family, on the same built filter:
//!
//! * **serialize** — `serialize_into` throughput into a reused buffer
//!   (bytes/s), the cost of the offline build-and-ship step;
//! * **load** — `Registry::load` throughput from the blob (bytes/s), the
//!   cost a serving shard pays per filter at startup — rebuild-free by
//!   construction, so this is dominated by the payload copy;
//! * **cold_query** — load immediately followed by one query batch, the
//!   end-to-end "ship a blob, answer traffic" latency.
//!
//! A correctness cross-check (bit-identical answers after load) runs before
//! any timing.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grafite_bench::registry::{standard, FilterConfig, FilterSpec};
use grafite_workloads::{datasets::Dataset, generate, uncorrelated_queries};

fn persistence(c: &mut Criterion) {
    let n = 100_000;
    let keys = generate(Dataset::Uniform, n, 42);
    let sample: Vec<(u64, u64)> = uncorrelated_queries(&keys, 1024, 32, 3)
        .iter()
        .map(|q| (q.lo, q.hi))
        .collect();
    let cfg = FilterConfig::new(&keys)
        .bits_per_key(16.0)
        .max_range(1 << 10)
        .sample(&sample);
    let queries: Vec<(u64, u64)> = uncorrelated_queries(&keys, 4096, 32, 7)
        .iter()
        .map(|q| (q.lo, q.hi))
        .collect();
    let registry = standard();

    // The TrivialBloom baseline is omitted: its O(L) probe loop would time
    // the query batch, not the persistence layer.
    for spec in [
        FilterSpec::Grafite,
        FilterSpec::Bucketing,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
        FilterSpec::Proteus,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
    ] {
        let filter = match registry.build(spec, &cfg) {
            Ok(f) => f,
            Err(_) => continue, // infeasible at this budget
        };
        let blob = filter.to_bytes();

        // Contract check outside the timed region: the loaded filter
        // answers bit-identically.
        let loaded = registry.load(&blob).expect("load");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        filter.may_contain_ranges(&queries, &mut a);
        loaded.may_contain_ranges(&queries, &mut b);
        assert_eq!(a, b, "{} diverged after load", filter.name());

        let mut group = c.benchmark_group("persistence");
        group
            .sample_size(20)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_secs(1))
            .throughput(Throughput::Bytes(blob.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("serialize", spec.label()),
            &filter,
            |bench, f| {
                let mut buf = Vec::with_capacity(blob.len());
                bench.iter(|| {
                    buf.clear();
                    f.serialize_into(&mut buf).expect("serialize");
                    black_box(buf.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("load", spec.label()),
            &blob,
            |bench, blob| {
                bench.iter(|| {
                    let f = registry.load(black_box(blob)).expect("load");
                    black_box(f.num_keys())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cold_query", spec.label()),
            &blob,
            |bench, blob| {
                let mut out = Vec::with_capacity(queries.len());
                bench.iter(|| {
                    let f = registry.load(black_box(blob)).expect("load");
                    f.may_contain_ranges(&queries, &mut out);
                    black_box(out.len())
                });
            },
        );
        group.finish();
        println!(
            "[persistence] {}: blob {} bytes, {:.2} measured bits/key",
            spec.label(),
            blob.len(),
            blob.len() as f64 * 8.0 / n as f64
        );
    }
}

criterion_group!(benches, persistence);
criterion_main!(benches);
