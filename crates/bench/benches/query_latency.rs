//! Criterion microbenchmark: per-filter range-emptiness query latency on
//! the paper's three range sizes (uncorrelated workload, 20 bits/key).
//!
//! This is the microbenchmark backing the query-time columns of Figures
//! 3–5; the `repro` binary reports the same quantity from a single batch
//! pass, Criterion adds statistical rigour for the README numbers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grafite_bench::registry::{build_spec, FilterConfig, FilterSpec};
use grafite_workloads::{datasets::Dataset, generate, uncorrelated_queries};

fn query_latency(c: &mut Criterion) {
    let n = 100_000;
    let keys = generate(Dataset::Uniform, n, 42);
    let mut group = c.benchmark_group("query_latency");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for (l, size_name) in [(1u64, "point"), (32, "small"), (1024, "large")] {
        let queries = uncorrelated_queries(&keys, 4096, l, 7);
        let sample: Vec<(u64, u64)> = uncorrelated_queries(&keys, 512, l, 9)
            .iter()
            .map(|q| (q.lo, q.hi))
            .collect();
        let cfg = FilterConfig::new(&keys)
            .bits_per_key(20.0)
            .max_range(l)
            .sample(&sample)
            .seed(42);
        for spec in FilterSpec::ALL_FIG3 {
            let spec = if spec == FilterSpec::SurfReal && l == 1 {
                FilterSpec::SurfHash
            } else {
                spec
            };
            let Some(filter) = build_spec(spec, &cfg) else {
                continue;
            };
            group.bench_with_input(
                BenchmarkId::new(spec.label(), size_name),
                &queries,
                |b, queries| {
                    let mut i = 0;
                    b.iter(|| {
                        let q = &queries[i % queries.len()];
                        i += 1;
                        std::hint::black_box(filter.may_contain_range(q.lo, q.hi))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, query_latency);
criterion_main!(benches);
