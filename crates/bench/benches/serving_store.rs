//! Criterion microbenchmark: the serving store's query and update paths.
//!
//! Measures (a) batched snapshot queries as the shard count grows — the
//! scatter/gather overhead over a bare single filter — and (b) `apply`
//! latency when an update batch dirties exactly one of the shards, which is
//! the store's incremental-rebuild selling point over a full rebuild.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grafite_bench::registry::standard;
use grafite_core::registry::FilterSpec;
use grafite_store::{FamilySpec, FilterStore, Partitioning, StoreConfig, Update};
use grafite_workloads::{datasets::Dataset, generate, uncorrelated_queries};

fn serving_store(c: &mut Criterion) {
    let n = 100_000;
    let keys = generate(Dataset::Uniform, n, 42);
    let queries: Vec<(u64, u64)> = uncorrelated_queries(&keys, 16_384, 32, 7)
        .iter()
        .map(|q| (q.lo, q.hi))
        .collect();
    let registry = standard();
    let family = FamilySpec::Registry(FilterSpec::Grafite);

    let mut group = c.benchmark_group("serving_store");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(queries.len() as u64));
    for shards in [1usize, 4, 16] {
        let config = StoreConfig::new(family)
            .bits_per_key(16.0)
            .max_range(32)
            .seed(42)
            .partitioning(Partitioning::Range { shards });
        let store = FilterStore::build(registry, config, &keys).expect("feasible");
        let snap = store.snapshot();
        group.bench_with_input(
            BenchmarkId::new("query_ranges", format!("shards={shards}")),
            &queries,
            |b, queries| {
                let mut out = Vec::with_capacity(queries.len());
                b.iter(|| {
                    snap.query_ranges(black_box(queries), &mut out);
                    out.len()
                })
            },
        );
    }
    group.finish();

    // Update latency: one dirty shard out of 8 (the store rebuilds ~n/8
    // keys instead of n). Each iteration is exactly ONE apply — the same
    // fresh key toggles between inserted and deleted — so the reported
    // time is one single-dirty-shard rebuild, and the shard's key count
    // only ever differs by one from the base.
    let mut group = c.benchmark_group("serving_store_apply");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let config = StoreConfig::new(family)
        .bits_per_key(16.0)
        .max_range(32)
        .seed(42)
        .partitioning(Partitioning::Range { shards: 8 });
    let store = FilterStore::build(registry, config, &keys).expect("feasible");
    let snap = store.snapshot();
    let mut fresh = snap.routing().shard_span(0).0;
    while snap.shards()[0].keys().binary_search(&fresh).is_ok() {
        fresh += 1;
    }
    let mut present = false;
    group.bench_function("one_dirty_shard_of_8", |b| {
        b.iter(|| {
            let update = if present {
                Update::Delete(fresh)
            } else {
                Update::Insert(fresh)
            };
            present = !present;
            let r = store.apply(black_box(&[update])).expect("apply");
            r.rebuilt_keys
        })
    });
    group.finish();
    // Leave the store as built.
    if present {
        store.apply(&[Update::Delete(fresh)]).expect("cleanup");
    }
}

criterion_group!(benches, serving_store);
criterion_main!(benches);
