//! Criterion microbenchmarks of the succinct hot path the PR overhauled:
//! position-sampled `select0`/`select1`, branch-free `rank1`, the fused
//! single-probe Elias–Fano `predecessor` (against the retained two-probe
//! baseline and the uncompressed alternatives), and the `EfCursor`
//! sorted-batch walk against per-probe restarts.
//!
//! The paper-scale regime mirrors Grafite at ~16 bits/key: n = 1M codes in
//! a universe of n·2^14, which puts the Elias–Fano high bits at the ~1/3
//! set-bit density every Grafite query probes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grafite_succinct::simd;
use grafite_succinct::{
    BitVec, BucketedArray, EliasFano, PredecessorSearch, RsBitVec, SampledIndex,
};
use grafite_workloads::WorkloadRng;

const N: usize = 1_000_000;
const PROBE_COUNT: usize = 8192;

fn paper_scale_values(rng: &mut WorkloadRng, universe: u64) -> Vec<u64> {
    let mut values: Vec<u64> = (0..N).map(|_| rng.below(universe)).collect();
    values.sort_unstable();
    values.dedup();
    values
}

fn bench_rank_select(c: &mut Criterion) {
    let mut rng = WorkloadRng::new(3);
    // EF-high-like density: one set bit every ~3 positions.
    let dense: BitVec = (0..3 * N).map(|_| rng.below(3) == 0).collect();
    // Sparse: one set bit every ~600 positions (samples span many blocks).
    let sparse: BitVec = (0..3 * N).map(|_| rng.below(600) == 0).collect();

    for (name, bits) in [("dense_third", dense), ("sparse_600", sparse)] {
        let rs = RsBitVec::new(bits);
        let positions: Vec<usize> = (0..PROBE_COUNT)
            .map(|_| rng.below(rs.len() as u64) as usize)
            .collect();
        let ones_ks: Vec<usize> = (0..PROBE_COUNT)
            .map(|_| rng.below(rs.count_ones() as u64) as usize)
            .collect();
        let zeros_ks: Vec<usize> = (0..PROBE_COUNT)
            .map(|_| rng.below(rs.count_zeros() as u64) as usize)
            .collect();

        let mut group = c.benchmark_group(format!("rs_bitvec_{name}"));
        group
            .sample_size(30)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
        group.bench_function("rank1", |b| {
            let mut i = 0;
            b.iter(|| {
                let pos = positions[i % positions.len()];
                i += 1;
                std::hint::black_box(rs.rank1(pos))
            })
        });
        group.bench_function("select1", |b| {
            let mut i = 0;
            b.iter(|| {
                let k = ones_ks[i % ones_ks.len()];
                i += 1;
                std::hint::black_box(rs.select1(k))
            })
        });
        group.bench_function("select0", |b| {
            let mut i = 0;
            b.iter(|| {
                let k = zeros_ks[i % zeros_ks.len()];
                i += 1;
                std::hint::black_box(rs.select0(k))
            })
        });
        group.finish();
    }
}

/// Each vectorized succinct kernel at every dispatch level the host
/// supports, on identical probe sequences — the per-kernel speedup table.
fn bench_simd_kernels(c: &mut Criterion) {
    let mut rng = WorkloadRng::new(11);
    let words: Vec<u64> = (0..4096).map(|_| rng.next_u64()).collect();
    let rank_probes: Vec<(usize, usize)> = (0..PROBE_COUNT)
        .map(|_| {
            (
                rng.below((words.len() - 8) as u64) as usize,
                rng.below(513) as usize,
            )
        })
        .collect();
    let sel_probes: Vec<(u64, u32)> = (0..PROBE_COUNT)
        .map(|_| {
            let w = rng.next_u64() | 1;
            (w, rng.below(w.count_ones() as u64) as u32)
        })
        .collect();
    // Near-max targets force full-run scans (the adversarial
    // duplicated-bucket regime); uniform targets early-exit in ~2 fields.
    let width = 14usize;
    let fields = words.len() * 64 / width - 2;
    let mask = (1u64 << width) - 1;
    let lp_probes: Vec<(usize, usize, u64)> = (0..PROBE_COUNT)
        .map(|_| {
            let start = rng.below((fields - 64) as u64) as usize;
            (
                start,
                start + 1 + rng.below(63) as usize,
                mask - rng.below(4),
            )
        })
        .collect();

    for level in simd::available_levels() {
        let mut group = c.benchmark_group(format!("simd_kernels_{}", level.name()));
        group
            .sample_size(30)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
        group.bench_function("rank1_x8", |b| {
            let mut i = 0;
            b.iter(|| {
                let (w, upto) = rank_probes[i % rank_probes.len()];
                i += 1;
                std::hint::black_box(simd::rank1_x8_at(level, &words[w..w + 8], upto))
            })
        });
        group.bench_function("select_in_word", |b| {
            let mut i = 0;
            b.iter(|| {
                let (w, k) = sel_probes[i % sel_probes.len()];
                i += 1;
                std::hint::black_box(simd::select_in_word_at(level, w, k))
            })
        });
        group.bench_function("low_partition", |b| {
            let mut i = 0;
            b.iter(|| {
                let (s, e, y) = lp_probes[i % lp_probes.len()];
                i += 1;
                std::hint::black_box(simd::low_partition_at(level, &words, width, s, e, y, false))
            })
        });
        group.finish();
    }
}

fn bench_predecessor(c: &mut Criterion) {
    let universe = (N as u64) << 14; // ~16 bits/key Elias-Fano regime
    let mut rng = WorkloadRng::new(7);
    let values = paper_scale_values(&mut rng, universe);
    let ef = EliasFano::new(&values, universe);
    let probes: Vec<u64> = (0..PROBE_COUNT).map(|_| rng.below(universe)).collect();

    let mut group = c.benchmark_group("ef_predecessor_1M");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("fused_one_probe", |b| {
        let mut i = 0;
        b.iter(|| {
            let y = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(ef.predecessor(y))
        })
    });
    group.bench_function("baseline_two_probe", |b| {
        let mut i = 0;
        b.iter(|| {
            let y = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(ef.predecessor_two_probe(y))
        })
    });
    group.bench_function("sorted_vec_binary_search", |b| {
        let mut i = 0;
        b.iter(|| {
            let y = probes[i % probes.len()];
            i += 1;
            let idx = values.partition_point(|&v| v <= y);
            std::hint::black_box(if idx > 0 { Some(values[idx - 1]) } else { None })
        })
    });
    // Bake-off alternatives behind the same trait: an uncompressed
    // cache-line-bucketed array and a two-level sampled-search index.
    let bucketed = BucketedArray::new(&values);
    let sampled = SampledIndex::new(&values);
    let alternatives: [&dyn PredecessorSearch; 2] = [&bucketed, &sampled];
    for s in alternatives {
        group.bench_function(format!("bakeoff_{}", s.name()), |b| {
            let mut i = 0;
            b.iter(|| {
                let y = probes[i % probes.len()];
                i += 1;
                std::hint::black_box(s.predecessor(y))
            })
        });
    }
    group.finish();

    // Whole-batch comparison: the cursor's monotone walk over sorted probes
    // versus restarting a fused probe per query.
    let mut sorted_probes = probes.clone();
    sorted_probes.sort_unstable();
    let mut group = c.benchmark_group("ef_batch_8k_sorted");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(sorted_probes.len() as u64));
    group.bench_function("cursor_monotone", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            let mut cur = ef.cursor();
            for &y in &sorted_probes {
                if cur.predecessor(y).is_some() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("cursor_bitwise_baseline", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            let mut cur = ef.cursor();
            for &y in &sorted_probes {
                if cur.predecessor_bitwise(y).is_some() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("per_probe_restart", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &y in &sorted_probes {
                if ef.predecessor(y).is_some() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.finish();

    eprintln!(
        "[space] elias-fano: {:.2} bits/key over {} codes",
        ef.size_in_bits() as f64 / values.len() as f64,
        values.len()
    );
}

criterion_group!(
    benches,
    bench_rank_select,
    bench_simd_kernels,
    bench_predecessor
);
criterion_main!(benches);
