//! Criterion microbenchmarks of the succinct hot path the PR overhauled:
//! position-sampled `select0`/`select1`, branch-free `rank1`, the fused
//! single-probe Elias–Fano `predecessor` (against the retained two-probe
//! baseline and the uncompressed alternatives), and the `EfCursor`
//! sorted-batch walk against per-probe restarts.
//!
//! The paper-scale regime mirrors Grafite at ~16 bits/key: n = 1M codes in
//! a universe of n·2^14, which puts the Elias–Fano high bits at the ~1/3
//! set-bit density every Grafite query probes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grafite_succinct::{BitVec, EliasFano, RsBitVec};
use grafite_workloads::WorkloadRng;

const N: usize = 1_000_000;
const PROBE_COUNT: usize = 8192;

fn paper_scale_values(rng: &mut WorkloadRng, universe: u64) -> Vec<u64> {
    let mut values: Vec<u64> = (0..N).map(|_| rng.below(universe)).collect();
    values.sort_unstable();
    values.dedup();
    values
}

fn bench_rank_select(c: &mut Criterion) {
    let mut rng = WorkloadRng::new(3);
    // EF-high-like density: one set bit every ~3 positions.
    let dense: BitVec = (0..3 * N).map(|_| rng.below(3) == 0).collect();
    // Sparse: one set bit every ~600 positions (samples span many blocks).
    let sparse: BitVec = (0..3 * N).map(|_| rng.below(600) == 0).collect();

    for (name, bits) in [("dense_third", dense), ("sparse_600", sparse)] {
        let rs = RsBitVec::new(bits);
        let positions: Vec<usize> = (0..PROBE_COUNT)
            .map(|_| rng.below(rs.len() as u64) as usize)
            .collect();
        let ones_ks: Vec<usize> = (0..PROBE_COUNT)
            .map(|_| rng.below(rs.count_ones() as u64) as usize)
            .collect();
        let zeros_ks: Vec<usize> = (0..PROBE_COUNT)
            .map(|_| rng.below(rs.count_zeros() as u64) as usize)
            .collect();

        let mut group = c.benchmark_group(format!("rs_bitvec_{name}"));
        group
            .sample_size(30)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
        group.bench_function("rank1", |b| {
            let mut i = 0;
            b.iter(|| {
                let pos = positions[i % positions.len()];
                i += 1;
                std::hint::black_box(rs.rank1(pos))
            })
        });
        group.bench_function("select1", |b| {
            let mut i = 0;
            b.iter(|| {
                let k = ones_ks[i % ones_ks.len()];
                i += 1;
                std::hint::black_box(rs.select1(k))
            })
        });
        group.bench_function("select0", |b| {
            let mut i = 0;
            b.iter(|| {
                let k = zeros_ks[i % zeros_ks.len()];
                i += 1;
                std::hint::black_box(rs.select0(k))
            })
        });
        group.finish();
    }
}

fn bench_predecessor(c: &mut Criterion) {
    let universe = (N as u64) << 14; // ~16 bits/key Elias-Fano regime
    let mut rng = WorkloadRng::new(7);
    let values = paper_scale_values(&mut rng, universe);
    let ef = EliasFano::new(&values, universe);
    let probes: Vec<u64> = (0..PROBE_COUNT).map(|_| rng.below(universe)).collect();

    let mut group = c.benchmark_group("ef_predecessor_1M");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("fused_one_probe", |b| {
        let mut i = 0;
        b.iter(|| {
            let y = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(ef.predecessor(y))
        })
    });
    group.bench_function("baseline_two_probe", |b| {
        let mut i = 0;
        b.iter(|| {
            let y = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(ef.predecessor_two_probe(y))
        })
    });
    group.bench_function("sorted_vec_binary_search", |b| {
        let mut i = 0;
        b.iter(|| {
            let y = probes[i % probes.len()];
            i += 1;
            let idx = values.partition_point(|&v| v <= y);
            std::hint::black_box(if idx > 0 { Some(values[idx - 1]) } else { None })
        })
    });
    group.finish();

    // Whole-batch comparison: the cursor's monotone walk over sorted probes
    // versus restarting a fused probe per query.
    let mut sorted_probes = probes.clone();
    sorted_probes.sort_unstable();
    let mut group = c.benchmark_group("ef_batch_8k_sorted");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(sorted_probes.len() as u64));
    group.bench_function("cursor_monotone", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            let mut cur = ef.cursor();
            for &y in &sorted_probes {
                if cur.predecessor(y).is_some() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("per_probe_restart", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &y in &sorted_probes {
                if ef.predecessor(y).is_some() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.finish();

    eprintln!(
        "[space] elias-fano: {:.2} bits/key over {} codes",
        ef.size_in_bits() as f64 / values.len() as f64,
        values.len()
    );
}

criterion_group!(benches, bench_rank_select, bench_predecessor);
criterion_main!(benches);
