//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--n N] [--queries Q] [--seed S] [--out DIR]
//!                    [--data DIR] [--budgets 8,12,16,20,24,28]
//!
//! experiments:
//!   fig1  fig3  fig4  fig5  fig6  fig7  table1  fb  normal_check  serving
//!   serve  scale  hotpath  sort_ablation  ablation_pow2
//!   ablation_snarf_overflow  ablation_batch  ablation_rosetta_tuning
//!   ablation_bucketing  ablation_wa_bucketing  all
//!
//! `serve` builds a >=100MB manifest to time mapped vs eager cold starts
//! (writes BENCH_serve.json); `scale` sweeps build-thread counts over the
//! parallel construction pipeline (writes BENCH_build.json). Both are
//! deliberately not part of `all`.
//! ```
//!
//! Defaults run at laptop scale (n = 100k keys, 20k queries; the paper used
//! 200M/10M on a Xeon). Scale up with `--n` / `--queries`.

use grafite_bench::experiments;
use grafite_bench::harness::RunConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let experiment = args[0].clone();
    let mut cfg = RunConfig::default();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        });
        match flag {
            "--n" => cfg.n = value.parse().expect("--n expects an integer"),
            "--queries" => cfg.queries = value.parse().expect("--queries expects an integer"),
            "--seed" => cfg.seed = value.parse().expect("--seed expects an integer"),
            "--out" => cfg.out_dir = value.into(),
            "--data" => cfg.data_dir = value.into(),
            "--budgets" => {
                cfg.budgets = value
                    .split(',')
                    .map(|s| {
                        s.parse()
                            .expect("--budgets expects comma-separated numbers")
                    })
                    .collect();
            }
            _ => {
                eprintln!("unknown flag {flag}");
                usage_and_exit();
            }
        }
        i += 2;
    }

    println!(
        "[repro] {experiment}: n={} queries={} seed={} budgets={:?}",
        cfg.n, cfg.queries, cfg.seed, cfg.budgets
    );
    let start = std::time::Instant::now();
    match experiment.as_str() {
        "fig1" => experiments::fig1(&cfg),
        "fig3" => experiments::fig3(&cfg),
        "fig4" => experiments::fig4(&cfg),
        "fig5" => experiments::fig5(&cfg),
        "fig6" => experiments::fig6(&cfg),
        "fig7" => experiments::fig7(&cfg),
        "table1" => experiments::table1(&cfg),
        "fb" => experiments::fb(&cfg),
        "sort_ablation" => experiments::sort_ablation(&cfg),
        "ablation_pow2" => experiments::ablation_pow2(&cfg),
        "ablation_snarf_overflow" => experiments::ablation_snarf_overflow(&cfg),
        "ablation_batch" => experiments::ablation_batch(&cfg),
        "ablation_rosetta_tuning" => experiments::ablation_rosetta_tuning(&cfg),
        "ablation_bucketing" => experiments::ablation_bucketing(&cfg),
        "ablation_wa_bucketing" => experiments::ablation_wa_bucketing(&cfg),
        "normal_check" => experiments::normal_check(&cfg),
        "serving" => experiments::serving(&cfg),
        "serve" => experiments::serve(&cfg),
        "scale" => experiments::scale(&cfg),
        "hotpath" => experiments::hotpath(&cfg),
        "all" => experiments::all(&cfg),
        other => {
            eprintln!("unknown experiment '{other}'");
            usage_and_exit();
        }
    }
    println!("[repro] done in {:.1}s", start.elapsed().as_secs_f64());
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: repro <fig1|fig3|fig4|fig5|fig6|fig7|table1|fb|normal_check|serving|\
         serve|scale|hotpath|sort_ablation|ablation_pow2|ablation_snarf_overflow|\
         ablation_batch|ablation_rosetta_tuning|ablation_bucketing|ablation_wa_bucketing|all> \
         [--n N] [--queries Q] [--seed S] [--out DIR] \
         [--data DIR] [--budgets 8,12,...]"
    );
    std::process::exit(2);
}
