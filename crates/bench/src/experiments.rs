//! One function per table/figure of the paper's evaluation (§6), plus the
//! ablations called out in DESIGN.md §5. Each prints the paper's rows/series
//! as a text table and writes a CSV under the configured output directory.

use grafite_core::{sort, BucketingFilter, GrafiteFilter, RangeFilter};
use grafite_filters::Snarf;
use grafite_workloads::{
    correlated_queries, datasets::Dataset, extract_real_queries, non_empty_queries, sosd,
    uncorrelated_queries, RangeQuery,
};

use crate::harness::{fmt_fpr, measure, measure_batch, time_it, RunConfig};
use crate::registry::{build_spec, FilterConfig, FilterSpec};
use crate::report::Table;

/// The paper's three query sizes: point (2^0), small (2^5), large (2^10).
pub const RANGE_SIZES: [(u64, &str); 3] = [(1, "point"), (32, "small"), (1024, "large")];

fn queries_as_pairs(qs: &[RangeQuery]) -> Vec<(u64, u64)> {
    qs.iter().map(|q| (q.lo, q.hi)).collect()
}

/// Figure 1 (intro teaser): FPR and query time vs correlation degree for the
/// six headline filters, small ranges, 20 bits/key.
pub fn fig1(cfg: &RunConfig) {
    println!("== Figure 1: FPR and time vs correlation degree (small ranges, 20 bits/key) ==");
    run_correlation_sweep(cfg, &FilterSpec::FIG1, &[(32, "small")], "fig1");
}

/// Figure 3 (§6.2): the full robustness grid — nine filters, three range
/// sizes, correlation degree swept 0 → 1 at 20 bits/key.
pub fn fig3(cfg: &RunConfig) {
    println!("== Figure 3: robustness to key-query correlation (20 bits/key) ==");
    run_correlation_sweep(cfg, &FilterSpec::ALL_FIG3, &RANGE_SIZES, "fig3");
}

fn run_correlation_sweep(
    cfg: &RunConfig,
    specs: &[FilterSpec],
    sizes: &[(u64, &str)],
    csv_name: &str,
) {
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let degrees = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut table = Table::new(&["range", "degree", "filter", "bits/key", "fpr", "ns/query"]);
    for &(l, size_name) in sizes {
        for &degree in &degrees {
            let queries = correlated_queries(&keys, cfg.queries, l, degree, cfg.seed ^ 0xF163);
            if queries.is_empty() {
                continue;
            }
            let sample =
                queries_as_pairs(&correlated_queries(&keys, 1024, l, degree, cfg.seed ^ 0x5A));
            let fc = FilterConfig::new(&keys)
                .bits_per_key(20.0)
                .max_range(l)
                .sample(&sample)
                .seed(cfg.seed);
            for &spec in specs {
                // Per the paper (§6.1): hashed suffixes for point queries.
                let spec = if spec == FilterSpec::SurfReal && l == 1 {
                    FilterSpec::SurfHash
                } else {
                    spec
                };
                let Some(filter) = build_spec(spec, &fc) else {
                    continue;
                };
                let m = measure(filter.as_ref(), &queries);
                table.row(vec![
                    size_name.to_string(),
                    format!("{degree:.1}"),
                    spec.label().to_string(),
                    format!("{:.1}", m.bits_per_key),
                    fmt_fpr(m.positive_rate),
                    format!("{:.0}", m.ns_per_query),
                ]);
            }
        }
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, csv_name);
}

/// The four dataset/workload rows of Figures 4 and 5. Returns, per row:
/// `(label, filter-build keys, queries per range size, tuning sample)`.
#[allow(clippy::type_complexity)]
fn figure_grid_rows(
    cfg: &RunConfig,
    l: u64,
) -> Vec<(&'static str, Vec<u64>, Vec<RangeQuery>, Vec<(u64, u64)>)> {
    let uniform = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let books = sosd::dataset_or_synthetic(Dataset::Books, cfg.n, cfg.seed, &cfg.data_dir);
    let osm = sosd::dataset_or_synthetic(Dataset::Osm, cfg.n, cfg.seed, &cfg.data_dir);
    let mut rows = Vec::new();

    // Correlated on Uniform (D = 0.8, the paper's default).
    let q = correlated_queries(&uniform, cfg.queries, l, 0.8, cfg.seed ^ 0xC0);
    let s = queries_as_pairs(&correlated_queries(&uniform, 1024, l, 0.8, cfg.seed ^ 0xC1));
    rows.push(("Correlated", uniform.clone(), q, s));

    // Uncorrelated on Uniform.
    let q = uncorrelated_queries(&uniform, cfg.queries, l, cfg.seed ^ 0xD0);
    let s = queries_as_pairs(&uncorrelated_queries(&uniform, 1024, l, cfg.seed ^ 0xD1));
    rows.push(("Uncorrelated", uniform, q, s));

    // Real workloads: left endpoints extracted (and removed) from the data.
    for (name, keys) in [("Books", books), ("Osm", osm)] {
        let (remaining, q) = extract_real_queries(&keys, cfg.queries, l, cfg.seed ^ 0xE0);
        let (_, s_q) = extract_real_queries(&keys, 1024, l, cfg.seed ^ 0xE1);
        rows.push((name, remaining, q, queries_as_pairs(&s_q)));
    }
    rows
}

/// Figures 4 and 5 (§6.3/§6.4): FPR vs space budget over the four
/// dataset/workload rows and three range sizes, plus the per-row average
/// query-time tables.
pub fn fig4(cfg: &RunConfig) {
    println!("== Figure 4: heuristic filters, FPR vs space ==");
    run_space_grid(cfg, &FilterSpec::HEURISTIC, "fig4");
}

/// Figure 5 (§6.4): the robust filters on the same grid.
pub fn fig5(cfg: &RunConfig) {
    println!("== Figure 5: robust filters, FPR vs space ==");
    run_space_grid(cfg, &FilterSpec::ROBUST, "fig5");
}

fn run_space_grid(cfg: &RunConfig, specs: &[FilterSpec], csv_name: &str) {
    let mut table = Table::new(&["workload", "range", "filter", "bits/key", "fpr", "ns/query"]);
    let mut avg_time: std::collections::HashMap<(&str, &str), (f64, usize)> =
        std::collections::HashMap::new();
    for &(l, size_name) in &RANGE_SIZES {
        for (row_name, keys, queries, sample) in figure_grid_rows(cfg, l) {
            if queries.is_empty() {
                continue;
            }
            for &budget in &cfg.budgets {
                let fc = FilterConfig::new(&keys)
                    .bits_per_key(budget)
                    .max_range(l)
                    .sample(&sample)
                    .seed(cfg.seed);
                for &spec in specs {
                    let spec = if spec == FilterSpec::SurfReal && l == 1 {
                        FilterSpec::SurfHash
                    } else {
                        spec
                    };
                    let Some(filter) = build_spec(spec, &fc) else {
                        continue;
                    };
                    let m = measure(filter.as_ref(), &queries);
                    let e = avg_time.entry((row_name, spec.label())).or_insert((0.0, 0));
                    e.0 += m.ns_per_query;
                    e.1 += 1;
                    table.row(vec![
                        row_name.to_string(),
                        size_name.to_string(),
                        spec.label().to_string(),
                        format!("{:.1}", m.bits_per_key),
                        fmt_fpr(m.positive_rate),
                        format!("{:.0}", m.ns_per_query),
                    ]);
                }
            }
        }
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, csv_name);

    // The per-row average-time side tables of Figures 4/5.
    println!("-- average query time per workload row (all budgets & sizes) --");
    let mut time_table = Table::new(&["workload", "filter", "avg ns/query"]);
    let mut entries: Vec<_> = avg_time.into_iter().collect();
    entries.sort_by(|a, b| {
        (a.0 .0, (a.1 .0 / a.1 .1 as f64) as u64).cmp(&(b.0 .0, (b.1 .0 / b.1 .1 as f64) as u64))
    });
    for ((row, filter), (total, count)) in entries {
        time_table.row(vec![
            row.to_string(),
            filter.to_string(),
            format!("{:.0}", total / count as f64),
        ]);
    }
    time_table.print();
    let _ = time_table.write_csv(&cfg.out_dir, &format!("{csv_name}_times"));
}

/// Figure 6 (§6.5): query time on *non-empty* queries vs space budget.
pub fn fig6(cfg: &RunConfig) {
    println!("== Figure 6: query time on non-empty queries ==");
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let mut table = Table::new(&["range", "filter", "bits/key", "ns/query", "positive_rate"]);
    for &(l, size_name) in &RANGE_SIZES {
        let queries = non_empty_queries(&keys, cfg.queries, l, cfg.seed ^ 0x6E);
        let sample = queries_as_pairs(&uncorrelated_queries(&keys, 1024, l, cfg.seed ^ 0x6F));
        for &budget in &cfg.budgets {
            let fc = FilterConfig::new(&keys)
                .bits_per_key(budget)
                .max_range(l)
                .sample(&sample)
                .seed(cfg.seed);
            for &spec in &FilterSpec::ALL_FIG3 {
                let spec = if spec == FilterSpec::SurfReal && l == 1 {
                    FilterSpec::SurfHash
                } else {
                    spec
                };
                let Some(filter) = build_spec(spec, &fc) else {
                    continue;
                };
                let m = measure(filter.as_ref(), &queries);
                table.row(vec![
                    size_name.to_string(),
                    spec.label().to_string(),
                    format!("{:.1}", m.bits_per_key),
                    format!("{:.0}", m.ns_per_query),
                    format!("{:.3}", m.positive_rate),
                ]);
            }
        }
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "fig6");
}

/// Figure 7 (§6.6): construction time per key as n grows, averaged over two
/// budgets, including the auto-tuners' sample cost (which runs inside the
/// constructors, as in the paper's shaded bars).
pub fn fig7(cfg: &RunConfig) {
    println!("== Figure 7: construction time vs number of keys ==");
    let mut table = Table::new(&["n", "filter", "ns/key"]);
    let sizes = [10_000usize, 100_000, 1_000_000].map(|n| n.min(cfg.n.max(10_000)));
    let mut seen = std::collections::HashSet::new();
    for n in sizes {
        if !seen.insert(n) {
            continue;
        }
        let keys = sosd::dataset_or_synthetic(Dataset::Uniform, n, cfg.seed, &cfg.data_dir);
        let l = 32u64;
        let sample = queries_as_pairs(&uncorrelated_queries(&keys, 1024, l, cfg.seed ^ 0x71));
        for &spec in &FilterSpec::ALL_FIG3 {
            let mut total = 0.0;
            let budgets = [12.0, 20.0];
            let mut built = 0;
            for &budget in &budgets {
                let fc = FilterConfig::new(&keys)
                    .bits_per_key(budget)
                    .max_range(l)
                    .sample(&sample)
                    .seed(cfg.seed);
                let (secs, filter) = time_it(|| build_spec(spec, &fc));
                if filter.is_some() {
                    total += secs;
                    built += 1;
                }
            }
            if built > 0 {
                table.row(vec![
                    n.to_string(),
                    spec.label().to_string(),
                    format!("{:.0}", total / built as f64 * 1e9 / n as f64),
                ]);
            }
        }
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "fig7");
}

/// Table 1 (§5): the theoretical space bounds next to the space our
/// implementations actually measure at the reference configuration
/// ε = 0.01, L = 2^10.
pub fn table1(cfg: &RunConfig) {
    println!("== Table 1: theoretical bounds vs measured space (eps=0.01, L=2^10) ==");
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let l = 1024u64;
    let eps = 0.01f64;
    let log_l_eps = (l as f64 / eps).log2(); // 16.64
    let b = log_l_eps + 2.0;
    let sample = queries_as_pairs(&uncorrelated_queries(&keys, 1024, l, cfg.seed ^ 0x7A));
    let fc = FilterConfig::new(&keys)
        .bits_per_key(b)
        .max_range(l)
        .sample(&sample)
        .seed(cfg.seed);
    let mut table = Table::new(&["filter", "theory bits/key", "measured bits/key", "note"]);
    table.row(vec![
        "Lower bound (Thm 2.1)".into(),
        format!("{:.1}", (l as f64).log2() + (1.0f64 / eps).log2() - 2.0),
        "-".into(),
        "log2(L^(1-O(eps))/eps) - O(1)".into(),
    ]);
    table.row(vec![
        "Goswami et al.".into(),
        format!("{:.1}", log_l_eps + 3.0),
        "-".into(),
        "not practical; +3n lower-order".into(),
    ]);
    for (spec, theory, note) in [
        (
            FilterSpec::Grafite,
            log_l_eps + 2.0,
            "n log(L/eps) + 2n + o(n)",
        ),
        (FilterSpec::Rosetta, 1.44 * log_l_eps, "1.44 n log(L/eps)"),
        (
            FilterSpec::TrivialBloom,
            1.44 * log_l_eps,
            "point Bloom at eps/L, O(L) query",
        ),
        (
            FilterSpec::SurfReal,
            10.0 + (b - 11.0).round(),
            "(10+m)n + 10z + o(n+z)",
        ),
        (
            FilterSpec::Snarf,
            (b - 2.4 - 1.4).max(1.0) + 2.4,
            "n log K + 2.4n",
        ),
        (
            FilterSpec::Bucketing,
            f64::NAN,
            "t(log(u/ts) + 2): data-dependent",
        ),
        (FilterSpec::REncoder, f64::NAN, "O(n(k + log 1/eps))"),
        (
            FilterSpec::Proteus,
            f64::NAN,
            "no closed formula (auto-tuned)",
        ),
    ] {
        let measured = build_spec(spec, &fc)
            .map(|f| format!("{:.1}", f.bits_per_key()))
            .unwrap_or_else(|| "-".into());
        let theory_s = if theory.is_nan() {
            "?".into()
        } else {
            format!("{theory:.1}")
        };
        table.row(vec![spec.label().into(), theory_s, measured, note.into()]);
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "table1");
}

/// The §6.1 Fb case study: at ~12 bits/key, Grafite's reduced universe
/// nearly covers Fb's effective universe, driving the FPR to (near) zero
/// while heuristic filters still err.
pub fn fb(cfg: &RunConfig) {
    println!("== Fb case study (§6.1): Grafite at 12 bits/key ==");
    let keys = sosd::dataset_or_synthetic(Dataset::Fb, cfg.n, cfg.seed, &cfg.data_dir);
    let l = 32u64;
    let queries = correlated_queries(&keys, cfg.queries, l, 0.8, cfg.seed ^ 0xFB);
    let sample = queries_as_pairs(&correlated_queries(&keys, 1024, l, 0.8, cfg.seed ^ 0xFC));
    let fc = FilterConfig::new(&keys)
        .bits_per_key(12.0)
        .max_range(l)
        .sample(&sample)
        .seed(cfg.seed);
    let mut table = Table::new(&["filter", "bits/key", "fpr"]);
    for &spec in &FilterSpec::ALL_FIG3 {
        let Some(filter) = build_spec(spec, &fc) else {
            table.row(vec![
                spec.label().into(),
                "-".into(),
                "infeasible at 12".into(),
            ]);
            continue;
        };
        let m = measure(filter.as_ref(), &queries);
        table.row(vec![
            spec.label().into(),
            format!("{:.1}", m.bits_per_key),
            fmt_fpr(m.positive_rate),
        ]);
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "fb");
}

/// §6.6 text: multi-threaded construction sorting (the paper reports
/// 1.5/1.8/2.0× speedups at 2/4/8 threads on 200M keys).
pub fn sort_ablation(cfg: &RunConfig) {
    println!("== Sort ablation (§6.6): construction is sort-bound ==");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "   (machine reports {cores} available core(s); the paper's 1.5-2.0x \
         speedups need >= 2)"
    );
    let n = cfg.n.max(1_000_000);
    let keys = grafite_workloads::generate(Dataset::Uniform, n, cfg.seed);
    let mut table = Table::new(&["sort", "ns/key", "speedup vs std"]);
    let (std_secs, _) = time_it(|| {
        let mut v = keys.clone();
        sort::std_sort(&mut v);
        v.len()
    });
    table.row(vec![
        "std (pdqsort)".into(),
        format!("{:.1}", std_secs * 1e9 / n as f64),
        "1.0x".into(),
    ]);
    let (radix_secs, _) = time_it(|| {
        let mut v = keys.clone();
        sort::radix_sort(&mut v);
        v.len()
    });
    table.row(vec![
        "radix (LSD-8)".into(),
        format!("{:.1}", radix_secs * 1e9 / n as f64),
        format!("{:.1}x", std_secs / radix_secs),
    ]);
    for threads in [2usize, 4, 8] {
        let (secs, _) = time_it(|| {
            let mut v = keys.clone();
            sort::partition_radix_sort(&mut v, threads);
            v.len()
        });
        table.row(vec![
            format!("partition x{threads}"),
            format!("{:.1}", secs * 1e9 / n as f64),
            format!("{:.1}x", std_secs / secs),
        ]);
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "sort_ablation");
}

/// Ablation: exact `r = nL/ε` vs power-of-two `r` (§7's shift-and-mask
/// proposal) — space, FPR, and query time.
pub fn ablation_pow2(cfg: &RunConfig) {
    println!("== Ablation: Grafite with power-of-two reduced universe ==");
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let l = 32u64;
    let queries = uncorrelated_queries(&keys, cfg.queries, l, cfg.seed ^ 0xAB);
    let mut table = Table::new(&["variant", "bits/key", "fpr", "ns/query"]);
    for (label, pow2) in [("exact r = nL/eps", false), ("r rounded to 2^k", true)] {
        let filter = GrafiteFilter::builder()
            .bits_per_key(16.0)
            .pow2_reduced_universe(pow2)
            .seed(cfg.seed)
            .build(&keys)
            .unwrap();
        let m = measure(&filter, &queries);
        table.row(vec![
            label.into(),
            format!("{:.2}", m.bits_per_key),
            fmt_fpr(m.positive_rate),
            format!("{:.0}", m.ns_per_query),
        ]);
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "ablation_pow2");
}

/// Ablation: SNARF with the original overflow-prone model (paper footnote
/// 5) — demonstrates the false negatives on an Fb-like gap structure.
pub fn ablation_snarf_overflow(cfg: &RunConfig) {
    println!("== Ablation: SNARF model overflow (paper footnote 5) ==");
    // Keys spaced 2^55 apart make every outlier spline segment span ~2^62,
    // so the u64 rank interpolation (x−k0)·Δr wraps (needs 69 bits).
    let mut keys: Vec<u64> = grafite_workloads::generate(Dataset::Uniform, cfg.n / 2, cfg.seed)
        .iter()
        .map(|k| k % (1 << 40))
        .collect();
    keys.extend((0..256u64).map(|j| (1u64 << 62) + (j << 55)));
    keys.sort_unstable();
    keys.dedup();
    let mut table = Table::new(&["model", "false negatives", "trials"]);
    for (label, faithful) in [
        ("u128-safe (ours)", false),
        ("u64 faithful (original)", true),
    ] {
        let filter = if faithful {
            Snarf::with_faithful_overflow(&keys, 16.0).unwrap()
        } else {
            Snarf::new(&keys, 16.0).unwrap()
        };
        let mut fns = 0usize;
        let mut trials = 0usize;
        for &k in keys.iter().filter(|&&k| k >= 1 << 62) {
            for shift in [40u32, 48, 50, 52, 54] {
                let a = k.saturating_sub(1u64 << shift);
                let b = k.saturating_add(1u64 << shift);
                trials += 1;
                if !filter.may_contain_range(a, b) {
                    fns += 1;
                }
            }
        }
        table.row(vec![label.into(), fns.to_string(), trials.to_string()]);
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "ablation_snarf_overflow");
}

/// Ablation: the batch query API — Grafite's sorted-batch
/// `may_contain_ranges` (one forward pass over the Elias–Fano codes)
/// against the one-at-a-time path, plus the default batch loop of a filter
/// without a specialisation for reference. Asserts the batched answers
/// match the scalar ones before reporting timings.
pub fn ablation_batch(cfg: &RunConfig) {
    println!("== Ablation: batched range queries (sorted batch, one EF pass) ==");
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let mut table = Table::new(&["range", "filter", "path", "bits/key", "fpr", "ns/query"]);
    for &(l, size_name) in &RANGE_SIZES {
        let mut queries = queries_as_pairs(&uncorrelated_queries(&keys, cfg.queries, l, cfg.seed));
        if queries.is_empty() {
            continue;
        }
        queries.sort_unstable();
        let ranges: Vec<grafite_workloads::RangeQuery> = queries
            .iter()
            .map(|&(lo, hi)| grafite_workloads::RangeQuery { lo, hi })
            .collect();
        let fc = FilterConfig::new(&keys)
            .bits_per_key(16.0)
            .max_range(l)
            .seed(cfg.seed);
        for spec in [FilterSpec::Grafite, FilterSpec::Bucketing] {
            let Some(filter) = build_spec(spec, &fc) else {
                continue;
            };
            let scalar = measure(filter.as_ref(), &ranges);
            let batched = measure_batch(filter.as_ref(), &queries);
            assert_eq!(
                scalar.positive_rate,
                batched.positive_rate,
                "{} batch answers diverged from the per-query path",
                spec.label()
            );
            for (path, m) in [("one-at-a-time", scalar), ("batched", batched)] {
                table.row(vec![
                    size_name.to_string(),
                    spec.label().to_string(),
                    path.to_string(),
                    format!("{:.1}", m.bits_per_key),
                    fmt_fpr(m.positive_rate),
                    format!("{:.0}", m.ns_per_query),
                ]);
            }
        }
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "ablation_batch");
}

/// Ablation: Rosetta with and without sample-based level re-weighting.
pub fn ablation_rosetta_tuning(cfg: &RunConfig) {
    println!("== Ablation: Rosetta sample tuning ==");
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let l = 32u64;
    let queries = correlated_queries(&keys, cfg.queries, l, 0.8, cfg.seed ^ 0xBB);
    let sample = queries_as_pairs(&correlated_queries(&keys, 1024, l, 0.8, cfg.seed ^ 0xBC));
    let mut table = Table::new(&["variant", "bits/key", "fpr", "ns/query"]);
    for (label, use_sample) in [("untuned", false), ("sample-tuned", true)] {
        let filter = grafite_filters::Rosetta::new(
            &keys,
            20.0,
            l,
            if use_sample { Some(&sample) } else { None },
            cfg.seed,
        )
        .unwrap();
        let m = measure(&filter, &queries);
        table.row(vec![
            label.into(),
            format!("{:.1}", m.bits_per_key),
            fmt_fpr(m.positive_rate),
            format!("{:.0}", m.ns_per_query),
        ]);
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "ablation_rosetta_tuning");
}

/// Ablation: Bucketing's space/FPR trade as the bucket size s sweeps.
pub fn ablation_bucketing(cfg: &RunConfig) {
    println!("== Ablation: Bucketing bucket-size sweep ==");
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let l = 32u64;
    let queries = uncorrelated_queries(&keys, cfg.queries, l, cfg.seed ^ 0xCC);
    let mut table = Table::new(&["log2(s)", "buckets", "bits/key", "fpr", "ns/query"]);
    for log2_s in [20u32, 26, 32, 38, 44, 50] {
        let filter = BucketingFilter::builder()
            .bucket_size(1u64 << log2_s)
            .build(&keys)
            .unwrap();
        let m = measure(&filter, &queries);
        table.row(vec![
            log2_s.to_string(),
            filter.num_buckets().to_string(),
            format!("{:.2}", m.bits_per_key),
            fmt_fpr(m.positive_rate),
            format!("{:.0}", m.ns_per_query),
        ]);
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "ablation_bucketing");
}

/// §6.1 "Other datasets and query workloads": the Normal dataset must not
/// change the relative ranking of the filters vs Uniform (the paper found
/// "no interesting change" and omits the plots; we verify the claim).
pub fn normal_check(cfg: &RunConfig) {
    println!("== Normal-dataset check (§6.1): relative ranking vs Uniform ==");
    let l = 32u64;
    let mut table = Table::new(&["dataset", "filter", "fpr", "ns/query"]);
    let mut rankings: Vec<Vec<(String, f64)>> = Vec::new();
    for dataset in [Dataset::Uniform, Dataset::Normal] {
        let keys = sosd::dataset_or_synthetic(dataset, cfg.n, cfg.seed, &cfg.data_dir);
        let queries = correlated_queries(&keys, cfg.queries, l, 0.8, cfg.seed ^ 0x42);
        let sample = queries_as_pairs(&correlated_queries(&keys, 1024, l, 0.8, cfg.seed ^ 0x43));
        let fc = FilterConfig::new(&keys)
            .bits_per_key(20.0)
            .max_range(l)
            .sample(&sample)
            .seed(cfg.seed);
        let mut ranking = Vec::new();
        for &spec in &FilterSpec::ALL_FIG3 {
            let Some(filter) = build_spec(spec, &fc) else {
                continue;
            };
            let m = measure(filter.as_ref(), &queries);
            ranking.push((spec.label().to_string(), m.positive_rate));
            table.row(vec![
                dataset.name().to_string(),
                spec.label().to_string(),
                fmt_fpr(m.positive_rate),
                format!("{:.0}", m.ns_per_query),
            ]);
        }
        ranking.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        rankings.push(ranking);
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "normal_check");
    let best = |r: &Vec<(String, f64)>| r.first().map(|x| x.0.clone()).unwrap_or_default();
    println!(
        "best filter on Uniform: {}; on Normal: {} (paper: relative performance unchanged)",
        best(&rankings[0]),
        best(&rankings[1])
    );
}

/// Ablation: the §7 future-work workload-aware Bucketing against plain
/// Bucketing on a skewed (hot-band) workload.
pub fn ablation_wa_bucketing(cfg: &RunConfig) {
    println!("== Ablation: workload-aware Bucketing (§7 future work) ==");
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let l = 32u64;
    // A hot band around the median key: 80% of queries land there.
    let hot_center = keys[keys.len() / 2];
    let span = 1u64 << 44;
    let mut rng = grafite_workloads::WorkloadRng::new(cfg.seed ^ 0x3A);
    let propose = |rng: &mut grafite_workloads::WorkloadRng| {
        if rng.below(10) < 8 {
            hot_center
                .saturating_sub(span / 2)
                .saturating_add(rng.below(span))
        } else {
            rng.next_u64()
        }
    };
    let mut sample = Vec::new();
    let mut queries = Vec::new();
    while queries.len() < cfg.queries {
        let a = propose(&mut rng);
        let b = match a.checked_add(l - 1) {
            Some(b) => b,
            None => continue,
        };
        let i = keys.partition_point(|&k| k < a);
        if i < keys.len() && keys[i] <= b {
            continue;
        }
        if sample.len() < 2000 {
            sample.push(a);
        } else {
            queries.push(grafite_workloads::RangeQuery { lo: a, hi: b });
        }
    }
    let mut table = Table::new(&["variant", "regions", "bits/key", "fpr", "ns/query"]);
    for &budget in &[6.0, 10.0, 14.0] {
        let plain = BucketingFilter::builder()
            .bits_per_key(budget)
            .build(&keys)
            .unwrap();
        let aware = grafite_core::WorkloadAwareBucketing::new(&keys, budget, &sample).unwrap();
        for (label, f, regions) in [
            (
                "plain",
                &plain as &dyn grafite_core::PersistentFilter,
                1usize,
            ),
            (
                "workload-aware",
                &aware as &dyn grafite_core::PersistentFilter,
                aware.num_regions(),
            ),
        ] {
            let m = measure(f, &queries);
            table.row(vec![
                format!("{label} @{budget:.0}bpk"),
                regions.to_string(),
                format!("{:.2}", m.bits_per_key),
                fmt_fpr(m.positive_rate),
                format!("{:.0}", m.ns_per_query),
            ]);
        }
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "ablation_wa_bucketing");
}

/// Serving-layer experiments over the `grafite-store` crate: concurrent
/// snapshot query throughput (scaling the reader thread count past 4) and
/// per-shard rebuild latency under update batches that dirty a controlled
/// number of shards.
pub fn serving(cfg: &RunConfig) {
    use grafite_store::{FamilySpec, FilterStore, Partitioning, StoreConfig, Update};

    println!("== Serving: concurrent snapshot throughput and shard rebuild latency ==");
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, cfg.n, cfg.seed, &cfg.data_dir);
    let l = 32u64;
    let queries = queries_as_pairs(&uncorrelated_queries(
        &keys,
        cfg.queries,
        l,
        cfg.seed ^ 0x5E17,
    ));
    let registry = crate::registry::standard();
    let shards = 8usize;
    let families = [
        FamilySpec::Registry(FilterSpec::Grafite),
        FamilySpec::Registry(FilterSpec::Bucketing),
    ];

    // Throughput: every thread queries its own clone of one immutable
    // snapshot — the lock-free path a serving process lives on.
    const REPS: usize = 5;
    let mut throughput = Table::new(&[
        "filter",
        "partitioning",
        "shards",
        "threads",
        "Mq/s",
        "ns/query",
    ]);
    for family in families {
        for partitioning in [
            Partitioning::Range { shards },
            Partitioning::Hash { shards },
        ] {
            let config = StoreConfig::new(family)
                .bits_per_key(16.0)
                .max_range(l)
                .seed(cfg.seed)
                .partitioning(partitioning);
            let store = match FilterStore::build(registry, config, &keys) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("  [skip] {}: {e}", family.label());
                    continue;
                }
            };
            let partitioning_label = match partitioning {
                Partitioning::Range { .. } => "range",
                Partitioning::Hash { .. } => "hash",
            };
            for threads in [1usize, 2, 4, 8] {
                let start = std::time::Instant::now();
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(|| {
                            let snap = store.snapshot();
                            let mut out = Vec::new();
                            for _ in 0..REPS {
                                snap.query_ranges(std::hint::black_box(&queries), &mut out);
                                std::hint::black_box(out.len());
                            }
                        });
                    }
                });
                let secs = start.elapsed().as_secs_f64();
                let answered = (threads * REPS * queries.len()) as f64;
                throughput.row(vec![
                    family.label().to_string(),
                    partitioning_label.to_string(),
                    shards.to_string(),
                    threads.to_string(),
                    format!("{:.2}", answered / secs / 1e6),
                    format!("{:.0}", secs * 1e9 / answered),
                ]);
            }
        }
    }
    throughput.print();
    let _ = throughput.write_csv(&cfg.out_dir, "serving_throughput");

    // Rebuild latency: update batches crafted to dirty exactly k of the 8
    // range-partitioned shards; each dirty shard rebuilds its filter from
    // its retained keys, clean shards are shared by `Arc`.
    let mut rebuild = Table::new(&[
        "filter",
        "dirty_shards",
        "rebuilt_keys",
        "ms_total",
        "ms_per_shard",
    ]);
    for family in families {
        let config = StoreConfig::new(family)
            .bits_per_key(16.0)
            .max_range(l)
            .seed(cfg.seed)
            .partitioning(Partitioning::Range { shards });
        let store = match FilterStore::build(registry, config, &keys) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("  [skip] {}: {e}", family.label());
                continue;
            }
        };
        for dirty_target in [1usize, 2, 4, 8] {
            let snap = store.snapshot();
            let dirty_target = dirty_target.min(snap.num_shards());
            // One fresh key per target shard dirties exactly that shard.
            let mut inserts = Vec::with_capacity(dirty_target);
            for s in 0..dirty_target {
                let (lo, _) = snap.routing().shard_span(s);
                let mut candidate = lo;
                while snap.shards()[s].keys().binary_search(&candidate).is_ok() {
                    candidate += 1;
                }
                inserts.push(Update::Insert(candidate));
            }
            let (secs, report) = time_it(|| {
                store
                    .apply(&inserts)
                    .expect("rebuild under original config")
            });
            rebuild.row(vec![
                family.label().to_string(),
                report.dirty_shards.to_string(),
                report.rebuilt_keys.to_string(),
                format!("{:.2}", secs * 1e3),
                format!("{:.2}", secs * 1e3 / report.dirty_shards.max(1) as f64),
            ]);
            // Undo outside the timed region so every row rebuilds from the
            // same base.
            let undo: Vec<Update> = inserts.iter().map(|u| Update::Delete(u.key())).collect();
            store.apply(&undo).expect("undo");
        }
    }
    rebuild.print();
    let _ = rebuild.write_csv(&cfg.out_dir, "serving_rebuild");

    // Coalescing: concurrent single-probe submitters route through the
    // grafite-server combining batcher, so overlapping submissions merge
    // into one sorted store batch. The coalescing factor (probes per
    // executed batch) and the tail of the per-submit latency are the two
    // numbers an operator watches.
    let mut coalescing = Table::new(&[
        "filter",
        "threads",
        "probes",
        "Mq/s",
        "coalescing_factor",
        "p50_us",
        "p99_us",
    ]);
    for family in families {
        let config = StoreConfig::new(family)
            .bits_per_key(16.0)
            .max_range(l)
            .seed(cfg.seed)
            .partitioning(Partitioning::Range { shards });
        let store = match FilterStore::build(registry, config, &keys) {
            Ok(s) => std::sync::Arc::new(s),
            Err(e) => {
                eprintln!("  [skip] {}: {e}", family.label());
                continue;
            }
        };
        for threads in [1usize, 2, 4, 8] {
            let telemetry = std::sync::Arc::new(grafite_server::Telemetry::new(shards));
            let batcher = grafite_server::Batcher::new(
                std::sync::Arc::clone(&store),
                std::sync::Arc::clone(&telemetry),
            );
            let per_thread = (cfg.queries / threads).max(1);
            let start = std::time::Instant::now();
            let mut latencies_us: Vec<u64> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let batcher = &batcher;
                        let queries = &queries;
                        scope.spawn(move || {
                            let mut lat = Vec::with_capacity(per_thread);
                            for q in queries.iter().cycle().skip(t * 131).take(per_thread) {
                                let t0 = std::time::Instant::now();
                                std::hint::black_box(batcher.submit(std::slice::from_ref(q)));
                                lat.push(t0.elapsed().as_micros() as u64);
                            }
                            lat
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("submitter thread"))
                    .collect()
            });
            let secs = start.elapsed().as_secs_f64();
            latencies_us.sort_unstable();
            let quantile = |num: usize| -> u64 {
                let rank = (latencies_us.len() * num).div_ceil(100).max(1);
                latencies_us[rank - 1]
            };
            coalescing.row(vec![
                family.label().to_string(),
                threads.to_string(),
                latencies_us.len().to_string(),
                format!("{:.3}", latencies_us.len() as f64 / secs / 1e6),
                format!("{:.2}", telemetry.coalescing_factor()),
                quantile(50).to_string(),
                quantile(99).to_string(),
            ]);
        }
    }
    coalescing.print();
    let _ = coalescing.write_csv(&cfg.out_dir, "serving_coalescing");
}

/// The serving cold-start experiment behind `results/BENCH_serve.json`:
/// saves a ≥100 MB multi-shard manifest, then times the eager
/// [`open`](grafite_store::FilterStore::open) path (read the whole file,
/// checksum the whole body, parse every shard) against the lazy
/// [`open_mapped`](grafite_store::FilterStore::open_mapped) scan
/// (`O(shards)` small reads), plus the first-query latency that pays for
/// one shard's materialization. CI gates the committed JSON through
/// `scripts/check_perf.py serve`: the store must stay ≥100 MB and the
/// mapped cold-start ≥10× faster than the eager open.
pub fn serve(cfg: &RunConfig) {
    use grafite_store::{FamilySpec, FilterStore, Partitioning, StoreConfig};

    println!("== serve: mapped cold-start vs eager open on a >=100MB manifest ==");
    // Keys dominate the manifest (8 bytes each, plus ~2 blob bytes at 16
    // bits/key), so 12M keys lands comfortably above the 100 MB floor.
    let n = cfg.n.max(12_000_000);
    let shards = 64usize;
    let keys = sosd::dataset_or_synthetic(Dataset::Uniform, n, cfg.seed, &cfg.data_dir);
    let registry = crate::registry::standard();
    let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
        .bits_per_key(16.0)
        .max_range(32)
        .seed(cfg.seed)
        .partitioning(Partitioning::Range { shards });
    let (build_secs, store) =
        time_it(|| FilterStore::build(registry, config, &keys).expect("store build"));
    std::fs::create_dir_all(&cfg.out_dir).expect("create out dir");
    let path = cfg.out_dir.join("serve_store.bin");
    {
        let file = std::fs::File::create(&path).expect("create manifest file");
        let mut out = std::io::BufWriter::new(file);
        store.save_to(&mut out).expect("save manifest");
    }
    let store_bytes = std::fs::metadata(&path).expect("manifest metadata").len();
    drop(store);

    // Eager open: the whole file comes off disk and through the full-body
    // checksum before the first query can run.
    let mut open_eager_secs = f64::INFINITY;
    for _ in 0..3 {
        let (secs, eager) = time_it(|| {
            let bytes = std::fs::read(&path).expect("read manifest");
            FilterStore::open(registry, &bytes).expect("eager open")
        });
        open_eager_secs = open_eager_secs.min(secs);
        assert!(eager.may_contain(keys[n / 2]));
    }

    // Mapped open: header + routing + per-shard extents only.
    let mut open_mapped_secs = f64::INFINITY;
    for _ in 0..5 {
        let (secs, mapped) =
            time_it(|| FilterStore::open_mapped(registry, &path).expect("mapped open"));
        open_mapped_secs = open_mapped_secs.min(secs);
        drop(mapped);
    }
    let mapped = FilterStore::open_mapped(registry, &path).expect("mapped open");
    let (first_query_secs, hit) = time_it(|| mapped.may_contain(keys[n / 2]));
    assert!(hit, "mapped store lost a present key");
    let lazy_loads = mapped.stats().lazy_shard_loads();
    let _ = std::fs::remove_file(&path);

    let mapped_speedup = open_eager_secs / open_mapped_secs;
    let mut table = Table::new(&["metric", "value", "notes"]);
    table.row(vec![
        "store_bytes".into(),
        store_bytes.to_string(),
        format!("{n} keys, {shards} shards, build {build_secs:.1}s"),
    ]);
    table.row(vec![
        "open_eager_ms".into(),
        format!("{:.2}", open_eager_secs * 1e3),
        "full read + body checksum + every shard parsed".into(),
    ]);
    table.row(vec![
        "open_mapped_ms".into(),
        format!("{:.2}", open_mapped_secs * 1e3),
        "O(shards) scan, metadata checksum only".into(),
    ]);
    table.row(vec![
        "mapped_speedup".into(),
        format!("{mapped_speedup:.0}x"),
        "acceptance target: >= 10x".into(),
    ]);
    table.row(vec![
        "first_query_ms".into(),
        format!("{:.3}", first_query_secs * 1e3),
        format!("materialized {lazy_loads} of {shards} shards"),
    ]);
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "serve");

    let mut config_obj = crate::report::JsonObject::new();
    config_obj
        .int("n", n as u64)
        .int("shards", shards as u64)
        .int("seed", cfg.seed);
    let mut metrics = crate::report::JsonObject::new();
    metrics.int("store_bytes", store_bytes);
    metrics.num("open_eager_ms", open_eager_secs * 1e3);
    metrics.num("open_mapped_ms", open_mapped_secs * 1e3);
    metrics.num("mapped_speedup", mapped_speedup);
    metrics.num("first_query_ms", first_query_secs * 1e3);
    metrics.int("lazy_shard_loads_after_first_query", lazy_loads);
    let mut doc = crate::report::JsonObject::new();
    doc.str_field("schema", "grafite-serve-v1")
        .obj("config", &config_obj)
        .obj("metrics", &metrics);
    doc.write(&cfg.out_dir, "BENCH_serve")
        .expect("write BENCH_serve.json");
}

/// Peak resident set size of this process (`VmHWM`) in KiB; 0 where
/// `/proc` is unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .split_whitespace()
                    .next()?
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// The parallel-construction experiment behind `results/BENCH_build.json`:
/// sweeps build-thread counts {1, 2, 4, 8} across two key-set sizes
/// through the whole pipeline — parallel key sort, shard fan-out, per-shard
/// hash → partitioned radix sort → chunked Elias–Fano assembly — on a
/// 16-shard range-partitioned store and on a single-shard Grafite build,
/// recording build throughput (keys/s), peak RSS, BPK drift, and the
/// byte-identity of every artifact against its serial (threads = 1) twin.
///
/// CI gates the committed JSON through `scripts/check_perf.py build`:
/// `bpk_drift == 0` and `bytes_identical == 1` always; the ≥ 1.5×
/// eight-thread throughput floor whenever the recording machine had at
/// least two cores (a one-core machine cannot speed anything up, but its
/// builds must still be byte-identical). Deliberately not part of `all`.
pub fn scale(cfg: &RunConfig) {
    use grafite_core::{BuildableFilter, Parallelism, PersistentFilter};
    use grafite_store::{FamilySpec, FilterStore, Partitioning, StoreConfig};

    println!("== scale: parallel construction sweep (n x threads) ==");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "   (machine reports {cores} available core(s); the paper's §6.6 \
         speedups need >= 2)"
    );
    let shards = 16usize;
    let thread_counts = [1usize, 2, 4, 8];
    let n_big = cfg.n.max(1_000_000);
    let sizes = [n_big / 4, n_big];
    let registry = crate::registry::standard();

    let mut table = Table::new(&[
        "n",
        "threads",
        "store keys/s",
        "speedup",
        "filter keys/s",
        "bytes==serial",
    ]);
    let mut metrics = crate::report::JsonObject::new();
    let mut gate_speedup = 0.0f64;
    let mut gate_bpk_drift = 0.0f64;
    let mut all_identical = true;
    for &n in &sizes {
        let keys = grafite_workloads::generate(Dataset::Uniform, n, cfg.seed);
        let mut serial_manifest: Vec<u8> = Vec::new();
        let mut serial_blob: Vec<u8> = Vec::new();
        let mut serial_store_secs = f64::INFINITY;
        let mut serial_bpk = 0.0f64;
        for &threads in &thread_counts {
            let par = Parallelism::fixed(threads);
            let store_config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
                .bits_per_key(16.0)
                .max_range(32)
                .seed(cfg.seed)
                .partitioning(Partitioning::Range { shards })
                .parallelism(par);
            let mut store_secs = f64::INFINITY;
            let mut manifest = Vec::new();
            for _ in 0..2 {
                let (secs, store) = time_it(|| {
                    FilterStore::build(registry, store_config.clone(), &keys).expect("store build")
                });
                store_secs = store_secs.min(secs);
                manifest = store.to_bytes();
            }
            let filter_config = FilterConfig::new(&keys)
                .bits_per_key(16.0)
                .max_range(32)
                .seed(cfg.seed)
                .parallelism(par);
            let mut filter_secs = f64::INFINITY;
            let mut blob = Vec::new();
            for _ in 0..2 {
                let (secs, filter) =
                    time_it(|| GrafiteFilter::build(&filter_config).expect("filter build"));
                filter_secs = filter_secs.min(secs);
                blob = filter.to_bytes();
            }
            let bpk = (blob.len() * 8) as f64 / n as f64;
            if threads == 1 {
                serial_manifest = manifest.clone();
                serial_blob = blob.clone();
                serial_store_secs = store_secs;
                serial_bpk = bpk;
            }
            let identical = manifest == serial_manifest && blob == serial_blob;
            all_identical &= identical;
            let drift = (bpk - serial_bpk).abs();
            let speedup = serial_store_secs / store_secs;
            if n == n_big {
                gate_bpk_drift = gate_bpk_drift.max(drift);
                if threads == 8 {
                    gate_speedup = speedup;
                }
            }
            table.row(vec![
                n.to_string(),
                threads.to_string(),
                format!("{:.0}", n as f64 / store_secs),
                format!("{speedup:.2}x"),
                format!("{:.0}", n as f64 / filter_secs),
                identical.to_string(),
            ]);
            let mut point = crate::report::JsonObject::new();
            point
                .int("n", n as u64)
                .int("threads", threads as u64)
                .num("store_keys_per_s", n as f64 / store_secs)
                .num("filter_keys_per_s", n as f64 / filter_secs)
                .num("store_speedup_vs_serial", speedup)
                .num("filter_bits_per_key", bpk)
                .int("bytes_identical", u64::from(identical));
            metrics.obj(&format!("n{n}_t{threads}"), &point);
        }
    }
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "scale");

    metrics
        .num("speedup_at_8_threads", gate_speedup)
        .num("bpk_drift", gate_bpk_drift)
        .int("bytes_identical", u64::from(all_identical))
        .int("peak_rss_mb", peak_rss_kb() / 1024);
    let mut config_obj = crate::report::JsonObject::new();
    config_obj
        .int("n", n_big as u64)
        .int("shards", shards as u64)
        .int("seed", cfg.seed)
        .int("cores", cores as u64);
    let mut doc = crate::report::JsonObject::new();
    doc.str_field("schema", "grafite-build-v1")
        .obj("config", &config_obj)
        .obj("metrics", &metrics);
    doc.write(&cfg.out_dir, "BENCH_build")
        .expect("write BENCH_build.json");
}

/// Minimum-of-`reps` wall-clock nanoseconds per operation for a closure
/// performing `ops` operations per call — the noise-robust estimator every
/// hotpath metric uses (the minimum over repetitions discards scheduler
/// and frequency noise that inflates means).
fn best_ns_per_op<T>(reps: usize, ops: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps > 0 && ops > 0);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos() as f64 / ops as f64);
    }
    best
}

/// The succinct hot-path experiment: micro timings of the fused Elias–Fano
/// `predecessor` against the retained two-probe baseline (and the
/// uncompressed sorted-vec alternative, which doubles as a
/// machine-speed normalizer), plus filter-level Grafite/Bucketing query
/// latency, scalar and batched. Prints a table and writes the
/// machine-readable `BENCH_query.json` that CI's perf-smoke step diffs
/// against the committed baseline in `results/` — this file is the repo's
/// query-performance trajectory.
pub fn hotpath(cfg: &RunConfig) {
    use grafite_succinct::EliasFano;
    use grafite_workloads::WorkloadRng;

    println!("== hotpath: succinct hot-path micro + query-latency baseline ==");
    const MICRO_PROBES: usize = 8192;
    const MICRO_ROUNDS: usize = 16; // probes replayed per timing rep
    let reps = 9; // min-of-9 keeps shared-runner noise out of the gate

    // --- micro: Elias–Fano at the paper-scale ~16 bits/key density. The
    // element count is floored at 1M so the structure leaves the cache the
    // way the paper's 200M-key experiments do — the fused probe's saved
    // memory touches are the point of the measurement.
    let micro_n = cfg.n.max(1_000_000);
    let universe = (micro_n as u64) << 14;
    let mut rng = WorkloadRng::new(cfg.seed ^ 0x407);
    let mut values: Vec<u64> = (0..micro_n).map(|_| rng.below(universe)).collect();
    values.sort_unstable();
    values.dedup();
    let ef = EliasFano::new(&values, universe);
    let probes: Vec<u64> = (0..MICRO_PROBES).map(|_| rng.below(universe)).collect();
    let micro_ops = MICRO_PROBES * MICRO_ROUNDS;
    let fused_ns = best_ns_per_op(reps, micro_ops, || {
        let mut acc = 0u64;
        for _ in 0..MICRO_ROUNDS {
            for &y in &probes {
                acc ^= ef.predecessor(y).unwrap_or(0);
            }
        }
        acc
    });
    let two_probe_ns = best_ns_per_op(reps, micro_ops, || {
        let mut acc = 0u64;
        for _ in 0..MICRO_ROUNDS {
            for &y in &probes {
                acc ^= ef.predecessor_two_probe(y).unwrap_or(0);
            }
        }
        acc
    });
    let sorted_vec_ns = best_ns_per_op(reps, micro_ops, || {
        let mut acc = 0u64;
        for _ in 0..MICRO_ROUNDS {
            for &y in &probes {
                let idx = values.partition_point(|&v| v <= y);
                if idx > 0 {
                    acc ^= values[idx - 1];
                }
            }
        }
        acc
    });

    // --- kernel micro: each vectorized succinct kernel, forced-scalar vs
    // the dispatched level, on identical probe sequences. Answers are
    // asserted identical inside the agreement tests; here only time moves.
    use grafite_succinct::simd::{self, SimdLevel};
    let active = simd::level();
    let simd_active = active != SimdLevel::Scalar;

    let rank_words: Vec<u64> = (0..4096).map(|_| rng.next_u64()).collect();
    let rank_probes: Vec<(usize, usize)> = (0..MICRO_PROBES)
        .map(|_| {
            let w = rng.below((rank_words.len() - 8) as u64) as usize;
            (w, rng.below(513) as usize)
        })
        .collect();
    let time_rank = |lvl: SimdLevel| {
        best_ns_per_op(reps, micro_ops, || {
            let mut acc = 0usize;
            for _ in 0..MICRO_ROUNDS {
                for &(w, upto) in &rank_probes {
                    acc ^= simd::rank1_x8_at(lvl, &rank_words[w..w + 8], upto);
                }
            }
            acc
        })
    };

    let sel_probes: Vec<(u64, u32)> = (0..MICRO_PROBES)
        .map(|_| {
            let w = rng.next_u64() | 1;
            let k = rng.below(w.count_ones() as u64) as u32;
            (w, k)
        })
        .collect();
    let time_select = |lvl: SimdLevel| {
        best_ns_per_op(reps, micro_ops, || {
            let mut acc = 0u32;
            for _ in 0..MICRO_ROUNDS {
                for &(w, k) in &sel_probes {
                    acc ^= simd::select_in_word_at(lvl, w, k);
                }
            }
            acc
        })
    };

    // Low-bits partition: EF-bucket-shaped runs (a few dozen fields) over
    // a packed random buffer at a realistic low-bits width. Targets sit
    // near the top of the field range so probes scan their whole run —
    // the adversarial duplicated-bucket regime this kernel exists for;
    // uniform targets would early-exit after ~2 fields and measure
    // nothing but loop setup.
    let lp_width = 14usize;
    let lp_words: Vec<u64> = (0..2048).map(|_| rng.next_u64()).collect();
    let lp_fields = lp_words.len() * 64 / lp_width - 2;
    let lp_mask = (1u64 << lp_width) - 1;
    let lp_probes: Vec<(usize, usize, u64)> = (0..MICRO_PROBES)
        .map(|_| {
            let start = rng.below((lp_fields - 64) as u64) as usize;
            let end = start + 1 + rng.below(63) as usize;
            (start, end, lp_mask - rng.below(4))
        })
        .collect();
    let time_lp = |lvl: SimdLevel| {
        best_ns_per_op(reps, MICRO_PROBES, || {
            let mut acc = 0usize;
            for &(s, e, y) in &lp_probes {
                acc ^= simd::low_partition_at(lvl, &lp_words, lp_width, s, e, y, false);
            }
            acc
        })
    };

    // Cursor batch: the monotone EfCursor walk (whole-word consume +
    // dispatched zero-run skip) against the retained per-bit walk.
    let mut sorted_probes = probes.clone();
    sorted_probes.sort_unstable();
    let cursor_scalar_ns = best_ns_per_op(reps, MICRO_PROBES, || {
        let mut acc = 0u64;
        let mut cur = ef.cursor();
        for &y in &sorted_probes {
            acc ^= cur.predecessor_bitwise(y).unwrap_or(0);
        }
        acc
    });
    let cursor_simd_ns = best_ns_per_op(reps, MICRO_PROBES, || {
        let mut acc = 0u64;
        let mut cur = ef.cursor();
        for &y in &sorted_probes {
            acc ^= cur.predecessor(y).unwrap_or(0);
        }
        acc
    });

    let kernels = [
        ("rank1", time_rank(SimdLevel::Scalar), time_rank(active)),
        (
            "select_in_word",
            time_select(SimdLevel::Scalar),
            time_select(active),
        ),
        ("low_partition", time_lp(SimdLevel::Scalar), time_lp(active)),
        ("cursor_batch", cursor_scalar_ns, cursor_simd_ns),
    ];

    // --- bake-off: predecessor structures over the same values/probes ---
    use grafite_succinct::{BucketedArray, PredecessorSearch, SampledIndex};
    let bucketed = BucketedArray::new(&values);
    let sampled = SampledIndex::new(&values);
    let structures: [&dyn PredecessorSearch; 3] = [&ef, &bucketed, &sampled];
    // Spot-check agreement before timing anything.
    for &y in sorted_probes.iter().take(256) {
        let idx = values.partition_point(|&v| v <= y);
        let want = if idx > 0 { Some(values[idx - 1]) } else { None };
        for s in structures {
            assert_eq!(s.predecessor(y), want, "{} diverged at {y}", s.name());
        }
    }
    let bakeoff: Vec<(&'static str, f64, f64)> = structures
        .iter()
        .map(|s| {
            let ns = best_ns_per_op(reps, micro_ops, || {
                let mut acc = 0u64;
                for _ in 0..MICRO_ROUNDS {
                    for &y in &probes {
                        acc ^= s.predecessor(y).unwrap_or(0);
                    }
                }
                acc
            });
            let bpk = s.size_in_bits() as f64 / values.len() as f64;
            (s.name(), ns, bpk)
        })
        .collect();

    // --- macro: filter-level query latency at 16 bits/key ---
    let keys: Vec<u64> = (0..cfg.n).map(|_| rng.next_u64()).collect();
    let grafite = GrafiteFilter::builder()
        .bits_per_key(16.0)
        .seed(cfg.seed)
        .build(&keys)
        .expect("grafite build");
    let bucketing = BucketingFilter::builder()
        .bits_per_key(16.0)
        .build(&keys)
        .expect("bucketing build");

    let mut table = Table::new(&["metric", "ns/op", "notes"]);
    let mut metrics = crate::report::JsonObject::new();
    metrics.num("ef_predecessor_fused_ns", fused_ns);
    metrics.num("ef_predecessor_two_probe_ns", two_probe_ns);
    metrics.num("sorted_vec_predecessor_ns", sorted_vec_ns);
    table.row(vec![
        "ef_predecessor_fused".into(),
        format!("{fused_ns:.1}"),
        "one select0 + word-local scans".into(),
    ]);
    table.row(vec![
        "ef_predecessor_two_probe".into(),
        format!("{two_probe_ns:.1}"),
        "seed algorithm on the new directories".into(),
    ]);
    table.row(vec![
        "sorted_vec_predecessor".into(),
        format!("{sorted_vec_ns:.1}"),
        "uncompressed baseline / machine normalizer".into(),
    ]);

    metrics.str_field("simd_level", active.name());
    metrics.int("simd_active", u64::from(simd_active));
    for &(name, scalar_ns, simd_ns) in &kernels {
        metrics.num(&format!("kernel_{name}_scalar_ns"), scalar_ns);
        metrics.num(&format!("kernel_{name}_simd_ns"), simd_ns);
        metrics.num(&format!("kernel_speedup_{name}"), scalar_ns / simd_ns);
        table.row(vec![
            format!("kernel_{name}"),
            format!("{simd_ns:.1}"),
            format!(
                "scalar {scalar_ns:.1} ns, {:.2}x at {}",
                scalar_ns / simd_ns,
                active.name()
            ),
        ]);
    }
    for &(name, ns, bpk) in &bakeoff {
        metrics.num(&format!("bakeoff_{name}_predecessor_ns"), ns);
        metrics.num(&format!("bakeoff_{name}_bits_per_key"), bpk);
        table.row(vec![
            format!("bakeoff_{name}"),
            format!("{ns:.1}"),
            format!("predecessor structure, {bpk:.1} bits/key"),
        ]);
    }

    for &(l, size_name) in &RANGE_SIZES {
        let queries = uncorrelated_queries(&keys, cfg.queries, l, cfg.seed ^ 0xB07);
        let mut scalar = f64::INFINITY;
        let mut fpr = 0.0;
        let mut bpk = 0.0;
        for _ in 0..reps {
            let m = measure(&grafite, &queries);
            scalar = scalar.min(m.ns_per_query);
            fpr = m.positive_rate;
            bpk = m.bits_per_key;
        }
        metrics.num(&format!("grafite_query_{size_name}_ns"), scalar);
        table.row(vec![
            format!("grafite_query_{size_name}"),
            format!("{scalar:.1}"),
            format!("fpr={} bpk={bpk:.1}", fmt_fpr(fpr)),
        ]);
        if l > 1 {
            let mut pairs = queries_as_pairs(&queries);
            pairs.sort_unstable();
            let mut batched = f64::INFINITY;
            for _ in 0..reps {
                batched = batched.min(measure_batch(&grafite, &pairs).ns_per_query);
            }
            metrics.num(&format!("grafite_batch_{size_name}_ns"), batched);
            table.row(vec![
                format!("grafite_batch_{size_name}"),
                format!("{batched:.1}"),
                "sorted batch through EfCursor".into(),
            ]);
        }
        let mut bucketing_ns = f64::INFINITY;
        for _ in 0..reps {
            bucketing_ns = bucketing_ns.min(measure(&bucketing, &queries).ns_per_query);
        }
        metrics.num(&format!("bucketing_query_{size_name}_ns"), bucketing_ns);
        table.row(vec![
            format!("bucketing_query_{size_name}"),
            format!("{bucketing_ns:.1}"),
            "one EF predecessor per query".into(),
        ]);
    }

    let speedup = two_probe_ns / fused_ns;
    metrics.num("speedup_fused_vs_two_probe", speedup);
    table.row(vec![
        "speedup_fused_vs_two_probe".into(),
        format!("{speedup:.2}x"),
        "acceptance target: >= 1.5x".into(),
    ]);
    table.print();
    let _ = table.write_csv(&cfg.out_dir, "hotpath");

    let mut config = crate::report::JsonObject::new();
    config
        .int("n", cfg.n as u64)
        .int("queries", cfg.queries as u64)
        .int("seed", cfg.seed);
    let mut doc = crate::report::JsonObject::new();
    doc.str_field("schema", "grafite-hotpath-v1")
        .obj("config", &config)
        .obj("metrics", &metrics);
    doc.write(&cfg.out_dir, "BENCH_query")
        .expect("write BENCH_query.json");
}

/// Runs every experiment.
pub fn all(cfg: &RunConfig) {
    fig1(cfg);
    fig3(cfg);
    fig4(cfg);
    fig5(cfg);
    fig6(cfg);
    fig7(cfg);
    table1(cfg);
    fb(cfg);
    sort_ablation(cfg);
    ablation_pow2(cfg);
    ablation_snarf_overflow(cfg);
    ablation_batch(cfg);
    ablation_rosetta_tuning(cfg);
    ablation_bucketing(cfg);
    ablation_wa_bucketing(cfg);
    normal_check(cfg);
    serving(cfg);
    hotpath(cfg);
}
