//! Measurement loops and run configuration shared by all experiments.

use std::hint::black_box;
use std::time::Instant;

use grafite_core::PersistentFilter;
use grafite_workloads::RangeQuery;

/// Run-wide configuration, parsed from the `repro` CLI.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of keys per dataset (paper: 200M; default here: 100k — scale
    /// with `--n`).
    pub n: usize,
    /// Number of queries per batch (paper: 10M; default here: 20k).
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
    /// Directory searched for real SOSD datasets.
    pub data_dir: std::path::PathBuf,
    /// Space budgets swept in the space-vs-FPR figures.
    pub budgets: Vec<f64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            n: 100_000,
            queries: 20_000,
            seed: 42,
            out_dir: "results".into(),
            data_dir: "data".into(),
            budgets: vec![8.0, 12.0, 16.0, 20.0, 24.0, 28.0],
        }
    }
}

/// Outcome of running one filter against one query batch.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Fraction of positive answers. On an all-empty batch this is the FPR.
    pub positive_rate: f64,
    /// Mean wall-clock nanoseconds per query.
    pub ns_per_query: f64,
    /// Filter space in bits per key — **measured** from the serialized
    /// flat-byte size (`serialized_bits / n`, the figure the paper reports),
    /// not the in-memory struct estimate.
    pub bits_per_key: f64,
}

/// Measured bits per key: the filter's true serialized footprint over its
/// key count. This is how the paper reports space, and what every
/// experiment CSV now carries.
pub fn measured_bits_per_key(filter: &dyn PersistentFilter) -> f64 {
    if filter.num_keys() == 0 {
        0.0
    } else {
        filter.serialized_bits() as f64 / filter.num_keys() as f64
    }
}

/// Runs the batch once for timing and FPR in the same pass.
pub fn measure(filter: &dyn PersistentFilter, queries: &[RangeQuery]) -> Measurement {
    assert!(!queries.is_empty(), "empty query batch");
    let start = Instant::now();
    let mut positives = 0usize;
    for q in queries {
        if black_box(filter.may_contain_range(q.lo, q.hi)) {
            positives += 1;
        }
    }
    let elapsed = start.elapsed();
    Measurement {
        positive_rate: positives as f64 / queries.len() as f64,
        ns_per_query: elapsed.as_nanos() as f64 / queries.len() as f64,
        bits_per_key: measured_bits_per_key(filter),
    }
}

/// Runs the batch through `RangeFilter::may_contain_ranges` in one call —
/// the batched counterpart of [`measure`]. With a filter that specialises
/// the batch path (e.g. Grafite's sorted-batch forward scan) this measures
/// the specialisation; answers are identical to [`measure`]'s by contract.
pub fn measure_batch(filter: &dyn PersistentFilter, queries: &[(u64, u64)]) -> Measurement {
    assert!(!queries.is_empty(), "empty query batch");
    let mut out = Vec::with_capacity(queries.len());
    let start = Instant::now();
    filter.may_contain_ranges(black_box(queries), &mut out);
    let elapsed = start.elapsed();
    let positives = out.iter().filter(|&&hit| hit).count();
    Measurement {
        positive_rate: positives as f64 / queries.len() as f64,
        ns_per_query: elapsed.as_nanos() as f64 / queries.len() as f64,
        bits_per_key: measured_bits_per_key(filter),
    }
}

/// Times a construction closure, returning (seconds, its output).
pub fn time_it<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Formats an FPR the way the paper's log-scale plots read: `0` stays `0`.
pub fn fmt_fpr(fpr: f64) -> String {
    if fpr == 0.0 {
        "0".to_string()
    } else {
        format!("{fpr:.2e}")
    }
}
