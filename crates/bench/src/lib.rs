//! The experiment harness regenerating every table and figure of the
//! Grafite paper's evaluation (§6), plus the DESIGN.md ablations.
//!
//! Entry point: the `repro` binary (`cargo run --release -p grafite-bench
//! --bin repro -- <experiment>`). Criterion microbenchmarks live under
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod registry;
pub mod report;
