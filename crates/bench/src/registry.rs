//! Uniform construction of every filter in the paper's evaluation.
//!
//! Since the `FilterConfig`/`BuildableFilter` redesign this module is pure
//! delegation: the spec enum, the config, and the builder table all live in
//! [`grafite_core::registry`] (populated by
//! [`grafite_filters::standard_registry`]), and are re-exported here so
//! existing `grafite_bench::registry::FilterSpec` paths keep working. The
//! former 70-line construction `match` is gone, and the pre-redesign
//! `BuildCtx`/`build_filter` wrappers have been removed — write
//! `FilterConfig::new(keys).bits_per_key(..)` and go through
//! [`standard`]/[`build_spec`], or `grafite_store::FilterStore` for the
//! build → serve → update → reload lifecycle.

use std::sync::OnceLock;

use grafite_core::PersistentFilter;

pub use grafite_core::registry::{BuilderFn, FilterSpec, LoaderFn, Registry};
pub use grafite_core::{BuildableFilter, FilterConfig};
pub use grafite_filters::standard_registry;

/// The lazily-built shared instance of [`standard_registry`].
pub fn standard() -> &'static Registry {
    static STANDARD: OnceLock<Registry> = OnceLock::new();
    STANDARD.get_or_init(standard_registry)
}

/// Builds the filter, or `None` when the configuration is infeasible at
/// this budget (e.g. SuRF below its ~11 bits/key trie floor — the paper's
/// footnote 6 omits those configurations too). For the error itself, use
/// [`standard`]`().build(spec, cfg)`.
pub fn build_spec(spec: FilterSpec, cfg: &FilterConfig<'_>) -> Option<Box<dyn PersistentFilter>> {
    standard().build(spec, cfg).ok()
}
