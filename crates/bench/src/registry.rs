//! Uniform construction of every filter in the paper's evaluation.
//!
//! Since the `FilterConfig`/`BuildableFilter` redesign this module is pure
//! delegation: the spec enum, the config, and the builder table all live in
//! [`grafite_core::registry`] (populated by
//! [`grafite_filters::standard_registry`]), and are re-exported here so
//! existing `grafite_bench::registry::{FilterSpec, build_filter}` paths
//! keep working. The former 70-line construction `match` is gone.

use std::sync::OnceLock;

use grafite_core::PersistentFilter;

pub use grafite_core::registry::{BuilderFn, FilterSpec, LoaderFn, Registry};
pub use grafite_core::{BuildableFilter, FilterConfig};
pub use grafite_filters::standard_registry;

/// The lazily-built shared instance of [`standard_registry`].
pub fn standard() -> &'static Registry {
    static STANDARD: OnceLock<Registry> = OnceLock::new();
    STANDARD.get_or_init(standard_registry)
}

/// Builds the filter, or `None` when the configuration is infeasible at
/// this budget (e.g. SuRF below its ~11 bits/key trie floor — the paper's
/// footnote 6 omits those configurations too). For the error itself, use
/// [`standard`]`().build(spec, cfg)`.
pub fn build_spec(spec: FilterSpec, cfg: &FilterConfig<'_>) -> Option<Box<dyn PersistentFilter>> {
    standard().build(spec, cfg).ok()
}

/// Everything a filter build may need.
///
/// **Deprecated (doc-level):** superseded by [`FilterConfig`] (same
/// fields, builder-style construction, lives in `grafite-core`) for
/// one-off builds, and by `grafite_store::StoreConfig` for serving
/// deployments. No internal caller uses it anymore; it is kept only so
/// pre-redesign downstream call sites compile unchanged, and may be
/// removed in a future major version. New code should write
/// `FilterConfig::new(keys).bits_per_key(..)` and go through
/// [`standard`]`()`/[`build_spec`] — or `grafite_store::FilterStore` when
/// it needs the build → serve → update → reload lifecycle.
pub struct BuildCtx<'a> {
    /// The key set (sorted is fine, not required).
    pub keys: &'a [u64],
    /// Space budget in bits per key.
    pub bits_per_key: f64,
    /// The workload's max range size (`L`).
    pub max_range: u64,
    /// Query sample (empty ranges) for the auto-tuned filters.
    pub sample: &'a [(u64, u64)],
    /// Seed for any randomised component.
    pub seed: u64,
}

impl<'a> BuildCtx<'a> {
    /// The equivalent [`FilterConfig`].
    pub fn to_config(&self) -> FilterConfig<'a> {
        FilterConfig::new(self.keys)
            .bits_per_key(self.bits_per_key)
            .max_range(self.max_range)
            .sample(self.sample)
            .seed(self.seed)
    }
}

/// Legacy entry point over [`BuildCtx`]; thin delegation to [`build_spec`].
///
/// **Deprecated (doc-level):** see [`BuildCtx`] — use [`build_spec`] with a
/// [`FilterConfig`] (or `grafite_store::FilterStore` for serving) instead.
pub fn build_filter(spec: FilterSpec, ctx: &BuildCtx<'_>) -> Option<Box<dyn PersistentFilter>> {
    build_spec(spec, &ctx.to_config())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The deprecated wrappers must stay faithful delegates for as long as
    /// they exist: same filter, same answers as the registry path.
    #[test]
    fn legacy_wrappers_delegate_to_the_registry_path() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 999_983).collect();
        let ctx = BuildCtx {
            keys: &keys,
            bits_per_key: 14.0,
            max_range: 64,
            sample: &[],
            seed: 7,
        };
        let legacy = build_filter(FilterSpec::Grafite, &ctx).expect("feasible");
        let cfg = FilterConfig::new(&keys)
            .bits_per_key(14.0)
            .max_range(64)
            .seed(7);
        let modern = build_spec(FilterSpec::Grafite, &cfg).expect("feasible");
        assert_eq!(legacy.name(), modern.name());
        assert_eq!(
            legacy.to_bytes(),
            modern.to_bytes(),
            "wrapper built a different filter"
        );
    }
}
