//! Uniform construction of every filter in the paper's evaluation.

use grafite_core::{BucketingFilter, GrafiteFilter, RangeFilter};
use grafite_filters::{Proteus, REncoder, REncoderVariant, Rosetta, Snarf, SuffixMode, Surf};

/// Every filter of the paper's §6 comparison, plus the §2 trivial baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterSpec {
    /// Grafite (this paper, robust).
    Grafite,
    /// Bucketing (this paper, heuristic).
    Bucketing,
    /// SNARF (heuristic; uses the overflow-fixed model).
    Snarf,
    /// SuRF with real suffixes (heuristic; the paper's range-query config).
    SurfReal,
    /// SuRF with hashed suffixes (heuristic; the paper's point-query config).
    SurfHash,
    /// Proteus, auto-tuned on the query sample (heuristic).
    Proteus,
    /// Rosetta, auto-tuned on the query sample (robust).
    Rosetta,
    /// REncoder, base configuration (robust for in-budget range sizes).
    REncoder,
    /// REncoder with fixed selective storage (heuristic).
    REncoderSS,
    /// REncoder with sample-estimated storage (heuristic, auto-tuned).
    REncoderSE,
    /// The §2 theoretical baseline: Bloom filter probed point-by-point.
    TrivialBloom,
}

impl FilterSpec {
    /// The robust filters of §6.4.
    pub const ROBUST: [FilterSpec; 3] =
        [FilterSpec::Grafite, FilterSpec::Rosetta, FilterSpec::REncoder];

    /// The heuristic filters of §6.3.
    pub const HEURISTIC: [FilterSpec; 6] = [
        FilterSpec::Bucketing,
        FilterSpec::SurfReal,
        FilterSpec::Snarf,
        FilterSpec::Proteus,
        FilterSpec::REncoderSS,
        FilterSpec::REncoderSE,
    ];

    /// The nine filters of the Figure 3 robustness grid.
    pub const ALL_FIG3: [FilterSpec; 9] = [
        FilterSpec::Grafite,
        FilterSpec::Bucketing,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
        FilterSpec::Proteus,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
        FilterSpec::REncoderSS,
        FilterSpec::REncoderSE,
    ];

    /// The six filters of the paper's Figure 1 teaser.
    pub const FIG1: [FilterSpec; 6] = [
        FilterSpec::Grafite,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
        FilterSpec::Proteus,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
    ];

    /// Harness display name.
    pub fn label(&self) -> &'static str {
        match self {
            FilterSpec::Grafite => "Grafite",
            FilterSpec::Bucketing => "Bucketing",
            FilterSpec::Snarf => "SNARF",
            FilterSpec::SurfReal => "SuRF",
            FilterSpec::SurfHash => "SuRF-Hash",
            FilterSpec::Proteus => "Proteus",
            FilterSpec::Rosetta => "Rosetta",
            FilterSpec::REncoder => "REncoder",
            FilterSpec::REncoderSS => "REncoderSS",
            FilterSpec::REncoderSE => "REncoderSE",
            FilterSpec::TrivialBloom => "TrivialBloom",
        }
    }
}

/// Everything a filter build may need.
pub struct BuildCtx<'a> {
    /// The key set (sorted is fine, not required).
    pub keys: &'a [u64],
    /// Space budget in bits per key.
    pub bits_per_key: f64,
    /// The workload's max range size (`L`).
    pub max_range: u64,
    /// Query sample (empty ranges) for the auto-tuned filters.
    pub sample: &'a [(u64, u64)],
    /// Seed for any randomised component.
    pub seed: u64,
}

/// Builds the filter, or `None` when the configuration is infeasible at
/// this budget (e.g. SuRF below its ~10 bits/key floor — the paper's
/// footnote 6 omits those configurations too).
pub fn build_filter(spec: FilterSpec, ctx: &BuildCtx<'_>) -> Option<Box<dyn RangeFilter>> {
    match spec {
        FilterSpec::Grafite => GrafiteFilter::builder()
            .bits_per_key(ctx.bits_per_key)
            .seed(ctx.seed)
            .build(ctx.keys)
            .ok()
            .map(|f| Box::new(f) as Box<dyn RangeFilter>),
        FilterSpec::Bucketing => BucketingFilter::builder()
            .bits_per_key(ctx.bits_per_key)
            .build(ctx.keys)
            .ok()
            .map(|f| Box::new(f) as Box<dyn RangeFilter>),
        FilterSpec::Snarf => Snarf::new(ctx.keys, ctx.bits_per_key)
            .ok()
            .map(|f| Box::new(f) as Box<dyn RangeFilter>),
        FilterSpec::SurfReal | FilterSpec::SurfHash => {
            // The trie alone costs ~11 bits/key on random data; spend the
            // remainder on suffix bits.
            let suffix_bits = (ctx.bits_per_key - 11.0).round();
            if suffix_bits < 1.0 {
                return None;
            }
            let bits = (suffix_bits as u8).min(32);
            let mode = if spec == FilterSpec::SurfReal {
                SuffixMode::Real { bits }
            } else {
                SuffixMode::Hash { bits }
            };
            Surf::new(ctx.keys, mode).ok().map(|f| Box::new(f) as Box<dyn RangeFilter>)
        }
        FilterSpec::Proteus => Proteus::new(ctx.keys, ctx.bits_per_key, ctx.sample, ctx.seed)
            .ok()
            .map(|f| Box::new(f) as Box<dyn RangeFilter>),
        FilterSpec::Rosetta => {
            Rosetta::new(ctx.keys, ctx.bits_per_key, ctx.max_range, Some(ctx.sample), ctx.seed)
                .ok()
                .map(|f| Box::new(f) as Box<dyn RangeFilter>)
        }
        FilterSpec::REncoder => {
            REncoder::new(ctx.keys, ctx.bits_per_key, REncoderVariant::Full, None, ctx.seed)
                .ok()
                .map(|f| Box::new(f) as Box<dyn RangeFilter>)
        }
        FilterSpec::REncoderSS => REncoder::new(
            ctx.keys,
            ctx.bits_per_key,
            REncoderVariant::SelectiveStorage { rounds: 2 },
            None,
            ctx.seed,
        )
        .ok()
        .map(|f| Box::new(f) as Box<dyn RangeFilter>),
        FilterSpec::REncoderSE => REncoder::new(
            ctx.keys,
            ctx.bits_per_key,
            REncoderVariant::SampleEstimation,
            Some(ctx.sample),
            ctx.seed,
        )
        .ok()
        .map(|f| Box::new(f) as Box<dyn RangeFilter>),
        FilterSpec::TrivialBloom => {
            // Same information budget as Grafite: ε = L / 2^(B−2).
            let epsilon = (ctx.max_range as f64 / (ctx.bits_per_key - 2.0).exp2()).clamp(1e-9, 0.5);
            Some(Box::new(grafite_bloom::TrivialRangeFilter::new(
                ctx.keys,
                epsilon,
                ctx.max_range,
                ctx.seed,
            )))
        }
    }
}
