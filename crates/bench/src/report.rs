//! Text tables and CSV output for the experiment harness.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("  {}", line.join("  "));
        };
        print_row(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            print_row(row);
        }
    }

    /// Writes the table as CSV to `dir/name.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        eprintln!("  [csv] {}", path.display());
        Ok(())
    }
}

/// A minimal ordered JSON object builder for machine-readable bench
/// artifacts (the workspace vendors no serde). Keys keep insertion order;
/// values are numbers, strings, or nested objects.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, key: &str, rendered: String) -> &mut Self {
        assert!(
            !key.contains(['"', '\\']),
            "JSON keys must not need escaping"
        );
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a numeric field (rendered with up to 3 fractional digits —
    /// nanosecond metrics need no more).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        assert!(value.is_finite(), "JSON numbers must be finite ({key})");
        let mut s = format!("{value:.3}");
        while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
            s.pop();
        }
        self.push(key, s)
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.push(key, value.to_string())
    }

    /// Adds a string field (the value must not need escaping).
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        assert!(
            !value.contains(['"', '\\']),
            "JSON strings must not need escaping"
        );
        self.push(key, format!("\"{value}\""))
    }

    /// Adds a nested object.
    pub fn obj(&mut self, key: &str, nested: &JsonObject) -> &mut Self {
        self.push(key, nested.render())
    }

    /// Renders the object as a JSON string.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// Writes the object as `dir/name.json`.
    pub fn write(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        fs::write(&path, self.render() + "\n")?;
        eprintln!("  [json] {}", path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_object_renders_and_writes() {
        let mut inner = JsonObject::new();
        inner.num("ns", 12.3456).int("count", 7);
        let mut obj = JsonObject::new();
        obj.str_field("schema", "test-v1").obj("metrics", &inner);
        assert_eq!(
            obj.render(),
            "{\"schema\": \"test-v1\", \"metrics\": {\"ns\": 12.346, \"count\": 7}}"
        );
        let dir = std::env::temp_dir().join("grafite_json_test");
        obj.write(&dir, "bench").unwrap();
        let body = std::fs::read_to_string(dir.join("bench.json")).unwrap();
        assert!(body.starts_with('{') && body.ends_with("}\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_numbers_trim_trailing_zeros() {
        let mut obj = JsonObject::new();
        obj.num("a", 5.0).num("b", 0.25);
        assert_eq!(obj.render(), "{\"a\": 5, \"b\": 0.25}");
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        t.row(vec!["2".into(), "z".into()]);
        let dir = std::env::temp_dir().join("grafite_report_test");
        t.write_csv(&dir, "t").unwrap();
        let body = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.starts_with("a,b\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn print_does_not_panic() {
        let mut t = Table::new(&["col"]);
        t.row(vec!["value-longer-than-header".into()]);
        t.print();
    }
}
