//! Text tables and CSV output for the experiment harness.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("  {}", line.join("  "));
        };
        print_row(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            print_row(row);
        }
    }

    /// Writes the table as CSV to `dir/name.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        eprintln!("  [csv] {}", path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        t.row(vec!["2".into(), "z".into()]);
        let dir = std::env::temp_dir().join("grafite_report_test");
        t.write_csv(&dir, "t").unwrap();
        let body = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.starts_with("a,b\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn print_does_not_panic() {
        let mut t = Table::new(&["col"]);
        t.row(vec!["value-longer-than-header".into()]);
        t.print();
    }
}
