//! Smoke tests for the experiment harness plumbing: every registry spec
//! builds (or declines) cleanly at every budget and answers soundly,
//! through the `FilterConfig`/`build_spec` registry path.

use grafite_bench::harness::{measure, RunConfig};
use grafite_bench::registry::{build_spec, FilterConfig, FilterSpec};
use grafite_workloads::{datasets::Dataset, generate, non_empty_queries, uncorrelated_queries};

const ALL_SPECS: [FilterSpec; 11] = [
    FilterSpec::Grafite,
    FilterSpec::Bucketing,
    FilterSpec::Snarf,
    FilterSpec::SurfReal,
    FilterSpec::SurfHash,
    FilterSpec::Proteus,
    FilterSpec::Rosetta,
    FilterSpec::REncoder,
    FilterSpec::REncoderSS,
    FilterSpec::REncoderSE,
    FilterSpec::TrivialBloom,
];

#[test]
fn every_spec_builds_and_answers_soundly() {
    let keys = generate(Dataset::Uniform, 3000, 1);
    let sample: Vec<(u64, u64)> = uncorrelated_queries(&keys, 100, 32, 5)
        .iter()
        .map(|q| (q.lo, q.hi))
        .collect();
    let positives = non_empty_queries(&keys, 200, 32, 9);
    for budget in [8.0, 16.0, 28.0] {
        let cfg = FilterConfig::new(&keys)
            .bits_per_key(budget)
            .max_range(32)
            .sample(&sample)
            .seed(7);
        for spec in ALL_SPECS {
            let Some(filter) = build_spec(spec, &cfg) else {
                // Only SuRF may decline, and only below its space floor.
                assert!(
                    matches!(spec, FilterSpec::SurfReal | FilterSpec::SurfHash) && budget < 12.0,
                    "{} unexpectedly infeasible at {budget}",
                    spec.label()
                );
                continue;
            };
            let m = measure(filter.as_ref(), &positives);
            assert_eq!(
                m.positive_rate,
                1.0,
                "{} lost keys at {budget} bits/key",
                spec.label()
            );
            assert!(m.bits_per_key > 0.0);
        }
    }
}

#[test]
fn default_config_is_laptop_scale() {
    let cfg = RunConfig::default();
    assert!(cfg.n <= 200_000, "defaults must stay laptop-scale");
    assert!(cfg.queries <= 50_000);
    assert!(!cfg.budgets.is_empty());
}
