//! A classic Bloom filter over `u64` items.

use grafite_hash::mix::murmur_mix64;
use grafite_succinct::io::{DecodeError, WordSource, WordWriter};
use grafite_succinct::BitVec;

/// A Bloom filter with `k` hash functions realised by double hashing
/// (Kirsch–Mitzenmacher): `g_i(x) = h1(x) + i·h2(x) mod m`.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: BitVec,
    m: u64,
    k: u32,
    seed: u64,
    items: usize,
}

impl BloomFilter {
    /// Creates a filter with `m` bits and `k` hash functions.
    ///
    /// # Panics
    /// Panics if `m == 0` or `k == 0`.
    pub fn new(m: usize, k: u32, seed: u64) -> Self {
        assert!(m > 0, "Bloom filter needs at least one bit");
        assert!(k > 0, "Bloom filter needs at least one hash");
        Self {
            bits: BitVec::zeros(m),
            m: m as u64,
            k,
            seed,
            items: 0,
        }
    }

    /// Sizes a filter for `n` items at false-positive rate `fpr`
    /// (`m = −n·ln(fpr)/ln2²`, `k = (m/n)·ln2`).
    pub fn for_fpr(n: usize, fpr: f64, seed: u64) -> Self {
        let n = n.max(1) as f64;
        let fpr = fpr.clamp(1e-12, 0.9999);
        let m = (-n * fpr.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil() as usize;
        let k = Self::optimal_k(m.max(1), n as usize);
        Self::new(m.max(1), k, seed)
    }

    /// The k minimising the FPR for `m` bits and `n` items.
    pub fn optimal_k(m: usize, n: usize) -> u32 {
        let k = (m as f64 / n.max(1) as f64 * std::f64::consts::LN_2).round();
        (k as u32).clamp(1, 16)
    }

    #[inline]
    fn index_pair(&self, item: u64) -> (u64, u64) {
        let h1 = murmur_mix64(item ^ self.seed);
        let h2 = murmur_mix64(item.wrapping_add(0x9E37_79B9_7F4A_7C15) ^ self.seed) | 1;
        (h1, h2)
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: u64) {
        let (h1, h2) = self.index_pair(item);
        for i in 0..self.k as u64 {
            let idx = (h1.wrapping_add(i.wrapping_mul(h2)) % self.m) as usize;
            self.bits.set(idx, true);
        }
        self.items += 1;
    }

    /// Whether the item may be present.
    #[inline]
    pub fn contains(&self, item: u64) -> bool {
        let (h1, h2) = self.index_pair(item);
        for i in 0..self.k as u64 {
            let idx = (h1.wrapping_add(i.wrapping_mul(h2)) % self.m) as usize;
            if !self.bits.get(idx) {
                return false;
            }
        }
        true
    }

    /// Number of bits `m`.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.m as usize
    }

    /// Number of hash functions `k`.
    #[inline]
    pub fn num_hashes(&self) -> u32 {
        self.k
    }

    /// Number of inserted items (with multiplicity).
    #[inline]
    pub fn num_items(&self) -> usize {
        self.items
    }

    /// Expected FPR at the current load: `(1 − e^{−kn/m})^k`.
    pub fn expected_fpr(&self) -> f64 {
        let exponent = -(self.k as f64) * self.items as f64 / self.m as f64;
        (1.0 - exponent.exp()).powi(self.k as i32)
    }

    /// Heap size in bits.
    pub fn size_in_bits(&self) -> usize {
        self.bits.size_in_bits() + 4 * 64
    }

    /// Serializes as `[m, k, seed, items] + bits`. Returns the word count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.m)?;
        w.word(self.k as u64)?;
        w.word(self.seed)?;
        w.word(self.items as u64)?;
        self.bits.write_to(w)?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`BloomFilter::write_to`] wrote.
    pub fn read_from<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
    ) -> Result<Self, DecodeError> {
        let m = src.word()?;
        let k = src.word()?;
        if m == 0 || k == 0 || k > u32::MAX as u64 {
            return Err(DecodeError::Invalid("Bloom parameters out of range"));
        }
        let seed = src.word()?;
        let items = src.length()?;
        let bits = BitVec::read_from(src)?;
        if bits.len() as u64 != m {
            return Err(DecodeError::Invalid(
                "Bloom bit array length differs from m",
            ));
        }
        Ok(Self {
            bits,
            m,
            k: k as u32,
            seed,
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(10_000, 5, 1);
        let items: Vec<u64> = (0..500u64).map(|i| i * 7919).collect();
        for &x in &items {
            bf.insert(x);
        }
        for &x in &items {
            assert!(bf.contains(x));
        }
    }

    #[test]
    fn fpr_near_design_point() {
        let n = 2000usize;
        let target = 0.01;
        let mut bf = BloomFilter::for_fpr(n, target, 42);
        for i in 0..n as u64 {
            bf.insert(i.wrapping_mul(0x9E3779B97F4A7C15));
        }
        let mut fps = 0;
        let probes = 50_000u64;
        for j in 0..probes {
            // Disjoint probe set.
            if bf.contains(j.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1)) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / probes as f64;
        assert!(fpr < target * 2.5, "fpr {fpr} vs target {target}");
        assert!(fpr > target / 20.0, "fpr suspiciously low: {fpr}");
    }

    #[test]
    fn sizing_formulas() {
        assert_eq!(BloomFilter::optimal_k(1000, 100), 7);
        let bf = BloomFilter::for_fpr(1000, 0.01, 0);
        // ~9.59 bits/key for 1% FPR.
        let bpk = bf.num_bits() as f64 / 1000.0;
        assert!((bpk - 9.59).abs() < 0.2, "bits/key {bpk}");
    }

    #[test]
    fn tiny_filters_work() {
        let mut bf = BloomFilter::new(1, 1, 0);
        bf.insert(7);
        assert!(bf.contains(7));
        // Everything collides in a 1-bit filter: full FPR, zero FNs.
        assert!(bf.contains(8));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        BloomFilter::new(0, 1, 0);
    }
}
