//! Bloom-filter substrates for the Grafite reproduction.
//!
//! * [`BloomFilter`] — a classic Bloom filter over `u64` items with
//!   double hashing; the building block of Rosetta and Proteus.
//! * [`PrefixBloomFilter`] — a Bloom filter over fixed-length key prefixes
//!   answering range queries by probing every overlapping prefix (paper §2,
//!   "Prefix Bloom Filter"); the second stage of Proteus.
//! * [`TrivialRangeFilter`] — the paper's "theoretical baseline" (§2): a
//!   point filter with false-positive rate `γ = ε/L` probed at every point
//!   of the query range, i.e. `n log(L/ε) + O(n)` bits and `O(L)` query
//!   time. Grafite matches its space while cutting the query time to `O(1)`
//!   — this baseline exists so the benchmark can show exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod prefix;
pub mod trivial;

pub use bloom::BloomFilter;
pub use prefix::PrefixBloomFilter;
pub use trivial::{TrivialBloomTuning, TrivialRangeFilter};
