//! The Prefix Bloom Filter (paper §2): hash fixed-length key prefixes into a
//! Bloom filter; a range query probes every prefix overlapping the range.

use grafite_succinct::io::{DecodeError, WordSource, WordWriter};

use crate::bloom::BloomFilter;

/// A Bloom filter over the `prefix_len` most-significant bits of 64-bit
/// keys. Each stored prefix encodes an aligned range of `2^(64−prefix_len)`
/// universe values.
#[derive(Clone, Debug)]
pub struct PrefixBloomFilter {
    bloom: BloomFilter,
    prefix_len: u32,
    /// Probe budget per range query: if a query overlaps more prefixes than
    /// this, the filter cannot resolve it and answers "maybe" (as Proteus's
    /// design does when `l2` is too deep for the range).
    max_probes: u64,
}

impl PrefixBloomFilter {
    /// Creates a filter for `prefix_len`-bit prefixes with `m` bits and `k`
    /// hashes.
    ///
    /// # Panics
    /// Panics if `prefix_len` is 0 or exceeds 64.
    pub fn new(prefix_len: u32, m: usize, k: u32, seed: u64) -> Self {
        assert!((1..=64).contains(&prefix_len), "prefix length {prefix_len}");
        Self {
            bloom: BloomFilter::new(m, k, seed),
            prefix_len,
            max_probes: 1 << 12,
        }
    }

    /// Overrides the probe budget.
    pub fn with_max_probes(mut self, max_probes: u64) -> Self {
        self.max_probes = max_probes.max(1);
        self
    }

    /// The prefix length in bits.
    #[inline]
    pub fn prefix_len(&self) -> u32 {
        self.prefix_len
    }

    #[inline]
    fn shift(&self) -> u32 {
        64 - self.prefix_len
    }

    #[inline]
    fn prefix_of(&self, key: u64) -> u64 {
        if self.prefix_len == 64 {
            key
        } else {
            key >> self.shift()
        }
    }

    /// Inserts a key (its prefix).
    pub fn insert(&mut self, key: u64) {
        self.bloom.insert(self.prefix_of(key));
    }

    /// Point query on a key's prefix.
    #[inline]
    pub fn contains_prefix_of(&self, key: u64) -> bool {
        self.bloom.contains(self.prefix_of(key))
    }

    /// Range-emptiness query: probes every prefix whose aligned block
    /// overlaps `[a, b]`; answers "maybe" outright if that exceeds the probe
    /// budget.
    pub fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        let lo = self.prefix_of(a);
        let hi = self.prefix_of(b);
        if hi - lo >= self.max_probes {
            return true;
        }
        (lo..=hi).any(|p| self.bloom.contains(p))
    }

    /// Heap size in bits.
    pub fn size_in_bits(&self) -> usize {
        self.bloom.size_in_bits() + 2 * 64
    }

    /// Access to the underlying Bloom filter (for load statistics).
    pub fn bloom(&self) -> &BloomFilter {
        &self.bloom
    }

    /// Serializes as `[prefix_len, max_probes] + bloom`. Returns the word
    /// count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.prefix_len as u64)?;
        w.word(self.max_probes)?;
        self.bloom.write_to(w)?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`PrefixBloomFilter::write_to`] wrote.
    pub fn read_from<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
    ) -> Result<Self, DecodeError> {
        let prefix_len = src.word()?;
        if !(1..=64).contains(&prefix_len) {
            return Err(DecodeError::Invalid("prefix length out of range"));
        }
        let max_probes = src.word()?;
        if max_probes == 0 {
            return Err(DecodeError::Invalid("zero probe budget"));
        }
        let bloom = BloomFilter::read_from(src)?;
        Ok(Self {
            bloom,
            prefix_len: prefix_len as u32,
            max_probes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_point_and_range() {
        let keys: Vec<u64> = (0..200u64)
            .map(|i| i.wrapping_mul(0xABCDEF1234567))
            .collect();
        for prefix_len in [8u32, 24, 40, 64] {
            let mut f = PrefixBloomFilter::new(prefix_len, 1 << 14, 4, 3);
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                assert!(f.contains_prefix_of(k));
                assert!(f.may_contain_range(k, k));
                assert!(f.may_contain_range(k.saturating_sub(10), k.saturating_add(10)));
            }
        }
    }

    #[test]
    fn filters_far_ranges() {
        // Keys in the low half; probes in the high half must mostly miss.
        let mut f = PrefixBloomFilter::new(24, 1 << 14, 5, 7);
        for i in 0..200u64 {
            f.insert(i << 20);
        }
        let mut positives = 0;
        for i in 0..2000u64 {
            let a = (1u64 << 63) + i * (1 << 22);
            if f.may_contain_range(a, a + 1000) {
                positives += 1;
            }
        }
        assert!(
            positives < 200,
            "prefix bloom not filtering: {positives}/2000"
        );
    }

    #[test]
    fn wide_ranges_hit_probe_budget() {
        let f = PrefixBloomFilter::new(40, 1 << 10, 3, 0).with_max_probes(16);
        // Range covering 2^24+ values at 40-bit prefixes = 2^? prefixes > 16.
        assert!(f.may_contain_range(0, 1 << 30));
    }

    #[test]
    fn prefix_64_is_point_bloom() {
        let mut f = PrefixBloomFilter::new(64, 1 << 12, 4, 1);
        f.insert(123456789);
        assert!(f.may_contain_range(123456789, 123456789));
    }
}
