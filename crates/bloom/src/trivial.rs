//! The paper's "theoretical baseline" (§2): a point filter with
//! false-positive probability `γ = ε/L`, probed at every point of the query
//! range. Space `n·log(L/ε) + O(n)` bits — the same as Grafite — but `O(L)`
//! query time, which is exactly the gap Grafite closes.

use crate::bloom::BloomFilter;
use grafite_core::persist::{spec_id, Header};
use grafite_core::{BuildableFilter, FilterConfig, FilterError, PersistentFilter, RangeFilter};
use grafite_succinct::io::{WordSource, WordWriter};

/// The trivial Bloom-filter-based range filter.
#[derive(Clone, Debug)]
pub struct TrivialRangeFilter {
    bloom: BloomFilter,
    n_keys: usize,
    max_range: u64,
}

impl TrivialRangeFilter {
    /// Builds for `n = keys.len()` keys with target FPP `epsilon` at range
    /// size `max_range` (the point filter gets `γ = ε/L`).
    pub fn new(keys: &[u64], epsilon: f64, max_range: u64, seed: u64) -> Self {
        let gamma = (epsilon / max_range.max(1) as f64).clamp(1e-12, 0.9999);
        let mut bloom = BloomFilter::for_fpr(keys.len(), gamma, seed);
        for &k in keys {
            bloom.insert(k);
        }
        Self {
            bloom,
            n_keys: keys.len(),
            max_range,
        }
    }

    /// The design-point maximum range size `L`.
    pub fn max_range(&self) -> u64 {
        self.max_range
    }
}

/// Per-filter tuning for [`TrivialRangeFilter`] under the
/// [`BuildableFilter`] protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrivialBloomTuning {
    /// `Some(ε)` pins the target FPP at range size
    /// [`FilterConfig::max_range`]; `None` (the default) derives it from the
    /// bits-per-key budget the same way Grafite's Corollary 3.5 does:
    /// `ε = L / 2^(B−2)` — the same information budget, paid in `O(L)`
    /// query time.
    pub epsilon: Option<f64>,
}

impl BuildableFilter for TrivialRangeFilter {
    type Tuning = TrivialBloomTuning;

    fn build_with(
        cfg: &FilterConfig<'_>,
        tuning: &TrivialBloomTuning,
    ) -> Result<Self, FilterError> {
        let epsilon = tuning.epsilon.unwrap_or_else(|| {
            (cfg.max_range as f64 / (cfg.bits_per_key - 2.0).exp2()).clamp(1e-9, 0.5)
        });
        Ok(Self::new(cfg.keys, epsilon, cfg.max_range, cfg.seed))
    }
}

impl PersistentFilter for TrivialRangeFilter {
    fn spec_id(&self) -> u32 {
        spec_id::TRIVIAL_BLOOM
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::TRIVIAL_BLOOM]
    }

    /// Payload: `[max_range]` + the point Bloom filter.
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        w.word(self.max_range)?;
        self.bloom.write_to(w)?;
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        let max_range = src.word()?;
        let bloom = BloomFilter::read_from(src)?;
        Ok(Self {
            bloom,
            n_keys: header.n_keys as usize,
            max_range,
        })
    }
}

impl RangeFilter for TrivialRangeFilter {
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if a > b {
            // Contract violation (debug-asserted above). The other filters
            // compute a harmless garbage answer; here the point-probe loop
            // would walk to the universe edge, so stay total explicitly.
            return false;
        }
        if self.n_keys == 0 {
            // Exact, and spares the O(L) scan: an empty filter holds nothing.
            return false;
        }
        // O(L) probes — the whole point of the baseline. A union-bound over
        // the probes keeps the FPP at ε for ranges up to L.
        let mut x = a;
        loop {
            if self.bloom.contains(x) {
                return true;
            }
            if x == b {
                return false;
            }
            x += 1;
        }
    }

    fn size_in_bits(&self) -> usize {
        self.bloom.size_in_bits()
    }

    fn num_keys(&self) -> usize {
        self.n_keys
    }

    fn name(&self) -> &'static str {
        "TrivialBloom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<u64> = (0..300u64).map(|i| i * 1_000_001).collect();
        let f = TrivialRangeFilter::new(&keys, 0.05, 64, 1);
        for &k in &keys {
            assert!(f.may_contain(k));
            assert!(f.may_contain_range(k.saturating_sub(30), k + 30));
        }
    }

    #[test]
    fn fpr_bounded_by_epsilon() {
        let keys: Vec<u64> = (0..2000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let epsilon = 0.05;
        let l = 32u64;
        let f = TrivialRangeFilter::new(&keys, epsilon, l, 9);
        let mut fps = 0;
        let mut empties = 0;
        let mut state = 77u64;
        while empties < 5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state;
            let b = match a.checked_add(l - 1) {
                Some(b) => b,
                None => continue,
            };
            let idx = sorted.partition_point(|&k| k < a);
            if idx < sorted.len() && sorted[idx] <= b {
                continue;
            }
            empties += 1;
            if f.may_contain_range(a, b) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / empties as f64;
        assert!(fpr < epsilon * 2.0, "fpr {fpr} above design {epsilon}");
    }

    #[test]
    fn space_matches_information_bound_shape() {
        // n log(L/eps) + O(n) bits: for L=1024, eps=0.01 that's ~16.7+c bits.
        let keys: Vec<u64> = (0..5000u64).map(|i| i * 977).collect();
        let f = TrivialRangeFilter::new(&keys, 0.01, 1024, 0);
        let bpk = f.bits_per_key();
        let theory = (1024f64 / 0.01).log2();
        assert!(
            bpk > theory * 0.8 && bpk < theory * 1.8,
            "bpk {bpk} vs theory {theory}"
        );
    }
}
