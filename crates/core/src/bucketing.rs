//! The Bucketing heuristic range filter (paper Section 4).
//!
//! The universe is split into buckets of size `s`; a conceptual bitvector `C`
//! marks the non-empty buckets, and only the positions of its 1-bits are
//! kept, Elias–Fano-compressed. A query `[a, b]` answers "not empty" iff
//! `predecessor(⌊b/s⌋) ≥ ⌊a/s⌋`. The space is `t(log(u/(ts)) + 2) + o(t)`
//! bits, where `t ≤ min{n, u/s}` is the number of non-empty buckets.
//!
//! Bucketing is *deliberately* simple: the paper introduces it to show that,
//! on the uncorrelated workloads heuristic filters are usually evaluated on,
//! nothing more sophisticated is needed. Like every heuristic filter it
//! offers no FPR guarantee and stops filtering under key–query correlation.

use grafite_succinct::io::{WordSource, WordWriter};
use grafite_succinct::EliasFano;

use crate::error::FilterError;
use crate::persist::{spec_id, Header};
use crate::traits::{BuildableFilter, FilterConfig, PersistentFilter, RangeFilter};

/// Batches smaller than this take the scalar path: the sort-and-cursor
/// bookkeeping of the batch specialisation cannot pay for itself.
const BATCH_MIN_QUERIES: usize = 32;

/// Sorted-probe batch resolution shared by the two bucketing variants: map
/// each query to a `(bucket(b), bucket(a))` probe through the monotone
/// `bucket` function, sort, and resolve every probe with one
/// [`grafite_succinct::EfCursor`] pass over the bucket sequence.
fn batch_bucket_probes(
    buckets: &EliasFano,
    bucket: impl Fn(u64) -> u64,
    queries: &[(u64, u64)],
    out: &mut Vec<bool>,
) {
    out.resize(queries.len(), false);
    let mut probes: Vec<(u64, u64, u32)> = queries
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            debug_assert!(a <= b, "inverted range [{a}, {b}]");
            (bucket(b), bucket(a), i as u32)
        })
        .collect();
    probes.sort_unstable();
    let mut cursor = buckets.cursor();
    // Identical `(bucket(b), bucket(a))` probes sit adjacent after the
    // sort; the answer depends only on that pair, so duplicates reuse it
    // without advancing the cursor.
    let mut prev: Option<(u64, u64, bool)> = None;
    for &(pb, pa, i) in &probes {
        let hit = match prev {
            Some((ppb, ppa, phit)) if ppb == pb && ppa == pa => phit,
            _ => cursor.predecessor(pb).is_some_and(|bk| bk >= pa),
        };
        prev = Some((pb, pa, hit));
        if hit {
            out[i as usize] = true;
        }
    }
}

/// The Bucketing heuristic range filter.
#[derive(Clone, Debug)]
pub struct BucketingFilter {
    s: u64,
    buckets: EliasFano,
    n_keys: usize,
}

impl BucketingFilter {
    /// Starts building a filter. See [`BucketingBuilder`].
    pub fn builder() -> BucketingBuilder {
        BucketingBuilder::default()
    }

    /// The bucket size `s`.
    #[inline]
    pub fn bucket_size(&self) -> u64 {
        self.s
    }

    /// The number `t` of non-empty buckets.
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn from_sorted_dedup_buckets(bucket_ids: &[u64], s: u64, n_keys: usize) -> Self {
        // Ids are clamped to u64::MAX - 1 by `bucket_id`, so + 1 cannot wrap.
        let universe = bucket_ids.last().map_or(1, |&b| b + 1);
        Self {
            s,
            buckets: EliasFano::new(bucket_ids, universe),
            n_keys,
        }
    }
}

/// Bucket id of a key: `⌊k/s⌋`, clamped so the id always fits an Elias–Fano
/// universe of at most `u64::MAX`. The clamp merges the two topmost buckets
/// when `s` is so fine that `⌊u64::MAX/s⌋ = u64::MAX`; merging can only add
/// false positives, never false negatives.
#[inline]
fn bucket_id(k: u64, s: u64) -> u64 {
    (k / s).min(u64::MAX - 1)
}

impl RangeFilter for BucketingFilter {
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if self.n_keys == 0 {
            return false;
        }
        match self.buckets.predecessor(bucket_id(b, self.s)) {
            Some(bucket) => bucket >= bucket_id(a, self.s),
            None => false,
        }
    }

    /// Batch specialisation: bucket ids are monotone in the key, so sorted
    /// probes resolve with one cursor pass over the Elias–Fano bucket
    /// sequence. Answers are bit-identical to the scalar path.
    fn may_contain_ranges(&self, queries: &[(u64, u64)], out: &mut Vec<bool>) {
        out.clear();
        if self.n_keys == 0 {
            out.resize(queries.len(), false);
            return;
        }
        if queries.len() < BATCH_MIN_QUERIES {
            out.extend(queries.iter().map(|&(a, b)| self.may_contain_range(a, b)));
            return;
        }
        batch_bucket_probes(&self.buckets, |k| bucket_id(k, self.s), queries, out);
    }

    fn size_in_bits(&self) -> usize {
        self.buckets.size_in_bits() + 3 * 64
    }

    fn num_keys(&self) -> usize {
        self.n_keys
    }

    fn name(&self) -> &'static str {
        "Bucketing"
    }
}

/// How the bucket size is chosen.
#[derive(Clone, Copy, Debug)]
enum Sizing {
    /// Explicit bucket size `s >= 1`.
    BucketSize(u64),
    /// Space budget: the smallest power-of-two `s` whose encoding fits in
    /// `bits`-per-key is chosen (larger `s` = coarser = smaller).
    BitsPerKey(f64),
}

/// Builder for [`BucketingFilter`].
#[derive(Clone, Copy, Debug)]
pub struct BucketingBuilder {
    sizing: Sizing,
}

impl Default for BucketingBuilder {
    fn default() -> Self {
        Self {
            sizing: Sizing::BitsPerKey(16.0),
        }
    }
}

impl BucketingBuilder {
    /// Uses an explicit bucket size `s` (paper notation).
    pub fn bucket_size(mut self, s: u64) -> Self {
        self.sizing = Sizing::BucketSize(s);
        self
    }

    /// Targets a space budget in bits per key, choosing the finest
    /// power-of-two bucket size that fits.
    pub fn bits_per_key(mut self, bits: f64) -> Self {
        self.sizing = Sizing::BitsPerKey(bits);
        self
    }

    /// Builds the filter. Keys may be unsorted and contain duplicates.
    pub fn build(self, keys: &[u64]) -> Result<BucketingFilter, FilterError> {
        let n = keys.len();
        if n == 0 {
            return Ok(BucketingFilter::from_sorted_dedup_buckets(&[], 1, 0));
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        match self.sizing {
            Sizing::BucketSize(s) => {
                if s == 0 {
                    return Err(FilterError::InvalidBucketSize(s));
                }
                let mut ids: Vec<u64> = sorted.iter().map(|&k| bucket_id(k, s)).collect();
                ids.dedup();
                Ok(BucketingFilter::from_sorted_dedup_buckets(&ids, s, n))
            }
            Sizing::BitsPerKey(bits) => {
                if !(bits > 0.0 && bits.is_finite()) {
                    return Err(FilterError::InvalidBudget(bits));
                }
                let budget = bits * n as f64;
                // Walk s through powers of two from the finest; the number
                // of distinct buckets t is non-increasing in s, so the first
                // fitting estimate is the finest (lowest-FPR) choice.
                for log2_s in 0..=63u32 {
                    let mut t = 0usize;
                    let mut prev = u64::MAX;
                    let mut last_bucket = 0u64;
                    for &k in &sorted {
                        let b = k >> log2_s;
                        if b != prev {
                            t += 1;
                            prev = b;
                            last_bucket = b;
                        }
                    }
                    // Elias–Fano estimate: t (log2(universe/t) + 2) bits.
                    // Computed in f64 so `last_bucket = u64::MAX` (fine s
                    // over a full-universe key set) cannot overflow.
                    let universe = (last_bucket as f64 + 1.0).max(1.0);
                    let est = t as f64 * ((universe / t as f64).log2().max(0.0) + 2.0);
                    if est * 1.05 <= budget || log2_s == 63 {
                        let s = 1u64 << log2_s;
                        // Shift, not `bucket_id`'s division: this is the
                        // construction hot loop. The clamp still applies
                        // (it only bites at log2_s = 0).
                        let mut ids: Vec<u64> = sorted
                            .iter()
                            .map(|&k| (k >> log2_s).min(u64::MAX - 1))
                            .collect();
                        ids.dedup();
                        return Ok(BucketingFilter::from_sorted_dedup_buckets(&ids, s, n));
                    }
                }
                unreachable!("loop always returns at log2_s = 63")
            }
        }
    }
}

impl PersistentFilter for BucketingFilter {
    fn spec_id(&self) -> u32 {
        spec_id::BUCKETING
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::BUCKETING]
    }

    /// Payload: `[s]` + the Elias–Fano bucket sequence.
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        w.word(self.s)?;
        self.buckets.write_to(w)?;
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        let s = src.word()?;
        if s == 0 {
            return Err(FilterError::corrupt("zero bucket size"));
        }
        let buckets = if header.legacy_directories() {
            EliasFano::read_from_v1(src)?
        } else {
            EliasFano::read_from(src)?
        };
        Ok(Self {
            s,
            buckets,
            n_keys: header.n_keys as usize,
        })
    }
}

/// Per-filter tuning for [`BucketingFilter`] under the [`BuildableFilter`]
/// protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketingTuning {
    /// `Some(s)` uses the explicit bucket size `s`; `None` (the default)
    /// picks the finest power-of-two size fitting
    /// [`FilterConfig::bits_per_key`].
    pub bucket_size: Option<u64>,
}

impl BuildableFilter for BucketingFilter {
    type Tuning = BucketingTuning;

    fn build_with(cfg: &FilterConfig<'_>, tuning: &BucketingTuning) -> Result<Self, FilterError> {
        let builder = match tuning.bucket_size {
            Some(s) => BucketingFilter::builder().bucket_size(s),
            None => BucketingFilter::builder().bits_per_key(cfg.bits_per_key),
        };
        builder.build(cfg.keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn reference_query(keys: &BTreeSet<u64>, s: u64, a: u64, b: u64) -> bool {
        // True iff any key falls in a bucket overlapping [a/s, b/s].
        let lo_bucket = a / s;
        let hi_bucket = b / s;
        keys.iter().any(|&k| {
            let bk = k / s;
            bk >= lo_bucket && bk <= hi_bucket
        })
    }

    #[test]
    fn matches_reference_on_small_input() {
        let keys = [3u64, 17, 64, 65, 900, 1023, 5000];
        let set: BTreeSet<u64> = keys.iter().copied().collect();
        for s in [1u64, 2, 7, 16, 100] {
            let f = BucketingFilter::builder()
                .bucket_size(s)
                .build(&keys)
                .unwrap();
            for a in (0..6000u64).step_by(13) {
                for width in [0u64, 1, 5, 50, 500] {
                    let b = a + width;
                    assert_eq!(
                        f.may_contain_range(a, b),
                        reference_query(&set, s, a, b),
                        "s={s} range [{a}, {b}]"
                    );
                }
            }
        }
    }

    #[test]
    fn no_false_negatives() {
        let mut state = 77u64;
        let keys: Vec<u64> = (0..3000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        for &bpk in &[4.0, 8.0, 16.0] {
            let f = BucketingFilter::builder()
                .bits_per_key(bpk)
                .build(&keys)
                .unwrap();
            for &k in keys.iter().step_by(11) {
                assert!(f.may_contain(k));
                assert!(f.may_contain_range(k.saturating_sub(100), k.saturating_add(100)));
            }
        }
    }

    #[test]
    fn s_equal_one_is_exact_on_points() {
        // With s = 1 the encoding is lossless: point queries are exact.
        let keys = [10u64, 20, 30];
        let f = BucketingFilter::builder()
            .bucket_size(1)
            .build(&keys)
            .unwrap();
        for x in 0..50u64 {
            assert_eq!(f.may_contain(x), keys.contains(&x), "point {x}");
        }
    }

    #[test]
    fn budget_controls_space() {
        let mut state = 3u64;
        let keys: Vec<u64> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        let mut last_s = 0u64;
        for &bpk in &[24.0, 16.0, 10.0, 6.0] {
            let f = BucketingFilter::builder()
                .bits_per_key(bpk)
                .build(&keys)
                .unwrap();
            assert!(
                f.bits_per_key() <= bpk * 1.30 + 4.0,
                "bpk target {bpk} produced {}",
                f.bits_per_key()
            );
            assert!(f.bucket_size() >= last_s, "s must grow as budget shrinks");
            last_s = f.bucket_size();
        }
    }

    #[test]
    fn empty_and_extremes() {
        let f = BucketingFilter::builder().build(&[]).unwrap();
        assert!(!f.may_contain_range(0, u64::MAX));

        let f = BucketingFilter::builder()
            .bucket_size(1 << 40)
            .build(&[u64::MAX, 0])
            .unwrap();
        assert!(f.may_contain(0));
        assert!(f.may_contain(u64::MAX));
    }

    #[test]
    fn batch_matches_scalar_path() {
        let mut state = 17u64;
        let keys: Vec<u64> = (0..3000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        let f = BucketingFilter::builder()
            .bits_per_key(10.0)
            .build(&keys)
            .unwrap();
        let queries: Vec<(u64, u64)> = (0..1500u64)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = if i % 3 == 0 {
                    keys[(state % keys.len() as u64) as usize].saturating_sub(state % 1000)
                } else {
                    state
                };
                (a, a.saturating_add((state % 2000) + 1))
            })
            .collect();
        let mut batched = Vec::new();
        f.may_contain_ranges(&queries, &mut batched);
        let singles: Vec<bool> = queries
            .iter()
            .map(|&(a, b)| f.may_contain_range(a, b))
            .collect();
        assert_eq!(batched, singles, "batch diverged from scalar path");
        // Small batches (fallback loop) answer identically too.
        f.may_contain_ranges(&queries[..7], &mut batched);
        assert_eq!(batched, &singles[..7]);
    }

    #[test]
    fn rejects_zero_bucket() {
        assert!(matches!(
            BucketingFilter::builder().bucket_size(0).build(&[1]),
            Err(FilterError::InvalidBucketSize(0))
        ));
    }
}

/// Workload-aware Bucketing — the paper's §7 future-work sketch: "creating
/// larger buckets for key ranges that are queried less frequently".
///
/// The universe is split into regions at the quantiles of a sample of query
/// left-endpoints; regions receiving more sampled queries get finer buckets
/// (smaller `s`), cold regions get coarser ones, under the same total
/// bucket budget as a plain [`BucketingFilter`]. Bucket ids stay globally
/// monotone in the key, so a range query still reduces to one Elias–Fano
/// predecessor probe.
///
/// Like its plain parent, this is a heuristic: it inherits the
/// no-false-negative guarantee but not an FPR bound, and still collapses
/// under key-correlated queries.
#[derive(Clone, Debug)]
pub struct WorkloadAwareBucketing {
    /// Region `i` covers `[region_starts[i], region_starts[i+1])`
    /// (the last region extends to `u64::MAX`).
    region_starts: Vec<u64>,
    /// Per-region bucket width exponent: bucket size `2^region_log2_s[i]`.
    region_log2_s: Vec<u32>,
    /// Number of bucket slots before region `i` (cumulative, monotone).
    region_offsets: Vec<u64>,
    buckets: EliasFano,
    n_keys: usize,
}

impl WorkloadAwareBucketing {
    /// Builds from keys, a bits-per-key budget, and a sample of query left
    /// endpoints. With an empty sample this degenerates to a single region
    /// (= plain power-of-two Bucketing).
    pub fn new(keys: &[u64], bits_per_key: f64, sample: &[u64]) -> Result<Self, FilterError> {
        if !(bits_per_key > 0.0 && bits_per_key.is_finite()) {
            return Err(FilterError::InvalidBudget(bits_per_key));
        }
        let n = keys.len();
        if n == 0 {
            return Ok(Self {
                region_starts: vec![0],
                region_log2_s: vec![63],
                region_offsets: vec![0],
                buckets: EliasFano::new(&[], 1),
                n_keys: 0,
            });
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();

        // Baseline bucket width from the plain budget search.
        let plain = BucketingFilter::builder()
            .bits_per_key(bits_per_key)
            .build(keys)?;
        let base_log2_s = plain.bucket_size().trailing_zeros();

        // Region boundaries: quantiles of the sampled query endpoints.
        // `region_hotness[i]` describes region `[starts[i], starts[i+1])`
        // (the last region is open-ended), so exactly one entry is pushed
        // per region: when a new start closes the previous region, plus one
        // for the trailing open region. A region is hot iff it begins at or
        // after the first quantile — i.e. it lies between sampled
        // quantiles; the spans before the sample and beyond its tail are
        // cold.
        let mut region_starts = vec![0u64];
        let mut region_hotness: Vec<bool> = Vec::new();
        if !sample.is_empty() {
            let mut s = sample.to_vec();
            s.sort_unstable();
            const REGIONS: usize = 16;
            let first_quantile = s[0];
            let hi = *s.last().unwrap();
            for q in 0..REGIONS {
                let lo = s[q * s.len() / REGIONS];
                let prev = *region_starts.last().unwrap();
                if prev < lo {
                    region_hotness.push(prev >= first_quantile);
                    region_starts.push(lo);
                }
            }
            // Close the hot span one past the last sampled endpoint so the
            // region containing `hi` itself is hot — in particular when the
            // whole sample collapses onto one value and the span would
            // otherwise have zero width.
            let bound = hi.saturating_add(1);
            let prev = *region_starts.last().unwrap();
            if prev < bound {
                region_hotness.push(prev >= first_quantile);
                region_starts.push(bound);
            }
            // Trailing open region (past the sample): cold, except in the
            // saturated corner where the hot span reaches u64::MAX.
            let prev = *region_starts.last().unwrap();
            region_hotness.push(prev >= first_quantile && prev <= hi);
        } else {
            region_hotness.push(false);
        }
        debug_assert_eq!(region_hotness.len(), region_starts.len());

        // Hot regions get 4x finer buckets, cold regions 4x coarser: the
        // budget balances because hot regions are (by construction of the
        // quantiles) narrow.
        let region_log2_s: Vec<u32> = region_hotness
            .iter()
            .map(|&hot| {
                if hot {
                    base_log2_s.saturating_sub(2)
                } else {
                    (base_log2_s + 2).min(63)
                }
            })
            .collect();

        // Cumulative bucket-slot offsets keep global bucket ids monotone.
        let mut region_offsets = Vec::with_capacity(region_starts.len());
        let mut acc = 0u64;
        for i in 0..region_starts.len() {
            region_offsets.push(acc);
            let start = region_starts[i];
            let end = if i + 1 < region_starts.len() {
                region_starts[i + 1]
            } else {
                u64::MAX
            };
            let span = end - start;
            // Saturating: a hot region spanning most of the universe at a
            // fine width can exceed u64 slot space; `bucket_of` clamps the
            // resulting ids, which merges top buckets (false-positive-only).
            acc = acc.saturating_add((span >> region_log2_s[i]).saturating_add(1));
        }

        let mut filter = Self {
            region_starts,
            region_log2_s,
            region_offsets,
            buckets: EliasFano::new(&[], 1),
            n_keys: n,
        };
        let mut ids: Vec<u64> = sorted.iter().map(|&k| filter.bucket_of(k)).collect();
        ids.dedup();
        let universe = ids.last().map_or(1, |&b| b + 1);
        filter.buckets = EliasFano::new(&ids, universe);
        Ok(filter)
    }

    /// Global, monotone bucket id of a key. Saturating + clamped so extreme
    /// region/width combinations stay within an Elias–Fano-encodable
    /// universe; both operations preserve monotonicity.
    #[inline]
    fn bucket_of(&self, x: u64) -> u64 {
        let r = self.region_starts.partition_point(|&s| s <= x) - 1;
        self.region_offsets[r]
            .saturating_add((x - self.region_starts[r]) >> self.region_log2_s[r])
            .min(u64::MAX - 1)
    }

    /// Number of regions in use.
    pub fn num_regions(&self) -> usize {
        self.region_starts.len()
    }

    /// Number of non-empty buckets stored.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }
}

impl PersistentFilter for WorkloadAwareBucketing {
    fn spec_id(&self) -> u32 {
        spec_id::WORKLOAD_AWARE_BUCKETING
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::WORKLOAD_AWARE_BUCKETING]
    }

    /// Payload: the three parallel region tables (starts, width exponents,
    /// cumulative offsets) followed by the Elias–Fano bucket sequence.
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        w.prefixed(&self.region_starts)?;
        let widths: Vec<u64> = self.region_log2_s.iter().map(|&x| x as u64).collect();
        w.prefixed(&widths)?;
        w.prefixed(&self.region_offsets)?;
        self.buckets.write_to(w)?;
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        let n = src.length()?;
        let region_starts = src.take(n)?;
        if region_starts.is_empty() {
            return Err(FilterError::corrupt("no bucketing regions"));
        }
        let n_widths = src.length()?;
        if n_widths != n {
            return Err(FilterError::corrupt("region table lengths differ"));
        }
        let mut region_log2_s = Vec::with_capacity(n);
        for w in src.take(n_widths)? {
            if w > 63 {
                return Err(FilterError::corrupt("region width exponent above 63"));
            }
            region_log2_s.push(w as u32);
        }
        let n_offsets = src.length()?;
        if n_offsets != n {
            return Err(FilterError::corrupt("region table lengths differ"));
        }
        let region_offsets = src.take(n_offsets)?;
        let buckets = if header.legacy_directories() {
            EliasFano::read_from_v1(src)?
        } else {
            EliasFano::read_from(src)?
        };
        Ok(Self {
            region_starts,
            region_log2_s,
            region_offsets,
            buckets,
            n_keys: header.n_keys as usize,
        })
    }
}

impl BuildableFilter for WorkloadAwareBucketing {
    /// No extra knobs: the hot regions come from the left endpoints of
    /// [`FilterConfig::sample`].
    type Tuning = ();

    fn build_with(cfg: &FilterConfig<'_>, _tuning: &()) -> Result<Self, FilterError> {
        let left_endpoints: Vec<u64> = cfg.sample.iter().map(|&(a, _)| a).collect();
        WorkloadAwareBucketing::new(cfg.keys, cfg.bits_per_key, &left_endpoints)
    }
}

impl RangeFilter for WorkloadAwareBucketing {
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if self.n_keys == 0 {
            return false;
        }
        match self.buckets.predecessor(self.bucket_of(b)) {
            Some(bucket) => bucket >= self.bucket_of(a),
            None => false,
        }
    }

    /// Batch specialisation: `bucket_of` is monotone, so the same
    /// sorted-probe cursor pass as plain [`BucketingFilter`] applies.
    fn may_contain_ranges(&self, queries: &[(u64, u64)], out: &mut Vec<bool>) {
        out.clear();
        if self.n_keys == 0 {
            out.resize(queries.len(), false);
            return;
        }
        if queries.len() < BATCH_MIN_QUERIES {
            out.extend(queries.iter().map(|&(a, b)| self.may_contain_range(a, b)));
            return;
        }
        batch_bucket_probes(&self.buckets, |k| self.bucket_of(k), queries, out);
    }

    fn size_in_bits(&self) -> usize {
        self.buckets.size_in_bits() + self.region_starts.len() * (64 + 32 + 64) + 2 * 64
    }

    fn num_keys(&self) -> usize {
        self.n_keys
    }

    fn name(&self) -> &'static str {
        "Bucketing-WA"
    }
}

#[cfg(test)]
mod workload_aware_tests {
    use super::*;

    fn pseudo_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn bucket_ids_monotone() {
        let keys = pseudo_keys(2000, 1);
        let sample: Vec<u64> = pseudo_keys(500, 9).iter().map(|x| x % (1 << 40)).collect();
        let f = WorkloadAwareBucketing::new(&keys, 12.0, &sample).unwrap();
        let mut probes = pseudo_keys(3000, 5);
        probes.sort_unstable();
        let mut prev = 0u64;
        for &x in &probes {
            let b = f.bucket_of(x);
            assert!(b >= prev, "bucket ids must be monotone at {x}");
            prev = b;
        }
    }

    #[test]
    fn no_false_negatives() {
        let keys = pseudo_keys(3000, 3);
        let sample: Vec<u64> = keys
            .iter()
            .step_by(10)
            .map(|&k| k.saturating_add(5))
            .collect();
        let f = WorkloadAwareBucketing::new(&keys, 12.0, &sample).unwrap();
        for &k in keys.iter().step_by(7) {
            assert!(f.may_contain(k));
            assert!(f.may_contain_range(k.saturating_sub(100), k.saturating_add(100)));
        }
    }

    #[test]
    fn beats_plain_bucketing_on_skewed_workload() {
        // Keys everywhere; queries concentrated in one narrow hot band
        // *around an actual key*, so coarse buckets produce false positives.
        let keys = pseudo_keys(20_000, 7);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let hot_center = sorted[10_000];
        let hot_lo = hot_center.saturating_sub(1 << 44);
        let hot_hi = hot_center.saturating_add(1 << 44);
        let mut state = 99u64;
        let mut hot_queries = Vec::new();
        let mut sample = Vec::new();
        while hot_queries.len() < 4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = hot_lo + state % (hot_hi - hot_lo);
            let b = a + 31;
            let i = sorted.partition_point(|&k| k < a);
            if i < sorted.len() && sorted[i] <= b {
                continue;
            }
            if sample.len() < 1000 {
                sample.push(a);
            } else {
                hot_queries.push((a, b));
            }
        }

        let plain = BucketingFilter::builder()
            .bits_per_key(6.0)
            .build(&keys)
            .unwrap();
        let aware = WorkloadAwareBucketing::new(&keys, 6.0, &sample).unwrap();
        let fpr = |f: &dyn RangeFilter| {
            hot_queries
                .iter()
                .filter(|&&(a, b)| f.may_contain_range(a, b))
                .count() as f64
                / hot_queries.len() as f64
        };
        let fpr_plain = fpr(&plain);
        let fpr_aware = fpr(&aware);
        assert!(
            fpr_aware < fpr_plain * 0.7,
            "workload-aware {fpr_aware} should beat plain {fpr_plain} on its hot band"
        );
        // And the space stays in the same ballpark.
        assert!(
            aware.size_in_bits() < plain.size_in_bits() * 3,
            "aware {} vs plain {} bits",
            aware.size_in_bits(),
            plain.size_in_bits()
        );
    }

    #[test]
    fn point_concentrated_sample_keeps_its_region_hot() {
        // A sample whose left endpoints all coincide (point-query-heavy
        // workload) must still mark the region holding that point as hot —
        // the zero-width hot span must not collapse into the cold tail.
        let keys = pseudo_keys(2000, 21);
        let v = keys[1000];
        let sample = vec![v; 500];
        let f = WorkloadAwareBucketing::new(&keys, 12.0, &sample).unwrap();
        let r = f.region_starts.partition_point(|&s| s <= v) - 1;
        let hot_width = f.region_log2_s[r];
        assert!(
            f.region_log2_s.iter().all(|&w| w >= hot_width),
            "region holding the sampled point must be the finest: widths {:?}, hot {}",
            f.region_log2_s,
            hot_width
        );
        assert!(
            f.region_log2_s.iter().any(|&w| w > hot_width),
            "cold regions must be coarser"
        );
        for &k in keys.iter().step_by(17) {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn saturated_sample_at_universe_edge() {
        let keys = pseudo_keys(500, 23);
        let f = WorkloadAwareBucketing::new(&keys, 12.0, &[u64::MAX]).unwrap();
        for &k in keys.iter().step_by(7) {
            assert!(f.may_contain(k));
        }
        assert!(f.may_contain_range(u64::MAX - 10, u64::MAX) || !keys.contains(&u64::MAX));
    }

    #[test]
    fn empty_sample_still_works() {
        let keys = pseudo_keys(1000, 11);
        let f = WorkloadAwareBucketing::new(&keys, 10.0, &[]).unwrap();
        assert_eq!(f.num_regions(), 1);
        for &k in keys.iter().step_by(13) {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn empty_keys() {
        let f = WorkloadAwareBucketing::new(&[], 10.0, &[1, 2, 3]).unwrap();
        assert!(!f.may_contain_range(0, u64::MAX));
    }

    #[test]
    fn batch_matches_scalar_path() {
        let keys = pseudo_keys(4000, 31);
        let sample: Vec<u64> = keys.iter().step_by(9).map(|&k| k ^ 0xFFFF).collect();
        let f = WorkloadAwareBucketing::new(&keys, 10.0, &sample).unwrap();
        let mut state = 0xABCu64;
        let queries: Vec<(u64, u64)> = (0..1200)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = state;
                (a, a.saturating_add(state % 4096))
            })
            .collect();
        let mut batched = Vec::new();
        f.may_contain_ranges(&queries, &mut batched);
        let singles: Vec<bool> = queries
            .iter()
            .map(|&(a, b)| f.may_contain_range(a, b))
            .collect();
        assert_eq!(batched, singles, "WA batch diverged from scalar path");
    }
}
