//! Error types for filter construction.

use std::fmt;

use grafite_succinct::io::DecodeError;

/// Errors returned by filter builders.
///
/// Queries never fail: once a filter is built, `may_contain_range` is total
/// over `a <= b`. All validation happens at construction time.
#[derive(Clone, Debug, PartialEq)]
pub enum FilterError {
    /// `epsilon` must lie in the open interval (0, 1).
    InvalidEpsilon(f64),
    /// The maximum range size `L` must be at least 1.
    InvalidMaxRange(u64),
    /// The bits-per-key budget must exceed the 2-bit Elias–Fano overhead.
    InvalidBudget(f64),
    /// The bucket size `s` must be at least 1.
    InvalidBucketSize(u64),
    /// The requested configuration needs a reduced universe `r` beyond the
    /// supported bound (the pairwise-independent family's prime `2^61 − 1`).
    ReducedUniverseTooLarge {
        /// The `r` the configuration asked for.
        requested: u128,
        /// The largest supported `r`.
        supported: u64,
    },
    /// The budget cannot cover the filter's fixed structural cost (e.g.
    /// SuRF's ~11 bits/key trie floor — the paper's footnote 6 omits those
    /// configurations from its figures for the same reason).
    BudgetBelowFloor {
        /// The bits-per-key budget that was asked for.
        requested: f64,
        /// The smallest feasible budget for this filter.
        floor: f64,
    },
    /// No builder is registered for the requested
    /// [`FilterSpec`](crate::registry::FilterSpec) in this
    /// [`Registry`](crate::registry::Registry). Carries the spec's label.
    Unregistered(&'static str),
    /// A serialized buffer does not start with the format magic — it is not
    /// a filter blob at all. Carries the word found where
    /// [`MAGIC`](crate::persist::MAGIC) was expected.
    BadMagic(u64),
    /// The blob was written by an incompatible format version.
    UnsupportedFormatVersion {
        /// Version found in the header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The buffer ends before the serialized filter does. The counts are
    /// relative to the region being decoded: the whole blob for
    /// header-level errors, the payload region (past the 40-byte header)
    /// when a payload decoder ran short.
    TruncatedBuffer {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The payload checksum does not match the header: the blob was
    /// corrupted (or truncated mid-word) after writing.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload actually present.
        actual: u64,
    },
    /// The payload decoded but a field is structurally impossible (e.g. a
    /// bit width above 64).
    ///
    /// Construct filter-level checks with [`FilterError::corrupt`]; the
    /// `source` field carries the storage-level [`DecodeError`] when the
    /// corruption surfaced below the filter layer (in the succinct word
    /// decoders), and is what [`std::error::Error::source`] reports.
    CorruptPayload {
        /// Short static description of the impossible field.
        what: &'static str,
        /// The succinct-layer decode error underneath, `None` when the
        /// check that fired was the filter's own.
        source: Option<DecodeError>,
    },
    /// A typed `deserialize` was pointed at a blob written by a different
    /// filter family. Carries the spec id found in the header.
    SpecMismatch(u32),
    /// The header's spec id maps to no spec in the
    /// [`Registry`](crate::registry::Registry) table (see
    /// [`spec_id`](crate::persist::spec_id)). Non-registry families (ids
    /// ≥ 32) load through their typed `PersistentFilter::deserialize`
    /// instead.
    UnknownSpecId(u32),
    /// A shard of a mapped store failed to materialize from its recorded
    /// blob extent on first touch. The serving layer treats the shard as
    /// *pass-all* (no false negatives are ever introduced) and surfaces
    /// this error through its stats instead of failing queries.
    ShardLoad {
        /// Index of the shard whose lazy materialization failed.
        shard: u32,
        /// The underlying load failure
        /// ([`std::error::Error::source`] reports it).
        source: Box<FilterError>,
    },
    /// The byte sink or source failed while (de)serializing.
    Io {
        /// The i/o failure kind.
        kind: std::io::ErrorKind,
        /// The succinct-layer decode error underneath, when the failure
        /// surfaced while decoding a word stream ([`std::error::Error::source`]
        /// reports it); `None` when the filter layer hit the i/o error
        /// directly.
        source: Option<DecodeError>,
    },
}

impl FilterError {
    /// A [`FilterError::CorruptPayload`] from a filter-level structural
    /// check (no storage-level error underneath).
    pub fn corrupt(what: &'static str) -> Self {
        FilterError::CorruptPayload { what, source: None }
    }
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be in (0, 1), got {e}")
            }
            FilterError::InvalidMaxRange(l) => {
                write!(f, "max range size L must be >= 1, got {l}")
            }
            FilterError::InvalidBudget(b) => write!(
                f,
                "bits-per-key budget must exceed 2 (the Elias-Fano overhead), got {b}"
            ),
            FilterError::InvalidBucketSize(s) => {
                write!(f, "bucket size must be >= 1, got {s}")
            }
            FilterError::ReducedUniverseTooLarge {
                requested,
                supported,
            } => write!(
                f,
                "reduced universe r = {requested} exceeds the supported bound {supported}; \
                 lower the budget/L or raise epsilon"
            ),
            FilterError::BudgetBelowFloor { requested, floor } => write!(
                f,
                "budget of {requested} bits/key is below this filter's structural floor \
                 of {floor} bits/key"
            ),
            FilterError::Unregistered(label) => {
                write!(f, "no builder registered for filter spec {label}")
            }
            FilterError::BadMagic(found) => write!(
                f,
                "buffer does not start with the filter-format magic (found {found:#018x})"
            ),
            FilterError::UnsupportedFormatVersion { found, supported } => write!(
                f,
                "serialized filter uses format version {found}; this build supports {supported}"
            ),
            FilterError::TruncatedBuffer { needed, have } => {
                write!(
                    f,
                    "truncated filter blob: needed {needed} bytes, have {have}"
                )
            }
            FilterError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload checksum {actual:#018x} does not match header {expected:#018x}"
            ),
            FilterError::CorruptPayload { what, .. } => {
                write!(f, "corrupt filter payload: {what}")
            }
            FilterError::SpecMismatch(found) => write!(
                f,
                "blob carries spec id {found}, which this filter type does not accept"
            ),
            FilterError::UnknownSpecId(id) => {
                write!(
                    f,
                    "header spec id {id} maps to no spec in this registry table"
                )
            }
            FilterError::ShardLoad { shard, source } => {
                write!(f, "shard {shard} failed to materialize: {source}")
            }
            FilterError::Io { kind, .. } => {
                write!(f, "i/o failure during (de)serialization: {kind}")
            }
        }
    }
}

impl std::error::Error for FilterError {
    /// The storage-level [`DecodeError`] a [`FilterError::CorruptPayload`]
    /// or [`FilterError::Io`] wraps, when the failure originated in the
    /// succinct word decoders rather than the filter layer itself.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FilterError::CorruptPayload { source, .. } | FilterError::Io { source, .. } => {
                source.as_ref().map(|e| e as _)
            }
            FilterError::ShardLoad { source, .. } => Some(source.as_ref() as _),
            _ => None,
        }
    }
}

impl From<DecodeError> for FilterError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Truncated { needed, have } => FilterError::TruncatedBuffer {
                needed: needed * 8,
                have: have * 8,
            },
            DecodeError::Invalid(what) => FilterError::CorruptPayload {
                what,
                source: Some(e),
            },
            DecodeError::Io(kind) => FilterError::Io {
                kind,
                source: Some(e),
            },
        }
    }
}

impl From<std::io::Error> for FilterError {
    fn from(e: std::io::Error) -> Self {
        FilterError::Io {
            kind: e.kind(),
            source: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    /// The satellite contract: a `FilterError` born from a succinct-layer
    /// decode failure exposes that `DecodeError` through `source()`.
    #[test]
    fn source_chains_through_decode_error() {
        let invalid = DecodeError::Invalid("bit width above 64");
        let err = FilterError::from(invalid.clone());
        assert!(matches!(
            err,
            FilterError::CorruptPayload {
                what: "bit width above 64",
                ..
            }
        ));
        let src = err.source().expect("decode-born corruption must chain");
        assert_eq!(src.downcast_ref::<DecodeError>(), Some(&invalid));

        let io = DecodeError::Io(std::io::ErrorKind::BrokenPipe);
        let err = FilterError::from(io.clone());
        assert!(matches!(
            err,
            FilterError::Io {
                kind: std::io::ErrorKind::BrokenPipe,
                ..
            }
        ));
        let src = err.source().expect("decode-born i/o failure must chain");
        assert_eq!(src.downcast_ref::<DecodeError>(), Some(&io));
    }

    /// Filter-level checks have no storage error underneath: no source.
    #[test]
    fn filter_level_errors_have_no_source() {
        assert!(FilterError::corrupt("zero bucket size").source().is_none());
        let err = FilterError::from(std::io::Error::other("sink"));
        assert!(err.source().is_none());
        assert!(FilterError::InvalidEpsilon(2.0).source().is_none());
    }

    /// Truncation translates faithfully (word counts become byte counts);
    /// it has its own typed variant rather than a chain.
    #[test]
    fn truncation_translates_words_to_bytes() {
        let err = FilterError::from(DecodeError::Truncated { needed: 3, have: 1 });
        assert_eq!(
            err,
            FilterError::TruncatedBuffer {
                needed: 24,
                have: 8
            }
        );
    }
}
