//! Error types for filter construction.

use std::fmt;

/// Errors returned by filter builders.
///
/// Queries never fail: once a filter is built, `may_contain_range` is total
/// over `a <= b`. All validation happens at construction time.
#[derive(Clone, Debug, PartialEq)]
pub enum FilterError {
    /// `epsilon` must lie in the open interval (0, 1).
    InvalidEpsilon(f64),
    /// The maximum range size `L` must be at least 1.
    InvalidMaxRange(u64),
    /// The bits-per-key budget must exceed the 2-bit Elias–Fano overhead.
    InvalidBudget(f64),
    /// The bucket size `s` must be at least 1.
    InvalidBucketSize(u64),
    /// The requested configuration needs a reduced universe `r` beyond the
    /// supported bound (the pairwise-independent family's prime `2^61 − 1`).
    ReducedUniverseTooLarge {
        /// The `r` the configuration asked for.
        requested: u128,
        /// The largest supported `r`.
        supported: u64,
    },
    /// The budget cannot cover the filter's fixed structural cost (e.g.
    /// SuRF's ~11 bits/key trie floor — the paper's footnote 6 omits those
    /// configurations from its figures for the same reason).
    BudgetBelowFloor {
        /// The bits-per-key budget that was asked for.
        requested: f64,
        /// The smallest feasible budget for this filter.
        floor: f64,
    },
    /// No builder is registered for the requested
    /// [`FilterSpec`](crate::registry::FilterSpec) in this
    /// [`Registry`](crate::registry::Registry). Carries the spec's label.
    Unregistered(&'static str),
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be in (0, 1), got {e}")
            }
            FilterError::InvalidMaxRange(l) => {
                write!(f, "max range size L must be >= 1, got {l}")
            }
            FilterError::InvalidBudget(b) => write!(
                f,
                "bits-per-key budget must exceed 2 (the Elias-Fano overhead), got {b}"
            ),
            FilterError::InvalidBucketSize(s) => {
                write!(f, "bucket size must be >= 1, got {s}")
            }
            FilterError::ReducedUniverseTooLarge { requested, supported } => write!(
                f,
                "reduced universe r = {requested} exceeds the supported bound {supported}; \
                 lower the budget/L or raise epsilon"
            ),
            FilterError::BudgetBelowFloor { requested, floor } => write!(
                f,
                "budget of {requested} bits/key is below this filter's structural floor \
                 of {floor} bits/key"
            ),
            FilterError::Unregistered(label) => {
                write!(f, "no builder registered for filter spec {label}")
            }
        }
    }
}

impl std::error::Error for FilterError {}
