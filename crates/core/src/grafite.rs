//! The Grafite range filter (paper Section 3).

use grafite_hash::{LocalityHash, PairwiseHash};
use grafite_succinct::io::{DecodeError, MappedCursor, MappedSource, WordSource, WordWriter};
use grafite_succinct::EliasFano;

use crate::error::FilterError;
use crate::parallel::Parallelism;
use crate::persist::{spec_id, Header, FORMAT_VERSION};
use crate::sort;
use crate::traits::{BuildableFilter, FilterConfig, PersistentFilter, RangeFilter, DEFAULT_SEED};

/// Largest supported reduced universe: the pairwise-independent family's
/// prime must exceed `r` (see [`grafite_hash::pairwise::MERSENNE_61`]).
pub const MAX_REDUCED_UNIVERSE: u64 = grafite_hash::pairwise::MERSENNE_61 - 1;

/// Batches smaller than this always take the one-at-a-time path: the
/// sort-and-cursor bookkeeping cannot pay for itself.
const BATCH_MIN_QUERIES: usize = 32;

/// The Grafite approximate range-emptiness filter.
///
/// Built over a set of `u64` keys with either an (ε, L) target — false
/// positive probability at most ε for query ranges of size up to L — or a
/// plain space budget in bits per key (Corollary 3.5). Queries never return
/// false negatives, for *any* key set and *any* query distribution,
/// adversarial ones included: that robustness is the point of the paper.
///
/// # Guarantees (Theorem 3.4 / Corollary 3.5)
///
/// With budget `B` bits per key, a query of size ℓ is a false positive with
/// probability at most `min{1, ℓ/2^(B−2)}`. Query time is a constant number
/// of Elias–Fano predecessor probes (each a `O(log(L/ε))`-step binary search
/// within one high-bucket).
///
/// Like the succinct containers it is built on, the filter is generic over
/// its word store: [`GrafiteFilterView`] answers queries zero-copy out of a
/// loaded word buffer (see [`GrafiteFilter::view`]).
#[derive(Clone, Debug)]
pub struct GrafiteFilter<S = Vec<u64>> {
    h: LocalityHash,
    codes: EliasFano<S>,
    n_keys: usize,
    r: u64,
}

/// A Grafite filter borrowing its Elias–Fano storage (directories
/// included) from a loaded `&[u64]` buffer.
pub type GrafiteFilterView<'a> = GrafiteFilter<&'a [u64]>;

/// A Grafite filter owning its Elias–Fano storage by reference count — the
/// `'static`, thread-shareable twin of [`GrafiteFilterView`], used by the
/// mapped store/serving path (see [`MappedGrafiteFilter::open_mapped`]).
pub type MappedGrafiteFilter = GrafiteFilter<MappedSource>;

impl GrafiteFilter {
    /// Starts building a filter. See [`GrafiteBuilder`].
    pub fn builder() -> GrafiteBuilder {
        GrafiteBuilder::default()
    }

    /// Builds from an explicit, already-drawn hash function. The main entry
    /// points are [`GrafiteFilter::builder`]; this constructor exists so
    /// tests can pin the exact hash of the paper's worked Example 3.2, and
    /// for ablations that swap the hash family.
    #[doc(hidden)]
    pub fn from_hash(h: LocalityHash, keys: &[u64]) -> Self {
        Self::from_hash_parallel(h, keys, Parallelism::serial())
    }

    /// [`GrafiteFilter::from_hash`] with an explicit thread budget for the
    /// hash→sort→encode pipeline: the hash evaluations run on immutable
    /// key chunks, the codes sort through
    /// [`sort::partition_radix_sort`], and the Elias–Fano high bits
    /// assemble chunked. Bit-identical to the serial path at every thread
    /// count — parallelism here is purely a wall-clock knob.
    #[doc(hidden)]
    pub fn from_hash_parallel(h: LocalityHash, keys: &[u64], parallelism: Parallelism) -> Self {
        let r = h.r();
        let threads = parallelism.capped(keys.len());
        let mut codes: Vec<u64> = if threads > 1 && keys.len() >= sort::PARTITION_PARALLEL_MIN {
            let mut codes = vec![0u64; keys.len()];
            let chunk = keys.len().div_ceil(threads);
            let h_ref = &h;
            std::thread::scope(|scope| {
                for (dst, src) in codes.chunks_mut(chunk).zip(keys.chunks(chunk)) {
                    scope.spawn(move || {
                        for (d, &k) in dst.iter_mut().zip(src) {
                            *d = h_ref.eval(k);
                        }
                    });
                }
            });
            codes
        } else {
            keys.iter().map(|&k| h.eval(k)).collect()
        };
        sort::partition_radix_sort(&mut codes, threads);
        codes.dedup();
        let codes = EliasFano::new_parallel(&codes, r, threads);
        Self {
            h,
            codes,
            n_keys: keys.len(),
            r,
        }
    }
}

impl<'a> GrafiteFilterView<'a> {
    /// Opens a serialized Grafite filter as a zero-copy view over `words`
    /// (header included, e.g. a memory-mapped blob reinterpreted as words):
    /// the Elias–Fano low/high arrays and their rank/select directories all
    /// borrow from the buffer, nothing is copied or rebuilt, and the view
    /// answers the full [`RangeFilter`] contract.
    pub fn view(words: &'a [u64]) -> Result<Self, FilterError> {
        let (header, mut cur) = Header::payload_cursor(words)?;
        if header.spec_id != spec_id::GRAFITE {
            return Err(FilterError::SpecMismatch(header.spec_id));
        }
        if header.legacy_directories() {
            // A borrowed view cannot hold the rebuilt select directories a
            // v1 blob needs; load it owned (and re-save) instead.
            return Err(FilterError::UnsupportedFormatVersion {
                found: header.version,
                supported: FORMAT_VERSION,
            });
        }
        Self::decode_payload(&mut cur, &header, EliasFano::read_from)
    }
}

impl MappedGrafiteFilter {
    /// Opens a serialized Grafite filter (header included) over a shared
    /// word buffer: like [`GrafiteFilterView::view`], nothing is copied or
    /// rebuilt — the Elias–Fano arrays and their directories are sub-ranges
    /// of `source`'s buffer — but the result is `'static` and can be moved
    /// into a `Box<dyn PersistentFilter>` and shared across threads, which
    /// a borrowed view cannot. Legacy v1 blobs are rejected for the same
    /// reason views reject them (their directories must be rebuilt, which
    /// only the owned path can hold).
    pub fn open_mapped(source: &MappedSource) -> Result<Self, FilterError> {
        let (header, mut cur) = Header::payload_cursor_mapped(source)?;
        if header.spec_id != spec_id::GRAFITE {
            return Err(FilterError::SpecMismatch(header.spec_id));
        }
        if header.legacy_directories() {
            return Err(FilterError::UnsupportedFormatVersion {
                found: header.version,
                supported: FORMAT_VERSION,
            });
        }
        Self::decode_payload(&mut cur, &header, EliasFano::read_from)
    }
}

impl<S: AsRef<[u64]>> GrafiteFilter<S> {
    /// Payload writer shared by every storage type: `[c1, c2, p, r]` (the
    /// locality hash, fully determined by its pairwise parameters) followed
    /// by the Elias–Fano code sequence.
    fn write_payload_words(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        let q = self.h.pairwise();
        w.word(q.c1())?;
        w.word(q.c2())?;
        w.word(q.prime())?;
        w.word(self.r)?;
        self.codes.write_to(w)?;
        Ok(())
    }
    /// Shared payload codec for the owned and view load paths. `read_ef`
    /// selects the Elias–Fano decoder: the current-format reader, or the
    /// legacy-v1 reader (owned only) that rebuilds select directories.
    fn decode_payload<Src: WordSource<Storage = S>>(
        src: &mut Src,
        header: &Header,
        read_ef: fn(&mut Src) -> Result<EliasFano<S>, DecodeError>,
    ) -> Result<Self, FilterError> {
        let c1 = src.word()?;
        let c2 = src.word()?;
        let p = src.word()?;
        let r = src.word()?;
        if !PairwiseHash::params_valid(c1, c2, p, r) {
            return Err(FilterError::corrupt("pairwise hash parameters"));
        }
        let h = LocalityHash::from_pairwise(PairwiseHash::with_params(c1, c2, p, r));
        let codes = read_ef(src)?;
        if codes.universe() != r {
            return Err(FilterError::corrupt("code universe differs from r"));
        }
        Ok(Self {
            h,
            codes,
            n_keys: header.n_keys as usize,
            r,
        })
    }

    /// The reduced universe size `r = nL/ε`.
    #[inline]
    pub fn reduced_universe(&self) -> u64 {
        self.r
    }

    /// Number of distinct hash codes stored (can be slightly below the number
    /// of keys due to collisions; paper footnote 3).
    #[inline]
    pub fn num_codes(&self) -> usize {
        self.codes.len()
    }

    /// Upper bound on the false-positive probability for query ranges of
    /// size `l` (Lemma 3.1 union bound: `n·l / r`, clamped to 1).
    pub fn fpp_for_range_size(&self, l: u64) -> f64 {
        if self.n_keys == 0 {
            return 0.0;
        }
        (self.n_keys as f64 * l as f64 / self.r as f64).min(1.0)
    }

    /// Range-emptiness test over a single `r`-block: both endpoints have the
    /// same `⌊x/r⌋`, so the hashed image of `[a, b]` is the (possibly
    /// wrapped) interval `[h(a), h(b)]` and the paper's conditions (2) apply.
    #[inline]
    fn query_within_block(&self, a: u64, b: u64) -> bool {
        debug_assert_eq!(self.h.block(a), self.h.block(b));
        let ha = self.h.eval(a);
        let hb = self.h.eval(b);
        if ha <= hb {
            match self.codes.predecessor(hb) {
                Some(z) => z >= ha,
                None => false,
            }
        } else {
            // Wrapped image: [ha, r) ∪ [0, hb].
            self.codes.first() <= hb || self.codes.last() >= ha
        }
    }

    /// Approximate number of keys intersecting `[a, b]` — the counting
    /// extension described at the end of the paper's Section 3: the
    /// difference of Elias–Fano ranks at the hashed endpoints.
    ///
    /// The count is over *distinct hash codes*: collisions of keys inside
    /// the range deflate it slightly, collisions from outside the range
    /// inflate it (by at most the same `ℓε/L`-style probability per key);
    /// with duplicate input keys, duplicates count once. For a range
    /// spanning a whole `r`-block the reduction is uninformative and the
    /// total code count is returned.
    pub fn approx_range_count(&self, a: u64, b: u64) -> usize {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if self.n_keys == 0 {
            return 0;
        }
        let (block_a, block_b) = (self.h.block(a), self.h.block(b));
        if block_a == block_b {
            self.count_within_block(a, b)
        } else if block_b == block_a + 1 {
            let b_first = b - b % self.r;
            self.count_within_block(a, b_first - 1) + self.count_within_block(b_first, b)
        } else {
            self.codes.len()
        }
    }

    fn count_within_block(&self, a: u64, b: u64) -> usize {
        let ha = self.h.eval(a);
        let hb = self.h.eval(b);
        if ha <= hb {
            // Codes in [ha, hb]: rank counts strictly-smaller values and both
            // arguments stay <= r = universe, which EliasFano::rank accepts.
            self.codes.rank(hb + 1) - self.codes.rank(ha)
        } else {
            (self.codes.len() - self.codes.rank(ha)) + self.codes.rank(hb + 1)
        }
    }
}

impl<S: AsRef<[u64]>> RangeFilter for GrafiteFilter<S> {
    /// Algorithm 2 of the paper plus the two structural cases: footnote 2's
    /// split when `[a, b]` crosses one `r`-block boundary, and an immediate
    /// "not empty" when it spans two or more boundaries (then it contains a
    /// whole block, whose hashed image is the entire reduced universe).
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if self.n_keys == 0 {
            return false;
        }
        let (block_a, block_b) = (self.h.block(a), self.h.block(b));
        if block_a == block_b {
            self.query_within_block(a, b)
        } else if block_b == block_a + 1 {
            // Split at b' = b − (b mod r), the first value of b's block
            // (footnote 2); each sub-range lies within a single block.
            let b_first = b - b % self.r;
            self.query_within_block(b_first, b) || self.query_within_block(a, b_first - 1)
        } else {
            true
        }
    }

    /// Batch specialisation: instead of one Elias–Fano predecessor search
    /// per query, collect every non-wrapped hashed sub-interval as a probe
    /// point, sort the probes, and resolve all of them with one
    /// [`grafite_succinct::EfCursor`] pass: the cursor walks the high bits
    /// of `H` with monotone state, galloping over gaps, instead of
    /// restarting a predecessor probe per query. Wrapped sub-intervals and
    /// block-spanning queries stay `O(1)` as in the scalar path. Answers
    /// are bit-identical to the per-query path; small batches (where the
    /// sort cannot amortise) fall through to the default loop.
    fn may_contain_ranges(&self, queries: &[(u64, u64)], out: &mut Vec<bool>) {
        out.clear();
        if self.n_keys == 0 {
            out.resize(queries.len(), false);
            return;
        }
        if queries.len() < BATCH_MIN_QUERIES {
            out.extend(queries.iter().map(|&(a, b)| self.may_contain_range(a, b)));
            return;
        }
        out.resize(queries.len(), false);
        // (h(b), h(a), query index) for every sub-interval that needs a
        // predecessor probe. A query contributes 0, 1, or 2 entries.
        let mut probes: Vec<(u64, u64, u32)> = Vec::with_capacity(queries.len());
        let (first, last) = (self.codes.first(), self.codes.last());
        let push_sub =
            |probes: &mut Vec<(u64, u64, u32)>, answered: &mut bool, a: u64, b: u64, i: usize| {
                if *answered {
                    return;
                }
                let (ha, hb) = (self.h.eval(a), self.h.eval(b));
                if ha <= hb {
                    probes.push((hb, ha, i as u32));
                } else if first <= hb || last >= ha {
                    // Wrapped image [ha, r) ∪ [0, hb]: O(1), no probe needed.
                    *answered = true;
                }
            };
        for (i, &(a, b)) in queries.iter().enumerate() {
            debug_assert!(a <= b, "inverted range [{a}, {b}]");
            let (block_a, block_b) = (self.h.block(a), self.h.block(b));
            if block_a == block_b {
                push_sub(&mut probes, &mut out[i], a, b, i);
            } else if block_b == block_a + 1 {
                let b_first = b - b % self.r;
                push_sub(&mut probes, &mut out[i], b_first, b, i);
                push_sub(&mut probes, &mut out[i], a, b_first - 1, i);
            } else {
                out[i] = true;
            }
        }
        // Ascending h(b) keeps the cursor's probes monotone: each probe
        // resumes where the previous one stopped, answering exactly what
        // `EliasFano::predecessor(hb)` would.
        probes.sort_unstable();
        let mut cursor = self.codes.cursor();
        // After the sort, identical `(h(b), h(a))` probes sit adjacent;
        // the answer is a pure function of that pair, so duplicates reuse
        // it without touching the cursor.
        let mut prev: Option<(u64, u64, bool)> = None;
        for &(hb, ha, i) in &probes {
            let hit = match prev {
                Some((phb, pha, phit)) if phb == hb && pha == ha => phit,
                _ => cursor.predecessor(hb).is_some_and(|p| p >= ha),
            };
            prev = Some((hb, ha, hit));
            if hit {
                out[i as usize] = true;
            }
        }
    }

    fn size_in_bits(&self) -> usize {
        // Elias–Fano payload + the hash parameters and counters (4 words).
        self.codes.size_in_bits() + 4 * 64
    }

    fn num_keys(&self) -> usize {
        self.n_keys
    }

    fn name(&self) -> &'static str {
        "Grafite"
    }
}

impl PersistentFilter for GrafiteFilter {
    fn spec_id(&self) -> u32 {
        spec_id::GRAFITE
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::GRAFITE]
    }

    /// Payload: `[c1, c2, p, r]` (the locality hash, fully determined by
    /// its pairwise parameters) followed by the Elias–Fano code sequence.
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        self.write_payload_words(w)
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        if header.legacy_directories() {
            Self::decode_payload(src, header, EliasFano::read_from_v1)
        } else {
            Self::decode_payload(src, header, EliasFano::read_from)
        }
    }
}

impl PersistentFilter for MappedGrafiteFilter {
    fn spec_id(&self) -> u32 {
        spec_id::GRAFITE
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::GRAFITE]
    }

    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        self.write_payload_words(w)
    }

    /// Owned source, mapped storage: the payload words are read once into
    /// a fresh shared buffer and the filter's containers become sub-ranges
    /// of it. Legacy v1 blobs are rejected as in
    /// [`MappedGrafiteFilter::open_mapped`].
    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        if header.legacy_directories() {
            return Err(FilterError::UnsupportedFormatVersion {
                found: header.version,
                supported: FORMAT_VERSION,
            });
        }
        let need = usize::try_from(header.payload_words)
            .map_err(|_| FilterError::corrupt("payload length overflows usize"))?;
        let words = src.take(need).map_err(FilterError::from)?;
        let mut cur = MappedCursor::new(MappedSource::from_words(words));
        Self::decode_payload(&mut cur, header, EliasFano::read_from)
    }
}

/// How the reduced universe is derived from the keys.
#[derive(Clone, Copy, Debug)]
enum Sizing {
    /// `r = ⌈nL/ε⌉` (Theorem 3.4): FPP ≤ ε at range size L.
    EpsilonL {
        /// target false-positive probability
        epsilon: f64,
        /// max range size the ε guarantee is stated for
        l: u64,
    },
    /// `r = n · 2^(B−2)` (Corollary 3.5): B bits per key.
    BitsPerKey(f64),
}

/// Builder for [`GrafiteFilter`].
///
/// Exactly the two knobs the paper advertises (§1 "exposing just simple
/// knobs"): either `epsilon_and_max_range(ε, L)` or `bits_per_key(B)`.
/// A seed can be pinned for reproducibility; construction is deterministic
/// given (keys, sizing, seed).
#[derive(Clone, Copy, Debug)]
pub struct GrafiteBuilder {
    sizing: Sizing,
    seed: u64,
    pow2_universe: bool,
    parallelism: Parallelism,
}

impl Default for GrafiteBuilder {
    fn default() -> Self {
        Self {
            sizing: Sizing::BitsPerKey(16.0),
            seed: DEFAULT_SEED,
            pow2_universe: false,
            parallelism: Parallelism::auto(),
        }
    }
}

impl GrafiteBuilder {
    /// Target a false-positive probability of `epsilon` for query ranges of
    /// size up to `l` (larger ranges degrade proportionally, smaller ranges
    /// improve proportionally — Theorem 3.4).
    pub fn epsilon_and_max_range(mut self, epsilon: f64, l: u64) -> Self {
        self.sizing = Sizing::EpsilonL { epsilon, l };
        self
    }

    /// Target a space budget of `bits` per key; the FPP for a range of size
    /// ℓ is then at most `min{1, ℓ/2^(bits−2)}` (Corollary 3.5).
    pub fn bits_per_key(mut self, bits: f64) -> Self {
        self.sizing = Sizing::BitsPerKey(bits);
        self
    }

    /// Pins the seed used to draw the hash function.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Rounds the reduced universe up to a power of two, as the paper's §7
    /// suggests for replacing divisions/moduli with shifts/masks. Slightly
    /// more space (up to 1 extra bit per key), strictly smaller FPP.
    pub fn pow2_reduced_universe(mut self, enable: bool) -> Self {
        self.pow2_universe = enable;
        self
    }

    /// Sets the construction thread budget (default:
    /// [`Parallelism::auto`]). Purely a wall-clock knob — the built filter
    /// is bit-identical at every thread count.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builds the filter. Keys may be unsorted and may contain duplicates.
    pub fn build(self, keys: &[u64]) -> Result<GrafiteFilter, FilterError> {
        let n = keys.len();
        let r_target: u128 = match self.sizing {
            Sizing::EpsilonL { epsilon, l } => {
                if !(epsilon > 0.0 && epsilon < 1.0) {
                    return Err(FilterError::InvalidEpsilon(epsilon));
                }
                if l == 0 {
                    return Err(FilterError::InvalidMaxRange(l));
                }
                ((n.max(1) as f64) * (l as f64) / epsilon).ceil() as u128
            }
            Sizing::BitsPerKey(bits) => {
                if !(bits > 2.0 && bits.is_finite()) {
                    return Err(FilterError::InvalidBudget(bits));
                }
                ((n.max(1) as f64) * (bits - 2.0).exp2()).ceil() as u128
            }
        };
        let r_target = if self.pow2_universe {
            r_target.next_power_of_two()
        } else {
            r_target
        };
        if r_target > MAX_REDUCED_UNIVERSE as u128 {
            return Err(FilterError::ReducedUniverseTooLarge {
                requested: r_target,
                supported: MAX_REDUCED_UNIVERSE,
            });
        }
        let r = (r_target as u64).max(1);
        let h = LocalityHash::from_seed(self.seed, r);
        Ok(GrafiteFilter::from_hash_parallel(h, keys, self.parallelism))
    }
}

/// Per-filter tuning for [`GrafiteFilter`] under the [`BuildableFilter`]
/// protocol. The default is the paper's configuration: exact `r = nL/ε`
/// sizing from the bits-per-key budget.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GrafiteTuning {
    /// Round the reduced universe up to a power of two (§7's shift-and-mask
    /// proposal): slightly more space, strictly smaller FPP.
    pub pow2_universe: bool,
    /// `Some(ε)` sizes by `r = nL/ε` with `L` taken from
    /// [`FilterConfig::max_range`] (Theorem 3.4); `None` sizes by
    /// [`FilterConfig::bits_per_key`] (Corollary 3.5).
    pub epsilon: Option<f64>,
}

impl BuildableFilter for GrafiteFilter {
    type Tuning = GrafiteTuning;

    fn build_with(cfg: &FilterConfig<'_>, tuning: &GrafiteTuning) -> Result<Self, FilterError> {
        let builder = GrafiteFilter::builder()
            .seed(cfg.seed)
            .parallelism(cfg.parallelism)
            .pow2_reduced_universe(tuning.pow2_universe);
        let builder = match tuning.epsilon {
            Some(eps) => builder.epsilon_and_max_range(eps, cfg.max_range),
            None => builder.bits_per_key(cfg.bits_per_key),
        };
        builder.build(cfg.keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafite_hash::PairwiseHash;

    /// The paper's set S of Examples 3.2/3.3.
    const PAPER_S: [u64; 10] = [9, 48, 50, 191, 226, 269, 335, 446, 487, 511];

    fn paper_filter() -> GrafiteFilter {
        // Example 3.2: p = 2^31 − 1, c1 = 10, c2 = 5, r = nL/ε = 100.
        let q = PairwiseHash::with_params(10, 5, (1 << 31) - 1, 100);
        GrafiteFilter::from_hash(LocalityHash::from_pairwise(q), &PAPER_S)
    }

    #[test]
    fn paper_example_false_positive() {
        let f = paper_filter();
        assert_eq!(f.reduced_universe(), 100);
        assert_eq!(f.num_codes(), 10); // the example's codes are all distinct
                                       // Example 3.3: [44, 47] ∩ S = ∅, yet the filter says "not empty".
        assert!(f.may_contain_range(44, 47));
    }

    #[test]
    fn paper_example_no_false_negatives() {
        let f = paper_filter();
        for &k in &PAPER_S {
            assert!(f.may_contain(k), "false negative on key {k}");
            assert!(f.may_contain_range(k.saturating_sub(3), k + 3));
        }
    }

    #[test]
    fn no_false_negatives_randomized() {
        let mut state = 1u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let keys: Vec<u64> = (0..5000).map(|_| next()).collect();
        for &bpk in &[4.0, 8.0, 12.0, 20.0] {
            let f = GrafiteFilter::builder()
                .bits_per_key(bpk)
                .build(&keys)
                .unwrap();
            for (i, &k) in keys.iter().enumerate().step_by(7) {
                assert!(f.may_contain(k), "bpk={bpk} point FN at key {i}");
                let lo = k.saturating_sub(i as u64 % 800);
                let hi = k.saturating_add((i as u64 * 31) % 800);
                assert!(
                    f.may_contain_range(lo, hi),
                    "bpk={bpk} range FN around key {i}"
                );
            }
        }
    }

    #[test]
    fn empty_filter_answers_empty() {
        let f = GrafiteFilter::builder().build(&[]).unwrap();
        assert!(!f.may_contain_range(0, u64::MAX));
        assert_eq!(f.approx_range_count(0, u64::MAX), 0);
        assert_eq!(f.num_keys(), 0);
    }

    #[test]
    fn single_key_and_duplicates() {
        let f = GrafiteFilter::builder()
            .bits_per_key(12.0)
            .build(&[7, 7, 7])
            .unwrap();
        assert_eq!(f.num_keys(), 3);
        assert_eq!(f.num_codes(), 1);
        assert!(f.may_contain(7));
        assert!(f.may_contain_range(0, 100));
    }

    #[test]
    fn extreme_universe_edges() {
        let keys = [0u64, 1, u64::MAX - 1, u64::MAX];
        let f = GrafiteFilter::builder()
            .bits_per_key(20.0)
            .build(&keys)
            .unwrap();
        for &k in &keys {
            assert!(f.may_contain(k));
        }
        assert!(f.may_contain_range(u64::MAX - 5, u64::MAX));
        assert!(f.may_contain_range(0, 0));
    }

    #[test]
    fn block_boundary_split_has_no_false_negatives() {
        // Keys straddling every r-block boundary pattern. r depends only on
        // (n, budget): n = 147 keys at 10 bits/key gives r = 147 * 2^8.
        let r = 147u64 << 8;
        let keys: Vec<u64> = (1..50u64)
            .flat_map(|i| [i * r - 1, i * r, i * r + 1])
            .collect();
        let f = GrafiteFilter::builder()
            .bits_per_key(10.0)
            .seed(9)
            .build(&keys)
            .unwrap();
        assert_eq!(f.reduced_universe(), r, "r formula drifted");
        for i in 1..50u64 {
            // Crosses exactly one boundary.
            assert!(f.may_contain_range(i * r - 2, i * r + 2), "boundary {i}");
            // Spans multiple boundaries: must be (trivially) non-empty.
            assert!(f.may_contain_range(i * r - 2, i * r + 2 * r));
        }
    }

    #[test]
    fn spanning_query_over_empty_filterless_blocks() {
        // A query spanning >= 2 block boundaries always answers "not empty"
        // on a non-empty filter (the hashed image covers all of [r]).
        let f = GrafiteFilter::builder()
            .bits_per_key(8.0)
            .build(&[1234])
            .unwrap();
        let r = f.reduced_universe();
        assert!(f.may_contain_range(0, 3 * r));
    }

    #[test]
    fn fpr_respects_corollary_bound() {
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let n = 4000usize;
        let keys: Vec<u64> = (0..n).map(|_| next()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let bpk = 12.0;
        let l = 32u64;
        let f = GrafiteFilter::builder()
            .bits_per_key(bpk)
            .build(&keys)
            .unwrap();
        let bound = f.fpp_for_range_size(l);
        assert!(
            bound <= 32.0 / 1024.0 + 1e-9,
            "bound formula drifted: {bound}"
        );

        let mut fps = 0usize;
        let mut empties = 0usize;
        let mut probe_state = 4242u64;
        while empties < 20_000 {
            probe_state = probe_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = probe_state;
            let b = match a.checked_add(l - 1) {
                Some(b) => b,
                None => continue,
            };
            // Keep only truly empty ranges.
            let idx = sorted.partition_point(|&k| k < a);
            if idx < sorted.len() && sorted[idx] <= b {
                continue;
            }
            empties += 1;
            if f.may_contain_range(a, b) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / empties as f64;
        assert!(
            fpr <= bound * 1.5 + 0.002,
            "empirical FPR {fpr} exceeds bound {bound} beyond statistical slack"
        );
    }

    #[test]
    fn approx_count_exact_when_collision_free() {
        let keys: Vec<u64> = (0..100u64).map(|i| i * 1_000_003).collect();
        let f = GrafiteFilter::builder()
            .bits_per_key(30.0)
            .seed(3)
            .build(&keys)
            .unwrap();
        // Ranges well inside one block (r = 100 * 2^28 >> any range here).
        for (a, b, expect) in [
            (0u64, 999_999u64, 1usize),
            (0, 5_000_000, 5),
            (1_000_003, 1_000_003, 1),
            (1, 1_000_002, 0),
            (0, 99 * 1_000_003, 100),
        ] {
            assert_eq!(f.approx_range_count(a, b), expect, "count [{a}, {b}]");
        }
    }

    #[test]
    fn builder_validation() {
        let keys = [1u64, 2, 3];
        assert!(matches!(
            GrafiteFilter::builder()
                .epsilon_and_max_range(0.0, 8)
                .build(&keys),
            Err(FilterError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            GrafiteFilter::builder()
                .epsilon_and_max_range(1.5, 8)
                .build(&keys),
            Err(FilterError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            GrafiteFilter::builder()
                .epsilon_and_max_range(0.1, 0)
                .build(&keys),
            Err(FilterError::InvalidMaxRange(0))
        ));
        assert!(matches!(
            GrafiteFilter::builder().bits_per_key(2.0).build(&keys),
            Err(FilterError::InvalidBudget(_))
        ));
        assert!(matches!(
            GrafiteFilter::builder().bits_per_key(64.0).build(&keys),
            Err(FilterError::ReducedUniverseTooLarge { .. })
        ));
    }

    #[test]
    fn space_tracks_budget() {
        let mut state = 5u64;
        let keys: Vec<u64> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        for &bpk in &[8.0, 12.0, 16.0, 24.0] {
            let f = GrafiteFilter::builder()
                .bits_per_key(bpk)
                .build(&keys)
                .unwrap();
            let measured = f.bits_per_key();
            assert!(
                measured > bpk - 2.0 && measured < bpk + 3.0,
                "budget {bpk} produced {measured} bits/key"
            );
        }
    }

    /// Queries mixing empty, hit, block-crossing, spanning, and edge cases.
    fn batch_probe_queries(f: &GrafiteFilter, keys: &[u64], count: usize) -> Vec<(u64, u64)> {
        let r = f.reduced_universe();
        let mut state = 0xBA7C4u64;
        let mut queries: Vec<(u64, u64)> = (0..count)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                match i % 5 {
                    0 => {
                        // Around a key.
                        let k = keys[(state % keys.len() as u64) as usize];
                        (k.saturating_sub(state % 64), k.saturating_add(3))
                    }
                    1 => {
                        // Random small range (usually empty).
                        let a = state;
                        (a, a.saturating_add(31))
                    }
                    2 => {
                        // Crosses exactly one r-block boundary.
                        let block = (state % (u64::MAX / r.max(1))).max(1);
                        (block * r - 2, block * r + 2)
                    }
                    3 => {
                        // Spans several blocks: trivially non-empty.
                        (state % r, state % r + 3 * r)
                    }
                    _ => {
                        // Universe edges.
                        if state % 2 == 0 {
                            (0, state % 100)
                        } else {
                            (u64::MAX - state % 100, u64::MAX)
                        }
                    }
                }
            })
            .collect();
        queries.sort_unstable();
        queries
    }

    #[test]
    fn batch_matches_per_query_path() {
        let mut state = 7u64;
        let keys: Vec<u64> = (0..4000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        for &bpk in &[6.0, 12.0, 20.0] {
            let f = GrafiteFilter::builder()
                .bits_per_key(bpk)
                .seed(2)
                .build(&keys)
                .unwrap();
            // Large batch: takes the forward-scan path.
            let queries = batch_probe_queries(&f, &keys, 2000);
            let mut batched = Vec::new();
            f.may_contain_ranges(&queries, &mut batched);
            let singles: Vec<bool> = queries
                .iter()
                .map(|&(a, b)| f.may_contain_range(a, b))
                .collect();
            assert_eq!(
                batched, singles,
                "bpk={bpk} batch diverged from per-query path"
            );
            // Small batch: takes the fallback loop; answers still identical.
            let small = &queries[..8];
            f.may_contain_ranges(small, &mut batched);
            assert_eq!(
                batched,
                &singles[..8],
                "bpk={bpk} small-batch fallback diverged"
            );
            // Heavy duplication: every query repeated, exercising the
            // adjacent-identical-probe reuse in the sorted pass.
            let dup: Vec<(u64, u64)> = queries
                .iter()
                .flat_map(|&q| std::iter::repeat(q).take(3))
                .collect();
            let dup_singles: Vec<bool> = singles.iter().flat_map(|&s| [s; 3]).collect();
            f.may_contain_ranges(&dup, &mut batched);
            assert_eq!(batched, dup_singles, "bpk={bpk} duplicated batch diverged");
        }
    }

    #[test]
    fn batch_on_empty_filter_is_all_false() {
        let f = GrafiteFilter::builder().build(&[]).unwrap();
        let queries: Vec<(u64, u64)> = (0..100u64).map(|i| (i * 3, i * 3 + 10)).collect();
        let mut out = vec![true; 3]; // stale contents must be cleared
        f.may_contain_ranges(&queries, &mut out);
        assert_eq!(out.len(), queries.len());
        assert!(out.iter().all(|&x| !x));
    }

    #[test]
    fn batch_output_vector_is_reused() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 1000).collect();
        let f = GrafiteFilter::builder()
            .bits_per_key(10.0)
            .build(&keys)
            .unwrap();
        let queries = batch_probe_queries(&f, &keys, 600);
        let mut out = Vec::new();
        f.may_contain_ranges(&queries, &mut out);
        let first = out.clone();
        f.may_contain_ranges(&queries, &mut out);
        assert_eq!(out, first, "batch must be deterministic and clear `out`");
    }

    #[test]
    fn buildable_protocol_matches_builder() {
        let keys: Vec<u64> = (0..2000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let cfg = FilterConfig::new(&keys).bits_per_key(14.0).seed(11);
        let via_protocol = GrafiteFilter::build(&cfg).unwrap();
        let via_builder = GrafiteFilter::builder()
            .bits_per_key(14.0)
            .seed(11)
            .build(&keys)
            .unwrap();
        assert_eq!(
            via_protocol.reduced_universe(),
            via_builder.reduced_universe()
        );
        for probe in (0..5000u64).map(|i| i.wrapping_mul(0xABCDEF123)) {
            assert_eq!(
                via_protocol.may_contain_range(probe, probe.saturating_add(64)),
                via_builder.may_contain_range(probe, probe.saturating_add(64)),
            );
        }
        // Epsilon-based tuning follows Theorem 3.4 sizing with L from the config.
        let cfg = FilterConfig::new(&keys).max_range(64).seed(11);
        let tuned = GrafiteFilter::build_with(
            &cfg,
            &GrafiteTuning {
                epsilon: Some(0.01),
                ..GrafiteTuning::default()
            },
        )
        .unwrap();
        assert_eq!(tuned.reduced_universe(), (keys.len() as u64) * 64 * 100);
    }

    #[test]
    fn epsilon_sizing_matches_formula() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 97_000).collect();
        let f = GrafiteFilter::builder()
            .epsilon_and_max_range(0.01, 64)
            .build(&keys)
            .unwrap();
        // r = nL/ε = 1000 * 64 / 0.01 = 6.4e6.
        assert_eq!(f.reduced_universe(), 6_400_000);
        assert!((f.fpp_for_range_size(64) - 0.01).abs() < 1e-9);
        assert!((f.fpp_for_range_size(32) - 0.005).abs() < 1e-9);
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use crate::persist::bytes_to_words;

    #[test]
    fn filter_roundtrips_through_flat_bytes() {
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let filter = GrafiteFilter::builder()
            .bits_per_key(14.0)
            .seed(3)
            .build(&keys)
            .unwrap();
        let bytes = filter.to_bytes();
        assert_eq!(bytes.len() * 8, filter.serialized_bits());

        let back: GrafiteFilter = GrafiteFilter::deserialize(&bytes).expect("deserialize");
        assert_eq!(back.reduced_universe(), filter.reduced_universe());
        assert_eq!(back.num_keys(), filter.num_keys());
        assert_eq!(back.num_codes(), filter.num_codes());
        for &k in &keys {
            assert!(back.may_contain(k));
        }
        for probe in 0..2000u64 {
            let a = probe.wrapping_mul(0xABCDEF);
            let b = a.saturating_add(100);
            assert_eq!(filter.may_contain_range(a, b), back.may_contain_range(a, b));
        }
    }

    #[test]
    fn view_answers_zero_copy_out_of_the_blob() {
        let keys: Vec<u64> = (0..800u64).map(|i| i.wrapping_mul(0xDEADBEEF17)).collect();
        let filter = GrafiteFilter::builder()
            .bits_per_key(12.0)
            .seed(5)
            .build(&keys)
            .unwrap();
        let words = bytes_to_words(&filter.to_bytes()).unwrap();
        let view = GrafiteFilterView::view(&words).expect("view");
        assert_eq!(view.num_keys(), filter.num_keys());
        for probe in 0..3000u64 {
            let a = probe.wrapping_mul(0x1234567);
            let b = a.saturating_add(77);
            assert_eq!(view.may_contain_range(a, b), filter.may_contain_range(a, b));
        }
        // Batch path too.
        let queries: Vec<(u64, u64)> = (0..500u64).map(|i| (i * 1000, i * 1000 + 64)).collect();
        let (mut via_view, mut via_filter) = (Vec::new(), Vec::new());
        view.may_contain_ranges(&queries, &mut via_view);
        filter.may_contain_ranges(&queries, &mut via_filter);
        assert_eq!(via_view, via_filter);
    }

    /// The mapped path — `open_mapped` over a shared buffer and the owned
    /// `deserialize` of `MappedGrafiteFilter` — answers bit-identically to
    /// the owned filter, and its clones share (not copy) the storage.
    #[test]
    fn mapped_open_matches_owned_filter() {
        let keys: Vec<u64> = (0..1200u64)
            .map(|i| i.wrapping_mul(0x000A_5A51_2349))
            .collect();
        let filter = GrafiteFilter::builder()
            .bits_per_key(13.0)
            .seed(8)
            .build(&keys)
            .unwrap();
        let bytes = filter.to_bytes();
        let source = MappedSource::from_le_bytes(&bytes).unwrap();
        let mapped = MappedGrafiteFilter::open_mapped(&source).expect("open_mapped");
        let owned_src = MappedGrafiteFilter::deserialize(&bytes).expect("deserialize");
        assert_eq!(mapped.num_keys(), filter.num_keys());
        assert_eq!(mapped.reduced_universe(), filter.reduced_universe());
        for probe in 0..3000u64 {
            let a = probe.wrapping_mul(0x9E3779B9);
            let b = a.saturating_add(128);
            let expect = filter.may_contain_range(a, b);
            assert_eq!(mapped.may_contain_range(a, b), expect);
            assert_eq!(owned_src.may_contain_range(a, b), expect);
        }
        // Batch path too, and re-serialization is byte-identical.
        let queries: Vec<(u64, u64)> = (0..400u64).map(|i| (i * 977, i * 977 + 50)).collect();
        let (mut via_mapped, mut via_owned) = (Vec::new(), Vec::new());
        mapped.may_contain_ranges(&queries, &mut via_mapped);
        filter.may_contain_ranges(&queries, &mut via_owned);
        assert_eq!(via_mapped, via_owned);
        assert_eq!(mapped.to_bytes(), bytes);
    }

    /// Mapped loading is as hardened as the owned path: corruption,
    /// truncation, and foreign specs come back typed, never a panic.
    #[test]
    fn mapped_open_rejects_foreign_bytes_typed() {
        let filter = GrafiteFilter::builder()
            .bits_per_key(8.0)
            .build(&[5u64, 6, 7])
            .unwrap();
        let bytes = filter.to_bytes();
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        let source = MappedSource::from_le_bytes(&corrupt).unwrap();
        assert!(matches!(
            MappedGrafiteFilter::open_mapped(&source),
            Err(FilterError::ChecksumMismatch { .. })
        ));
        let short = MappedSource::from_le_bytes(&bytes[..bytes.len() - 8]).unwrap();
        assert!(matches!(
            MappedGrafiteFilter::open_mapped(&short),
            Err(FilterError::TruncatedBuffer { .. })
        ));
    }

    #[test]
    fn foreign_bytes_are_rejected_typed() {
        let keys = [1u64, 2, 3];
        let filter = GrafiteFilter::builder()
            .bits_per_key(8.0)
            .build(&keys)
            .unwrap();
        let bytes = filter.to_bytes();
        assert!(matches!(
            GrafiteFilter::<Vec<u64>>::deserialize(&bytes[..bytes.len() - 3]),
            Err(FilterError::TruncatedBuffer { .. })
        ));
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(matches!(
            GrafiteFilter::<Vec<u64>>::deserialize(&corrupt),
            Err(FilterError::ChecksumMismatch { .. })
        ));
    }
}
