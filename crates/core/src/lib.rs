//! The paper's contributions: the **Grafite** optimal range filter (§3) and
//! the **Bucketing** heuristic range filter (§4).
//!
//! # Grafite in one paragraph
//!
//! Grafite reduces the key universe `[u]` to a smaller universe `[r]`,
//! `r = nL/ε`, with the locality-preserving hash
//! `h(x) = (q(⌊x/r⌋) + x) mod r` (`q` pairwise independent), stores the
//! deduplicated sorted hash codes in an Elias–Fano sequence, and answers a
//! range-emptiness query `[a, b]` with a single `predecessor(h(b)) ≥ h(a)`
//! test (two tests when the range wraps the reduced universe or crosses an
//! `r`-block boundary). This gives, for a space budget of `B` bits per key,
//! `O(1)` query time and a false-positive probability of at most
//! `min{1, ℓ/2^(B−2)}` for ranges of size `ℓ` — *independently of the data
//! and query distribution* (paper Theorem 3.4 and Corollary 3.5).
//!
//! # Example
//!
//! ```
//! use grafite_core::{GrafiteFilter, RangeFilter};
//!
//! let keys = vec![100u64, 2_000, 30_000, 400_000];
//! let filter = GrafiteFilter::builder()
//!     .epsilon_and_max_range(0.01, 1 << 10)
//!     .build(&keys)
//!     .unwrap();
//! assert!(filter.may_contain_range(1_500, 2_500)); // contains 2_000
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucketing;
pub mod error;
pub mod grafite;
pub mod sort;
pub mod string_keys;
pub mod traits;

pub use bucketing::{BucketingBuilder, BucketingFilter, WorkloadAwareBucketing};
pub use error::FilterError;
pub use grafite::{GrafiteBuilder, GrafiteFilter};
pub use string_keys::StringGrafite;
pub use traits::RangeFilter;
