//! The paper's contributions: the **Grafite** optimal range filter (§3) and
//! the **Bucketing** heuristic range filter (§4).
//!
//! # Grafite in one paragraph
//!
//! Grafite reduces the key universe `[u]` to a smaller universe `[r]`,
//! `r = nL/ε`, with the locality-preserving hash
//! `h(x) = (q(⌊x/r⌋) + x) mod r` (`q` pairwise independent), stores the
//! deduplicated sorted hash codes in an Elias–Fano sequence, and answers a
//! range-emptiness query `[a, b]` with a single `predecessor(h(b)) ≥ h(a)`
//! test (two tests when the range wraps the reduced universe or crosses an
//! `r`-block boundary). This gives, for a space budget of `B` bits per key,
//! `O(1)` query time and a false-positive probability of at most
//! `min{1, ℓ/2^(B−2)}` for ranges of size `ℓ` — *independently of the data
//! and query distribution* (paper Theorem 3.4 and Corollary 3.5).
//!
//! # Example
//!
//! Construction and querying are both part of the crate-wide contract:
//! every filter builds from a shared [`FilterConfig`] through the
//! [`BuildableFilter`] protocol, and answers single or batched range
//! queries through [`RangeFilter`].
//!
//! ```
//! use grafite_core::{BuildableFilter, FilterConfig, GrafiteFilter, RangeFilter};
//!
//! let keys = vec![100u64, 2_000, 30_000, 400_000];
//! let cfg = FilterConfig::new(&keys).bits_per_key(16.0).max_range(1 << 10);
//! let filter = GrafiteFilter::build(&cfg).unwrap();
//! assert!(filter.may_contain_range(1_500, 2_500)); // contains 2_000
//!
//! // Batched queries: identical answers, one pass for large batches.
//! let mut out = Vec::new();
//! filter.may_contain_ranges(&[(0, 99), (1_500, 2_500)], &mut out);
//! assert_eq!(out[1], true);
//! ```
//!
//! The [`registry`] module adds a library-level table from
//! [`registry::FilterSpec`] to builder functions; the full table covering
//! the paper's eleven configurations is assembled by
//! `grafite_filters::standard_registry()` (the competitor filters live
//! downstream of this crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucketing;
pub mod error;
pub mod grafite;
pub mod parallel;
pub mod persist;
pub mod registry;
pub mod sort;
pub mod string_keys;
pub mod traits;

pub use bucketing::{BucketingBuilder, BucketingFilter, BucketingTuning, WorkloadAwareBucketing};
pub use error::FilterError;
pub use grafite::{
    GrafiteBuilder, GrafiteFilter, GrafiteFilterView, GrafiteTuning, MappedGrafiteFilter,
};
pub use parallel::{Parallelism, THREADS_ENV};
pub use persist::{Header, FORMAT_VERSION, MAGIC};
pub use registry::{BuilderFn, FilterSpec, LoaderFn, Registry};
pub use string_keys::{BytesPrefixCodec, IdentityCodec, KeyCodec, StringGrafite};
pub use traits::{BuildableFilter, FilterConfig, PersistentFilter, RangeFilter, DEFAULT_SEED};
