//! The construction-parallelism knob shared by every build path in the
//! workspace.
//!
//! Grafite's construction is sort-bound (paper §6.6: the authors report
//! 1.5–2.0× speedups from 2–8 sort threads alone), and the serving store
//! multiplies that by building independent shard filters. Both layers take
//! their thread count from one [`Parallelism`] value so a single setter —
//! or the `GRAFITE_THREADS` environment variable — governs the whole
//! pipeline.
//!
//! # Determinism
//!
//! The thread count **never** changes any produced bytes: every parallel
//! build path in the workspace (the partitioned radix sort, the chunked
//! Elias–Fano assembly, the store's fanned-out shard builds) is
//! bit-identical to its serial twin. Parallelism is purely a wall-clock
//! knob, which is what lets CI re-run the determinism suite under a forced
//! `GRAFITE_THREADS=1` leg and byte-compare the artifacts.
//!
//! ```
//! use grafite_core::Parallelism;
//!
//! assert_eq!(Parallelism::serial().threads(), 1);
//! assert_eq!(Parallelism::fixed(8).threads(), 8);
//! // `auto()` resolves GRAFITE_THREADS, else available_parallelism.
//! assert!(Parallelism::auto().threads() >= 1);
//! ```

/// The environment variable overriding [`Parallelism::auto`]: a positive
/// integer thread count. Unset, empty, zero, or unparsable values fall back
/// to `std::thread::available_parallelism`.
pub const THREADS_ENV: &str = "GRAFITE_THREADS";

/// A resolved construction thread count (always at least 1).
///
/// * [`Parallelism::auto`] — the default everywhere: the `GRAFITE_THREADS`
///   environment variable if set to a positive integer, otherwise
///   `std::thread::available_parallelism()`.
/// * [`Parallelism::fixed`] — an explicit count, ignoring the environment
///   (what the determinism tests use to pin both sides of a comparison).
/// * [`Parallelism::serial`] — shorthand for `fixed(1)`.
///
/// The value is resolved at construction time and carried as a plain
/// count, so a `FilterConfig`/`StoreConfig` holding one stays `Copy` and
/// deterministic for its whole lifetime even if the environment changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Resolves the ambient thread count: `GRAFITE_THREADS` when it parses
    /// to a positive integer, else `std::thread::available_parallelism()`,
    /// else 1.
    pub fn auto() -> Self {
        if let Ok(raw) = std::env::var(THREADS_ENV) {
            if let Some(n) = Self::parse_env_value(&raw) {
                return Self(n);
            }
        }
        Self(std::thread::available_parallelism().map_or(1, |p| p.get()))
    }

    /// An explicit thread count, clamped to at least 1. Ignores the
    /// environment.
    pub fn fixed(threads: usize) -> Self {
        Self(threads.max(1))
    }

    /// Single-threaded construction (`fixed(1)`).
    pub fn serial() -> Self {
        Self(1)
    }

    /// The resolved thread count (always >= 1).
    #[inline]
    pub fn threads(self) -> usize {
        self.0
    }

    /// Whether more than one thread is in play.
    #[inline]
    pub fn is_parallel(self) -> bool {
        self.0 > 1
    }

    /// The thread count capped to `jobs` — what a fan-out loop actually
    /// spawns (spawning more workers than jobs is pure overhead). Returns
    /// at least 1 even for zero jobs.
    #[inline]
    pub fn capped(self, jobs: usize) -> usize {
        self.0.min(jobs.max(1))
    }

    /// How `GRAFITE_THREADS` is interpreted: a positive integer, or `None`
    /// for anything else (empty, zero, garbage — callers then fall back to
    /// the machine's parallelism).
    pub fn parse_env_value(raw: &str) -> Option<usize> {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => None,
        }
    }
}

impl Default for Parallelism {
    /// [`Parallelism::auto`] — the documented default of every builder.
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clamps_to_one() {
        assert_eq!(Parallelism::fixed(0).threads(), 1);
        assert_eq!(Parallelism::fixed(1).threads(), 1);
        assert_eq!(Parallelism::fixed(7).threads(), 7);
        assert!(!Parallelism::serial().is_parallel());
        assert!(Parallelism::fixed(2).is_parallel());
    }

    #[test]
    fn capped_by_job_count() {
        assert_eq!(Parallelism::fixed(8).capped(3), 3);
        assert_eq!(Parallelism::fixed(2).capped(100), 2);
        assert_eq!(Parallelism::fixed(4).capped(0), 1);
    }

    /// The env parse is a pure function, testable without the process-wide
    /// races of actually setting the variable from a threaded test harness.
    #[test]
    fn env_value_parsing() {
        assert_eq!(Parallelism::parse_env_value("4"), Some(4));
        assert_eq!(Parallelism::parse_env_value(" 16 "), Some(16));
        assert_eq!(Parallelism::parse_env_value("1"), Some(1));
        assert_eq!(Parallelism::parse_env_value("0"), None);
        assert_eq!(Parallelism::parse_env_value(""), None);
        assert_eq!(Parallelism::parse_env_value("lots"), None);
        assert_eq!(Parallelism::parse_env_value("-2"), None);
    }

    #[test]
    fn auto_is_at_least_one() {
        assert!(Parallelism::auto().threads() >= 1);
        assert!(Parallelism::default().threads() >= 1);
    }
}
