//! The versioned flat-byte on-disk format every filter in the workspace
//! serializes to.
//!
//! # Blob layout
//!
//! A serialized filter is a self-describing sequence of little-endian `u64`
//! words: a fixed five-word header followed by a filter-specific payload.
//!
//! | word | contents |
//! |---|---|
//! | 0 | [`MAGIC`] (`b"GRAFILT\0"` as a little-endian word) |
//! | 1 | low 32 bits: spec id; high 32 bits: [`FORMAT_VERSION`] |
//! | 2 | number of keys the filter was built on |
//! | 3 | payload length in words |
//! | 4 | [checksum](checksum_words) of the payload words |
//!
//! The payload is the filter's structural fields followed by its succinct
//! containers in `grafite-succinct`'s word encoding — rank/select
//! directories included, so loading is **rebuild-free**. Everything is
//! word-aligned, which is what lets view types parse straight out of an
//! in-memory `&[u64]` buffer (e.g. one backed by a memory-mapped file)
//! without copying.
//!
//! # Versioning policy
//!
//! [`FORMAT_VERSION`] is bumped on *any* incompatible change to the header
//! or to any filter's payload encoding; readers reject versions outside
//! `MIN_FORMAT_VERSION..=FORMAT_VERSION` with
//! [`FilterError::UnsupportedFormatVersion`] rather than guessing. Spec ids
//! are append-only: an id, once assigned (see [`spec_id`]), is never
//! reused for a different family.
//!
//! Version history:
//!
//! * **v1** — the original layout; `RsBitVec` select directories stored as
//!   block-index *hints*.
//! * **v2** (current) — `RsBitVec` select directories store the exact
//!   position of every 512th one/zero (the position-sampled scheme of the
//!   succinct hot-path overhaul). v1 blobs still load on the **owned**
//!   path: decoders rebuild the position samples from the bits in one
//!   linear pass. Zero-copy views require v2 (a borrowed view cannot hold
//!   rebuilt directories).
//!
//! # Threat model
//!
//! Loading is hardened against *accidental* damage: truncation, bit rot,
//! version skew, and mismatched families all surface as typed
//! [`FilterError`]s (the checksum covers header words 1–3 and the whole
//! payload), and decoders additionally apply cheap structural range checks
//! (array shapes, directory monotonicity, offset bounds) that catch the
//! common inconsistencies a damaged stream exhibits. These checks are
//! best-effort, **not a verifier**: the checksum is not cryptographic, and
//! a deliberately crafted blob that forges it can still produce wrong
//! query answers. Authenticate provenance before loading filters from
//! untrusted parties, as with any serialization format without a verifier.

use std::io;

use grafite_succinct::io::{le_word, MappedCursor, MappedSource, WordCursor};

use crate::error::FilterError;

/// `b"GRAFILT\0"` read as a little-endian word: the first 8 bytes of every
/// serialized filter.
pub const MAGIC: u64 = u64::from_le_bytes(*b"GRAFILT\0");

/// The on-disk format version this build writes (and reads).
pub const FORMAT_VERSION: u32 = 2;

/// The oldest format version readers still accept. v1 blobs load through
/// the legacy owned path, which rebuilds the `RsBitVec` select directories
/// (see the module docs' version history).
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Header size in bytes (five words).
pub const HEADER_BYTES: usize = HEADER_WORDS * 8;

/// Header size in words.
pub const HEADER_WORDS: usize = 5;

/// Stable spec ids naming each filter family in the header.
///
/// Ids `1..=11` mirror the [`FilterSpec`](crate::registry::FilterSpec)
/// registry table; ids from 32 up name families that are serializable but
/// not part of the paper's eleven-way comparison. Append-only — never
/// renumber.
pub mod spec_id {
    /// Grafite (paper §3).
    pub const GRAFITE: u32 = 1;
    /// Bucketing (paper §4).
    pub const BUCKETING: u32 = 2;
    /// SNARF.
    pub const SNARF: u32 = 3;
    /// SuRF with real suffixes.
    pub const SURF_REAL: u32 = 4;
    /// SuRF with hashed suffixes.
    pub const SURF_HASH: u32 = 5;
    /// Proteus.
    pub const PROTEUS: u32 = 6;
    /// Rosetta.
    pub const ROSETTA: u32 = 7;
    /// REncoder, base configuration.
    pub const RENCODER: u32 = 8;
    /// REncoder with fixed selective storage.
    pub const RENCODER_SS: u32 = 9;
    /// REncoder with sample-estimated storage.
    pub const RENCODER_SE: u32 = 10;
    /// The trivial Bloom baseline (paper §2).
    pub const TRIVIAL_BLOOM: u32 = 11;
    /// Grafite over string keys (paper §7 sketch).
    pub const STRING_GRAFITE: u32 = 32;
    /// Workload-aware Bucketing (paper §7 sketch).
    pub const WORKLOAD_AWARE_BUCKETING: u32 = 33;
    /// SuRF without suffix bits (SuRF-Base).
    pub const SURF_BASE: u32 = 34;
}

/// FNV-1a-style 64-bit fold over a word sequence — the primitive under
/// [`blob_checksum`]. Computable from the byte image and the word image
/// alike without copying either.
pub fn checksum_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0xCBF2_9CE4_8422_2325u64;
    for w in words {
        acc = (acc ^ w).wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// The checksum recorded in header word 4: [`checksum_words`] over header
/// words 1–3 (spec id + version, key count, payload length) followed by
/// the payload words. Covering the header words matters: `n_keys` steers
/// empty-filter early returns at query time, so a blob whose header
/// corrupts must fail [`FilterError::ChecksumMismatch`], never load as a
/// silently wrong (false-negative-producing) filter. Word 0 needs no
/// protection — any corruption of the magic is its own error.
pub fn blob_checksum(
    spec_version_word: u64,
    n_keys: u64,
    payload_words: u64,
    payload: impl IntoIterator<Item = u64>,
) -> u64 {
    checksum_words(
        [spec_version_word, n_keys, payload_words]
            .into_iter()
            .chain(payload),
    )
}

/// An iterator of words over a byte buffer holding whole little-endian
/// words.
pub fn words_of_bytes(bytes: &[u8]) -> impl Iterator<Item = u64> + '_ {
    debug_assert_eq!(bytes.len() % 8, 0, "payloads are whole words");
    bytes.chunks_exact(8).map(le_word)
}

/// The parsed five-word blob header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Format version the blob was written with (within
    /// `MIN_FORMAT_VERSION..=FORMAT_VERSION` after a successful parse).
    pub version: u32,
    /// Which filter family the payload encodes (see [`spec_id`]).
    pub spec_id: u32,
    /// Number of keys the filter was built on.
    pub n_keys: u64,
    /// Payload length in words.
    pub payload_words: u64,
    /// Checksum of the payload words.
    pub checksum: u64,
}

impl Header {
    /// Header word 1: spec id in the low half, format version in the high
    /// half — the leading input of [`blob_checksum`].
    #[inline]
    pub fn spec_version_word(&self) -> u64 {
        ((self.version as u64) << 32) | self.spec_id as u64
    }

    /// Whether this blob was written by the legacy v1 format, whose
    /// `RsBitVec` select directories must be rebuilt on load (owned path
    /// only — decoders dispatch on this).
    #[inline]
    pub fn legacy_directories(&self) -> bool {
        self.version < 2
    }

    /// Serializes the header into `out`.
    pub fn write(&self, out: &mut dyn io::Write) -> io::Result<()> {
        for w in [
            MAGIC,
            self.spec_version_word(),
            self.n_keys,
            self.payload_words,
            self.checksum,
        ] {
            out.write_all(&w.to_le_bytes())?;
        }
        Ok(())
    }

    fn validate(words: [u64; HEADER_WORDS], total_available: usize) -> Result<Self, FilterError> {
        let [magic, spec_version, n_keys, payload_words, checksum] = words;
        if magic != MAGIC {
            return Err(FilterError::BadMagic(magic));
        }
        let version = (spec_version >> 32) as u32;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(FilterError::UnsupportedFormatVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let header = Self {
            version,
            spec_id: spec_version as u32,
            n_keys,
            payload_words,
            checksum,
        };
        let needed = usize::try_from(header.payload_words)
            .ok()
            .and_then(|pw| pw.checked_add(HEADER_WORDS))
            .and_then(|w| w.checked_mul(8))
            .ok_or(FilterError::corrupt("payload length overflows usize"))?;
        if total_available < needed {
            return Err(FilterError::TruncatedBuffer {
                needed,
                have: total_available,
            });
        }
        Ok(header)
    }

    fn verify_checksum(&self, payload: impl IntoIterator<Item = u64>) -> Result<(), FilterError> {
        let actual = blob_checksum(
            self.spec_version_word(),
            self.n_keys,
            self.payload_words,
            payload,
        );
        if actual != self.checksum {
            return Err(FilterError::ChecksumMismatch {
                expected: self.checksum,
                actual,
            });
        }
        Ok(())
    }

    /// Parses a blob's header *without* verifying the checksum: magic,
    /// version, and length only. This is the cheap dispatch step
    /// (`Registry::load` uses it to pick a loader); the loader's
    /// `deserialize` performs the single full [`Header::parse`] pass.
    pub fn peek(bytes: &[u8]) -> Result<Self, FilterError> {
        if bytes.len() < HEADER_BYTES {
            return Err(FilterError::TruncatedBuffer {
                needed: HEADER_BYTES,
                have: bytes.len(),
            });
        }
        let mut words = [0u64; HEADER_WORDS];
        for (w, c) in words.iter_mut().zip(bytes.chunks_exact(8)) {
            *w = le_word(c);
        }
        Self::validate(words, bytes.len())
    }

    /// Parses and fully validates a blob's header from its byte image,
    /// returning the header and the checksummed payload bytes. Trailing
    /// bytes past the payload are permitted (and ignored), so a filter can
    /// be loaded out of a larger mapped region.
    pub fn parse(bytes: &[u8]) -> Result<(Self, &[u8]), FilterError> {
        let header = Self::peek(bytes)?;
        // `validate` (via `peek`) proved (payload_words + HEADER_WORDS) * 8
        // fits a usize and the buffer holds it, so the checked chain here
        // cannot fail in practice — but corrupt input never gets to panic.
        let payload = usize::try_from(header.payload_words)
            .ok()
            .and_then(|pw| pw.checked_mul(8))
            .and_then(|len| len.checked_add(HEADER_BYTES))
            .and_then(|end| bytes.get(HEADER_BYTES..end))
            .ok_or(FilterError::corrupt("payload extent exceeds buffer"))?;
        header.verify_checksum(words_of_bytes(payload))?;
        Ok((header, payload))
    }

    /// [`Header::parse`] over a word buffer — the zero-copy path: the
    /// returned payload slice borrows from `words`, and a
    /// [`WordCursor`] over it parses view structures that
    /// answer queries straight out of the buffer.
    pub fn parse_words(words: &[u64]) -> Result<(Self, &[u64]), FilterError> {
        let &[w0, w1, w2, w3, w4, ..] = words else {
            return Err(FilterError::TruncatedBuffer {
                needed: HEADER_BYTES,
                have: words.len().saturating_mul(8),
            });
        };
        let header = Self::validate([w0, w1, w2, w3, w4], words.len().saturating_mul(8))?;
        let payload = usize::try_from(header.payload_words)
            .ok()
            .and_then(|pw| pw.checked_add(HEADER_WORDS))
            .and_then(|end| words.get(HEADER_WORDS..end))
            .ok_or(FilterError::corrupt("payload extent exceeds buffer"))?;
        header.verify_checksum(payload.iter().copied())?;
        Ok((header, payload))
    }

    /// Convenience: parse the header and hand back a cursor over the
    /// payload, ready for view parsing.
    pub fn payload_cursor(words: &[u64]) -> Result<(Self, WordCursor<'_>), FilterError> {
        let (header, payload) = Self::parse_words(words)?;
        Ok((header, WordCursor::new(payload)))
    }

    /// [`Header::payload_cursor`] over a shared [`MappedSource`] buffer —
    /// the mapped load path: the header is parsed and checksummed exactly
    /// like [`Header::parse_words`], and the returned cursor yields
    /// sub-range `MappedSource`s, so structures parsed from it *own* the
    /// buffer by reference count (`'static`, thread-shareable) instead of
    /// borrowing it.
    pub fn payload_cursor_mapped(
        source: &MappedSource,
    ) -> Result<(Self, MappedCursor), FilterError> {
        // Full validation (magic, version, extent, checksum) over the word
        // image, then a zero-copy slice of the same shared buffer.
        let (header, _) = Self::parse_words(source.as_ref())?;
        let end = usize::try_from(header.payload_words)
            .ok()
            .and_then(|pw| pw.checked_add(HEADER_WORDS))
            .ok_or(FilterError::corrupt("payload length overflows usize"))?;
        let payload = source.slice(HEADER_WORDS..end).map_err(FilterError::from)?;
        Ok((header, MappedCursor::new(payload)))
    }
}

/// Reinterprets a blob's byte image as its word image (one copy). Useful
/// when bytes came from `std::fs::read` but the zero-copy
/// [`Header::parse_words`] path is wanted for the parse itself.
pub fn bytes_to_words(bytes: &[u8]) -> Result<Vec<u64>, FilterError> {
    if bytes.len() % 8 != 0 {
        return Err(FilterError::TruncatedBuffer {
            needed: bytes.len().next_multiple_of(8),
            have: bytes.len(),
        });
    }
    Ok(bytes.chunks_exact(8).map(le_word).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blob() -> Vec<u8> {
        let payload: Vec<u8> = [1u64, 2, 3].iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut header = Header {
            version: FORMAT_VERSION,
            spec_id: spec_id::GRAFITE,
            n_keys: 99,
            payload_words: 3,
            checksum: 0,
        };
        header.checksum = blob_checksum(
            header.spec_version_word(),
            header.n_keys,
            header.payload_words,
            words_of_bytes(&payload),
        );
        let mut out = Vec::new();
        header.write(&mut out).unwrap();
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn header_roundtrip_bytes_and_words() {
        let blob = sample_blob();
        let (h, payload) = Header::parse(&blob).unwrap();
        assert_eq!(h.spec_id, spec_id::GRAFITE);
        assert_eq!(h.n_keys, 99);
        assert_eq!(payload.len(), 24);

        let words = bytes_to_words(&blob).unwrap();
        let (hw, payload_words) = Header::parse_words(&words).unwrap();
        assert_eq!(hw, h);
        assert_eq!(payload_words, &[1, 2, 3]);
    }

    /// A v1 header (the legacy directory layout) still parses — readers
    /// dispatch on it — while versions outside the supported range fail
    /// typed.
    #[test]
    fn legacy_v1_header_accepted() {
        let payload: Vec<u8> = [7u64, 8].iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut header = Header {
            version: MIN_FORMAT_VERSION,
            spec_id: spec_id::BUCKETING,
            n_keys: 3,
            payload_words: 2,
            checksum: 0,
        };
        header.checksum = blob_checksum(
            header.spec_version_word(),
            header.n_keys,
            header.payload_words,
            words_of_bytes(&payload),
        );
        let mut blob = Vec::new();
        header.write(&mut blob).unwrap();
        blob.extend_from_slice(&payload);
        let (parsed, _) = Header::parse(&blob).unwrap();
        assert_eq!(parsed.version, 1);
        assert!(parsed.legacy_directories());
        let (fresh, _) = Header::parse(&sample_blob()).unwrap();
        assert!(!fresh.legacy_directories());
        // Version 0 and FORMAT_VERSION + 1 are both out of range.
        for bad_version in [0u32, FORMAT_VERSION + 1] {
            let mut bad = blob.clone();
            bad[12..16].copy_from_slice(&bad_version.to_le_bytes());
            assert_eq!(
                Header::parse(&bad),
                Err(FilterError::UnsupportedFormatVersion {
                    found: bad_version,
                    supported: FORMAT_VERSION
                })
            );
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut blob = sample_blob();
        blob[0] ^= 0xFF;
        assert!(matches!(
            Header::parse(&blob),
            Err(FilterError::BadMagic(_))
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut blob = sample_blob();
        blob[12] = 9; // low byte of the version half of word 1
        assert_eq!(
            Header::parse(&blob),
            Err(FilterError::UnsupportedFormatVersion {
                found: 9,
                supported: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn truncation_is_typed() {
        let blob = sample_blob();
        assert_eq!(
            Header::parse(&blob[..10]),
            Err(FilterError::TruncatedBuffer {
                needed: HEADER_BYTES,
                have: 10
            })
        );
        assert_eq!(
            Header::parse(&blob[..blob.len() - 1]),
            Err(FilterError::TruncatedBuffer {
                needed: blob.len(),
                have: blob.len() - 1
            })
        );
    }

    #[test]
    fn corruption_fails_checksum() {
        let mut blob = sample_blob();
        let last = blob.len() - 1;
        blob[last] ^= 0x01;
        assert!(matches!(
            Header::parse(&blob),
            Err(FilterError::ChecksumMismatch { .. })
        ));
    }

    /// Header words are inside the checksum domain: a corrupted key count
    /// (which steers empty-filter early returns at query time) must fail
    /// loudly, not load as a silently wrong filter.
    #[test]
    fn header_corruption_fails_checksum_too() {
        for byte in [8usize, 16, 23] {
            // spec id, n_keys low, n_keys high
            let mut blob = sample_blob();
            blob[byte] ^= 0x40;
            assert!(
                matches!(
                    Header::parse(&blob),
                    Err(FilterError::ChecksumMismatch { .. })
                ),
                "header byte {byte} corruption escaped the checksum"
            );
        }
        // peek() deliberately skips the checksum (dispatch only)…
        let mut blob = sample_blob();
        blob[16] ^= 0x40;
        assert!(Header::peek(&blob).is_ok());
        // …but the full parse both paths use for actual loading catches it.
        let words = bytes_to_words(&blob).unwrap();
        assert!(matches!(
            Header::parse_words(&words),
            Err(FilterError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_tolerated() {
        let mut blob = sample_blob();
        blob.extend_from_slice(&[0u8; 64]);
        assert!(Header::parse(&blob).is_ok());
    }
}
