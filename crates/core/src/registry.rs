//! The library-level filter registry: a typed table mapping every
//! [`FilterSpec`] of the paper's evaluation to a builder over the shared
//! [`FilterConfig`] and a loader over the flat-byte format of
//! [`crate::persist`].
//!
//! `grafite-core` cannot name the competitor filter types (they live in
//! crates that depend on this one), so the registry is a table of plain
//! builder/loader *functions*: this crate pre-registers its own two filters
//! (Grafite §3, Bucketing §4) via [`Registry::new`], and
//! `grafite_filters::standard_registry()` returns the table with all eleven
//! specs populated. [`Registry::load`] reads a serialized blob's header and
//! dispatches to the loader its spec id names — the one entry point a
//! serving shard needs to revive any filter family from disk.

use crate::bucketing::BucketingFilter;
use crate::error::FilterError;
use crate::grafite::GrafiteFilter;
use crate::persist::{spec_id, Header};
use crate::traits::{BuildableFilter, FilterConfig, PersistentFilter};

/// Every filter of the paper's §6 comparison, plus the §2 trivial baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterSpec {
    /// Grafite (this paper, robust).
    Grafite,
    /// Bucketing (this paper, heuristic).
    Bucketing,
    /// SNARF (heuristic; uses the overflow-fixed model).
    Snarf,
    /// SuRF with real suffixes (heuristic; the paper's range-query config).
    SurfReal,
    /// SuRF with hashed suffixes (heuristic; the paper's point-query config).
    SurfHash,
    /// Proteus, auto-tuned on the query sample (heuristic).
    Proteus,
    /// Rosetta, auto-tuned on the query sample (robust).
    Rosetta,
    /// REncoder, base configuration (robust for in-budget range sizes).
    REncoder,
    /// REncoder with fixed selective storage (heuristic).
    REncoderSS,
    /// REncoder with sample-estimated storage (heuristic, auto-tuned).
    REncoderSE,
    /// The §2 theoretical baseline: Bloom filter probed point-by-point.
    TrivialBloom,
}

impl FilterSpec {
    /// Number of specs (the registry's table width).
    pub const COUNT: usize = 11;

    /// Every spec, in declaration order.
    pub const ALL: [FilterSpec; Self::COUNT] = [
        FilterSpec::Grafite,
        FilterSpec::Bucketing,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
        FilterSpec::SurfHash,
        FilterSpec::Proteus,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
        FilterSpec::REncoderSS,
        FilterSpec::REncoderSE,
        FilterSpec::TrivialBloom,
    ];

    /// The robust filters of §6.4.
    pub const ROBUST: [FilterSpec; 3] = [
        FilterSpec::Grafite,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
    ];

    /// The heuristic filters of §6.3.
    pub const HEURISTIC: [FilterSpec; 6] = [
        FilterSpec::Bucketing,
        FilterSpec::SurfReal,
        FilterSpec::Snarf,
        FilterSpec::Proteus,
        FilterSpec::REncoderSS,
        FilterSpec::REncoderSE,
    ];

    /// The nine filters of the Figure 3 robustness grid.
    pub const ALL_FIG3: [FilterSpec; 9] = [
        FilterSpec::Grafite,
        FilterSpec::Bucketing,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
        FilterSpec::Proteus,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
        FilterSpec::REncoderSS,
        FilterSpec::REncoderSE,
    ];

    /// The six filters of the paper's Figure 1 teaser.
    pub const FIG1: [FilterSpec; 6] = [
        FilterSpec::Grafite,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
        FilterSpec::Proteus,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
    ];

    /// The stable on-disk spec id of this configuration (see
    /// [`crate::persist::spec_id`]).
    pub fn spec_id(&self) -> u32 {
        match self {
            FilterSpec::Grafite => spec_id::GRAFITE,
            FilterSpec::Bucketing => spec_id::BUCKETING,
            FilterSpec::Snarf => spec_id::SNARF,
            FilterSpec::SurfReal => spec_id::SURF_REAL,
            FilterSpec::SurfHash => spec_id::SURF_HASH,
            FilterSpec::Proteus => spec_id::PROTEUS,
            FilterSpec::Rosetta => spec_id::ROSETTA,
            FilterSpec::REncoder => spec_id::RENCODER,
            FilterSpec::REncoderSS => spec_id::RENCODER_SS,
            FilterSpec::REncoderSE => spec_id::RENCODER_SE,
            FilterSpec::TrivialBloom => spec_id::TRIVIAL_BLOOM,
        }
    }

    /// Inverse of [`FilterSpec::spec_id`], for header dispatch.
    pub fn from_spec_id(id: u32) -> Option<FilterSpec> {
        FilterSpec::ALL.into_iter().find(|s| s.spec_id() == id)
    }

    /// Harness display name.
    pub fn label(&self) -> &'static str {
        match self {
            FilterSpec::Grafite => "Grafite",
            FilterSpec::Bucketing => "Bucketing",
            FilterSpec::Snarf => "SNARF",
            FilterSpec::SurfReal => "SuRF",
            FilterSpec::SurfHash => "SuRF-Hash",
            FilterSpec::Proteus => "Proteus",
            FilterSpec::Rosetta => "Rosetta",
            FilterSpec::REncoder => "REncoder",
            FilterSpec::REncoderSS => "REncoderSS",
            FilterSpec::REncoderSE => "REncoderSE",
            FilterSpec::TrivialBloom => "TrivialBloom",
        }
    }

    /// Row index in the registry table.
    #[inline]
    const fn index(self) -> usize {
        self as usize
    }
}

/// A registered builder: constructs a boxed filter from the shared config,
/// or explains why the configuration is infeasible. The result is
/// [`PersistentFilter`]-boxed so anything the registry builds can also be
/// serialized and measured.
pub type BuilderFn = fn(&FilterConfig<'_>) -> Result<Box<dyn PersistentFilter>, FilterError>;

/// A registered loader: revives a boxed filter from a serialized blob
/// (header included) in the [`crate::persist`] format.
pub type LoaderFn = fn(&[u8]) -> Result<Box<dyn PersistentFilter>, FilterError>;

/// A table of filter builders and loaders keyed by [`FilterSpec`].
///
/// [`Registry::new`] pre-registers this crate's own filters (Grafite and
/// Bucketing); downstream crates register the rest — use
/// `grafite_filters::standard_registry()` for the complete table of the
/// paper's eleven configurations. Registration is by plain function
/// pointer, so a `Registry` is `Copy`-cheap to clone and needs no
/// allocation.
#[derive(Clone, Debug)]
pub struct Registry {
    builders: [Option<BuilderFn>; FilterSpec::COUNT],
    loaders: [Option<LoaderFn>; FilterSpec::COUNT],
}

impl Default for Registry {
    /// Same as [`Registry::new`]: the core filters come registered.
    fn default() -> Self {
        Self::new()
    }
}

/// The standard [`LoaderFn`] body for a concrete filter type: typed
/// `deserialize`, boxed. Use it when registering loaders for custom
/// filters, exactly as `grafite_filters::standard_registry()` does for the
/// paper's families.
pub fn load_as<F: PersistentFilter + 'static>(
    bytes: &[u8],
) -> Result<Box<dyn PersistentFilter>, FilterError> {
    F::deserialize(bytes).map(|f| Box::new(f) as _)
}

impl Registry {
    /// A registry with the core filters (Grafite, Bucketing) registered.
    pub fn new() -> Self {
        let mut r = Self::empty();
        r.register(FilterSpec::Grafite, |cfg| {
            <GrafiteFilter as BuildableFilter>::build(cfg).map(|f| Box::new(f) as _)
        });
        r.register_loader(FilterSpec::Grafite, load_as::<GrafiteFilter>);
        r.register(FilterSpec::Bucketing, |cfg| {
            <BucketingFilter as BuildableFilter>::build(cfg).map(|f| Box::new(f) as _)
        });
        r.register_loader(FilterSpec::Bucketing, load_as::<BucketingFilter>);
        r
    }

    /// A registry with no builders at all.
    pub fn empty() -> Self {
        Self {
            builders: [None; FilterSpec::COUNT],
            loaders: [None; FilterSpec::COUNT],
        }
    }

    /// Registers (or replaces) the builder for `spec`. Returns `&mut self`
    /// for chaining.
    pub fn register(&mut self, spec: FilterSpec, builder: BuilderFn) -> &mut Self {
        self.builders[spec.index()] = Some(builder);
        self
    }

    /// Registers (or replaces) the loader for `spec`. Returns `&mut self`
    /// for chaining.
    pub fn register_loader(&mut self, spec: FilterSpec, loader: LoaderFn) -> &mut Self {
        self.loaders[spec.index()] = Some(loader);
        self
    }

    /// Whether a builder is registered for `spec`.
    #[inline]
    pub fn is_registered(&self, spec: FilterSpec) -> bool {
        self.builders[spec.index()].is_some()
    }

    /// The specs with a registered builder, in declaration order.
    pub fn registered(&self) -> impl Iterator<Item = FilterSpec> + '_ {
        FilterSpec::ALL
            .into_iter()
            .filter(|&s| self.is_registered(s))
    }

    /// Builds `spec` from the shared config.
    ///
    /// Errors are either [`FilterError::Unregistered`] (no builder for this
    /// spec in this table) or whatever the filter's own
    /// [`BuildableFilter::build`] reports — e.g.
    /// [`FilterError::BudgetBelowFloor`] for SuRF under its trie floor.
    pub fn build(
        &self,
        spec: FilterSpec,
        cfg: &FilterConfig<'_>,
    ) -> Result<Box<dyn PersistentFilter>, FilterError> {
        match self.builders[spec.index()] {
            Some(builder) => builder(cfg),
            None => Err(FilterError::Unregistered(spec.label())),
        }
    }

    /// Loads a serialized filter of any *registered* family: validates the
    /// header's magic/version/length, maps its spec id to a
    /// [`FilterSpec`], and dispatches to that spec's loader (whose
    /// `deserialize` performs the one full checksum pass).
    ///
    /// This is the serving-side entry point: a shard that received a blob
    /// built offline revives it with one call, without knowing which of the
    /// paper's eleven configurations it holds. Loading is rebuild-free —
    /// rank/select directories come verbatim from the blob.
    ///
    /// Families outside the eleven-spec registry table (spec ids ≥ 32:
    /// [`StringGrafite`](crate::StringGrafite), workload-aware Bucketing,
    /// SuRF-Base) serialize in the same format but load through their typed
    /// [`PersistentFilter::deserialize`]; this table-driven entry point
    /// reports their ids as [`FilterError::UnknownSpecId`].
    pub fn load(&self, bytes: &[u8]) -> Result<Box<dyn PersistentFilter>, FilterError> {
        // Cheap dispatch: magic/version/length only. The loader's
        // `deserialize` performs the one full checksum pass.
        let header = Header::peek(bytes)?;
        let spec = FilterSpec::from_spec_id(header.spec_id)
            .ok_or(FilterError::UnknownSpecId(header.spec_id))?;
        match self.loaders.get(spec.index()).copied().flatten() {
            Some(loader) => loader(bytes),
            None => Err(FilterError::Unregistered(spec.label())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_table_is_consistent() {
        assert_eq!(FilterSpec::ALL.len(), FilterSpec::COUNT);
        for (i, spec) in FilterSpec::ALL.into_iter().enumerate() {
            assert_eq!(spec.index(), i, "{} out of order", spec.label());
        }
    }

    #[test]
    fn spec_ids_are_stable_and_invertible() {
        for spec in FilterSpec::ALL {
            assert_eq!(FilterSpec::from_spec_id(spec.spec_id()), Some(spec));
        }
        // The first two ids are pinned by blobs already on disk.
        assert_eq!(FilterSpec::Grafite.spec_id(), 1);
        assert_eq!(FilterSpec::Bucketing.spec_id(), 2);
        assert_eq!(FilterSpec::from_spec_id(0), None);
        assert_eq!(FilterSpec::from_spec_id(999), None);
    }

    #[test]
    fn core_registry_loads_what_it_builds() {
        let keys: Vec<u64> = (0..700u64).map(|i| i * 999_983).collect();
        let cfg = FilterConfig::new(&keys).bits_per_key(12.0);
        let registry = Registry::new();
        for spec in [FilterSpec::Grafite, FilterSpec::Bucketing] {
            let built = registry.build(spec, &cfg).unwrap();
            let bytes = built.to_bytes();
            let loaded = registry.load(&bytes).unwrap();
            assert_eq!(loaded.name(), built.name());
            assert_eq!(loaded.num_keys(), built.num_keys());
            for probe in (0..700u64).map(|i| i * 999_983 / 3) {
                assert_eq!(
                    loaded.may_contain_range(probe, probe + 1000),
                    built.may_contain_range(probe, probe + 1000),
                    "{spec:?} diverged at {probe}"
                );
            }
        }
    }

    #[test]
    fn load_rejects_unknown_spec_and_unregistered_loader() {
        use crate::persist::{Header, FORMAT_VERSION};
        // Dispatch decisions precede the checksum pass, so a zero checksum
        // suffices for these header-only rejections.
        let empty_blob = |spec_id: u32| {
            let mut blob = Vec::new();
            Header {
                version: FORMAT_VERSION,
                spec_id,
                n_keys: 0,
                payload_words: 0,
                checksum: 0,
            }
            .write(&mut blob)
            .unwrap();
            blob
        };
        assert_eq!(
            Registry::new().load(&empty_blob(200)).err(),
            Some(FilterError::UnknownSpecId(200))
        );
        // A known spec id with no loader in this table.
        assert_eq!(
            Registry::new()
                .load(&empty_blob(FilterSpec::Snarf.spec_id()))
                .err(),
            Some(FilterError::Unregistered("SNARF"))
        );
    }

    #[test]
    fn core_registry_builds_its_own_filters() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 1_000_003).collect();
        let cfg = FilterConfig::new(&keys).bits_per_key(12.0);
        let registry = Registry::new();
        assert_eq!(registry.registered().count(), 2);
        for spec in [FilterSpec::Grafite, FilterSpec::Bucketing] {
            let f = registry.build(spec, &cfg).unwrap();
            assert_eq!(f.num_keys(), keys.len());
            for &k in keys.iter().step_by(17) {
                assert!(f.may_contain(k), "{} false negative", f.name());
            }
        }
    }

    #[test]
    fn unregistered_spec_errors_with_label() {
        let keys = [1u64, 2, 3];
        let cfg = FilterConfig::new(&keys);
        let err = Registry::empty().build(FilterSpec::Snarf, &cfg).err();
        assert!(matches!(err, Some(FilterError::Unregistered("SNARF"))));
        let err = Registry::new().build(FilterSpec::Proteus, &cfg).err();
        assert!(matches!(err, Some(FilterError::Unregistered("Proteus"))));
    }
}
