//! The library-level filter registry: a typed table mapping every
//! [`FilterSpec`] of the paper's evaluation to a builder over the shared
//! [`FilterConfig`].
//!
//! `grafite-core` cannot name the competitor filter types (they live in
//! crates that depend on this one), so the registry is a table of plain
//! builder *functions*: this crate pre-registers its own two filters
//! (Grafite §3, Bucketing §4) via [`Registry::new`], and
//! `grafite_filters::standard_registry()` returns the table with all eleven
//! specs populated. The bench crate's former 70-line construction `match`
//! is now pure delegation into this module.

use crate::bucketing::BucketingFilter;
use crate::error::FilterError;
use crate::grafite::GrafiteFilter;
use crate::traits::{BuildableFilter, FilterConfig, RangeFilter};

/// Every filter of the paper's §6 comparison, plus the §2 trivial baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterSpec {
    /// Grafite (this paper, robust).
    Grafite,
    /// Bucketing (this paper, heuristic).
    Bucketing,
    /// SNARF (heuristic; uses the overflow-fixed model).
    Snarf,
    /// SuRF with real suffixes (heuristic; the paper's range-query config).
    SurfReal,
    /// SuRF with hashed suffixes (heuristic; the paper's point-query config).
    SurfHash,
    /// Proteus, auto-tuned on the query sample (heuristic).
    Proteus,
    /// Rosetta, auto-tuned on the query sample (robust).
    Rosetta,
    /// REncoder, base configuration (robust for in-budget range sizes).
    REncoder,
    /// REncoder with fixed selective storage (heuristic).
    REncoderSS,
    /// REncoder with sample-estimated storage (heuristic, auto-tuned).
    REncoderSE,
    /// The §2 theoretical baseline: Bloom filter probed point-by-point.
    TrivialBloom,
}

impl FilterSpec {
    /// Number of specs (the registry's table width).
    pub const COUNT: usize = 11;

    /// Every spec, in declaration order.
    pub const ALL: [FilterSpec; Self::COUNT] = [
        FilterSpec::Grafite,
        FilterSpec::Bucketing,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
        FilterSpec::SurfHash,
        FilterSpec::Proteus,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
        FilterSpec::REncoderSS,
        FilterSpec::REncoderSE,
        FilterSpec::TrivialBloom,
    ];

    /// The robust filters of §6.4.
    pub const ROBUST: [FilterSpec; 3] =
        [FilterSpec::Grafite, FilterSpec::Rosetta, FilterSpec::REncoder];

    /// The heuristic filters of §6.3.
    pub const HEURISTIC: [FilterSpec; 6] = [
        FilterSpec::Bucketing,
        FilterSpec::SurfReal,
        FilterSpec::Snarf,
        FilterSpec::Proteus,
        FilterSpec::REncoderSS,
        FilterSpec::REncoderSE,
    ];

    /// The nine filters of the Figure 3 robustness grid.
    pub const ALL_FIG3: [FilterSpec; 9] = [
        FilterSpec::Grafite,
        FilterSpec::Bucketing,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
        FilterSpec::Proteus,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
        FilterSpec::REncoderSS,
        FilterSpec::REncoderSE,
    ];

    /// The six filters of the paper's Figure 1 teaser.
    pub const FIG1: [FilterSpec; 6] = [
        FilterSpec::Grafite,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
        FilterSpec::Proteus,
        FilterSpec::Rosetta,
        FilterSpec::REncoder,
    ];

    /// Harness display name.
    pub fn label(&self) -> &'static str {
        match self {
            FilterSpec::Grafite => "Grafite",
            FilterSpec::Bucketing => "Bucketing",
            FilterSpec::Snarf => "SNARF",
            FilterSpec::SurfReal => "SuRF",
            FilterSpec::SurfHash => "SuRF-Hash",
            FilterSpec::Proteus => "Proteus",
            FilterSpec::Rosetta => "Rosetta",
            FilterSpec::REncoder => "REncoder",
            FilterSpec::REncoderSS => "REncoderSS",
            FilterSpec::REncoderSE => "REncoderSE",
            FilterSpec::TrivialBloom => "TrivialBloom",
        }
    }

    /// Row index in the registry table.
    #[inline]
    const fn index(self) -> usize {
        self as usize
    }
}

/// A registered builder: constructs a boxed filter from the shared config,
/// or explains why the configuration is infeasible.
pub type BuilderFn = fn(&FilterConfig<'_>) -> Result<Box<dyn RangeFilter>, FilterError>;

/// A table of filter builders keyed by [`FilterSpec`].
///
/// [`Registry::new`] pre-registers this crate's own filters (Grafite and
/// Bucketing); downstream crates register the rest — use
/// `grafite_filters::standard_registry()` for the complete table of the
/// paper's eleven configurations. Registration is by plain function
/// pointer, so a `Registry` is `Copy`-cheap to clone and needs no
/// allocation.
#[derive(Clone, Debug)]
pub struct Registry {
    builders: [Option<BuilderFn>; FilterSpec::COUNT],
}

impl Default for Registry {
    /// Same as [`Registry::new`]: the core filters come registered.
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with the core filters (Grafite, Bucketing) registered.
    pub fn new() -> Self {
        let mut r = Self::empty();
        r.register(FilterSpec::Grafite, |cfg| {
            <GrafiteFilter as BuildableFilter>::build(cfg).map(|f| Box::new(f) as _)
        });
        r.register(FilterSpec::Bucketing, |cfg| {
            <BucketingFilter as BuildableFilter>::build(cfg).map(|f| Box::new(f) as _)
        });
        r
    }

    /// A registry with no builders at all.
    pub fn empty() -> Self {
        Self {
            builders: [None; FilterSpec::COUNT],
        }
    }

    /// Registers (or replaces) the builder for `spec`. Returns `&mut self`
    /// for chaining.
    pub fn register(&mut self, spec: FilterSpec, builder: BuilderFn) -> &mut Self {
        self.builders[spec.index()] = Some(builder);
        self
    }

    /// Whether a builder is registered for `spec`.
    #[inline]
    pub fn is_registered(&self, spec: FilterSpec) -> bool {
        self.builders[spec.index()].is_some()
    }

    /// The specs with a registered builder, in declaration order.
    pub fn registered(&self) -> impl Iterator<Item = FilterSpec> + '_ {
        FilterSpec::ALL.into_iter().filter(|&s| self.is_registered(s))
    }

    /// Builds `spec` from the shared config.
    ///
    /// Errors are either [`FilterError::Unregistered`] (no builder for this
    /// spec in this table) or whatever the filter's own
    /// [`BuildableFilter::build`] reports — e.g.
    /// [`FilterError::BudgetBelowFloor`] for SuRF under its trie floor.
    pub fn build(
        &self,
        spec: FilterSpec,
        cfg: &FilterConfig<'_>,
    ) -> Result<Box<dyn RangeFilter>, FilterError> {
        match self.builders[spec.index()] {
            Some(builder) => builder(cfg),
            None => Err(FilterError::Unregistered(spec.label())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_table_is_consistent() {
        assert_eq!(FilterSpec::ALL.len(), FilterSpec::COUNT);
        for (i, spec) in FilterSpec::ALL.into_iter().enumerate() {
            assert_eq!(spec.index(), i, "{} out of order", spec.label());
        }
    }

    #[test]
    fn core_registry_builds_its_own_filters() {
        let keys: Vec<u64> = (0..500u64).map(|i| i * 1_000_003).collect();
        let cfg = FilterConfig::new(&keys).bits_per_key(12.0);
        let registry = Registry::new();
        assert_eq!(registry.registered().count(), 2);
        for spec in [FilterSpec::Grafite, FilterSpec::Bucketing] {
            let f = registry.build(spec, &cfg).unwrap();
            assert_eq!(f.num_keys(), keys.len());
            for &k in keys.iter().step_by(17) {
                assert!(f.may_contain(k), "{} false negative", f.name());
            }
        }
    }

    #[test]
    fn unregistered_spec_errors_with_label() {
        let keys = [1u64, 2, 3];
        let cfg = FilterConfig::new(&keys);
        let err = Registry::empty().build(FilterSpec::Snarf, &cfg).err();
        assert!(matches!(err, Some(FilterError::Unregistered("SNARF"))));
        let err = Registry::new().build(FilterSpec::Proteus, &cfg).err();
        assert!(matches!(err, Some(FilterError::Unregistered("Proteus"))));
    }
}
