//! Sorting routines for filter construction.
//!
//! Grafite's construction is sort-bound (paper Algorithm 1 and §6.6): hash
//! all keys, sort the codes, Elias–Fano-encode. The paper notes that faster
//! or parallel sorts translate directly into construction speedups (their
//! §6.6 reports 1.5–2.0× with 2–8 threads). We provide three interchangeable
//! sorts for the §6.6 ablation:
//!
//! * [`std_sort`] — `slice::sort_unstable` (pdqsort), the default;
//! * [`radix_sort`] — an LSD radix sort with 8-bit digits;
//! * [`partition_radix_sort`] — an MSD top-byte counting partition into
//!   disjoint output ranges, then per-partition LSD radix on
//!   `std::thread::scope` workers. No k-way merge: the partitions are
//!   already in global order, so workers never synchronize on data and the
//!   serial fraction is one O(n) scatter. This is the sort the Grafite
//!   hash→sort→encode build path runs.

/// Below this input size [`partition_radix_sort`] runs the serial
/// [`radix_sort`] regardless of the requested thread count: thread spawn
/// and histogram overhead (~tens of µs) cannot pay for itself on inputs
/// that sort in less than that.
pub const PARTITION_PARALLEL_MIN: usize = 1 << 15;

/// Sorts in place with the standard unstable sort.
pub fn std_sort(data: &mut [u64]) {
    data.sort_unstable();
}

/// LSD radix sort with 8-bit digits (8 stable counting passes).
///
/// Skips passes whose digit is constant across the input — on keys from a
/// small universe this makes it adaptive. The scatter passes ping-pong
/// between `data` and a scratch buffer instead of copying the buffer back
/// after every pass; a single final copy runs only when an odd number of
/// scatter passes left the result in the scratch side.
pub fn radix_sort(data: &mut [u64]) {
    let mut buf = vec![0u64; data.len()];
    radix_sort_with_scratch(data, &mut buf);
}

/// [`radix_sort`] with a caller-provided scratch buffer (`buf.len() >=
/// data.len()`), so a worker sorting many partitions reuses one allocation
/// instead of reallocating per partition.
///
/// # Panics
/// Panics if `buf` is shorter than `data`.
pub fn radix_sort_with_scratch(data: &mut [u64], buf: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(buf.len() >= n, "scratch buffer shorter than input");
    let buf = &mut buf[..n];
    let mut in_data = true;
    {
        let mut src: &mut [u64] = data;
        let mut dst: &mut [u64] = buf;
        for pass in 0..8u32 {
            let shift = pass * 8;
            let mut counts = [0usize; 256];
            for &x in src.iter() {
                counts[((x >> shift) & 0xFF) as usize] += 1;
            }
            if counts.contains(&n) {
                continue; // constant digit: nothing to do this pass
            }
            let mut offsets = [0usize; 256];
            let mut acc = 0usize;
            for d in 0..256 {
                offsets[d] = acc;
                acc += counts[d];
            }
            for &x in src.iter() {
                let d = ((x >> shift) & 0xFF) as usize;
                dst[offsets[d]] = x;
                offsets[d] += 1;
            }
            std::mem::swap(&mut src, &mut dst);
            in_data = !in_data;
        }
    }
    // An even number of scatter passes lands back in `data`; otherwise the
    // sorted run sits in the scratch buffer and needs the one copy.
    if !in_data {
        data.copy_from_slice(buf);
    }
}

/// Parallel partition-then-sort: an MSD counting pass on the top byte
/// splits the input into up to 256 partitions that are *already in global
/// order*, then each partition — a disjoint contiguous range of one shared
/// scratch buffer — is LSD-radix-sorted on the remaining bytes by scoped
/// workers. There is no merge step and no inter-worker communication; the
/// only serial work is the O(n) stable scatter that materializes the
/// partitions.
///
/// The result is identical to `sort_unstable` (and therefore to
/// [`radix_sort`]) for **every** input and thread count: `u64` has one
/// representation per value, so any correct sort yields the same bytes.
/// `threads <= 1` or small inputs take the serial [`radix_sort`] directly.
pub fn partition_radix_sort(data: &mut [u64], threads: usize) {
    let n = data.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < PARTITION_PARALLEL_MIN {
        radix_sort(data);
        return;
    }

    // Phase 1: top-byte histogram, computed in parallel over immutable
    // chunks (shared reads need no synchronization).
    let chunk_len = n.div_ceil(threads);
    let mut counts = [0usize; 256];
    std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut local = [0usize; 256];
                    for &x in chunk {
                        local[(x >> 56) as usize] += 1;
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = handle.join().expect("histogram worker panicked");
            for (total, part) in counts.iter_mut().zip(local) {
                *total += part;
            }
        }
    });

    // Phase 2: one stable scatter into the scratch buffer's disjoint
    // per-digit ranges. Serial by design: safe Rust cannot hand the
    // interleaved write positions of a shared scatter to multiple threads,
    // and this single sequential pass is dominated by the seven parallel
    // radix passes below.
    let mut scratch = vec![0u64; n];
    let mut cursors = [0usize; 256];
    let mut acc = 0usize;
    for d in 0..256 {
        cursors[d] = acc;
        acc += counts[d];
    }
    for &x in data.iter() {
        let d = (x >> 56) as usize;
        scratch[cursors[d]] = x;
        cursors[d] += 1;
    }

    // Phase 3: group the non-empty partitions into at most `threads`
    // contiguous runs of roughly n/threads values each (the tail group
    // absorbs any remainder), so each worker owns one contiguous `&mut`
    // range of the scratch buffer and one reusable radix scratch.
    let target = n.div_ceil(threads);
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(threads);
    let mut current: Vec<usize> = Vec::new();
    let mut current_total = 0usize;
    for &count in counts.iter().filter(|&&c| c > 0) {
        if !current.is_empty() && current_total + count > target && groups.len() + 1 < threads {
            groups.push(std::mem::take(&mut current));
            current_total = 0;
        }
        current.push(count);
        current_total += count;
    }
    if !current.is_empty() {
        groups.push(current);
    }

    std::thread::scope(|scope| {
        let mut rest: &mut [u64] = &mut scratch;
        for lens in &groups {
            let total: usize = lens.iter().sum();
            let (group_slice, tail) = rest.split_at_mut(total);
            rest = tail;
            scope.spawn(move || {
                // One scratch per worker, grown to its largest partition
                // and reused across all of them.
                let mut buf: Vec<u64> = Vec::new();
                let mut remaining = group_slice;
                for &len in lens {
                    let (partition, tail) = remaining.split_at_mut(len);
                    remaining = tail;
                    if partition.len() > 1 {
                        if buf.len() < partition.len() {
                            buf.resize(partition.len(), 0);
                        }
                        radix_sort_with_scratch(partition, &mut buf);
                    }
                }
            });
        }
    });
    data.copy_from_slice(&scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn radix_matches_std() {
        for n in [0usize, 1, 2, 100, 4097] {
            let mut a = pseudo_random(n, 42);
            let mut b = a.clone();
            a.sort_unstable();
            radix_sort(&mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn radix_small_universe_adaptive() {
        let mut data: Vec<u64> = pseudo_random(5000, 7).iter().map(|x| x % 1000).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        radix_sort(&mut data);
        assert_eq!(data, expect);
    }

    /// Exercises every ping-pong parity: 1 scatter pass (odd — result ends
    /// in the scratch side), 2 passes (even — ends in place), and mixed
    /// skipped passes between varying digits.
    #[test]
    fn radix_ping_pong_parities() {
        for modulus in [1u64 << 8, 1 << 16, 1 << 24, 1 << 40] {
            let mut data: Vec<u64> = pseudo_random(3000, 11)
                .iter()
                .map(|x| x % modulus)
                .collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            radix_sort(&mut data);
            assert_eq!(data, expect, "modulus {modulus}");
        }
        // Digits varying only in bytes 0 and 3 (bytes 1-2 skipped between
        // two scatter passes).
        let mut data: Vec<u64> = pseudo_random(2000, 13)
            .iter()
            .map(|x| (x & 0xFF) | ((x >> 8) & 0xFF) << 24)
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        radix_sort(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn radix_external_scratch_is_reusable() {
        let mut buf = vec![0u64; 5000];
        for seed in [1u64, 2, 3] {
            let mut data = pseudo_random(5000, seed);
            let mut expect = data.clone();
            expect.sort_unstable();
            radix_sort_with_scratch(&mut data, &mut buf);
            assert_eq!(data, expect, "seed {seed}");
        }
    }

    #[test]
    fn partition_matches_std_across_thread_counts() {
        // Above the parallel threshold so the partitioned path actually runs.
        let n = PARTITION_PARALLEL_MIN + 4097;
        for threads in [1usize, 2, 3, 7, 8, 64] {
            let mut a = pseudo_random(n, 3);
            let mut b = a.clone();
            a.sort_unstable();
            partition_radix_sort(&mut b, threads);
            assert_eq!(a, b, "threads={threads}");
        }
    }

    /// Adversarial shapes: constant top byte (single partition), two hot
    /// partitions, already sorted, reverse sorted, all equal.
    #[test]
    fn partition_adversarial_distributions() {
        let n = PARTITION_PARALLEL_MIN + 13;
        let shapes: Vec<Vec<u64>> = vec![
            // One partition holds everything (top byte constant).
            pseudo_random(n, 5)
                .iter()
                .map(|x| x & 0x00FF_FFFF)
                .collect(),
            // Two partitions, extreme skew.
            pseudo_random(n, 6)
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    if i % 17 == 0 {
                        x | (0xFFu64 << 56)
                    } else {
                        x & 0x00FF_FFFF
                    }
                })
                .collect(),
            (0..n as u64).collect(),
            (0..n as u64).rev().collect(),
            vec![0x4242_4242_4242_4242; n],
        ];
        for (i, shape) in shapes.into_iter().enumerate() {
            for threads in [2usize, 8] {
                let mut got = shape.clone();
                let mut expect = shape.clone();
                expect.sort_unstable();
                partition_radix_sort(&mut got, threads);
                assert_eq!(got, expect, "shape {i} threads {threads}");
            }
        }
    }

    #[test]
    fn partition_tiny_inputs() {
        let mut v = vec![3u64, 1];
        partition_radix_sort(&mut v, 16);
        assert_eq!(v, vec![1, 3]);
        let mut v: Vec<u64> = vec![];
        partition_radix_sort(&mut v, 4);
        assert!(v.is_empty());
        let mut v = vec![9u64];
        partition_radix_sort(&mut v, 2);
        assert_eq!(v, vec![9]);
    }
}
