//! Sorting routines for filter construction.
//!
//! Grafite's construction is sort-bound (paper Algorithm 1 and §6.6): hash
//! all keys, sort the codes, Elias–Fano-encode. The paper notes that faster
//! or parallel sorts translate directly into construction speedups (their
//! §6.6 reports 1.5–2.0× with 2–8 threads). We provide three interchangeable
//! sorts for the §6.6 ablation:
//!
//! * [`std_sort`] — `slice::sort_unstable` (pdqsort), the default;
//! * [`radix_sort`] — an LSD radix sort with 8-bit digits;
//! * [`parallel_sort`] — chunked sort + k-way merge on `std::thread::scope`.

/// Sorts in place with the standard unstable sort.
pub fn std_sort(data: &mut [u64]) {
    data.sort_unstable();
}

/// LSD radix sort with 8-bit digits (8 stable counting passes).
///
/// Skips passes whose digit is constant across the input — on keys from a
/// small universe this makes it adaptive. The scatter passes ping-pong
/// between `data` and a scratch buffer instead of copying the buffer back
/// after every pass; a single final copy runs only when an odd number of
/// scatter passes left the result in the scratch side.
pub fn radix_sort(data: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut buf = vec![0u64; n];
    let mut in_data = true;
    {
        let mut src: &mut [u64] = data;
        let mut dst: &mut [u64] = &mut buf;
        for pass in 0..8u32 {
            let shift = pass * 8;
            let mut counts = [0usize; 256];
            for &x in src.iter() {
                counts[((x >> shift) & 0xFF) as usize] += 1;
            }
            if counts.contains(&n) {
                continue; // constant digit: nothing to do this pass
            }
            let mut offsets = [0usize; 256];
            let mut acc = 0usize;
            for d in 0..256 {
                offsets[d] = acc;
                acc += counts[d];
            }
            for &x in src.iter() {
                let d = ((x >> shift) & 0xFF) as usize;
                dst[offsets[d]] = x;
                offsets[d] += 1;
            }
            std::mem::swap(&mut src, &mut dst);
            in_data = !in_data;
        }
    }
    // An even number of scatter passes lands back in `data`; otherwise the
    // sorted run sits in the scratch buffer and needs the one copy.
    if !in_data {
        data.copy_from_slice(&buf);
    }
}

/// Parallel merge sort: recursively split across threads, sort halves
/// concurrently, merge. Mirrors the paper's multi-threaded construction
/// experiment (§6.6); the final single-threaded merge bounds the speedup to
/// the same ~1.5–2x regime the paper reports.
pub fn parallel_sort(data: &mut [u64], threads: usize) {
    let n = data.len();
    let threads = threads.max(1).min(n.max(1));
    if n <= 1 {
        return;
    }
    let mut scratch = vec![0u64; n];
    sort_rec(data, &mut scratch, threads);
}

fn sort_rec(data: &mut [u64], scratch: &mut [u64], threads: usize) {
    if threads <= 1 || data.len() < 4096 {
        data.sort_unstable();
        return;
    }
    let mid = data.len() / 2;
    let (left, right) = data.split_at_mut(mid);
    let (s_left, s_right) = scratch.split_at_mut(mid);
    std::thread::scope(|scope| {
        scope.spawn(|| sort_rec(left, s_left, threads / 2));
        sort_rec(right, s_right, threads - threads / 2);
    });
    // Merge the sorted halves through the scratch buffer.
    let (mut i, mut j) = (0usize, 0usize);
    for slot in scratch.iter_mut() {
        let take_left = j >= right.len() || (i < left.len() && left[i] <= right[j]);
        if take_left {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
    data.copy_from_slice(scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn radix_matches_std() {
        for n in [0usize, 1, 2, 100, 4097] {
            let mut a = pseudo_random(n, 42);
            let mut b = a.clone();
            a.sort_unstable();
            radix_sort(&mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn radix_small_universe_adaptive() {
        let mut data: Vec<u64> = pseudo_random(5000, 7).iter().map(|x| x % 1000).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        radix_sort(&mut data);
        assert_eq!(data, expect);
    }

    /// Exercises every ping-pong parity: 1 scatter pass (odd — result ends
    /// in the scratch side), 2 passes (even — ends in place), and mixed
    /// skipped passes between varying digits.
    #[test]
    fn radix_ping_pong_parities() {
        for modulus in [1u64 << 8, 1 << 16, 1 << 24, 1 << 40] {
            let mut data: Vec<u64> = pseudo_random(3000, 11)
                .iter()
                .map(|x| x % modulus)
                .collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            radix_sort(&mut data);
            assert_eq!(data, expect, "modulus {modulus}");
        }
        // Digits varying only in bytes 0 and 3 (bytes 1-2 skipped between
        // two scatter passes).
        let mut data: Vec<u64> = pseudo_random(2000, 13)
            .iter()
            .map(|x| (x & 0xFF) | ((x >> 8) & 0xFF) << 24)
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        radix_sort(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn parallel_matches_std() {
        for threads in [1usize, 2, 3, 8, 64] {
            let mut a = pseudo_random(10_001, 3);
            let mut b = a.clone();
            a.sort_unstable();
            parallel_sort(&mut b, threads);
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn parallel_tiny_inputs() {
        let mut v = vec![3u64, 1];
        parallel_sort(&mut v, 16);
        assert_eq!(v, vec![1, 3]);
        let mut v: Vec<u64> = vec![];
        parallel_sort(&mut v, 4);
        assert!(v.is_empty());
    }
}
