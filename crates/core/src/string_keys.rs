//! The string-key extension of Grafite sketched in the paper's Section 7:
//! choose `r = 2^k` so the reduction becomes
//! `h(x) = (q(x >> k) + x) & (r − 1)` — pure shifts, masks, and adds — and
//! realise `q` with a practical string hash (xxHash64).
//!
//! Byte-string keys are first mapped to `u64` by taking their first eight
//! bytes big-endian (zero-padded). The mapping is monotone with respect to
//! lexicographic order, so a key inside the query range always lands inside
//! the mapped range: **no false negatives**. Strings sharing an 8-byte
//! prefix become indistinguishable, which can only add false positives; the
//! paper's integer guarantees apply to the mapped 64-bit universe.

use grafite_hash::xxhash::xxh64;
use grafite_succinct::EliasFano;

use crate::error::FilterError;

/// A Grafite range filter over byte-string keys.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StringGrafite {
    k: u32,
    seed: u64,
    codes: EliasFano,
    n_keys: usize,
}

impl StringGrafite {
    /// Builds over string keys with a space budget in bits per key.
    ///
    /// `r` is rounded to the power of two `2^k` with
    /// `k = ⌈log2(n)⌉ + ⌈bits − 2⌉`, honouring the Corollary 3.5 sizing.
    pub fn new<K: AsRef<[u8]>>(
        keys: &[K],
        bits_per_key: f64,
        seed: u64,
    ) -> Result<Self, FilterError> {
        if !(bits_per_key > 2.0 && bits_per_key.is_finite()) {
            return Err(FilterError::InvalidBudget(bits_per_key));
        }
        let n = keys.len();
        if n == 0 {
            return Ok(Self {
                k: 1,
                seed,
                codes: EliasFano::new(&[], 2),
                n_keys: 0,
            });
        }
        let k = ((n.max(2) as f64).log2().ceil() + (bits_per_key - 2.0).ceil()) as u32;
        if k >= 61 {
            return Err(FilterError::ReducedUniverseTooLarge {
                requested: 1u128 << k,
                supported: 1u64 << 60,
            });
        }
        let mut filter = Self {
            k,
            seed,
            codes: EliasFano::new(&[], 2),
            n_keys: n,
        };
        let mut codes: Vec<u64> = keys
            .iter()
            .map(|key| filter.h(Self::key_to_u64(key.as_ref())))
            .collect();
        codes.sort_unstable();
        codes.dedup();
        filter.codes = EliasFano::new(&codes, 1u64 << k);
        Ok(filter)
    }

    /// The order-preserving 8-byte-prefix embedding of a byte string into
    /// the `u64` universe.
    pub fn key_to_u64(key: &[u8]) -> u64 {
        let mut buf = [0u8; 8];
        let take = key.len().min(8);
        buf[..take].copy_from_slice(&key[..take]);
        u64::from_be_bytes(buf)
    }

    #[inline]
    fn r(&self) -> u64 {
        1u64 << self.k
    }

    /// `q` realised with xxHash64 over the block index, as §7 suggests.
    #[inline]
    fn q(&self, block: u64) -> u64 {
        xxh64(&block.to_le_bytes(), self.seed) & (self.r() - 1)
    }

    /// `h(x) = (q(x >> k) + x) & (r − 1)`.
    #[inline]
    fn h(&self, x: u64) -> u64 {
        self.q(x >> self.k).wrapping_add(x) & (self.r() - 1)
    }

    fn query_within_block(&self, a: u64, b: u64) -> bool {
        let (ha, hb) = (self.h(a), self.h(b));
        if ha <= hb {
            match self.codes.predecessor(hb) {
                Some(z) => z >= ha,
                None => false,
            }
        } else {
            self.codes.first() <= hb || self.codes.last() >= ha
        }
    }

    /// Whether the lexicographic closed range `[a, b]` may contain a key.
    ///
    /// # Panics
    /// Panics if `a > b` lexicographically.
    pub fn may_contain_range(&self, a: &[u8], b: &[u8]) -> bool {
        assert!(a <= b, "inverted string range");
        if self.n_keys == 0 {
            return false;
        }
        let (ia, ib) = (Self::key_to_u64(a), Self::key_to_u64(b));
        let (block_a, block_b) = (ia >> self.k, ib >> self.k);
        if block_a == block_b {
            self.query_within_block(ia, ib)
        } else if block_b == block_a + 1 {
            let b_first = ib & !(self.r() - 1);
            self.query_within_block(b_first, ib) || self.query_within_block(ia, b_first - 1)
        } else {
            true
        }
    }

    /// Point-membership test.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.may_contain_range(key, key)
    }

    /// Number of keys indexed.
    pub fn num_keys(&self) -> usize {
        self.n_keys
    }

    /// Heap size in bits.
    pub fn size_in_bits(&self) -> usize {
        self.codes.size_in_bits() + 3 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORDS: &[&str] = &[
        "apple", "apricot", "banana", "blueberry", "cherry", "durian", "elderberry", "fig",
        "grape", "grapefruit", "kiwi", "lemon", "lime", "mango", "melon", "nectarine", "orange",
        "papaya", "peach", "pear", "plum", "raspberry", "strawberry", "tangerine", "watermelon",
    ];

    #[test]
    fn embedding_is_monotone() {
        let mut mapped: Vec<u64> = WORDS.iter().map(|w| StringGrafite::key_to_u64(w.as_bytes())).collect();
        let mut sorted = mapped.clone();
        sorted.sort_unstable();
        mapped.dedup();
        assert_eq!(mapped, sorted, "8-byte-prefix embedding must be monotone");
    }

    #[test]
    fn no_false_negatives_on_words() {
        let f = StringGrafite::new(WORDS, 14.0, 7).unwrap();
        for w in WORDS {
            assert!(f.may_contain(w.as_bytes()), "FN on {w}");
        }
        // Ranges bounded by existing words are never negative.
        assert!(f.may_contain_range(b"apple", b"banana"));
        assert!(f.may_contain_range(b"peach", b"plum"));
        assert!(f.may_contain_range(b"a", b"z"));
    }

    #[test]
    fn empty_filter() {
        let f = StringGrafite::new::<&str>(&[], 14.0, 0).unwrap();
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn far_ranges_mostly_filtered() {
        let f = StringGrafite::new(WORDS, 20.0, 1).unwrap();
        // Count positives over disjoint probes far from the keys (digits sort
        // before letters, so these ranges are key-free).
        let mut positives = 0;
        for i in 0..2000u32 {
            let a = format!("0query{i:05}");
            let b = format!("0query{i:05}~");
            if f.may_contain_range(a.as_bytes(), b.as_bytes()) {
                positives += 1;
            }
        }
        assert!(positives < 100, "string filter not filtering: {positives}/2000");
    }

    #[test]
    fn budget_validation() {
        assert!(StringGrafite::new(WORDS, 1.0, 0).is_err());
    }

    #[test]
    fn long_shared_prefixes_fold_together() {
        // Strings sharing the first 8 bytes are indistinguishable: positives,
        // never negatives.
        let keys = ["prefix00suffix-a", "prefix00suffix-b"];
        let f = StringGrafite::new(&keys, 16.0, 0).unwrap();
        assert!(f.may_contain(b"prefix00-anything"));
    }
}
