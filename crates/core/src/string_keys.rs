//! The string-key extension of Grafite sketched in the paper's Section 7:
//! choose `r = 2^k` so the reduction becomes
//! `h(x) = (q(x >> k) + x) & (r − 1)` — pure shifts, masks, and adds — and
//! realise `q` with a practical string hash (xxHash64).
//!
//! Arbitrary key types reach the 64-bit universe through a [`KeyCodec`]: a
//! **monotone** embedding into `u64`. Two codecs ship with the crate —
//! [`IdentityCodec`] for integer keys and [`BytesPrefixCodec`] for byte
//! strings (first eight bytes, big-endian, zero-padded). Monotonicity is
//! what preserves the no-false-negative guarantee: a key inside the query
//! range always lands inside the embedded range. A non-injective codec
//! (e.g. strings sharing an 8-byte prefix) can only *add* false positives;
//! the paper's integer guarantees then apply to the embedded universe.
//!
//! [`StringGrafite`] also implements the workspace-wide [`RangeFilter`] and
//! [`BuildableFilter`] protocols over the embedded `u64` universe, so it
//! plugs into the same harnesses as every integer filter.

use grafite_hash::xxhash::xxh64;
use grafite_succinct::io::{WordSource, WordWriter};
use grafite_succinct::EliasFano;

use crate::error::FilterError;
use crate::persist::{spec_id, Header};
use crate::traits::{BuildableFilter, FilterConfig, PersistentFilter, RangeFilter};

/// A monotone embedding of a key type into the `u64` universe.
///
/// # Contract
///
/// `k1 <= k2` (in the key type's order) must imply
/// `encode(k1) <= encode(k2)`. The embedding need not be injective: keys
/// that collide merely fold together, which is conservative (false
/// positives only, never false negatives).
pub trait KeyCodec {
    /// The key type this codec embeds (unsized types like `[u8]` welcome).
    type Key: ?Sized;

    /// The monotone embedding itself.
    fn encode(key: &Self::Key) -> u64;
}

/// The trivial codec for keys that already are `u64`.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityCodec;

impl KeyCodec for IdentityCodec {
    type Key = u64;

    #[inline]
    fn encode(key: &u64) -> u64 {
        *key
    }
}

/// Byte strings through their first eight bytes, big-endian, zero-padded.
///
/// Monotone with respect to lexicographic order; strings sharing an 8-byte
/// prefix become indistinguishable (conservative folding), so keys should
/// carry their entropy early.
#[derive(Clone, Copy, Debug, Default)]
pub struct BytesPrefixCodec;

impl KeyCodec for BytesPrefixCodec {
    type Key = [u8];

    #[inline]
    fn encode(key: &[u8]) -> u64 {
        let mut buf = [0u8; 8];
        let take = key.len().min(8);
        buf[..take].copy_from_slice(&key[..take]);
        u64::from_be_bytes(buf)
    }
}

/// A Grafite range filter over byte-string keys (or, through
/// [`StringGrafite::with_codec`], any [`KeyCodec`]-embeddable key type).
#[derive(Clone, Debug)]
pub struct StringGrafite {
    k: u32,
    seed: u64,
    codes: EliasFano,
    n_keys: usize,
}

impl StringGrafite {
    /// Builds over byte-string keys with a space budget in bits per key,
    /// embedding through [`BytesPrefixCodec`].
    ///
    /// `r` is rounded to the power of two `2^k` with
    /// `k = ⌈log2(n)⌉ + ⌈bits − 2⌉`, honouring the Corollary 3.5 sizing.
    pub fn new<K: AsRef<[u8]>>(
        keys: &[K],
        bits_per_key: f64,
        seed: u64,
    ) -> Result<Self, FilterError> {
        Self::from_embedded(
            keys.len(),
            keys.iter()
                .map(|key| BytesPrefixCodec::encode(key.as_ref())),
            bits_per_key,
            seed,
        )
    }

    /// Builds through an explicit [`KeyCodec`]. `IdentityCodec` makes this
    /// a plain power-of-two-universe Grafite over `u64` keys.
    pub fn with_codec<C, K>(keys: &[K], bits_per_key: f64, seed: u64) -> Result<Self, FilterError>
    where
        C: KeyCodec,
        K: std::borrow::Borrow<C::Key>,
    {
        Self::from_embedded(
            keys.len(),
            keys.iter().map(|key| C::encode(key.borrow())),
            bits_per_key,
            seed,
        )
    }

    /// Builds directly from `u64` keys ([`IdentityCodec`]); this is the
    /// [`BuildableFilter`] entry point.
    pub fn from_u64_keys(keys: &[u64], bits_per_key: f64, seed: u64) -> Result<Self, FilterError> {
        Self::with_codec::<IdentityCodec, u64>(keys, bits_per_key, seed)
    }

    /// Shared construction over already-embedded keys.
    fn from_embedded<I: Iterator<Item = u64>>(
        n: usize,
        embedded: I,
        bits_per_key: f64,
        seed: u64,
    ) -> Result<Self, FilterError> {
        if !(bits_per_key > 2.0 && bits_per_key.is_finite()) {
            return Err(FilterError::InvalidBudget(bits_per_key));
        }
        if n == 0 {
            return Ok(Self {
                k: 1,
                seed,
                codes: EliasFano::new(&[], 2),
                n_keys: 0,
            });
        }
        let k = ((n.max(2) as f64).log2().ceil() + (bits_per_key - 2.0).ceil()) as u32;
        if k >= 61 {
            return Err(FilterError::ReducedUniverseTooLarge {
                requested: 1u128 << k,
                supported: 1u64 << 60,
            });
        }
        let mut filter = Self {
            k,
            seed,
            codes: EliasFano::new(&[], 2),
            n_keys: n,
        };
        let mut codes: Vec<u64> = embedded.map(|x| filter.h(x)).collect();
        codes.sort_unstable();
        codes.dedup();
        filter.codes = EliasFano::new(&codes, 1u64 << k);
        Ok(filter)
    }

    /// The order-preserving 8-byte-prefix embedding of a byte string into
    /// the `u64` universe (the [`BytesPrefixCodec`]).
    pub fn key_to_u64(key: &[u8]) -> u64 {
        BytesPrefixCodec::encode(key)
    }

    #[inline]
    fn r(&self) -> u64 {
        1u64 << self.k
    }

    /// `q` realised with xxHash64 over the block index, as §7 suggests.
    #[inline]
    fn q(&self, block: u64) -> u64 {
        xxh64(&block.to_le_bytes(), self.seed) & (self.r() - 1)
    }

    /// `h(x) = (q(x >> k) + x) & (r − 1)`.
    #[inline]
    fn h(&self, x: u64) -> u64 {
        self.q(x >> self.k).wrapping_add(x) & (self.r() - 1)
    }

    fn query_within_block(&self, a: u64, b: u64) -> bool {
        let (ha, hb) = (self.h(a), self.h(b));
        if ha <= hb {
            match self.codes.predecessor(hb) {
                Some(z) => z >= ha,
                None => false,
            }
        } else {
            self.codes.first() <= hb || self.codes.last() >= ha
        }
    }

    /// Range emptiness over the embedded `u64` universe.
    fn query_embedded(&self, ia: u64, ib: u64) -> bool {
        debug_assert!(ia <= ib, "inverted range [{ia}, {ib}]");
        if self.n_keys == 0 {
            return false;
        }
        let (block_a, block_b) = (ia >> self.k, ib >> self.k);
        if block_a == block_b {
            self.query_within_block(ia, ib)
        } else if block_b == block_a + 1 {
            let b_first = ib & !(self.r() - 1);
            self.query_within_block(b_first, ib) || self.query_within_block(ia, b_first - 1)
        } else {
            true
        }
    }

    /// Whether the lexicographic closed range `[a, b]` may contain a key.
    ///
    /// Requires `a <= b` lexicographically (debug-asserted, consistent with
    /// the [`RangeFilter`] contract).
    pub fn may_contain_range(&self, a: &[u8], b: &[u8]) -> bool {
        debug_assert!(a <= b, "inverted string range");
        self.query_embedded(BytesPrefixCodec::encode(a), BytesPrefixCodec::encode(b))
    }

    /// Point-membership test.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.may_contain_range(key, key)
    }

    /// Number of keys indexed.
    pub fn num_keys(&self) -> usize {
        self.n_keys
    }

    /// Heap size in bits.
    pub fn size_in_bits(&self) -> usize {
        self.codes.size_in_bits() + 3 * 64
    }
}

/// Batches smaller than this take the scalar path (mirrors
/// `GrafiteFilter`'s batch gate).
const BATCH_MIN_QUERIES: usize = 32;

/// The integer view over the embedded universe, so `StringGrafite` plugs
/// into every harness that speaks [`RangeFilter`]. Probes are interpreted
/// as already-embedded keys (what a [`KeyCodec`] produces); the inherent
/// byte-slice methods shadow these for method-call syntax, so reach the
/// trait view through `RangeFilter::may_contain_range(&f, a, b)` or a
/// `&dyn RangeFilter`.
impl RangeFilter for StringGrafite {
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        self.query_embedded(a, b)
    }

    /// Batch specialisation mirroring `GrafiteFilter`'s: every non-wrapped
    /// hashed sub-interval becomes a sorted probe resolved with one
    /// [`grafite_succinct::EfCursor`] pass over the code sequence.
    fn may_contain_ranges(&self, queries: &[(u64, u64)], out: &mut Vec<bool>) {
        out.clear();
        if self.n_keys == 0 {
            out.resize(queries.len(), false);
            return;
        }
        if queries.len() < BATCH_MIN_QUERIES {
            out.extend(queries.iter().map(|&(a, b)| self.query_embedded(a, b)));
            return;
        }
        out.resize(queries.len(), false);
        let mut probes: Vec<(u64, u64, u32)> = Vec::with_capacity(queries.len());
        let (first, last) = (self.codes.first(), self.codes.last());
        let push_sub =
            |probes: &mut Vec<(u64, u64, u32)>, answered: &mut bool, a: u64, b: u64, i: usize| {
                if *answered {
                    return;
                }
                let (ha, hb) = (self.h(a), self.h(b));
                if ha <= hb {
                    probes.push((hb, ha, i as u32));
                } else if first <= hb || last >= ha {
                    // Wrapped image [ha, r) ∪ [0, hb]: O(1), no probe needed.
                    *answered = true;
                }
            };
        for (i, &(a, b)) in queries.iter().enumerate() {
            debug_assert!(a <= b, "inverted range [{a}, {b}]");
            let (block_a, block_b) = (a >> self.k, b >> self.k);
            if block_a == block_b {
                push_sub(&mut probes, &mut out[i], a, b, i);
            } else if block_b == block_a + 1 {
                let b_first = b & !(self.r() - 1);
                push_sub(&mut probes, &mut out[i], b_first, b, i);
                push_sub(&mut probes, &mut out[i], a, b_first - 1, i);
            } else {
                out[i] = true;
            }
        }
        probes.sort_unstable();
        let mut cursor = self.codes.cursor();
        // Adjacent identical `(h(b), h(a))` probes reuse the previous
        // answer — it is a pure function of the pair.
        let mut prev: Option<(u64, u64, bool)> = None;
        for &(hb, ha, i) in &probes {
            let hit = match prev {
                Some((phb, pha, phit)) if phb == hb && pha == ha => phit,
                _ => cursor.predecessor(hb).is_some_and(|p| p >= ha),
            };
            prev = Some((hb, ha, hit));
            if hit {
                out[i as usize] = true;
            }
        }
    }

    fn size_in_bits(&self) -> usize {
        StringGrafite::size_in_bits(self)
    }

    fn num_keys(&self) -> usize {
        StringGrafite::num_keys(self)
    }

    fn name(&self) -> &'static str {
        "Grafite-String"
    }
}

impl PersistentFilter for StringGrafite {
    fn spec_id(&self) -> u32 {
        spec_id::STRING_GRAFITE
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::STRING_GRAFITE]
    }

    /// Payload: `[k, seed]` + the Elias–Fano code sequence.
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        w.word(self.k as u64)?;
        w.word(self.seed)?;
        self.codes.write_to(w)?;
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        let k = src.word()?;
        if k == 0 || k >= 61 {
            return Err(FilterError::corrupt("string-Grafite exponent out of range"));
        }
        let seed = src.word()?;
        let codes = if header.legacy_directories() {
            EliasFano::read_from_v1(src)?
        } else {
            EliasFano::read_from(src)?
        };
        // lint:allow(k is validated to 1..=60 above, the shift cannot overflow)
        if codes.universe() != 1u64 << k {
            return Err(FilterError::corrupt("code universe differs from 2^k"));
        }
        Ok(Self {
            k: k as u32,
            seed,
            codes,
            n_keys: header.n_keys as usize,
        })
    }
}

impl BuildableFilter for StringGrafite {
    /// No extra knobs: the codec choice happens at the call site
    /// ([`StringGrafite::with_codec`]); the protocol path embeds `u64`
    /// keys through [`IdentityCodec`].
    type Tuning = ();

    fn build_with(cfg: &FilterConfig<'_>, _tuning: &()) -> Result<Self, FilterError> {
        Self::from_u64_keys(cfg.keys, cfg.bits_per_key, cfg.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORDS: &[&str] = &[
        "apple",
        "apricot",
        "banana",
        "blueberry",
        "cherry",
        "durian",
        "elderberry",
        "fig",
        "grape",
        "grapefruit",
        "kiwi",
        "lemon",
        "lime",
        "mango",
        "melon",
        "nectarine",
        "orange",
        "papaya",
        "peach",
        "pear",
        "plum",
        "raspberry",
        "strawberry",
        "tangerine",
        "watermelon",
    ];

    #[test]
    fn embedding_is_monotone() {
        let mut mapped: Vec<u64> = WORDS
            .iter()
            .map(|w| StringGrafite::key_to_u64(w.as_bytes()))
            .collect();
        let mut sorted = mapped.clone();
        sorted.sort_unstable();
        mapped.dedup();
        assert_eq!(mapped, sorted, "8-byte-prefix embedding must be monotone");
    }

    #[test]
    fn no_false_negatives_on_words() {
        let f = StringGrafite::new(WORDS, 14.0, 7).unwrap();
        for w in WORDS {
            assert!(f.may_contain(w.as_bytes()), "FN on {w}");
        }
        // Ranges bounded by existing words are never negative.
        assert!(f.may_contain_range(b"apple", b"banana"));
        assert!(f.may_contain_range(b"peach", b"plum"));
        assert!(f.may_contain_range(b"a", b"z"));
    }

    #[test]
    fn empty_filter() {
        let f = StringGrafite::new::<&str>(&[], 14.0, 0).unwrap();
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn far_ranges_mostly_filtered() {
        let f = StringGrafite::new(WORDS, 20.0, 1).unwrap();
        // Count positives over disjoint probes far from the keys (digits sort
        // before letters, so these ranges are key-free).
        let mut positives = 0;
        for i in 0..2000u32 {
            let a = format!("0query{i:05}");
            let b = format!("0query{i:05}~");
            if f.may_contain_range(a.as_bytes(), b.as_bytes()) {
                positives += 1;
            }
        }
        assert!(
            positives < 100,
            "string filter not filtering: {positives}/2000"
        );
    }

    #[test]
    fn budget_validation() {
        assert!(StringGrafite::new(WORDS, 1.0, 0).is_err());
    }

    #[test]
    fn long_shared_prefixes_fold_together() {
        // Strings sharing the first 8 bytes are indistinguishable: positives,
        // never negatives.
        let keys = ["prefix00suffix-a", "prefix00suffix-b"];
        let f = StringGrafite::new(&keys, 16.0, 0).unwrap();
        assert!(f.may_contain(b"prefix00-anything"));
    }

    #[test]
    fn identity_codec_agrees_with_byte_codec() {
        // The same logical keys through both codecs give the same filter.
        let words: Vec<&str> = WORDS.to_vec();
        let embedded: Vec<u64> = words
            .iter()
            .map(|w| BytesPrefixCodec::encode(w.as_bytes()))
            .collect();
        let via_bytes = StringGrafite::new(&words, 14.0, 3).unwrap();
        let via_ints = StringGrafite::from_u64_keys(&embedded, 14.0, 3).unwrap();
        for w in &words {
            let x = BytesPrefixCodec::encode(w.as_bytes());
            assert_eq!(
                via_bytes.may_contain(w.as_bytes()),
                RangeFilter::may_contain(&via_ints, x),
                "codec mismatch on {w}"
            );
        }
        let mut probe = 0xD00Du64;
        for _ in 0..2000 {
            probe = probe.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (a, b) = (probe, probe.saturating_add(1 << 20));
            assert_eq!(
                RangeFilter::may_contain_range(&via_bytes, a, b),
                RangeFilter::may_contain_range(&via_ints, a, b),
            );
        }
    }

    #[test]
    fn batch_matches_scalar_path() {
        let keys: Vec<u64> = (0..4000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let f = StringGrafite::from_u64_keys(&keys, 12.0, 9).unwrap();
        let r = 1u64 << f.k;
        let mut state = 0x57A7Eu64;
        let queries: Vec<(u64, u64)> = (0..1500)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                match i % 4 {
                    0 => {
                        let k = keys[(state % keys.len() as u64) as usize];
                        (k.saturating_sub(state % 64), k.saturating_add(5))
                    }
                    1 => (state, state.saturating_add(31)),
                    2 => {
                        // Crosses exactly one r-block boundary.
                        let block = (state % (u64::MAX / r)).max(1);
                        (block * r - 2, block * r + 2)
                    }
                    _ => (state % r, state % r + 3 * r),
                }
            })
            .collect();
        let mut batched = Vec::new();
        RangeFilter::may_contain_ranges(&f, &queries, &mut batched);
        let singles: Vec<bool> = queries
            .iter()
            .map(|&(a, b)| RangeFilter::may_contain_range(&f, a, b))
            .collect();
        assert_eq!(batched, singles, "string batch diverged from scalar path");
        RangeFilter::may_contain_ranges(&f, &queries[..6], &mut batched);
        assert_eq!(batched, &singles[..6], "small-batch fallback diverged");
    }

    #[test]
    fn buildable_protocol_and_trait_view() {
        let keys: Vec<u64> = (0..3000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let cfg = FilterConfig::new(&keys).bits_per_key(14.0).seed(5);
        let f = StringGrafite::build(&cfg).unwrap();
        let dyn_f: &dyn RangeFilter = &f;
        assert_eq!(dyn_f.num_keys(), keys.len());
        assert_eq!(dyn_f.name(), "Grafite-String");
        assert!(dyn_f.bits_per_key() > 2.0);
        for &k in keys.iter().step_by(13) {
            assert!(dyn_f.may_contain(k), "FN on {k}");
        }
        // Batch answers equal singles through the default trait path.
        let queries: Vec<(u64, u64)> = keys
            .iter()
            .step_by(7)
            .map(|&k| (k.saturating_sub(10), k.saturating_add(10)))
            .collect();
        let mut out = Vec::new();
        dyn_f.may_contain_ranges(&queries, &mut out);
        assert!(out.iter().all(|&x| x), "batch lost a key-bounded range");
    }
}
