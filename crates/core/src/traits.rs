//! The common interface every range filter in this workspace implements.

/// An approximate range-emptiness data structure (paper Problem 1).
///
/// Implementations must guarantee **no false negatives**: if any stored key
/// lies in `[a, b]`, `may_contain_range(a, b)` returns `true`. They may
/// return `true` for empty ranges (a false positive); how often is the whole
/// game, and is what the paper's experiments measure.
pub trait RangeFilter {
    /// Whether the closed range `[a, b]` *may* intersect the key set.
    ///
    /// # Panics
    /// Implementations may panic if `a > b`.
    fn may_contain_range(&self, a: u64, b: u64) -> bool;

    /// Whether the point `x` may be in the key set.
    #[inline]
    fn may_contain(&self, x: u64) -> bool {
        self.may_contain_range(x, x)
    }

    /// Total heap size of the filter in bits, directories included.
    fn size_in_bits(&self) -> usize;

    /// Number of keys the filter was built on.
    fn num_keys(&self) -> usize;

    /// Space per key in bits — the x-axis of the paper's Figures 4–6.
    #[inline]
    fn bits_per_key(&self) -> f64 {
        if self.num_keys() == 0 {
            0.0
        } else {
            self.size_in_bits() as f64 / self.num_keys() as f64
        }
    }

    /// Short display name used by the experiment harness.
    fn name(&self) -> &'static str;
}
