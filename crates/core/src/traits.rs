//! The common interface every range filter in this workspace implements:
//! the query-side [`RangeFilter`] contract and the construction-side
//! [`BuildableFilter`] protocol over a shared [`FilterConfig`].

use crate::error::FilterError;

/// The seed every builder defaults to ("grafite" in ASCII), so that a bare
/// configuration is fully deterministic.
pub const DEFAULT_SEED: u64 = 0x0067_7261_6669_7465;

/// An approximate range-emptiness data structure (paper Problem 1).
///
/// Implementations must guarantee **no false negatives**: if any stored key
/// lies in `[a, b]`, `may_contain_range(a, b)` returns `true`. They may
/// return `true` for empty ranges (a false positive); how often is the whole
/// game, and is what the paper's experiments measure.
///
/// # Inverted ranges
///
/// Every query method requires `a <= b`. This is a caller contract, not an
/// error condition: all implementations in this workspace `debug_assert!`
/// it, so violations panic in debug builds and return an unspecified (but
/// still memory-safe) answer in release builds. Queries never fail and
/// never allocate; all validation happens at construction time.
pub trait RangeFilter {
    /// Whether the closed range `[a, b]` *may* intersect the key set.
    ///
    /// Requires `a <= b` (debug-asserted; see the trait-level contract).
    fn may_contain_range(&self, a: u64, b: u64) -> bool;

    /// Whether the point `x` may be in the key set.
    #[inline]
    fn may_contain(&self, x: u64) -> bool {
        self.may_contain_range(x, x)
    }

    /// Answers a batch of closed ranges, one `bool` per query, into `out`
    /// (which is cleared first). Every query requires `lo <= hi`, as in
    /// [`RangeFilter::may_contain_range`].
    ///
    /// The default implementation is a plain loop over
    /// `may_contain_range`. Implementations may specialise it — e.g.
    /// `GrafiteFilter` answers large batches in one forward pass over its
    /// Elias–Fano codes — but must return **exactly** the answers the
    /// one-at-a-time path returns, in query order.
    fn may_contain_ranges(&self, queries: &[(u64, u64)], out: &mut Vec<bool>) {
        out.clear();
        out.reserve(queries.len());
        for &(a, b) in queries {
            out.push(self.may_contain_range(a, b));
        }
    }

    /// Total heap size of the filter in bits, directories included.
    fn size_in_bits(&self) -> usize;

    /// Number of keys the filter was built on.
    fn num_keys(&self) -> usize;

    /// Space per key in bits — the x-axis of the paper's Figures 4–6.
    #[inline]
    fn bits_per_key(&self) -> f64 {
        if self.num_keys() == 0 {
            0.0
        } else {
            self.size_in_bits() as f64 / self.num_keys() as f64
        }
    }

    /// Short display name used by the experiment harness.
    fn name(&self) -> &'static str;
}

/// Everything a filter build may need, shared by all eleven filters of the
/// paper's evaluation (§6.1): the key set, a space budget, the workload's
/// max range size, a query sample for the auto-tuned filters, and a seed.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`FilterConfig::new`] and the chainable setters, which keeps downstream
/// code compiling when a future field is added. Fields stay `pub` for
/// reading.
///
/// ```
/// use grafite_core::{BuildableFilter, FilterConfig, GrafiteFilter, RangeFilter};
///
/// let keys: Vec<u64> = (0..1000u64).map(|i| i * 97).collect();
/// let cfg = FilterConfig::new(&keys).bits_per_key(12.0).max_range(32);
/// let filter = GrafiteFilter::build(&cfg).unwrap();
/// assert!(filter.may_contain(97));
/// ```
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct FilterConfig<'a> {
    /// The key set (sorted is fine, not required; duplicates allowed).
    pub keys: &'a [u64],
    /// Space budget in bits per key. Default: 16.
    pub bits_per_key: f64,
    /// The workload's max range size (the paper's `L`). Default: 2^10.
    pub max_range: u64,
    /// Query sample (empty ranges) for the auto-tuned filters (Proteus,
    /// Rosetta, REncoder-SE, workload-aware Bucketing). Default: empty.
    pub sample: &'a [(u64, u64)],
    /// Seed for any randomised component. Default: [`DEFAULT_SEED`].
    pub seed: u64,
}

impl<'a> FilterConfig<'a> {
    /// Starts a configuration over `keys` with the documented defaults.
    pub fn new(keys: &'a [u64]) -> Self {
        Self {
            keys,
            bits_per_key: 16.0,
            max_range: 1 << 10,
            sample: &[],
            seed: DEFAULT_SEED,
        }
    }

    /// Sets the space budget in bits per key.
    pub fn bits_per_key(mut self, bits: f64) -> Self {
        self.bits_per_key = bits;
        self
    }

    /// Sets the workload's max range size `L`.
    pub fn max_range(mut self, l: u64) -> Self {
        self.max_range = l;
        self
    }

    /// Sets the query sample the auto-tuned filters optimise for.
    pub fn sample(mut self, sample: &'a [(u64, u64)]) -> Self {
        self.sample = sample;
        self
    }

    /// Pins the seed for randomised components.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The uniform construction protocol: every filter of the paper's
/// comparison builds from the same [`FilterConfig`], so harnesses, stores,
/// and the [`Registry`](crate::registry::Registry) can treat construction —
/// not just querying — as part of the contract.
///
/// Filter-specific knobs that fall outside the shared config (SuRF's suffix
/// mode, REncoder's variant, Rosetta's sample tuning, …) are expressed as a
/// typed [`BuildableFilter::Tuning`] value with a sensible `Default`, so
/// nothing is stringly-typed and `build` stays one call for the common
/// case.
pub trait BuildableFilter: RangeFilter + Sized {
    /// Typed per-filter tuning knobs beyond the shared [`FilterConfig`].
    /// `Default` must yield the configuration the paper's evaluation uses.
    type Tuning: Default;

    /// Builds with explicit per-filter tuning.
    fn build_with(cfg: &FilterConfig<'_>, tuning: &Self::Tuning) -> Result<Self, FilterError>;

    /// Builds with the default tuning — the paper's configuration.
    fn build(cfg: &FilterConfig<'_>) -> Result<Self, FilterError> {
        Self::build_with(cfg, &Self::Tuning::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_setters() {
        let keys = [1u64, 2, 3];
        let sample = [(10u64, 20u64)];
        let cfg = FilterConfig::new(&keys);
        assert_eq!(cfg.bits_per_key, 16.0);
        assert_eq!(cfg.max_range, 1 << 10);
        assert!(cfg.sample.is_empty());
        assert_eq!(cfg.seed, DEFAULT_SEED);

        let cfg = cfg.bits_per_key(8.0).max_range(32).sample(&sample).seed(7);
        assert_eq!(cfg.bits_per_key, 8.0);
        assert_eq!(cfg.max_range, 32);
        assert_eq!(cfg.sample, &sample);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.keys, &keys);
    }
}
