//! The common interface every range filter in this workspace implements:
//! the query-side [`RangeFilter`] contract, the construction-side
//! [`BuildableFilter`] protocol over a shared [`FilterConfig`], and the
//! storage-side [`PersistentFilter`] protocol over the versioned flat-byte
//! format of [`crate::persist`].

use std::io;

use grafite_succinct::io::{CountingSink, ReadSource, WordSource, WordWriter};

use crate::error::FilterError;
use crate::parallel::Parallelism;
use crate::persist::{blob_checksum, words_of_bytes, Header, FORMAT_VERSION, HEADER_BYTES};

/// The seed every builder defaults to ("grafite" in ASCII), so that a bare
/// configuration is fully deterministic.
pub const DEFAULT_SEED: u64 = 0x0067_7261_6669_7465;

/// An approximate range-emptiness data structure (paper Problem 1).
///
/// Implementations must guarantee **no false negatives**: if any stored key
/// lies in `[a, b]`, `may_contain_range(a, b)` returns `true`. They may
/// return `true` for empty ranges (a false positive); how often is the whole
/// game, and is what the paper's experiments measure.
///
/// # Inverted ranges
///
/// Every query method requires `a <= b`. This is a caller contract, not an
/// error condition: all implementations in this workspace `debug_assert!`
/// it, so violations panic in debug builds and return an unspecified (but
/// still memory-safe) answer in release builds. Queries never fail and
/// never allocate; all validation happens at construction time.
pub trait RangeFilter {
    /// Whether the closed range `[a, b]` *may* intersect the key set.
    ///
    /// Requires `a <= b` (debug-asserted; see the trait-level contract).
    #[must_use = "a range filter's answer is its only effect; dropping it means the query was wasted"]
    fn may_contain_range(&self, a: u64, b: u64) -> bool;

    /// Whether the point `x` may be in the key set.
    #[inline]
    #[must_use = "a range filter's answer is its only effect; dropping it means the query was wasted"]
    fn may_contain(&self, x: u64) -> bool {
        self.may_contain_range(x, x)
    }

    /// Answers a batch of closed ranges, one `bool` per query, into `out`
    /// (which is cleared first). Every query requires `lo <= hi`, as in
    /// [`RangeFilter::may_contain_range`].
    ///
    /// The default implementation is a plain loop over
    /// `may_contain_range`. Implementations may specialise it — e.g.
    /// `GrafiteFilter` answers large batches in one forward pass over its
    /// Elias–Fano codes — but must return **exactly** the answers the
    /// one-at-a-time path returns, in query order.
    fn may_contain_ranges(&self, queries: &[(u64, u64)], out: &mut Vec<bool>) {
        out.clear();
        out.reserve(queries.len());
        for &(a, b) in queries {
            out.push(self.may_contain_range(a, b));
        }
    }

    /// Total heap size of the filter in bits, directories included.
    fn size_in_bits(&self) -> usize;

    /// Number of keys the filter was built on.
    fn num_keys(&self) -> usize;

    /// Space per key in bits — the x-axis of the paper's Figures 4–6.
    #[inline]
    #[must_use]
    fn bits_per_key(&self) -> f64 {
        if self.num_keys() == 0 {
            0.0
        } else {
            self.size_in_bits() as f64 / self.num_keys() as f64
        }
    }

    /// Short display name used by the experiment harness.
    fn name(&self) -> &'static str;
}

/// Everything a filter build may need, shared by all eleven filters of the
/// paper's evaluation (§6.1): the key set, a space budget, the workload's
/// max range size, a query sample for the auto-tuned filters, and a seed.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`FilterConfig::new`] and the chainable setters, which keeps downstream
/// code compiling when a future field is added. Fields stay `pub` for
/// reading.
///
/// ```
/// use grafite_core::{BuildableFilter, FilterConfig, GrafiteFilter, RangeFilter};
///
/// let keys: Vec<u64> = (0..1000u64).map(|i| i * 97).collect();
/// let cfg = FilterConfig::new(&keys).bits_per_key(12.0).max_range(32);
/// let filter = GrafiteFilter::build(&cfg).unwrap();
/// assert!(filter.may_contain(97));
/// ```
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct FilterConfig<'a> {
    /// The key set (sorted is fine, not required; duplicates allowed).
    pub keys: &'a [u64],
    /// Space budget in bits per key. Default: 16.
    pub bits_per_key: f64,
    /// The workload's max range size (the paper's `L`). Default: 2^10.
    pub max_range: u64,
    /// Query sample (empty ranges) for the auto-tuned filters (Proteus,
    /// Rosetta, REncoder-SE, workload-aware Bucketing). Default: empty.
    pub sample: &'a [(u64, u64)],
    /// Seed for any randomised component. Default: [`DEFAULT_SEED`].
    pub seed: u64,
    /// Construction thread budget. Purely a wall-clock knob: every build
    /// is bit-identical at any thread count. Default:
    /// [`Parallelism::auto`] (`GRAFITE_THREADS`, else the machine's
    /// available parallelism).
    pub parallelism: Parallelism,
}

impl<'a> FilterConfig<'a> {
    /// Starts a configuration over `keys` with the documented defaults.
    pub fn new(keys: &'a [u64]) -> Self {
        Self {
            keys,
            bits_per_key: 16.0,
            max_range: 1 << 10,
            sample: &[],
            seed: DEFAULT_SEED,
            parallelism: Parallelism::auto(),
        }
    }

    /// Sets the space budget in bits per key.
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn bits_per_key(mut self, bits: f64) -> Self {
        self.bits_per_key = bits;
        self
    }

    /// Sets the workload's max range size `L`.
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn max_range(mut self, l: u64) -> Self {
        self.max_range = l;
        self
    }

    /// Sets the query sample the auto-tuned filters optimise for.
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn sample(mut self, sample: &'a [(u64, u64)]) -> Self {
        self.sample = sample;
        self
    }

    /// Pins the seed for randomised components.
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the construction thread budget (wall-clock only: builds are
    /// bit-identical at any thread count).
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// The uniform storage protocol: every filter serializes to — and loads
/// from — the self-describing flat-byte format of [`crate::persist`], so
/// filters can be built offline, shipped to serving shards as immutable
/// blobs, and loaded without rebuilding any rank/select machinery.
///
/// Implementors provide only the payload codec ([`write_payload`] /
/// [`read_payload`]) and their [spec ids](crate::persist::spec_id); the
/// header framing, checksumming, and validation are provided methods. The
/// trait is object-safe on its write side: a `Box<dyn PersistentFilter>`
/// (what the [`Registry`](crate::registry::Registry) builds and loads) can
/// be serialized and measured without knowing the concrete family.
///
/// `serialized_bits() / num_keys()` is the **measured** bits-per-key of the
/// filter — the honest space figure the paper's plots use, as opposed to
/// the in-memory estimate of [`RangeFilter::size_in_bits`].
///
/// `Send + Sync` are supertraits: a persistent filter is precisely the
/// thing a serving process shares across unboundedly many reader threads
/// (e.g. inside a `FilterStore` snapshot), so `Box<dyn PersistentFilter>`
/// must cross and be shared between threads. Every filter here is a plain
/// immutable word-array structure, so the bounds cost nothing.
///
/// [`write_payload`]: PersistentFilter::write_payload
/// [`read_payload`]: PersistentFilter::read_payload
pub trait PersistentFilter: RangeFilter + Send + Sync {
    /// The spec id written into this instance's header (most families have
    /// exactly one; SuRF and REncoder pick per the stored variant).
    fn spec_id(&self) -> u32;

    /// Every spec id blobs of this type may carry — what a typed
    /// [`deserialize`](PersistentFilter::deserialize) accepts.
    fn spec_ids() -> &'static [u32]
    where
        Self: Sized;

    /// Writes the filter's payload (everything after the header) as a flat
    /// word stream.
    fn write_payload(&self, w: &mut WordWriter<'_>) -> io::Result<()>;

    /// Reads a payload back. `header` supplies the key count and the spec
    /// id (already validated against
    /// [`spec_ids`](PersistentFilter::spec_ids)). Must not rebuild derived
    /// structure — directories come verbatim from the stream.
    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError>
    where
        Self: Sized;

    /// Serializes header + payload into `out`, returning the bytes written.
    fn serialize_into(&self, out: &mut dyn io::Write) -> Result<usize, FilterError> {
        let mut payload = Vec::new();
        {
            let mut w = WordWriter::new(&mut payload);
            self.write_payload(&mut w)?;
        }
        debug_assert_eq!(payload.len() % 8, 0);
        let mut header = Header {
            version: FORMAT_VERSION,
            spec_id: self.spec_id(),
            n_keys: self.num_keys() as u64,
            payload_words: (payload.len() / 8) as u64,
            checksum: 0,
        };
        header.checksum = blob_checksum(
            header.spec_version_word(),
            header.n_keys,
            header.payload_words,
            words_of_bytes(&payload),
        );
        header.write(out)?;
        out.write_all(&payload)?;
        Ok(HEADER_BYTES + payload.len())
    }

    /// Serializes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.serialize_into(&mut out)
            .expect("writing to a Vec cannot fail");
        out
    }

    /// The filter's true serialized footprint in bits — measured, not
    /// estimated. `serialized_bits() / num_keys()` is the space metric the
    /// bench harness reports. Streams the payload straight into a counting
    /// sink (no buffering, no checksum) — cheap enough for per-measurement
    /// calls.
    fn serialized_bits(&self) -> usize {
        let mut sink = CountingSink::new();
        {
            let mut w = WordWriter::new(&mut sink);
            self.write_payload(&mut w)
                .expect("counting sink cannot fail");
        }
        (HEADER_BYTES + sink.bytes_written()) * 8
    }

    /// Loads a filter of this exact type from a serialized blob, verifying
    /// magic, version, length, spec id, and checksum first. Never panics on
    /// foreign bytes: malformed input returns the typed [`FilterError`]
    /// variants.
    fn deserialize(bytes: &[u8]) -> Result<Self, FilterError>
    where
        Self: Sized,
    {
        let (header, payload) = Header::parse(bytes)?;
        if !Self::spec_ids().contains(&header.spec_id) {
            return Err(FilterError::SpecMismatch(header.spec_id));
        }
        let mut src = ReadSource::new(payload);
        Self::read_payload(&mut src, &header)
    }
}

/// The uniform construction protocol: every filter of the paper's
/// comparison builds from the same [`FilterConfig`], so harnesses, stores,
/// and the [`Registry`](crate::registry::Registry) can treat construction —
/// not just querying — as part of the contract.
///
/// Filter-specific knobs that fall outside the shared config (SuRF's suffix
/// mode, REncoder's variant, Rosetta's sample tuning, …) are expressed as a
/// typed [`BuildableFilter::Tuning`] value with a sensible `Default`, so
/// nothing is stringly-typed and `build` stays one call for the common
/// case.
pub trait BuildableFilter: RangeFilter + Sized {
    /// Typed per-filter tuning knobs beyond the shared [`FilterConfig`].
    /// `Default` must yield the configuration the paper's evaluation uses.
    type Tuning: Default;

    /// Builds with explicit per-filter tuning.
    fn build_with(cfg: &FilterConfig<'_>, tuning: &Self::Tuning) -> Result<Self, FilterError>;

    /// Builds with the default tuning — the paper's configuration.
    fn build(cfg: &FilterConfig<'_>) -> Result<Self, FilterError> {
        Self::build_with(cfg, &Self::Tuning::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_setters() {
        let keys = [1u64, 2, 3];
        let sample = [(10u64, 20u64)];
        let cfg = FilterConfig::new(&keys);
        assert_eq!(cfg.bits_per_key, 16.0);
        assert_eq!(cfg.max_range, 1 << 10);
        assert!(cfg.sample.is_empty());
        assert_eq!(cfg.seed, DEFAULT_SEED);

        let cfg = cfg
            .bits_per_key(8.0)
            .max_range(32)
            .sample(&sample)
            .seed(7)
            .parallelism(Parallelism::fixed(3));
        assert_eq!(cfg.bits_per_key, 8.0);
        assert_eq!(cfg.max_range, 32);
        assert_eq!(cfg.sample, &sample);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.keys, &keys);
        assert_eq!(cfg.parallelism.threads(), 3);
    }
}
