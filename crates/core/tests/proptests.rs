//! Property tests for the paper's two filters: the no-false-negative
//! invariant must hold for arbitrary key sets, budgets, and query ranges.

use grafite_core::sort::partition_radix_sort;
use grafite_core::{BucketingFilter, GrafiteFilter, RangeFilter, StringGrafite};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every key k in the set and every query range containing k,
    /// Grafite must answer "not empty".
    #[test]
    fn grafite_never_false_negative(
        keys in prop::collection::vec(any::<u64>(), 1..400),
        bpk in 3.0f64..24.0,
        seed in any::<u64>(),
        offsets in prop::collection::vec((0u64..5000, 0u64..5000), 1..40),
    ) {
        let f = GrafiteFilter::builder().bits_per_key(bpk).seed(seed).build(&keys).unwrap();
        for (i, &(dl, dr)) in offsets.iter().enumerate() {
            let k = keys[i % keys.len()];
            let a = k.saturating_sub(dl);
            let b = k.saturating_add(dr);
            prop_assert!(f.may_contain_range(a, b), "FN: key {} in [{}, {}]", k, a, b);
        }
    }

    /// Same for Bucketing.
    #[test]
    fn bucketing_never_false_negative(
        keys in prop::collection::vec(any::<u64>(), 1..400),
        bpk in 1.0f64..24.0,
        offsets in prop::collection::vec((0u64..5000, 0u64..5000), 1..40),
    ) {
        let f = BucketingFilter::builder().bits_per_key(bpk).build(&keys).unwrap();
        for (i, &(dl, dr)) in offsets.iter().enumerate() {
            let k = keys[i % keys.len()];
            let a = k.saturating_sub(dl);
            let b = k.saturating_add(dr);
            prop_assert!(f.may_contain_range(a, b), "FN: key {} in [{}, {}]", k, a, b);
        }
    }

    /// Bucketing with explicit s must agree exactly with the naive
    /// bucket-bitmap semantics (both positives and negatives).
    #[test]
    fn bucketing_matches_bitmap_semantics(
        keys in prop::collection::vec(0u64..100_000, 1..200),
        s in 1u64..5000,
        queries in prop::collection::vec((0u64..100_000, 0u64..2000), 1..60),
    ) {
        let f = BucketingFilter::builder().bucket_size(s).build(&keys).unwrap();
        let buckets: std::collections::HashSet<u64> = keys.iter().map(|&k| k / s).collect();
        for &(a, w) in &queries {
            let b = a + w;
            let expect = (a / s..=b / s).any(|bk| buckets.contains(&bk));
            prop_assert_eq!(f.may_contain_range(a, b), expect, "s={} [{}, {}]", s, a, b);
        }
    }

    /// Grafite's approximate count never undercounts the distinct keys in
    /// the range when they hash without in-range collisions; in general it
    /// is >= 1 whenever the range is non-empty.
    #[test]
    fn grafite_count_lower_bounded(
        keys in prop::collection::vec(any::<u64>(), 1..200),
        seed in any::<u64>(),
        widths in prop::collection::vec(0u64..10_000, 1..30),
    ) {
        let f = GrafiteFilter::builder().bits_per_key(20.0).seed(seed).build(&keys).unwrap();
        for (i, &w) in widths.iter().enumerate() {
            let k = keys[i % keys.len()];
            let a = k.saturating_sub(w);
            let b = k.saturating_add(w);
            prop_assert!(f.approx_range_count(a, b) >= 1, "count 0 but key {} in [{}, {}]", k, a, b);
        }
    }

    /// The string filter inherits no-false-negatives through the monotone
    /// embedding.
    #[test]
    fn string_grafite_never_false_negative(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..20), 1..100),
        bpk in 3.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let f = StringGrafite::new(&keys, bpk, seed).unwrap();
        for k in &keys {
            prop_assert!(f.may_contain(k), "FN on {:?}", k);
        }
        // Ranges bounded by two existing keys always contain a key.
        let mut sorted = keys.clone();
        sorted.sort();
        let lo = &sorted[0];
        let hi = &sorted[sorted.len() - 1];
        prop_assert!(f.may_contain_range(lo, hi));
    }

    /// The partitioned parallel radix sort agrees with `sort_unstable`
    /// for every thread count, including inputs engineered to starve the
    /// top-byte partition phase (shared high bytes, saturating values).
    #[test]
    fn partition_radix_sort_matches_std(
        mut data in prop::collection::vec(any::<u64>(), 0..3000),
        threads in 1usize..10,
        skew in 0u64..4,
    ) {
        // Skew 1: collapse everything into one top-byte partition.
        // Skew 2: two partitions, one huge. Skew 3: saturate extremes.
        match skew {
            1 => data.iter_mut().for_each(|v| *v |= 0xFF << 56),
            2 => data.iter_mut().enumerate().for_each(|(i, v)| {
                *v = if i % 17 == 0 { *v | (1 << 63) } else { *v & !(0xFFu64 << 56) };
            }),
            3 => data.iter_mut().enumerate().for_each(|(i, v)| {
                if i % 3 == 0 { *v = u64::MAX } else if i % 3 == 1 { *v = 0 }
            }),
            _ => {}
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        partition_radix_sort(&mut data, threads);
        prop_assert_eq!(data, expect, "threads={}, skew={}", threads, skew);
    }

    /// Grafite's FPP bound is monotone in the range size and matches the
    /// closed formula.
    #[test]
    fn fpp_formula_monotone(n in 1usize..10_000, bpk in 3.0f64..20.0) {
        let keys: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let f = GrafiteFilter::builder().bits_per_key(bpk).build(&keys).unwrap();
        let mut prev = 0.0f64;
        for l in [1u64, 2, 16, 256, 1 << 20] {
            let fpp = f.fpp_for_range_size(l);
            prop_assert!(fpp >= prev);
            prop_assert!(fpp <= 1.0);
            prev = fpp;
        }
    }
}
