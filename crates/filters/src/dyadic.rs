//! Greedy dyadic decomposition of integer ranges.
//!
//! A *dyadic interval* at level `j` is `[p·2^j, (p+1)·2^j)`. Rosetta,
//! REncoder, and bloomRF (paper §2) all decompose a query range into
//! maximal dyadic intervals and probe per-level structures.

/// One dyadic interval: the aligned block of `2^j` values starting at
/// `prefix << j`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dyadic {
    /// The block index (the high `64 − j` bits).
    pub prefix: u64,
    /// The level: block size is `2^j`.
    pub j: u32,
}

/// Decomposes the closed range `[a, b]` into the minimal set of maximal
/// dyadic intervals with level at most `max_j`, in left-to-right order.
///
/// The classic greedy walk: at each step take the largest aligned block that
/// starts at the cursor and fits in the remainder. With `max_j = 64` a range
/// of size ℓ yields at most `2·log2(ℓ)` intervals; a smaller `max_j` caps
/// the block size (filters that only store bottom levels need this) at the
/// cost of more intervals.
pub fn cover(a: u64, b: u64, max_j: u32) -> Vec<Dyadic> {
    debug_assert!(a <= b, "inverted range [{a}, {b}]");
    let max_j = max_j.min(63);
    let mut out = Vec::new();
    let mut cur = a as u128;
    let end = b as u128 + 1;
    while cur < end {
        let align = if cur == 0 {
            64
        } else {
            (cur as u64).trailing_zeros()
        };
        let remaining = end - cur;
        let fit = 127 - remaining.leading_zeros(); // floor(log2(remaining))
        let j = align.min(fit).min(max_j);
        out.push(Dyadic {
            prefix: (cur as u64) >> j,
            j,
        });
        cur += 1u128 << j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand(d: &Dyadic) -> impl Iterator<Item = u64> {
        let lo = d.prefix << d.j;
        let size = 1u64 << d.j;
        lo..lo + size
    }

    fn check_exact(a: u64, b: u64, max_j: u32) {
        let cover = cover(a, b, max_j);
        let mut points: Vec<u64> = cover.iter().flat_map(expand).collect();
        points.sort_unstable();
        let expect: Vec<u64> = (a..=b).collect();
        assert_eq!(points, expect, "[{a}, {b}] max_j={max_j}");
        for d in &cover {
            assert!(d.j <= max_j);
        }
    }

    #[test]
    fn small_ranges_exact() {
        for a in 0..40u64 {
            for width in 0..40u64 {
                check_exact(a, a + width, 64);
                check_exact(a, a + width, 2);
            }
        }
    }

    #[test]
    fn aligned_blocks_are_single_intervals() {
        let c = cover(16, 31, 64);
        assert_eq!(c, vec![Dyadic { prefix: 1, j: 4 }]);
        let c = cover(0, 1023, 64);
        assert_eq!(c, vec![Dyadic { prefix: 0, j: 10 }]);
    }

    #[test]
    fn cap_respected() {
        let c = cover(0, 1023, 4);
        assert_eq!(c.len(), 64);
        assert!(c.iter().all(|d| d.j <= 4));
    }

    #[test]
    fn top_of_universe() {
        let c = cover(u64::MAX - 3, u64::MAX, 64);
        assert_eq!(
            c,
            vec![Dyadic {
                prefix: (u64::MAX - 3) >> 2,
                j: 2
            }]
        );
        let c = cover(u64::MAX, u64::MAX, 64);
        assert_eq!(
            c,
            vec![Dyadic {
                prefix: u64::MAX,
                j: 0
            }]
        );
    }

    #[test]
    fn interval_count_logarithmic() {
        let c = cover(12345, 12345 + (1 << 20) - 7, 64);
        assert!(c.len() <= 42, "cover used {} intervals", c.len());
    }
}
