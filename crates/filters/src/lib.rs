//! The competitor range filters of the Grafite paper's evaluation (§2, §6):
//! SuRF, Rosetta, SNARF, Proteus, and REncoder with its SS/SE variants —
//! all implemented from scratch on the workspace's substrates, all
//! implementing [`grafite_core::RangeFilter`], and all property-tested for
//! the no-false-negative invariant.
//!
//! | Filter | §2 design | Our substrate |
//! |---|---|---|
//! | SuRF | Fast Succinct Trie + suffix bits | `grafite-fst` |
//! | Rosetta | per-level Bloom filters + dyadic "doubting" | `grafite-bloom` |
//! | SNARF | learned spline MCDF + compressed bit array | `grafite-succinct::golomb` |
//! | Proteus | l1-deep trie + l2 prefix Bloom, sample-tuned | `grafite-fst` + `grafite-bloom` |
//! | REncoder | local range-tree encoder in a bit array | `grafite-succinct::bitvec` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dyadic;
pub mod proteus;
pub mod rencoder;
pub mod rosetta;
pub mod snarf;
pub mod surf;

pub use proteus::Proteus;
pub use rencoder::{REncoder, REncoderVariant};
pub use rosetta::Rosetta;
pub use snarf::Snarf;
pub use surf::{SuffixMode, Surf};
