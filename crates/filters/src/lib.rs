//! The competitor range filters of the Grafite paper's evaluation (§2, §6):
//! SuRF, Rosetta, SNARF, Proteus, and REncoder with its SS/SE variants —
//! all implemented from scratch on the workspace's substrates, all
//! implementing [`grafite_core::RangeFilter`], and all property-tested for
//! the no-false-negative invariant.
//!
//! | Filter | §2 design | Our substrate |
//! |---|---|---|
//! | SuRF | Fast Succinct Trie + suffix bits | `grafite-fst` |
//! | Rosetta | per-level Bloom filters + dyadic "doubting" | `grafite-bloom` |
//! | SNARF | learned spline MCDF + compressed bit array | `grafite-succinct::golomb` |
//! | Proteus | l1-deep trie + l2 prefix Bloom, sample-tuned | `grafite-fst` + `grafite-bloom` |
//! | REncoder | local range-tree encoder in a bit array | `grafite-succinct::bitvec` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dyadic;
pub mod proteus;
pub mod rencoder;
pub mod rosetta;
pub mod snarf;
pub mod surf;

pub use proteus::{Proteus, ProteusTuning};
pub use rencoder::{REncoder, REncoderTuning, REncoderVariant};
pub use rosetta::{Rosetta, RosettaTuning};
pub use snarf::{Snarf, SnarfTuning};
pub use surf::{SuffixMode, SuffixStyle, Surf, SurfTuning};

use grafite_bloom::TrivialRangeFilter;
use grafite_core::registry::{load_as, FilterSpec, Registry};
use grafite_core::{BuildableFilter, PersistentFilter};

/// The complete filter registry of the paper's evaluation: every
/// [`FilterSpec`] — the two `grafite-core` filters, this crate's
/// competitors, and the `grafite-bloom` trivial baseline — mapped to its
/// [`BuildableFilter`] construction over the shared
/// [`FilterConfig`](grafite_core::FilterConfig) *and* to its
/// [`PersistentFilter`] loader over the flat-byte format, so
/// [`Registry::load`] revives any of the eleven families from a serialized
/// blob.
///
/// ```
/// use grafite_core::registry::FilterSpec;
/// use grafite_core::{FilterConfig, PersistentFilter};
/// use grafite_filters::standard_registry;
///
/// let keys: Vec<u64> = (0..500u64).map(|i| i * 11_400_714_819).collect();
/// let registry = standard_registry();
/// let cfg = FilterConfig::new(&keys).bits_per_key(16.0).max_range(32);
/// for spec in FilterSpec::ALL {
///     let filter = registry.build(spec, &cfg).unwrap();
///     assert!(filter.may_contain(keys[42]), "{} lost a key", filter.name());
///     // Round-trip through the on-disk format.
///     let loaded = registry.load(&filter.to_bytes()).unwrap();
///     assert!(loaded.may_contain(keys[42]), "{} lost a key on load", loaded.name());
/// }
/// ```
pub fn standard_registry() -> Registry {
    fn boxed<F: PersistentFilter + 'static>(f: F) -> Box<dyn PersistentFilter> {
        Box::new(f)
    }
    // Each entry is a plain fn pointer: default tuning unless the spec *is*
    // a tuning (SuRF's suffix family, REncoder's variants). Loaders need no
    // per-spec tuning at all — the blob is self-describing.
    let mut r = Registry::new(); // Grafite + Bucketing pre-registered
    r.register(FilterSpec::Snarf, |cfg| Snarf::build(cfg).map(boxed));
    r.register(FilterSpec::SurfReal, |cfg| Surf::build(cfg).map(boxed));
    r.register(FilterSpec::SurfHash, |cfg| {
        Surf::build_with(
            cfg,
            &SurfTuning {
                style: SuffixStyle::Hashed,
                suffix_bits: None,
            },
        )
        .map(boxed)
    });
    r.register(FilterSpec::Proteus, |cfg| Proteus::build(cfg).map(boxed));
    r.register(FilterSpec::Rosetta, |cfg| Rosetta::build(cfg).map(boxed));
    r.register(FilterSpec::REncoder, |cfg| REncoder::build(cfg).map(boxed));
    r.register(FilterSpec::REncoderSS, |cfg| {
        REncoder::build_with(
            cfg,
            &REncoderTuning(REncoderVariant::SelectiveStorage { rounds: 2 }),
        )
        .map(boxed)
    });
    r.register(FilterSpec::REncoderSE, |cfg| {
        REncoder::build_with(cfg, &REncoderTuning(REncoderVariant::SampleEstimation)).map(boxed)
    });
    r.register(FilterSpec::TrivialBloom, |cfg| {
        TrivialRangeFilter::build(cfg).map(boxed)
    });
    r.register_loader(FilterSpec::Snarf, load_as::<Snarf>);
    r.register_loader(FilterSpec::SurfReal, load_as::<Surf>);
    r.register_loader(FilterSpec::SurfHash, load_as::<Surf>);
    r.register_loader(FilterSpec::Proteus, load_as::<Proteus>);
    r.register_loader(FilterSpec::Rosetta, load_as::<Rosetta>);
    r.register_loader(FilterSpec::REncoder, load_as::<REncoder>);
    r.register_loader(FilterSpec::REncoderSS, load_as::<REncoder>);
    r.register_loader(FilterSpec::REncoderSE, load_as::<REncoder>);
    r.register_loader(FilterSpec::TrivialBloom, load_as::<TrivialRangeFilter>);
    r
}
