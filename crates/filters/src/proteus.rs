//! Proteus — the self-designing range filter of Knorr et al. (SIGMOD 2022),
//! as described in the Grafite paper's §2/§5.
//!
//! Proteus combines a Fast Succinct Trie over the `l1` most significant
//! bits of every key with a Prefix Bloom Filter over `l2 > l1`-bit
//! prefixes. A range query first consults the trie: a stored `l1`-prefix
//! strictly inside the query range proves non-emptiness; no stored prefix
//! at all proves emptiness; a boundary-block hit escalates to the Bloom
//! filter, which is probed for every `l2`-prefix of the overlap.
//!
//! The defining feature is the **CPFPR auto-tuner**: given the keys, a
//! sample of the query workload, and a space budget, Proteus picks the
//! `(l1, l2)` pair minimising the modelled FPR. We reproduce the tuner at
//! byte granularity for `l1` (our FST is byte-based; DESIGN.md §3) and
//! 4-bit granularity for `l2`, evaluating the exact trie/prefix structure
//! on the key set and the analytic Bloom FPR on the sampled queries — the
//! same shape as Knorr et al.'s Algorithm 1.

use grafite_bloom::{BloomFilter, PrefixBloomFilter};
use grafite_core::persist::{spec_id, Header};
use grafite_core::{BuildableFilter, FilterConfig, FilterError, PersistentFilter, RangeFilter};
use grafite_fst::{builder, Fst, Lookup};
use grafite_succinct::io::{WordSource, WordWriter};

/// Max Bloom probes per query before giving up ("maybe").
const MAX_PROBES: u64 = 1 << 12;
/// Max sample queries fed to the tuner.
const MAX_SAMPLE: usize = 1024;

/// Shift right that tolerates a shift of 64.
#[inline]
fn shr(x: u64, s: u32) -> u64 {
    if s >= 64 {
        0
    } else {
        x >> s
    }
}

/// The Proteus range filter.
#[derive(Clone, Debug)]
pub struct Proteus {
    /// Trie depth in bytes (`l1 = 8 * l1_bytes` bits); 0 disables the trie.
    l1_bytes: u32,
    /// Prefix-Bloom prefix length in bits; 0 disables the Bloom stage.
    l2: u32,
    fst: Option<Fst>,
    pbf: Option<PrefixBloomFilter>,
    n_keys: usize,
}

impl Proteus {
    /// Builds Proteus with the CPFPR-style tuner.
    ///
    /// `sample` is the query-workload sample (empty ranges) the tuner
    /// optimises for — the auto-tuning advantage (and overfitting risk) the
    /// Grafite paper discusses.
    pub fn new(
        keys: &[u64],
        bits_per_key: f64,
        sample: &[(u64, u64)],
        seed: u64,
    ) -> Result<Self, FilterError> {
        if !(bits_per_key > 0.0 && bits_per_key.is_finite()) {
            return Err(FilterError::InvalidBudget(bits_per_key));
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let n = sorted.len();
        if n == 0 {
            return Ok(Self {
                l1_bytes: 0,
                l2: 0,
                fst: None,
                pbf: None,
                n_keys: 0,
            });
        }
        let budget = bits_per_key * n as f64;
        let sample: Vec<(u64, u64)> = sample.iter().copied().take(MAX_SAMPLE).collect();

        // Distinct prefixes for every candidate l2 (shared across l1).
        let distinct_prefixes = |bits: u32| -> Vec<u64> {
            let mut v: Vec<u64> = sorted.iter().map(|&k| shr(k, 64 - bits)).collect();
            v.dedup();
            v
        };
        let l2_candidates: Vec<u32> = (1..=16).map(|i| i * 4).collect();
        let d2_tables: Vec<Vec<u64>> = l2_candidates
            .iter()
            .map(|&l2| distinct_prefixes(l2))
            .collect();

        // Trie cost per l1 depth: branches = sum of distinct d-byte prefixes.
        let mut trie_cost = [0.0f64; 9];
        for l1 in 1..=8u32 {
            let mut branches = 0usize;
            for d in 1..=l1 {
                branches += distinct_prefixes(8 * d).len();
            }
            trie_cost[l1 as usize] = 12.0 * branches as f64; // 10 bits + directories
        }

        // Fallback (worse than any modelled candidate): a 64-bit prefix
        // Bloom filter over whatever budget exists — always constructible.
        let mut best: Option<(f64, u32, u32)> = Some((2.0, 0, 64)); // (fpr, l1_bytes, l2)
        for l1 in 0..=8u32 {
            if l1 > 0 && trie_cost[l1 as usize] > budget {
                continue;
            }
            let d1 = if l1 > 0 {
                distinct_prefixes(8 * l1)
            } else {
                Vec::new()
            };
            let pbf_budget = budget - trie_cost[l1 as usize];
            // l2 = 0 (trie only) is a candidate whenever the trie exists.
            let mut candidates: Vec<u32> = vec![];
            if l1 > 0 {
                candidates.push(0);
            }
            for &l2 in &l2_candidates {
                if l2 > 8 * l1 && pbf_budget >= 64.0 {
                    candidates.push(l2);
                }
            }
            for l2 in candidates {
                let est = estimate_fpr(&sorted, &d1, l1, l2, pbf_budget, &d2_tables, &sample);
                let better = match best {
                    None => true,
                    Some((f, _, _)) => est < f - 1e-12,
                };
                if better {
                    best = Some((est, l1, l2));
                }
            }
        }
        let (_, l1_bytes, l2) = best.expect("the fallback configuration always exists");

        // Final build.
        let fst = if l1_bytes > 0 {
            let prefixes = distinct_prefixes(8 * l1_bytes);
            let byte_prefixes: Vec<Vec<u8>> = prefixes
                .iter()
                .map(|&p| {
                    let full = p << (64 - 8 * l1_bytes);
                    full.to_be_bytes()[..l1_bytes as usize].to_vec()
                })
                .collect();
            let refs: Vec<&[u8]> = byte_prefixes.iter().map(|p| p.as_slice()).collect();
            Some(builder::build(&refs).fst)
        } else {
            None
        };
        let pbf = if l2 > 0 {
            let m = ((budget - trie_cost[l1_bytes as usize]).max(64.0)) as usize;
            let n2 = d2_tables[(l2 / 4 - 1) as usize].len();
            let k = BloomFilter::optimal_k(m, n2);
            let mut pbf = PrefixBloomFilter::new(l2, m, k, seed).with_max_probes(MAX_PROBES);
            for &key in &sorted {
                pbf.insert(key);
            }
            Some(pbf)
        } else {
            None
        };
        Ok(Self {
            l1_bytes,
            l2,
            fst,
            pbf,
            n_keys: keys.len(),
        })
    }

    /// The tuned trie depth in bits (`l1`).
    pub fn l1(&self) -> u32 {
        8 * self.l1_bytes
    }

    /// The tuned Bloom prefix length in bits (`l2`; 0 = disabled).
    pub fn l2(&self) -> u32 {
        self.l2
    }

    /// Whether the trie holds any l1-prefix within `[pa, pb]`, and whether
    /// the boundaries themselves are present: `(inner, has_pa, has_pb)`.
    fn trie_scan(&self, pa: u64, pb: u64) -> (bool, bool, bool) {
        let fst = self.fst.as_ref().expect("trie_scan without trie");
        let l1b = self.l1_bytes as usize;
        let s1 = 64 - 8 * self.l1_bytes;
        let pa_bytes_full = (pa << s1).to_be_bytes();
        let probe = &pa_bytes_full[..l1b];
        let it = match fst.seek(probe) {
            Some(it) => it,
            None => return (false, false, false),
        };
        let mut buf = [0u8; 8];
        buf[..l1b].copy_from_slice(it.key());
        let p_val = shr(u64::from_be_bytes(buf), s1);
        if p_val > pb {
            return (false, false, false);
        }
        let has_pa = p_val == pa;
        let inner = p_val > pa && p_val < pb;
        let has_pb = if pa == pb {
            has_pa
        } else {
            let pb_bytes_full = (pb << s1).to_be_bytes();
            matches!(fst.lookup(&pb_bytes_full[..l1b]), Lookup::Leaf { .. })
        };
        (inner, has_pa, has_pb)
    }

    /// Probes the PBF for every l2-prefix of `[lo, hi]`, within budget.
    fn probe_pbf(&self, lo: u64, hi: u64) -> bool {
        let pbf = self.pbf.as_ref().expect("probe_pbf without PBF");
        pbf.may_contain_range(lo, hi)
    }
}

impl PersistentFilter for Proteus {
    fn spec_id(&self) -> u32 {
        spec_id::PROTEUS
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::PROTEUS]
    }

    /// Payload: `[l1_bytes, l2, has_fst, has_pbf]` + the present stages.
    /// The tuned `(l1, l2)` pair ships with the structures — loading never
    /// re-runs the CPFPR tuner.
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        w.word(self.l1_bytes as u64)?;
        w.word(self.l2 as u64)?;
        w.word(self.fst.is_some() as u64)?;
        w.word(self.pbf.is_some() as u64)?;
        if let Some(fst) = &self.fst {
            fst.write_to(w)?;
        }
        if let Some(pbf) = &self.pbf {
            pbf.write_to(w)?;
        }
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        let l1_bytes = src.word()?;
        if l1_bytes > 8 {
            return Err(FilterError::corrupt("Proteus trie depth above 8 bytes"));
        }
        let l2 = src.word()?;
        if l2 > 64 {
            return Err(FilterError::corrupt("Proteus prefix length above 64"));
        }
        let has_fst = src.word()?;
        let has_pbf = src.word()?;
        if (has_fst != (l1_bytes > 0) as u64) || (has_pbf != (l2 > 0) as u64) {
            return Err(FilterError::corrupt("Proteus stage flags inconsistent"));
        }
        let fst = if has_fst == 1 {
            Some(if header.legacy_directories() {
                Fst::read_from_v1(src)?
            } else {
                Fst::read_from(src)?
            })
        } else {
            None
        };
        let pbf = if has_pbf == 1 {
            let pbf = PrefixBloomFilter::read_from(src)?;
            if pbf.prefix_len() != l2 as u32 {
                return Err(FilterError::corrupt("Proteus PBF prefix length drifted"));
            }
            Some(pbf)
        } else {
            None
        };
        Ok(Self {
            l1_bytes: l1_bytes as u32,
            l2: l2 as u32,
            fst,
            pbf,
            n_keys: header.n_keys as usize,
        })
    }
}

/// Modelled FPR of a `(l1, l2)` configuration on the sampled empty queries.
#[allow(clippy::too_many_arguments)]
fn estimate_fpr(
    _sorted: &[u64],
    d1: &[u64],
    l1: u32,
    l2: u32,
    pbf_budget: f64,
    d2_tables: &[Vec<u64>],
    sample: &[(u64, u64)],
) -> f64 {
    if sample.is_empty() {
        // No workload knowledge: fall back to preferring deeper structures.
        return 1.0 - (l1 as f64 * 8.0 + l2 as f64) / 1000.0;
    }
    let (d2, bloom_fpr) = if l2 > 0 {
        let d2 = &d2_tables[(l2 / 4 - 1) as usize];
        let m = pbf_budget.max(64.0);
        let k = BloomFilter::optimal_k(m as usize, d2.len()) as f64;
        let fpr = (1.0 - (-k * d2.len() as f64 / m).exp()).powf(k);
        (Some(d2), fpr)
    } else {
        (None, 1.0)
    };
    let s1 = 64 - 8 * l1;
    let s2 = 64 - l2;
    let contains = |v: &[u64], x: u64| v.binary_search(&x).is_ok();
    let any_in = |v: &[u64], lo: u64, hi: u64| {
        let i = v.partition_point(|&p| p < lo);
        i < v.len() && v[i] <= hi
    };
    let mut total = 0.0;
    for &(a, b) in sample {
        if a > b {
            continue;
        }
        let contribution: f64 = if l1 > 0 {
            let (pa, pb) = (shr(a, s1), shr(b, s1));
            let has_pa = contains(d1, pa);
            let has_pb = contains(d1, pb);
            // Inner prefixes cannot exist for an empty query; and with an
            // exact (l1 = 8) trie, boundary presence contradicts emptiness.
            if (!has_pa && !has_pb) || l1 == 8 {
                0.0
            } else {
                match d2 {
                    None => 1.0,
                    Some(d2) => {
                        let mut p_fp = 0.0f64;
                        let mut miss_all = 1.0f64;
                        for &(x, present) in &[(pa, has_pa), (pb, has_pb)] {
                            if !present {
                                continue;
                            }
                            let block_lo = x << s1;
                            let block_hi = if s1 == 0 {
                                x
                            } else {
                                block_lo + ((1u64 << s1) - 1)
                            };
                            let lo2 = shr(a.max(block_lo), s2);
                            let hi2 = shr(b.min(block_hi), s2);
                            if any_in(d2, lo2, hi2) {
                                p_fp = 1.0;
                            } else {
                                let t = (hi2 - lo2 + 1) as f64;
                                miss_all *= (1.0 - bloom_fpr).powf(t);
                            }
                            if pa == pb {
                                break; // single boundary block: count it once
                            }
                        }
                        p_fp.max(1.0 - miss_all)
                    }
                }
            }
        } else {
            // Bloom only.
            match d2 {
                None => 1.0,
                Some(d2) => {
                    let (lo2, hi2) = (shr(a, s2), shr(b, s2));
                    if hi2 - lo2 >= MAX_PROBES || any_in(d2, lo2, hi2) {
                        1.0
                    } else {
                        1.0 - (1.0 - bloom_fpr).powf((hi2 - lo2 + 1) as f64)
                    }
                }
            }
        };
        total += contribution;
    }
    total / sample.len() as f64
}

/// Per-filter tuning for [`Proteus`]: none. The CPFPR tuner already derives
/// everything from the shared config's keys, budget, sample, and seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProteusTuning;

impl BuildableFilter for Proteus {
    type Tuning = ProteusTuning;

    fn build_with(cfg: &FilterConfig<'_>, _tuning: &ProteusTuning) -> Result<Self, FilterError> {
        Proteus::new(cfg.keys, cfg.bits_per_key, cfg.sample, cfg.seed)
    }
}

impl RangeFilter for Proteus {
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if self.n_keys == 0 {
            return false;
        }
        if self.l1_bytes == 0 {
            return match &self.pbf {
                Some(_) => self.probe_pbf(a, b),
                None => true,
            };
        }
        let s1 = 64 - 8 * self.l1_bytes;
        let (pa, pb) = (shr(a, s1), shr(b, s1));
        let (inner, has_pa, has_pb) = self.trie_scan(pa, pb);
        if inner {
            return true;
        }
        if !has_pa && !has_pb {
            return false;
        }
        if self.l1_bytes == 8 {
            // Exact trie: a boundary hit is a real key in the range.
            return true;
        }
        if self.pbf.is_none() {
            return true;
        }
        // Escalate the present boundary blocks to the prefix Bloom filter.
        for &(x, present) in &[(pa, has_pa), (pb, has_pb)] {
            if !present {
                continue;
            }
            let block_lo = x << s1;
            let block_hi = block_lo + ((1u64 << s1) - 1);
            if self.probe_pbf(a.max(block_lo), b.min(block_hi)) {
                return true;
            }
            if pa == pb {
                break;
            }
        }
        false
    }

    fn size_in_bits(&self) -> usize {
        self.fst.as_ref().map_or(0, |f| f.size_in_bits())
            + self.pbf.as_ref().map_or(0, |p| p.size_in_bits())
            + 2 * 64
    }

    fn num_keys(&self) -> usize {
        self.n_keys
    }

    fn name(&self) -> &'static str {
        "Proteus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    fn uncorrelated_sample(sorted: &[u64], count: usize, l: u64, seed: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut state = seed;
        while out.len() < count {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state;
            let b = match a.checked_add(l - 1) {
                Some(b) => b,
                None => continue,
            };
            let i = sorted.partition_point(|&k| k < a);
            if i < sorted.len() && sorted[i] <= b {
                continue;
            }
            out.push((a, b));
        }
        out
    }

    #[test]
    fn no_false_negatives() {
        let keys = pseudo_keys(1500, 1);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let sample = uncorrelated_sample(&sorted, 200, 32, 7);
        let f = Proteus::new(&keys, 16.0, &sample, 3).unwrap();
        for (i, &k) in keys.iter().enumerate().step_by(3) {
            assert!(
                f.may_contain(k),
                "point FN at {i} (l1={}, l2={})",
                f.l1(),
                f.l2()
            );
            assert!(
                f.may_contain_range(k.saturating_sub(i as u64 % 50), k.saturating_add(31)),
                "range FN at {i}"
            );
        }
    }

    #[test]
    fn filters_the_tuned_workload() {
        let keys = pseudo_keys(3000, 5);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let sample = uncorrelated_sample(&sorted, 400, 32, 11);
        let f = Proteus::new(&keys, 18.0, &sample, 1).unwrap();
        let probes = uncorrelated_sample(&sorted, 2000, 32, 999);
        let fps = probes
            .iter()
            .filter(|&&(a, b)| f.may_contain_range(a, b))
            .count();
        let fpr = fps as f64 / probes.len() as f64;
        assert!(
            fpr < 0.15,
            "Proteus FPR {fpr} on its tuned workload (l1={}, l2={})",
            f.l1(),
            f.l2()
        );
    }

    #[test]
    fn tuner_picks_deeper_config_with_more_space() {
        let keys = pseudo_keys(1000, 9);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let sample = uncorrelated_sample(&sorted, 200, 32, 3);
        let small = Proteus::new(&keys, 8.0, &sample, 0).unwrap();
        let large = Proteus::new(&keys, 26.0, &sample, 0).unwrap();
        let depth = |p: &Proteus| p.l1() + p.l2();
        assert!(
            depth(&large) >= depth(&small),
            "more budget should not shrink the structure: small=({}, {}), large=({}, {})",
            small.l1(),
            small.l2(),
            large.l1(),
            large.l2()
        );
    }

    #[test]
    fn empty_keys() {
        let f = Proteus::new(&[], 16.0, &[], 0).unwrap();
        assert!(!f.may_contain_range(0, u64::MAX));
    }

    #[test]
    fn no_sample_still_builds_sound_filter() {
        let keys = pseudo_keys(500, 13);
        let f = Proteus::new(&keys, 14.0, &[], 0).unwrap();
        for &k in keys.iter().step_by(5) {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn wide_ranges_stay_sound() {
        let keys = pseudo_keys(300, 17);
        let sample: Vec<(u64, u64)> = vec![];
        let f = Proteus::new(&keys, 12.0, &sample, 0).unwrap();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        // A range covering at least one key must be positive.
        let mid = sorted[150];
        assert!(f.may_contain_range(mid.saturating_sub(1 << 30), mid.saturating_add(1 << 30)));
    }
}
