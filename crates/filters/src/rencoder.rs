//! REncoder — the Range Encoder of Wang et al. (ICDE 2023), as described in
//! the Grafite paper's §2/§5.
//!
//! Each key is processed in 4-bit chunks from the least significant end:
//! for a chunk value `s` and remaining prefix `p`, the path from leaf `s` to
//! the root of a complete 16-leaf binary tree is marked in a 32-bit word,
//! which is OR-ed into the bit array at `k` hashed offsets of `p`. One tree
//! thus stores five adjacent prefix-lengths of range information *locally*
//! (the "local encoder" in the filter's name), so a dyadic probe needs one
//! 32-bit load per hash instead of one Bloom probe per level.
//!
//! Variants, following the REncoder paper's naming as used by the Grafite
//! evaluation (which runs REncoder, REncoderSS, and the sample-auto-tuned
//! REncoderSE):
//!
//! * **REncoder** — the base configuration, storing the bottom
//!   `DEFAULT_ROUNDS` trees (see that constant for why not all 16);
//! * **REncoderSS** ("selective storage") — stores only the bottom
//!   `rounds` trees, enough for ranges up to `2^(4·rounds)`; fixed choice;
//! * **REncoderSE** ("sample estimation") — picks `rounds` from the largest
//!   range observed in a sample workload.

use grafite_core::persist::{spec_id, Header};
use grafite_core::{BuildableFilter, FilterConfig, FilterError, PersistentFilter, RangeFilter};
use grafite_hash::mix::murmur_mix64;
use grafite_succinct::io::{WordSource, WordWriter};
use grafite_succinct::BitVec;

use crate::dyadic::cover;

/// Offsets of each tree level inside the 32-bit encoder word:
/// level λ (0 = root, 4 = leaves) starts at bit `OFFSET[λ]`.
const LEVEL_OFFSET: [u32; 5] = [0, 1, 3, 7, 15];

/// Probe budget per query (soundness-preserving give-up threshold).
const MAX_PROBES: usize = 1 << 14;

/// Default number of stored rounds for the base variant: 4 trees cover
/// dyadic levels down to prefixes of `64 − 16` bits, i.e. ranges up to
/// `2^16` — comfortably above the paper's largest workload (`2^10`).
/// Storing all 16 rounds, as a literal reading of the description would
/// have it, costs ≥ 5·16 bits set per key and saturates any realistic bit
/// budget; the published space bound `O(n(k + log(1/ε)))` implies the real
/// implementation also bounds the stored levels. Documented in DESIGN.md §3.
const DEFAULT_ROUNDS: u32 = 4;

/// Which REncoder variant to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum REncoderVariant {
    /// The base configuration: bottom `DEFAULT_ROUNDS` trees.
    Full,
    /// Selective storage: only the bottom `rounds` trees.
    SelectiveStorage {
        /// Number of 4-bit rounds stored (1..=16).
        rounds: u32,
    },
    /// Sample estimation: rounds chosen from the largest sampled range.
    SampleEstimation,
}

/// The REncoder range filter.
#[derive(Clone, Debug)]
pub struct REncoder {
    bits: BitVec,
    m: u64,
    k: u32,
    rounds: u32,
    seed: u64,
    n_keys: usize,
    variant_name: &'static str,
}

impl REncoder {
    /// Builds an REncoder.
    ///
    /// * `bits_per_key` — bit-array budget;
    /// * `variant` — which storage policy (see [`REncoderVariant`]);
    /// * `sample` — empty-range sample used by `SampleEstimation`.
    pub fn new(
        keys: &[u64],
        bits_per_key: f64,
        variant: REncoderVariant,
        sample: Option<&[(u64, u64)]>,
        seed: u64,
    ) -> Result<Self, FilterError> {
        if !(bits_per_key > 0.0 && bits_per_key.is_finite()) {
            return Err(FilterError::InvalidBudget(bits_per_key));
        }
        let (rounds, variant_name) = match variant {
            REncoderVariant::Full => (DEFAULT_ROUNDS, "REncoder"),
            REncoderVariant::SelectiveStorage { rounds } => (rounds.clamp(1, 16), "REncoderSS"),
            REncoderVariant::SampleEstimation => {
                // Largest sampled range dictates the shallowest level probed:
                // ranges up to 2^(4·rounds) decompose into stored levels.
                let max_range = sample
                    .unwrap_or(&[])
                    .iter()
                    .map(|&(a, b)| b.saturating_sub(a) + 1)
                    .max()
                    .unwrap_or(1 << 10);
                let log = 64 - (max_range.max(2) - 1).leading_zeros(); // ceil(log2)
                ((log.div_ceil(4) + 1).clamp(1, 16), "REncoderSE")
            }
        };
        let n = keys.len();
        let m = ((bits_per_key * n.max(1) as f64).ceil() as u64).max(64);
        // One hash per tree: the AND-recovered *path* check (five bits per
        // probe at the leaves) supplies the discrimination k would.
        let k = 1;
        let mut f = Self {
            bits: BitVec::zeros(m as usize),
            m,
            k,
            rounds,
            seed,
            n_keys: n,
            variant_name,
        };
        for &key in keys {
            f.insert(key);
        }
        Ok(f)
    }

    /// The 32-bit word marking the root-to-leaf path of chunk value `s`.
    #[inline]
    fn tree_mask(s: u64) -> u32 {
        debug_assert!(s < 16);
        (1 << LEVEL_OFFSET[0])
            | (1 << (LEVEL_OFFSET[1] + (s >> 3) as u32))
            | (1 << (LEVEL_OFFSET[2] + (s >> 2) as u32))
            | (1 << (LEVEL_OFFSET[3] + (s >> 1) as u32))
            | (1 << (LEVEL_OFFSET[4] + s as u32))
    }

    /// Hashed bit offset of the tree for prefix `p` at round `j`, hash `i`.
    #[inline]
    fn tree_pos(&self, p: u64, j: u32, i: u32) -> usize {
        let h = murmur_mix64(
            p ^ self
                .seed
                .wrapping_add((j as u64) << 32)
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        (h % (self.m - 31)) as usize
    }

    fn insert(&mut self, key: u64) {
        for j in 0..self.rounds {
            let s = (key >> (4 * j)) & 0xF;
            let p = if j == 15 { 0 } else { key >> (4 * (j + 1)) };
            let mask = Self::tree_mask(s) as u64;
            for i in 0..self.k {
                let pos = self.tree_pos(p, j, i);
                let cur = self.bits.get_bits(pos, 32);
                self.bits.set_bits(pos, cur | mask, 32);
            }
        }
    }

    /// Maps a prefix length `level` (bits) to `(round, tree level λ, shift)`.
    /// Returns `None` if the level is shallower than the stored rounds.
    #[inline]
    fn locate(&self, level: u32) -> Option<(u32, u32)> {
        debug_assert!((1..=64).contains(&level));
        let d = 64 - level; // wildcard (low) bits
        if d % 4 == 0 {
            let j = d / 4;
            if j < self.rounds {
                Some((j, 4))
            } else if j == self.rounds {
                Some((j - 1, 0))
            } else {
                None
            }
        } else {
            let j = d / 4;
            if j < self.rounds {
                Some((j, 4 - d % 4))
            } else {
                None
            }
        }
    }

    /// Tests the range-tree node for the length-`level` prefix `q`,
    /// including all of its ancestors within the same tree: insertion marks
    /// entire leaf-to-root paths, so a genuine node always has its full
    /// ancestor path set — checking the path (the paper's "traversals of
    /// binary trees recovered via AND operations") multiplies the
    /// false-positive discrimination without extra memory loads.
    fn node_set(&self, q: u64, level: u32) -> Option<bool> {
        let (j, lambda) = self.locate(level)?;
        // The tree prefix p has level − λ bits; the node index is the next
        // λ bits of q.
        let p = if lambda == 0 { q } else { q >> lambda };
        let idx = if lambda == 0 {
            0u64
        } else {
            q & ((1 << lambda) - 1)
        };
        let mut need = 0u32;
        for lam in 0..=lambda {
            let ancestor = idx >> (lambda - lam);
            need |= 1 << (LEVEL_OFFSET[lam as usize] + ancestor as u32);
        }
        let mut word = u32::MAX;
        for i in 0..self.k {
            let pos = self.tree_pos(p, j, i);
            word &= self.bits.get_bits(pos, 32) as u32;
            if word & need != need {
                return Some(false);
            }
        }
        Some(word & need == need)
    }

    fn doubt(&self, q: u64, level: u32, probes: &mut usize) -> bool {
        *probes += 1;
        if *probes > MAX_PROBES {
            return true;
        }
        match self.node_set(q, level) {
            None => true, // level not stored: cannot filter
            Some(false) => false,
            Some(true) => {
                if level == 64 {
                    true
                } else {
                    self.doubt(q << 1, level + 1, probes)
                        || self.doubt((q << 1) | 1, level + 1, probes)
                }
            }
        }
    }

    /// Number of stored rounds (trees per key).
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

impl PersistentFilter for REncoder {
    /// One type, three spec ids, matching the three registry rows: the
    /// stored variant decides which.
    fn spec_id(&self) -> u32 {
        match self.variant_name {
            "REncoderSS" => spec_id::RENCODER_SS,
            "REncoderSE" => spec_id::RENCODER_SE,
            _ => spec_id::RENCODER,
        }
    }

    fn spec_ids() -> &'static [u32] {
        &[
            spec_id::RENCODER,
            spec_id::RENCODER_SS,
            spec_id::RENCODER_SE,
        ]
    }

    /// Payload: `[m, k, rounds, seed]` + the encoder bit array (the
    /// variant lives in the header's spec id).
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        w.word(self.m)?;
        w.word(self.k as u64)?;
        w.word(self.rounds as u64)?;
        w.word(self.seed)?;
        self.bits.write_to(w)?;
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        let variant_name = match header.spec_id {
            spec_id::RENCODER_SS => "REncoderSS",
            spec_id::RENCODER_SE => "REncoderSE",
            _ => "REncoder",
        };
        let m = src.word()?;
        if m < 64 {
            return Err(FilterError::corrupt("REncoder array below 64 bits"));
        }
        let k = src.word()?;
        if k == 0 || k > u32::MAX as u64 {
            return Err(FilterError::corrupt("REncoder hash count"));
        }
        let rounds = src.word()?;
        if !(1..=16).contains(&rounds) {
            return Err(FilterError::corrupt("REncoder round count"));
        }
        let seed = src.word()?;
        let bits = BitVec::read_from(src)?;
        if bits.len() as u64 != m {
            return Err(FilterError::corrupt("REncoder bit array length"));
        }
        Ok(Self {
            bits,
            m,
            k: k as u32,
            rounds: rounds as u32,
            seed,
            n_keys: header.n_keys as usize,
            variant_name,
        })
    }
}

/// Per-filter tuning for [`REncoder`]: a typed newtype over the variant.
/// Default: [`REncoderVariant::Full`], the paper's base configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct REncoderTuning(pub REncoderVariant);

impl Default for REncoderTuning {
    fn default() -> Self {
        Self(REncoderVariant::Full)
    }
}

impl BuildableFilter for REncoder {
    type Tuning = REncoderTuning;

    fn build_with(cfg: &FilterConfig<'_>, tuning: &REncoderTuning) -> Result<Self, FilterError> {
        // Only the SE variant consumes the workload sample.
        let sample = matches!(tuning.0, REncoderVariant::SampleEstimation).then_some(cfg.sample);
        REncoder::new(cfg.keys, cfg.bits_per_key, tuning.0, sample, cfg.seed)
    }
}

impl RangeFilter for REncoder {
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if self.n_keys == 0 {
            return false;
        }
        let max_j = 4 * self.rounds;
        // A span far wider than the deepest stored level would decompose
        // into an unbounded interval list: give up (soundly) first.
        if max_j < 64 && ((b - a) >> max_j) as usize > MAX_PROBES / 4 {
            return true;
        }
        let intervals = cover(a, b, max_j);
        if intervals.len() > MAX_PROBES / 2 {
            return true;
        }
        let mut probes = 0usize;
        for d in intervals {
            if d.j == 64 {
                return true; // whole-universe probe cannot be filtered
            }
            if self.doubt(d.prefix, 64 - d.j, &mut probes) {
                return true;
            }
        }
        false
    }

    fn size_in_bits(&self) -> usize {
        self.bits.size_in_bits() + 4 * 64
    }

    fn num_keys(&self) -> usize {
        self.n_keys
    }

    fn name(&self) -> &'static str {
        self.variant_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn tree_mask_marks_five_bits() {
        for s in 0..16u64 {
            let mask = REncoder::tree_mask(s);
            assert_eq!(mask.count_ones(), 5, "s={s}");
            assert!(mask & 1 != 0, "root always marked");
            assert!(mask & (1 << (15 + s)) != 0, "leaf s marked");
        }
    }

    #[test]
    fn no_false_negatives_all_variants() {
        let keys = pseudo_keys(1500, 1);
        let variants = [
            REncoderVariant::Full,
            REncoderVariant::SelectiveStorage { rounds: 3 },
            REncoderVariant::SampleEstimation,
        ];
        let sample: Vec<(u64, u64)> = vec![(0, 1023)];
        for v in variants {
            let f = REncoder::new(&keys, 18.0, v, Some(&sample), 7).unwrap();
            for (i, &k) in keys.iter().enumerate().step_by(4) {
                assert!(f.may_contain(k), "{:?} point FN at {i}", v);
                assert!(
                    f.may_contain_range(k.saturating_sub(40), k.saturating_add(40)),
                    "{:?} range FN at {i}",
                    v
                );
            }
        }
    }

    #[test]
    fn filters_empty_point_queries() {
        let keys = pseudo_keys(2000, 3);
        let f = REncoder::new(&keys, 20.0, REncoderVariant::Full, None, 1).unwrap();
        let mut fps = 0;
        for probe in pseudo_keys(4000, 99) {
            if keys.contains(&probe) {
                continue;
            }
            if f.may_contain(probe) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / 4000.0;
        assert!(fpr < 0.25, "REncoder point FPR {fpr} at 20 bpk");
    }

    #[test]
    fn selective_storage_cheaper_to_build_more_fp_on_large_ranges() {
        let keys = pseudo_keys(2000, 5);
        let full = REncoder::new(&keys, 16.0, REncoderVariant::Full, None, 2).unwrap();
        let ss = REncoder::new(
            &keys,
            16.0,
            REncoderVariant::SelectiveStorage { rounds: 2 },
            None,
            2,
        )
        .unwrap();
        assert_eq!(full.rounds(), DEFAULT_ROUNDS);
        assert_eq!(ss.rounds(), 2);
        // SS cannot filter ranges wider than 2^8: everything "maybe".
        assert!(ss.may_contain_range(0, 1 << 40));
    }

    #[test]
    fn sample_estimation_adapts_rounds() {
        let keys = pseudo_keys(500, 9);
        let small: Vec<(u64, u64)> = vec![(10, 41)]; // ranges of 32
        let large: Vec<(u64, u64)> = vec![(10, 10 + (1 << 20) - 1)];
        let f_small = REncoder::new(
            &keys,
            16.0,
            REncoderVariant::SampleEstimation,
            Some(&small),
            0,
        )
        .unwrap();
        let f_large = REncoder::new(
            &keys,
            16.0,
            REncoderVariant::SampleEstimation,
            Some(&large),
            0,
        )
        .unwrap();
        assert!(f_small.rounds() < f_large.rounds());
    }

    #[test]
    fn empty_keys() {
        let f = REncoder::new(&[], 16.0, REncoderVariant::Full, None, 0).unwrap();
        assert!(!f.may_contain_range(0, u64::MAX));
    }

    #[test]
    fn locate_level_mapping() {
        let f = REncoder::new(
            &[1],
            16.0,
            REncoderVariant::SelectiveStorage { rounds: 16 },
            None,
            0,
        )
        .unwrap();
        // Level 64 (points): round 0 leaves.
        assert_eq!(f.locate(64), Some((0, 4)));
        // Level 63: round 0, λ=3.
        assert_eq!(f.locate(63), Some((0, 3)));
        // Level 60: leaf of round 1.
        assert_eq!(f.locate(60), Some((1, 4)));
        // Level 1: round 15, λ=1.
        assert_eq!(f.locate(1), Some((15, 1)));

        // A 4-round filter cannot locate shallower levels.
        let f4 = REncoder::new(&[1], 16.0, REncoderVariant::Full, None, 0).unwrap();
        assert_eq!(f4.locate(64 - 16), Some((3, 0)));
        assert_eq!(f4.locate(64 - 17), None);
    }
}
