//! Rosetta — the Robust Space-Time Optimized Range Filter of Luo et al.
//! (SIGMOD 2020), as described in the Grafite paper's §2/§5.
//!
//! One Bloom filter per prefix length ("level"); every key inserts all its
//! prefixes at the stored levels. A range query is decomposed into dyadic
//! intervals probed at the matching level; every positive is *doubted* by
//! recursively probing its two children until the leaf level confirms.
//! Rosetta is the other FPR-robust filter in the paper (Figure 3), but pays
//! `O(L·log(1/ε))` worst-case probes — the query-time gap to Grafite that
//! Figure 5 quantifies.
//!
//! Sizing follows the tuning the Grafite paper cites from [25, §3.1]: the
//! bottom level is sized for FPR ε and each upper level for FPR `1/(2−ε)`,
//! giving `≈ 1.44·n·log2(L/ε)` total bits. The optional sample-based
//! auto-tuning reweights the upper levels by the probe frequencies observed
//! on a sample workload (§6.1 runs Rosetta auto-tuned).

use grafite_bloom::BloomFilter;
use grafite_core::persist::{spec_id, Header};
use grafite_core::{BuildableFilter, FilterConfig, FilterError, PersistentFilter, RangeFilter};
use grafite_succinct::io::{WordSource, WordWriter};

use crate::dyadic::cover;

/// Probe budget per query: past this, the filter stops filtering and
/// answers "maybe" (keeps adversarial inputs from exploding query time).
const MAX_PROBES: usize = 1 << 14;

/// The Rosetta range filter.
#[derive(Clone, Debug)]
pub struct Rosetta {
    /// `blooms[i]` serves prefix length `min_level + i`; last entry = level 64.
    blooms: Vec<BloomFilter>,
    min_level: u32,
    n_keys: usize,
}

impl Rosetta {
    /// Builds a Rosetta filter.
    ///
    /// * `bits_per_key` — total space budget.
    /// * `max_range` — largest range size the level stack must cover
    ///   (`log2(max_range)` levels above the leaves); the paper's workloads
    ///   use `2^0 / 2^5 / 2^10`.
    /// * `sample` — optional empty-query sample `[a, b]` pairs for the
    ///   probe-frequency auto-tuning; `None` applies the uniform `1/(2−ε)`
    ///   upper-level sizing.
    pub fn new(
        keys: &[u64],
        bits_per_key: f64,
        max_range: u64,
        sample: Option<&[(u64, u64)]>,
        seed: u64,
    ) -> Result<Self, FilterError> {
        if !(bits_per_key > 0.0 && bits_per_key.is_finite()) {
            return Err(FilterError::InvalidBudget(bits_per_key));
        }
        if max_range == 0 {
            return Err(FilterError::InvalidMaxRange(0));
        }
        let n = keys.len();
        let levels_above = 64 - (max_range.max(2) - 1).leading_zeros(); // ceil(log2(max_range))
        let min_level = 64u32.saturating_sub(levels_above).max(1);
        let num_levels = (64 - min_level + 1) as usize;

        if n == 0 {
            let blooms = (0..num_levels)
                .map(|i| BloomFilter::new(1, 1, seed ^ i as u64))
                .collect();
            return Ok(Self {
                blooms,
                min_level,
                n_keys: 0,
            });
        }

        // Distinct-prefix counts per level (from a sorted copy).
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let distinct_at = |level: u32| -> usize {
            let shift = 64 - level;
            let mut count = 0usize;
            let mut prev = None;
            for &k in &sorted {
                let p = if shift == 64 { 0 } else { k >> shift };
                if Some(p) != prev {
                    count += 1;
                    prev = Some(p);
                }
            }
            count
        };

        // Solve ε from the budget: B ≈ 1.44·(log2(1/ε) + (levels−1)·log2(2−ε)).
        // log2(2−ε) ≈ 1 for small ε, so log2(1/ε) ≈ B/1.44 − (levels−1).
        let total_budget = bits_per_key * n as f64;
        let log_inv_eps = (bits_per_key / 1.44 - (num_levels as f64 - 1.0)).max(1.0);
        let epsilon = (0.5f64).min(2f64.powf(-log_inv_eps));

        // Per-level weights: bottom level sized for ε, upper levels for
        // 1/(2−ε) — optionally reweighted by sampled probe frequencies.
        let mut weights = vec![0.0f64; num_levels];
        for (i, w) in weights.iter_mut().enumerate() {
            let level = min_level + i as u32;
            let items = distinct_at(level) as f64;
            let target_fpr: f64 = if level == 64 {
                epsilon
            } else {
                1.0 / (2.0 - epsilon)
            };
            *w = 1.44 * items * (1.0 / target_fpr).log2().max(0.1);
        }
        if let Some(sample) = sample {
            // Count how often each level is the entry point of a dyadic probe.
            let mut freq = vec![1.0f64; num_levels];
            for &(a, b) in sample.iter().take(4096) {
                if a > b {
                    continue;
                }
                for d in cover(a, b, 64 - min_level) {
                    let level = 64 - d.j;
                    freq[(level - min_level) as usize] += 1.0;
                }
            }
            let total_f: f64 = freq.iter().sum();
            // Blend: levels probed more often get proportionally more of the
            // upper-level budget (the bottom level keeps its ε share).
            for i in 0..num_levels - 1 {
                weights[i] *= 0.5 + (freq[i] / total_f) * num_levels as f64;
            }
        }
        let weight_sum: f64 = weights.iter().sum();
        let blooms: Vec<BloomFilter> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let level = min_level + i as u32;
                let m = ((total_budget * w / weight_sum).ceil() as usize).max(64);
                let items = distinct_at(level).max(1);
                let k = BloomFilter::optimal_k(m, items);
                BloomFilter::new(m, k, seed ^ (level as u64).wrapping_mul(0x9E3779B97F4A7C15))
            })
            .collect();

        let mut rosetta = Self {
            blooms,
            min_level,
            n_keys: n,
        };
        for &k in &sorted {
            rosetta.insert_prefixes(k);
        }
        rosetta.n_keys = keys.len();
        Ok(rosetta)
    }

    fn insert_prefixes(&mut self, key: u64) {
        for i in 0..self.blooms.len() {
            let level = self.min_level + i as u32;
            let prefix = if level == 64 {
                key
            } else {
                key >> (64 - level)
            };
            self.blooms[i].insert(prefix);
        }
    }

    #[inline]
    fn bloom_at(&self, level: u32) -> &BloomFilter {
        &self.blooms[(level - self.min_level) as usize]
    }

    /// The recursive "doubting" walk: confirm a positive at `level` by
    /// probing its children down to the leaves.
    fn doubt(&self, prefix: u64, level: u32, probes: &mut usize) -> bool {
        *probes += 1;
        if *probes > MAX_PROBES {
            return true; // give up filtering, stay sound
        }
        if !self.bloom_at(level).contains(prefix) {
            return false;
        }
        if level == 64 {
            return true;
        }
        self.doubt(prefix << 1, level + 1, probes)
            || self.doubt((prefix << 1) | 1, level + 1, probes)
    }

    /// The shallowest stored level.
    pub fn min_level(&self) -> u32 {
        self.min_level
    }
}

impl PersistentFilter for Rosetta {
    fn spec_id(&self) -> u32 {
        spec_id::ROSETTA
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::ROSETTA]
    }

    /// Payload: `[min_level, n_levels]` + one Bloom filter per level.
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        w.word(self.min_level as u64)?;
        w.word(self.blooms.len() as u64)?;
        for bloom in &self.blooms {
            bloom.write_to(w)?;
        }
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        let min_level = src.word()?;
        if !(1..=64).contains(&min_level) {
            return Err(FilterError::corrupt("Rosetta level out of range"));
        }
        let n_levels = src.length()?;
        if n_levels != (64 - min_level + 1) as usize {
            return Err(FilterError::corrupt("Rosetta level stack height"));
        }
        let mut blooms = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            blooms.push(BloomFilter::read_from(src)?);
        }
        Ok(Self {
            blooms,
            min_level: min_level as u32,
            n_keys: header.n_keys as usize,
        })
    }
}

/// Per-filter tuning for [`Rosetta`] under the [`BuildableFilter`]
/// protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RosettaTuning {
    /// Reweight the per-level Bloom budgets by the probe frequencies
    /// observed on [`FilterConfig::sample`] — the paper's auto-tuned §6.1
    /// configuration. Default: on.
    pub sample_tuned: bool,
}

impl Default for RosettaTuning {
    fn default() -> Self {
        Self { sample_tuned: true }
    }
}

impl BuildableFilter for Rosetta {
    type Tuning = RosettaTuning;

    fn build_with(cfg: &FilterConfig<'_>, tuning: &RosettaTuning) -> Result<Self, FilterError> {
        let sample = tuning.sample_tuned.then_some(cfg.sample);
        Rosetta::new(cfg.keys, cfg.bits_per_key, cfg.max_range, sample, cfg.seed)
    }
}

impl RangeFilter for Rosetta {
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if self.n_keys == 0 {
            return false;
        }
        let max_j = 64 - self.min_level;
        // A span far wider than the shallowest stored level would decompose
        // into an unbounded interval list: give up (soundly) first.
        if max_j < 64 && ((b - a) >> max_j) as usize > MAX_PROBES / 4 {
            return true;
        }
        let intervals = cover(a, b, max_j);
        if intervals.len() > MAX_PROBES / 2 {
            return true;
        }
        let mut probes = 0usize;
        for d in intervals {
            if self.doubt(d.prefix, 64 - d.j, &mut probes) {
                return true;
            }
        }
        false
    }

    fn size_in_bits(&self) -> usize {
        self.blooms.iter().map(|b| b.size_in_bits()).sum::<usize>() + 2 * 64
    }

    fn num_keys(&self) -> usize {
        self.n_keys
    }

    fn name(&self) -> &'static str {
        "Rosetta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let keys = pseudo_keys(2000, 1);
        for &l in &[1u64, 32, 1024] {
            let f = Rosetta::new(&keys, 18.0, l, None, 7).unwrap();
            for (i, &k) in keys.iter().enumerate().step_by(5) {
                assert!(f.may_contain(k), "point FN at {i}");
                let lo = k.saturating_sub(i as u64 % l.max(2));
                let hi = lo + (l - 1);
                if hi >= k {
                    assert!(f.may_contain_range(lo, hi), "range FN at {i}");
                }
            }
        }
    }

    #[test]
    fn filters_empty_ranges() {
        let keys = pseudo_keys(2000, 3);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let f = Rosetta::new(&keys, 20.0, 32, None, 9).unwrap();
        let mut fps = 0;
        let mut empties = 0;
        let mut state = 555u64;
        while empties < 3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state;
            let b = match a.checked_add(31) {
                Some(b) => b,
                None => continue,
            };
            let i = sorted.partition_point(|&k| k < a);
            if i < sorted.len() && sorted[i] <= b {
                continue;
            }
            empties += 1;
            if f.may_contain_range(a, b) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / empties as f64;
        assert!(fpr < 0.3, "Rosetta FPR {fpr} not filtering at 20 bpk");
    }

    #[test]
    fn robust_to_correlated_queries() {
        // FPR must not blow up when query endpoints hug the keys — the
        // defining property of a robust filter (paper Figure 3).
        let keys: Vec<u64> = (0..2000u64).map(|i| i * (1 << 40)).collect();
        let f = Rosetta::new(&keys, 20.0, 32, None, 5).unwrap();
        let mut fps = 0;
        for &k in &keys {
            // Empty range right next to a key.
            if f.may_contain_range(k + 2, k + 33) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / keys.len() as f64;
        assert!(fpr < 0.35, "correlated FPR {fpr}");
    }

    #[test]
    fn sample_tuning_constructs_and_stays_sound() {
        let keys = pseudo_keys(1000, 11);
        let sample: Vec<(u64, u64)> = (0..200u64).map(|i| (i << 30, (i << 30) + 31)).collect();
        let f = Rosetta::new(&keys, 16.0, 32, Some(&sample), 2).unwrap();
        for &k in keys.iter().step_by(7) {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn empty_keys() {
        let f = Rosetta::new(&[], 16.0, 32, None, 0).unwrap();
        assert!(!f.may_contain_range(0, 1000));
    }

    #[test]
    fn budget_respected_roughly() {
        let keys = pseudo_keys(5000, 13);
        for &bpk in &[10.0, 18.0, 26.0] {
            let f = Rosetta::new(&keys, bpk, 1024, None, 1).unwrap();
            let got = f.bits_per_key();
            assert!(got < bpk * 1.3 + 8.0, "budget {bpk} -> {got}");
        }
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Rosetta::new(&[1], 0.0, 32, None, 0).is_err());
        assert!(Rosetta::new(&[1], 16.0, 0, None, 0).is_err());
    }
}
