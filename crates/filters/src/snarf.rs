//! SNARF — the Sparse Numerical Array-Based Range Filter of Vaidya et al.
//! (PVLDB 2022), as described in the Grafite paper's §2/§5.
//!
//! A monotone estimate of the key CDF (a linear spline through every `t`-th
//! sorted key) maps each key to a position `f(x) = ⌊MCDF(x)·K·n⌋` in a
//! conceptual bit array of `K·n` bits; the array's set-bit positions are
//! stored compressed (Golomb–Rice blocks, as in the SNARF paper). A query
//! `[a, b]` answers "not empty" iff some stored position lies in
//! `[f(a), f(b)]`.
//!
//! The Grafite authors found that the original implementation returns
//! **false negatives** due to arithmetic overflow in the learned model
//! (paper footnote 5). Our default uses 128-bit intermediates, which fixes
//! the bug; [`Snarf::with_faithful_overflow`] reproduces the original u64
//! arithmetic so the `ablation_snarf_overflow` experiment can demonstrate
//! the false negatives on datasets with huge gaps (e.g. Fb).

use grafite_core::persist::{spec_id, Header};
use grafite_core::{BuildableFilter, FilterConfig, FilterError, PersistentFilter, RangeFilter};
use grafite_succinct::io::{WordSource, WordWriter};
use grafite_succinct::GolombRiceSeq;

/// Spline sampling period (one spline knot every `t` keys), the SNARF
/// paper's engineering choice.
const SAMPLE_PERIOD: usize = 128;

/// The SNARF range filter.
#[derive(Clone, Debug)]
pub struct Snarf {
    /// Spline knots: every `t`-th sorted distinct key, plus the last.
    sample_keys: Vec<u64>,
    /// Rank (index among sorted distinct keys) of each knot.
    sample_ranks: Vec<u64>,
    /// Number of distinct keys.
    n: usize,
    /// Number of input keys (with duplicates), for bits-per-key reporting.
    n_input: usize,
    /// The bit-array scale factor `K`.
    k_scale: u64,
    codes: GolombRiceSeq,
    faithful_overflow: bool,
}

impl Snarf {
    /// Builds SNARF with a total space budget in bits per key.
    pub fn new(keys: &[u64], bits_per_key: f64) -> Result<Self, FilterError> {
        Self::build_impl(keys, bits_per_key, false)
    }

    /// Builds with the original implementation's overflow-prone u64 model
    /// arithmetic (reintroduces the false negatives of paper footnote 5).
    pub fn with_faithful_overflow(keys: &[u64], bits_per_key: f64) -> Result<Self, FilterError> {
        Self::build_impl(keys, bits_per_key, true)
    }

    fn build_impl(keys: &[u64], bits_per_key: f64, faithful: bool) -> Result<Self, FilterError> {
        if !(bits_per_key > 0.0 && bits_per_key.is_finite()) {
            return Err(FilterError::InvalidBudget(bits_per_key));
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let n = sorted.len();
        if n == 0 {
            return Ok(Self {
                sample_keys: Vec::new(),
                sample_ranks: Vec::new(),
                n: 0,
                n_input: 0,
                k_scale: 2,
                codes: GolombRiceSeq::new(&[], 2),
                faithful_overflow: faithful,
            });
        }

        let mut sample_keys = Vec::with_capacity(n / SAMPLE_PERIOD + 2);
        let mut sample_ranks = Vec::with_capacity(n / SAMPLE_PERIOD + 2);
        for i in (0..n).step_by(SAMPLE_PERIOD) {
            sample_keys.push(sorted[i]);
            sample_ranks.push(i as u64);
        }
        if *sample_ranks.last().unwrap() != (n - 1) as u64 {
            sample_keys.push(sorted[n - 1]);
            sample_ranks.push((n - 1) as u64);
        }

        // Split the budget: 64 bits per spline knot, ~2.2 bits/key of Rice
        // overhead, the rest as log2(K).
        let spline_bpk = sample_keys.len() as f64 * 128.0 / n as f64;
        let code_bits = (bits_per_key - spline_bpk - 2.2).clamp(1.0, 48.0);
        let k_scale = (code_bits.exp2().round() as u64).max(2);

        let mut filter = Self {
            sample_keys,
            sample_ranks,
            n,
            n_input: keys.len(),
            k_scale,
            codes: GolombRiceSeq::new(&[], 2),
            faithful_overflow: faithful,
        };
        let mut codes: Vec<u64> = sorted.iter().map(|&k| filter.position(k)).collect();
        codes.sort_unstable(); // the buggy model can be non-monotone
        codes.dedup();
        let universe = (n as u64).saturating_mul(k_scale).saturating_add(2);
        filter.codes = GolombRiceSeq::new(&codes, universe);
        Ok(filter)
    }

    /// The model `f(x) = ⌊MCDF(x) · K · n⌋`, by linear interpolation between
    /// the two surrounding spline knots.
    fn position(&self, x: u64) -> u64 {
        let last = *self.sample_keys.last().unwrap();
        if x > last {
            // Strictly above every stored code: ranges beyond the max key
            // stay empty.
            return (self.n as u64 - 1) * self.k_scale + 1;
        }
        if x <= self.sample_keys[0] {
            return 0;
        }
        // Last knot with key <= x.
        let i = self.sample_keys.partition_point(|&k| k <= x) - 1;
        let (k0, r0) = (self.sample_keys[i], self.sample_ranks[i]);
        if x == k0 || i + 1 == self.sample_keys.len() {
            return r0 * self.k_scale;
        }
        let (k1, r1) = (self.sample_keys[i + 1], self.sample_ranks[i + 1]);
        if self.faithful_overflow {
            // The original u64 arithmetic: the rank interpolation
            // (x − k0)·Δr wraps for large gaps (Δx up to 2^63 against
            // Δr = 128 needs 71 bits), making the estimated CDF — and hence
            // f — non-monotone: the false-negative bug of paper footnote 5.
            let est_rank = r0 + (x - k0).wrapping_mul(r1 - r0) / (k1 - k0);
            est_rank * self.k_scale
        } else {
            let dr_scaled = (r1 - r0) * self.k_scale;
            let num = (x - k0) as u128 * dr_scaled as u128;
            r0 * self.k_scale + (num / (k1 - k0) as u128) as u64
        }
    }

    /// The scale factor `K` (the paper's knob trading space for FPR).
    pub fn k_scale(&self) -> u64 {
        self.k_scale
    }
}

impl PersistentFilter for Snarf {
    fn spec_id(&self) -> u32 {
        spec_id::SNARF
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::SNARF]
    }

    /// Payload: `[n_distinct, k_scale, faithful_overflow]` + the spline
    /// knots (keys, ranks) + the Rice-coded positions.
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        w.word(self.n as u64)?;
        w.word(self.k_scale)?;
        w.word(self.faithful_overflow as u64)?;
        w.prefixed(&self.sample_keys)?;
        w.prefixed(&self.sample_ranks)?;
        self.codes.write_to(w)?;
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        let n = src.length()?;
        let k_scale = src.word()?;
        if k_scale < 2 {
            return Err(FilterError::corrupt("SNARF scale factor below 2"));
        }
        let faithful_overflow = match src.word()? {
            0 => false,
            1 => true,
            _ => return Err(FilterError::corrupt("SNARF overflow flag")),
        };
        let n_keys = src.length()?;
        let sample_keys = src.take(n_keys)?;
        let n_ranks = src.length()?;
        if n_ranks != n_keys {
            return Err(FilterError::corrupt("SNARF spline table lengths differ"));
        }
        let sample_ranks = src.take(n_ranks)?;
        if n > 0 && sample_keys.is_empty() {
            return Err(FilterError::corrupt("SNARF spline empty for non-empty set"));
        }
        let codes = GolombRiceSeq::read_from(src)?;
        Ok(Self {
            sample_keys,
            sample_ranks,
            n,
            n_input: header.n_keys as usize,
            k_scale,
            codes,
            faithful_overflow,
        })
    }
}

/// Per-filter tuning for [`Snarf`] under the [`BuildableFilter`] protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnarfTuning {
    /// Reproduce the original implementation's overflow-prone u64 model
    /// arithmetic (the false negatives of paper footnote 5). Default: off —
    /// the u128-safe model.
    pub faithful_overflow: bool,
}

impl BuildableFilter for Snarf {
    type Tuning = SnarfTuning;

    fn build_with(cfg: &FilterConfig<'_>, tuning: &SnarfTuning) -> Result<Self, FilterError> {
        Self::build_impl(cfg.keys, cfg.bits_per_key, tuning.faithful_overflow)
    }
}

impl RangeFilter for Snarf {
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if self.n == 0 {
            return false;
        }
        let lo = self.position(a);
        let hi = self.position(b);
        if lo > hi {
            // Only reachable with the overflow-faithful model: the original
            // code reads an empty slice here, i.e. answers "empty" — this is
            // precisely how its false negatives escape.
            return false;
        }
        self.codes.any_in_range(lo, hi)
    }

    fn size_in_bits(&self) -> usize {
        self.codes.size_in_bits() + self.sample_keys.len() * 128 + 4 * 64
    }

    fn num_keys(&self) -> usize {
        self.n_input
    }

    fn name(&self) -> &'static str {
        "SNARF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn model_is_monotone() {
        let keys = pseudo_keys(5000, 2);
        let f = Snarf::new(&keys, 14.0).unwrap();
        let mut probes = pseudo_keys(2000, 9);
        probes.sort_unstable();
        let mut prev = 0u64;
        for &x in &probes {
            let p = f.position(x);
            assert!(p >= prev, "model not monotone at {x}");
            prev = p;
        }
    }

    #[test]
    fn no_false_negatives_fixed_model() {
        let keys = pseudo_keys(3000, 5);
        for &bpk in &[8.0, 14.0, 22.0] {
            let f = Snarf::new(&keys, bpk).unwrap();
            for (i, &k) in keys.iter().enumerate().step_by(3) {
                assert!(f.may_contain(k), "point FN at {i} bpk={bpk}");
                assert!(f.may_contain_range(k.saturating_sub(5), k.saturating_add(5)));
            }
        }
    }

    #[test]
    fn filters_uncorrelated_empties() {
        let keys = pseudo_keys(4000, 7);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let f = Snarf::new(&keys, 18.0).unwrap();
        let mut fps = 0;
        let mut empties = 0;
        let mut state = 1234u64;
        while empties < 4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state;
            let b = match a.checked_add(31) {
                Some(b) => b,
                None => continue,
            };
            let i = sorted.partition_point(|&k| k < a);
            if i < sorted.len() && sorted[i] <= b {
                continue;
            }
            empties += 1;
            if f.may_contain_range(a, b) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / empties as f64;
        assert!(fpr < 0.05, "SNARF FPR {fpr} at 18 bpk on uncorrelated");
    }

    #[test]
    fn correlated_queries_defeat_snarf() {
        // The paper's core observation: query endpoints adjacent to keys
        // produce near-certain false positives for SNARF.
        let keys: Vec<u64> = (0..2000u64).map(|i| i * (1 << 40)).collect();
        let f = Snarf::new(&keys, 18.0).unwrap();
        let mut fps = 0;
        for &k in &keys {
            if f.may_contain_range(k + 2, k + 33) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / keys.len() as f64;
        assert!(fpr > 0.5, "expected adversarial FPR near 1, got {fpr}");
    }

    #[test]
    fn overflow_faithful_mode_has_false_negatives_on_huge_gaps() {
        // Fb-like: dense low mass plus far outliers — the spline segment
        // bridging the gap makes (x−k0)·Δr·K wrap in u64, so the buggy
        // model is non-monotone and *range* queries (whose endpoints land on
        // different sides of a wrap) lose keys. Point queries stay
        // consistent (build and probe share the model), exactly as with the
        // original implementation.
        // Keys spaced 2^55 apart put every spline segment over a 2^62 span:
        // the rank interpolation (x−k0)·128 needs 69 bits and wraps, so the
        // buggy CDF oscillates (sawtooth with period 2^57) *between* keys.
        let mut keys: Vec<u64> = (0..500u64).map(|i| i * 7).collect();
        keys.extend((0..300u64).map(|j| (1u64 << 62) + j * (1 << 55)));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let honest = Snarf::new(&keys, 16.0).unwrap();
        let buggy = Snarf::with_faithful_overflow(&keys, 16.0).unwrap();

        let mut honest_fns = 0usize;
        let mut buggy_fns = 0usize;
        let mut trials = 0usize;
        for &k in sorted.iter().filter(|&&k| k >= 1 << 62) {
            // Deltas below the 2^55 key spacing: the range contains exactly
            // key k, and a sawtooth boundary falls inside with prob ~ 2^-8..1/4.
            for shift in [48u32, 50, 52, 54] {
                let delta = 1u64 << shift;
                let a = k.saturating_sub(delta);
                let b = k.saturating_add(delta);
                // Ground truth: the range contains key k.
                trials += 1;
                if !honest.may_contain_range(a, b) {
                    honest_fns += 1;
                }
                if !buggy.may_contain_range(a, b) {
                    buggy_fns += 1;
                }
            }
        }
        assert!(trials > 100);
        assert_eq!(honest_fns, 0, "fixed model must have no FNs");
        assert!(
            buggy_fns > 0,
            "faithful-overflow mode should reproduce false negatives ({trials} trials)"
        );
    }

    #[test]
    fn empty_input() {
        let f = Snarf::new(&[], 12.0).unwrap();
        assert!(!f.may_contain_range(0, u64::MAX));
    }

    #[test]
    fn budget_tracks() {
        let keys = pseudo_keys(10_000, 3);
        for &bpk in &[8.0, 16.0, 24.0] {
            let f = Snarf::new(&keys, bpk).unwrap();
            let got = f.bits_per_key();
            assert!(got < bpk + 4.0, "budget {bpk} -> {got}");
        }
    }
}
