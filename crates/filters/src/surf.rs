//! SuRF — the Succinct Range Filter of Zhang et al. (SIGMOD 2018), on top of
//! our LOUDS-Sparse Fast Succinct Trie.
//!
//! Keys (64-bit, big-endian byte strings) are truncated at their
//! *distinguishing prefix* — the shortest prefix unique within the set —
//! and the truncated set is stored in the FST. Each leaf optionally carries
//! `m` suffix bits: **Real** (the key bits following the prefix, usable for
//! both point and range filtering) or **Hash** (key-hash bits, point queries
//! only). The Grafite evaluation uses real suffixes for range workloads and
//! hashed suffixes for point workloads (§6.1), and so does our harness.
//!
//! A range query `[a, b]` seeks the smallest stored (truncated) key that is
//! not decidedly smaller than `a`, optionally refines the undecided case
//! with real suffix bits, and compares the result against `b`
//! conservatively. No false negatives; false positives whenever truncation
//! loses the deciding bits — which is precisely why correlated queries
//! defeat SuRF (paper Figures 1/3).

use grafite_core::persist::{spec_id, Header};
use grafite_core::{BuildableFilter, FilterConfig, FilterError, PersistentFilter, RangeFilter};
use grafite_fst::{builder, FstDs, Lookup};
use grafite_hash::mix::murmur_mix64;
use grafite_succinct::io::{WordSource, WordWriter};
use grafite_succinct::IntVec;

/// Suffix policy for SuRF leaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuffixMode {
    /// No suffix bits (SuRF-Base).
    Base,
    /// `bits` of the key following the truncated prefix (SuRF-Real).
    Real {
        /// Suffix length in bits (1..=56).
        bits: u8,
    },
    /// `bits` of a key hash (SuRF-Hash): sharpens point queries only.
    Hash {
        /// Suffix length in bits (1..=56).
        bits: u8,
    },
}

impl SuffixMode {
    fn bits(&self) -> usize {
        match self {
            SuffixMode::Base => 0,
            SuffixMode::Real { bits } | SuffixMode::Hash { bits } => *bits as usize,
        }
    }
}

/// The SuRF range filter over `u64` keys.
#[derive(Clone, Debug)]
pub struct Surf {
    fst: FstDs,
    /// Per-leaf suffix bits, indexed by leaf emission order.
    suffixes: IntVec,
    /// Truncation length (bytes) per leaf — needed to slice Real suffixes
    /// out of probe keys.
    mode: SuffixMode,
    n_keys: usize,
}

impl Surf {
    /// Builds SuRF over the key set with the given suffix mode and the
    /// automatic LOUDS-Dense/Sparse split.
    pub fn new(keys: &[u64], mode: SuffixMode) -> Result<Self, FilterError> {
        Self::with_dense_depth(keys, mode, None)
    }

    /// Builds with an explicit number of LOUDS-Dense levels (`Some(0)` =
    /// pure LOUDS-Sparse); used by tests and the encoding ablation.
    pub fn with_dense_depth(
        keys: &[u64],
        mode: SuffixMode,
        dense_depth: Option<usize>,
    ) -> Result<Self, FilterError> {
        if let SuffixMode::Real { bits } | SuffixMode::Hash { bits } = mode {
            if bits == 0 || bits > 56 {
                return Err(FilterError::InvalidBudget(bits as f64));
            }
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let byte_keys: Vec<[u8; 8]> = sorted.iter().map(|k| k.to_be_bytes()).collect();
        let refs: Vec<&[u8]> = byte_keys.iter().map(|k| k.as_slice()).collect();
        let lens = builder::distinguishing_lengths(&refs);
        let truncated: Vec<&[u8]> = refs.iter().zip(&lens).map(|(k, &l)| &k[..l]).collect();
        // The full LOUDS-DS layout: dense bitmaps for the top levels (by
        // SuRF's size-ratio rule), LOUDS-Sparse below. `None` = auto.
        let result = match dense_depth {
            Some(d) => FstDs::build_with_depth(&truncated, d),
            None => FstDs::build_auto(&truncated),
        };

        let m = mode.bits();
        let mut suffixes = IntVec::with_capacity(m, result.leaf_to_key.len());
        for &key_idx in &result.leaf_to_key {
            let suffix = match mode {
                SuffixMode::Base => 0,
                SuffixMode::Real { bits } => {
                    key_suffix_bits(sorted[key_idx], lens[key_idx] * 8, bits as usize)
                }
                SuffixMode::Hash { bits } => murmur_mix64(sorted[key_idx]) >> (64 - bits as u32),
            };
            suffixes.push(suffix);
        }

        Ok(Self {
            fst: result.fst,
            suffixes,
            mode,
            n_keys: keys.len(),
        })
    }

    /// Access to the underlying trie (size diagnostics).
    pub fn fst(&self) -> &FstDs {
        &self.fst
    }

    /// The configured suffix mode.
    pub fn mode(&self) -> SuffixMode {
        self.mode
    }

    /// Exact-style point query: walk the trie, then compare suffix bits.
    fn point_query(&self, x: u64) -> bool {
        match self.fst.lookup(&x.to_be_bytes()) {
            Lookup::NotFound => false,
            Lookup::ExhaustedAtInternal => true, // cannot happen for 8-byte probes; stay sound
            Lookup::Leaf { leaf, depth } => match self.mode {
                SuffixMode::Base => true,
                SuffixMode::Real { bits } => {
                    let probe = key_suffix_bits(x, depth * 8, bits as usize);
                    self.suffixes.get(leaf) == probe
                }
                SuffixMode::Hash { bits } => {
                    let probe = murmur_mix64(x) >> (64 - bits as u32);
                    self.suffixes.get(leaf) == probe
                }
            },
        }
    }
}

impl PersistentFilter for Surf {
    /// One type, three spec ids: the stored suffix family decides which —
    /// `SuRF-Real` and `SuRF-Hash` are distinct rows of the paper's
    /// comparison (and of the registry), `SuRF-Base` is the suffix-free
    /// ablation.
    fn spec_id(&self) -> u32 {
        match self.mode {
            SuffixMode::Base => spec_id::SURF_BASE,
            SuffixMode::Real { .. } => spec_id::SURF_REAL,
            SuffixMode::Hash { .. } => spec_id::SURF_HASH,
        }
    }

    fn spec_ids() -> &'static [u32] {
        &[spec_id::SURF_BASE, spec_id::SURF_REAL, spec_id::SURF_HASH]
    }

    /// Payload: `[suffix_bits]` + the per-leaf suffix array + the LOUDS-DS
    /// trie (the suffix *family* lives in the header's spec id).
    fn write_payload(&self, w: &mut WordWriter<'_>) -> std::io::Result<()> {
        w.word(self.mode.bits() as u64)?;
        self.suffixes.write_to(w)?;
        self.fst.write_to(w)?;
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        header: &Header,
    ) -> Result<Self, FilterError> {
        let bits = src.word()?;
        let mode = match (header.spec_id, bits) {
            (spec_id::SURF_BASE, 0) => SuffixMode::Base,
            (spec_id::SURF_REAL, 1..=56) => SuffixMode::Real { bits: bits as u8 },
            (spec_id::SURF_HASH, 1..=56) => SuffixMode::Hash { bits: bits as u8 },
            _ => return Err(FilterError::corrupt("SuRF suffix length")),
        };
        let suffixes = IntVec::read_from(src)?;
        let fst = if header.legacy_directories() {
            FstDs::read_from_v1(src)?
        } else {
            FstDs::read_from(src)?
        };
        if suffixes.width() != mode.bits() || suffixes.len() != fst.num_leaves() {
            return Err(FilterError::corrupt("SuRF suffix table shape"));
        }
        Ok(Self {
            fst,
            suffixes,
            mode,
            n_keys: header.n_keys as usize,
        })
    }
}

/// `m` bits of `key` starting at bit `start` (0 = most significant), padded
/// with zeros past bit 63.
#[inline]
fn key_suffix_bits(key: u64, start: usize, m: usize) -> u64 {
    if m == 0 {
        return 0;
    }
    if start >= 64 {
        return 0;
    }
    let shifted = key << start; // drops the consumed prefix
    shifted >> (64 - m as u32)
}

/// The trie alone costs about this much per key on random data; the
/// budget-derived suffix length is what remains above it.
const TRIE_FLOOR_BITS: f64 = 11.0;

/// Suffix *style* for budget-derived construction ([`SurfTuning`]): which
/// of the two [`SuffixMode`] families to use, with the bit length computed
/// from [`FilterConfig::bits_per_key`] rather than given explicitly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SuffixStyle {
    /// Real key suffixes — the paper's range-query configuration.
    #[default]
    Real,
    /// Hashed suffixes — the paper's point-query configuration.
    Hashed,
}

/// Per-filter tuning for [`Surf`] under the [`BuildableFilter`] protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SurfTuning {
    /// Which suffix family to spend the above-floor budget on.
    pub style: SuffixStyle,
    /// `Some(bits)` pins the suffix length; `None` (the default) derives it
    /// from the budget: `round(bits_per_key − 11)`, capped at 32.
    pub suffix_bits: Option<u8>,
}

impl BuildableFilter for Surf {
    type Tuning = SurfTuning;

    /// Errors with [`FilterError::BudgetBelowFloor`] when the budget cannot
    /// cover the ~11 bits/key trie plus one suffix bit (the configurations
    /// the paper's footnote 6 omits).
    fn build_with(cfg: &FilterConfig<'_>, tuning: &SurfTuning) -> Result<Self, FilterError> {
        let bits = match tuning.suffix_bits {
            Some(bits) => bits,
            None => {
                let suffix_bits = (cfg.bits_per_key - TRIE_FLOOR_BITS).round();
                if suffix_bits < 1.0 {
                    return Err(FilterError::BudgetBelowFloor {
                        requested: cfg.bits_per_key,
                        floor: TRIE_FLOOR_BITS + 1.0,
                    });
                }
                (suffix_bits as u8).min(32)
            }
        };
        let mode = match tuning.style {
            SuffixStyle::Real => SuffixMode::Real { bits },
            SuffixStyle::Hashed => SuffixMode::Hash { bits },
        };
        Surf::new(cfg.keys, mode)
    }
}

impl RangeFilter for Surf {
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        if self.n_keys == 0 {
            return false;
        }
        if a == b {
            return self.point_query(a);
        }
        let a_bytes = a.to_be_bytes();
        let mut it = match self.fst.seek(&a_bytes) {
            Some(it) => it,
            None => return false,
        };
        // Undecided seek (stored key a proper prefix of `a`): refine with
        // real suffix bits, as SuRF does; at most one advance is needed
        // because the stored set is prefix-free.
        if let SuffixMode::Real { bits } = self.mode {
            let t = it.key();
            if t.len() < 8 && a_bytes.starts_with(&t) {
                let stored = self.suffixes.get(it.leaf_index());
                let probe = key_suffix_bits(a, t.len() * 8, bits as usize);
                if stored < probe {
                    // Decidedly smaller than a: move to the next leaf.
                    if !it.advance() {
                        return false;
                    }
                }
            }
        }
        // Upper comparison against b: decided by the truncated bytes when
        // they diverge from b, refined with real suffix bits when the
        // stored key is a prefix of b (SuRF's iter.getKey() <= b test).
        let b_bytes = b.to_be_bytes();
        let t = it.key();
        if !b_bytes.starts_with(&t) {
            return t.as_slice() < &b_bytes[..];
        }
        match self.mode {
            SuffixMode::Real { bits } => {
                let stored = self.suffixes.get(it.leaf_index());
                let probe = key_suffix_bits(b, t.len() * 8, bits as usize);
                // stored > probe decides the leaf's key (and every later
                // leaf) is beyond b; equality stays conservative.
                stored <= probe
            }
            _ => true,
        }
    }

    fn size_in_bits(&self) -> usize {
        self.fst.size_in_bits() + self.suffixes.size_in_bits() + 2 * 64
    }

    fn num_keys(&self) -> usize {
        self.n_keys
    }

    fn name(&self) -> &'static str {
        match self.mode {
            SuffixMode::Base => "SuRF-Base",
            SuffixMode::Real { .. } => "SuRF-Real",
            SuffixMode::Hash { .. } => "SuRF-Hash",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn suffix_bit_extraction() {
        let key = 0xABCD_EF01_2345_6789u64;
        assert_eq!(key_suffix_bits(key, 0, 8), 0xAB);
        assert_eq!(key_suffix_bits(key, 8, 8), 0xCD);
        assert_eq!(key_suffix_bits(key, 60, 4), 0x9);
        assert_eq!(key_suffix_bits(key, 64, 8), 0);
        assert_eq!(key_suffix_bits(key, 4, 12), 0xBCD);
    }

    #[test]
    fn no_false_negatives_all_modes() {
        let keys = pseudo_keys(2000, 1);
        let modes = [
            SuffixMode::Base,
            SuffixMode::Real { bits: 8 },
            SuffixMode::Hash { bits: 8 },
        ];
        for mode in modes {
            let f = Surf::new(&keys, mode).unwrap();
            for (i, &k) in keys.iter().enumerate().step_by(3) {
                assert!(f.may_contain(k), "{:?} point FN at {i}", mode);
                let lo = k.saturating_sub(i as u64 % 100);
                let hi = k.saturating_add(37);
                assert!(f.may_contain_range(lo, hi), "{:?} range FN at {i}", mode);
            }
        }
    }

    #[test]
    fn point_queries_filter_with_hash_suffixes() {
        let keys = pseudo_keys(2000, 7);
        let f = Surf::new(&keys, SuffixMode::Hash { bits: 10 }).unwrap();
        let mut fps = 0;
        let probes = pseudo_keys(4000, 1234);
        for &p in &probes {
            if keys.contains(&p) {
                continue;
            }
            if f.may_contain(p) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / probes.len() as f64;
        assert!(fpr < 0.05, "SuRF-Hash point FPR {fpr}");
    }

    #[test]
    fn range_queries_filter_uncorrelated() {
        let keys = pseudo_keys(2000, 9);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let f = Surf::new(&keys, SuffixMode::Real { bits: 8 }).unwrap();
        let mut fps = 0;
        let mut empties = 0;
        let mut state = 42u64;
        while empties < 3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state;
            let b = match a.checked_add(31) {
                Some(b) => b,
                None => continue,
            };
            let i = sorted.partition_point(|&k| k < a);
            if i < sorted.len() && sorted[i] <= b {
                continue;
            }
            empties += 1;
            if f.may_contain_range(a, b) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / empties as f64;
        assert!(
            fpr < 0.10,
            "SuRF-Real FPR {fpr} on uncorrelated small ranges"
        );
    }

    #[test]
    fn correlated_queries_defeat_surf() {
        // Adjacent empty ranges share long prefixes with the keys: the
        // truncated trie cannot separate them (the paper's headline issue).
        let keys: Vec<u64> = (0..2000u64).map(|i| i * (1 << 40)).collect();
        let f = Surf::new(&keys, SuffixMode::Real { bits: 8 }).unwrap();
        let mut fps = 0;
        for &k in keys.iter() {
            if f.may_contain_range(k + (1 << 20), k + (1 << 20) + 31) {
                fps += 1;
            }
        }
        let fpr = fps as f64 / keys.len() as f64;
        assert!(fpr > 0.5, "expected high correlated FPR, got {fpr}");
    }

    #[test]
    fn duplicate_and_empty_inputs() {
        let f = Surf::new(&[], SuffixMode::Base).unwrap();
        assert!(!f.may_contain_range(0, u64::MAX));
        let f = Surf::new(&[5, 5, 5], SuffixMode::Real { bits: 4 }).unwrap();
        assert!(f.may_contain(5));
    }

    #[test]
    fn space_reasonable() {
        let keys = pseudo_keys(10_000, 5);
        let f = Surf::new(&keys, SuffixMode::Real { bits: 8 }).unwrap();
        let bpk = f.bits_per_key();
        // Paper: at least 10 bits/key, typically 10 + m + trie overhead.
        assert!(bpk > 10.0 && bpk < 40.0, "SuRF bits/key = {bpk}");
    }

    #[test]
    fn rejects_bad_suffix_width() {
        assert!(Surf::new(&[1], SuffixMode::Real { bits: 0 }).is_err());
        assert!(Surf::new(&[1], SuffixMode::Hash { bits: 60 }).is_err());
    }
}

#[cfg(test)]
mod louds_ds_tests {
    use super::*;

    /// SuRF's answers are a pure function of the stored key set and suffix
    /// policy: the LOUDS-Dense/Sparse split must not change a single one.
    #[test]
    fn dense_and_sparse_encodings_agree() {
        let mut state = 31u64;
        let keys: Vec<u64> = (0..3000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect();
        for mode in [
            SuffixMode::Base,
            SuffixMode::Real { bits: 8 },
            SuffixMode::Hash { bits: 8 },
        ] {
            let sparse = Surf::with_dense_depth(&keys, mode, Some(0)).unwrap();
            let auto = Surf::new(&keys, mode).unwrap();
            assert!(
                auto.fst().dense_depth() >= 1,
                "auto split should use dense levels"
            );
            let mut probe_state = 77u64;
            for _ in 0..4000 {
                probe_state = probe_state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                let a = probe_state;
                let b = a.saturating_add(probe_state % 4096);
                assert_eq!(
                    sparse.may_contain_range(a, b),
                    auto.may_contain_range(a, b),
                    "{mode:?} disagreement on [{a}, {b}]"
                );
            }
        }
    }

    #[test]
    fn dense_head_speeds_up_or_matches_space() {
        let mut state = 77u64;
        let keys: Vec<u64> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        let auto = Surf::new(&keys, SuffixMode::Real { bits: 8 }).unwrap();
        let sparse = Surf::with_dense_depth(&keys, SuffixMode::Real { bits: 8 }, Some(0)).unwrap();
        // The 16x rule keeps the dense head a bounded fraction of the trie.
        assert!(auto.size_in_bits() < sparse.size_in_bits() * 2);
    }
}
