//! The one property every range filter must satisfy, whatever its design:
//! **no false negatives**, on arbitrary key sets, budgets, and ranges.

use grafite_core::RangeFilter;
use grafite_filters::{Proteus, REncoder, REncoderVariant, Rosetta, Snarf, SuffixMode, Surf};
use proptest::prelude::*;

fn check_no_false_negatives(
    filter: &dyn RangeFilter,
    keys: &[u64],
    offsets: &[(u64, u64)],
) -> Result<(), TestCaseError> {
    for (i, &(dl, dr)) in offsets.iter().enumerate() {
        let k = keys[i % keys.len()];
        let a = k.saturating_sub(dl);
        let b = k.saturating_add(dr);
        prop_assert!(
            filter.may_contain_range(a, b),
            "{}: FN for key {} in [{}, {}]",
            filter.name(),
            k,
            a,
            b
        );
        prop_assert!(
            filter.may_contain(k),
            "{}: point FN for {}",
            filter.name(),
            k
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn surf_never_false_negative(
        keys in prop::collection::vec(any::<u64>(), 1..250),
        offsets in prop::collection::vec((0u64..3000, 0u64..3000), 1..24),
        mode_sel in 0u8..3,
    ) {
        let mode = match mode_sel {
            0 => SuffixMode::Base,
            1 => SuffixMode::Real { bits: 8 },
            _ => SuffixMode::Hash { bits: 8 },
        };
        let f = Surf::new(&keys, mode).unwrap();
        check_no_false_negatives(&f, &keys, &offsets)?;
    }

    #[test]
    fn rosetta_never_false_negative(
        keys in prop::collection::vec(any::<u64>(), 1..250),
        offsets in prop::collection::vec((0u64..500, 0u64..500), 1..16),
        bpk in 6.0f64..24.0,
    ) {
        let f = Rosetta::new(&keys, bpk, 1 << 10, None, 99).unwrap();
        check_no_false_negatives(&f, &keys, &offsets)?;
    }

    #[test]
    fn snarf_never_false_negative(
        keys in prop::collection::vec(any::<u64>(), 1..250),
        offsets in prop::collection::vec((0u64..3000, 0u64..3000), 1..24),
        bpk in 6.0f64..24.0,
    ) {
        let f = Snarf::new(&keys, bpk).unwrap();
        check_no_false_negatives(&f, &keys, &offsets)?;
    }

    #[test]
    fn rencoder_never_false_negative(
        keys in prop::collection::vec(any::<u64>(), 1..250),
        offsets in prop::collection::vec((0u64..500, 0u64..500), 1..16),
        bpk in 6.0f64..24.0,
        variant_sel in 0u8..3,
    ) {
        let variant = match variant_sel {
            0 => REncoderVariant::Full,
            1 => REncoderVariant::SelectiveStorage { rounds: 3 },
            _ => REncoderVariant::SampleEstimation,
        };
        let sample = [(0u64, 1023u64)];
        let f = REncoder::new(&keys, bpk, variant, Some(&sample), 5).unwrap();
        check_no_false_negatives(&f, &keys, &offsets)?;
    }

    #[test]
    fn proteus_never_false_negative(
        keys in prop::collection::vec(any::<u64>(), 1..200),
        offsets in prop::collection::vec((0u64..500, 0u64..500), 1..12),
        bpk in 8.0f64..24.0,
    ) {
        // A small uncorrelated sample so the tuner has something to chew on.
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut sample = Vec::new();
        let mut state = 7u64;
        while sample.len() < 50 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state;
            let b = match a.checked_add(31) { Some(b) => b, None => continue };
            let i = sorted.partition_point(|&k| k < a);
            if i < sorted.len() && sorted[i] <= b { continue; }
            sample.push((a, b));
        }
        let f = Proteus::new(&keys, bpk, &sample, 1).unwrap();
        check_no_false_negatives(&f, &keys, &offsets)?;
    }
}
