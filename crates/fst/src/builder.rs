//! Level-order construction of the LOUDS-Sparse arrays from a sorted
//! prefix-free key set.

use std::collections::VecDeque;

use grafite_succinct::{BitVec, RsBitVec};

use crate::trie::Fst;

/// Build output: the trie plus the mapping from leaf emission order
/// (level order, which is how leaf indices are derived at query time via
/// `rank0(has_child, pos)`) to the index of the key that leaf terminates.
pub struct BuildResult {
    /// The encoded trie.
    pub fst: Fst,
    /// `leaf_to_key[leaf_idx] = key_idx` in the input slice.
    pub leaf_to_key: Vec<usize>,
}

/// Builds the trie from `keys`, which must be sorted, distinct, non-empty,
/// and prefix-free (no key may be a proper prefix of another — SuRF
/// guarantees this by construction of distinguishing prefixes, and fixed
/// length keys satisfy it trivially).
///
/// # Panics
/// Panics if the input violates the contract.
pub fn build(keys: &[&[u8]]) -> BuildResult {
    let roots = if keys.is_empty() {
        Vec::new()
    } else {
        vec![(0, keys.len(), 0)]
    };
    build_forest(keys, roots)
}

/// Builds a *forest*: one independent subtree per `(lo, hi, depth)` root
/// descriptor, serialised in a single level-order LOUDS-Sparse layout whose
/// nodes `0..roots.len()` are the given roots, in order. This is how the
/// LOUDS-Dense head hands its bottom level over to the sparse encoding
/// (see [`crate::louds_dense`]).
///
/// Root ranges must be disjoint, ascending, and every key in a root's range
/// must be strictly longer than the root's depth.
pub fn build_forest(keys: &[&[u8]], roots: Vec<(usize, usize, usize)>) -> BuildResult {
    for w in keys.windows(2) {
        assert!(w[0] < w[1], "keys must be sorted and distinct");
        assert!(!w[1].starts_with(w[0]), "key set must be prefix-free");
    }
    for k in keys {
        assert!(!k.is_empty(), "keys must be non-empty");
    }

    let mut labels = Vec::new();
    let mut has_child = BitVec::new();
    let mut louds = BitVec::new();
    let mut leaf_to_key = Vec::new();
    let mut num_nodes = 0usize;
    let num_roots = roots.len();

    {
        // BFS over (key range, depth) node descriptors.
        let mut queue: VecDeque<(usize, usize, usize)> = VecDeque::from(roots);
        while let Some((lo, hi, depth)) = queue.pop_front() {
            num_nodes += 1;
            let mut first_branch = true;
            let mut i = lo;
            while i < hi {
                let byte = keys[i][depth];
                let mut j = i + 1;
                while j < hi && keys[j][depth] == byte {
                    j += 1;
                }
                labels.push(byte);
                louds.push(first_branch);
                first_branch = false;
                // Prefix-freeness means a key ending at depth+1 is alone in
                // its group.
                if j - i == 1 && keys[i].len() == depth + 1 {
                    has_child.push(false);
                    leaf_to_key.push(i);
                } else {
                    debug_assert!(
                        keys[i..j].iter().all(|k| k.len() > depth + 1),
                        "prefix-free violation slipped through"
                    );
                    has_child.push(true);
                    queue.push_back((i, j, depth + 1));
                }
                i = j;
            }
        }
    }

    let fst = Fst::from_parts(
        labels,
        RsBitVec::new(has_child),
        RsBitVec::new(louds),
        num_nodes,
        leaf_to_key.len(),
        num_roots,
    );
    BuildResult { fst, leaf_to_key }
}

/// Computes SuRF's *distinguishing prefixes*: for each key, the shortest
/// prefix that uniquely identifies it within the sorted key set (one byte
/// past the longest common prefix with either neighbour). The result is
/// prefix-free and order-preserving, ready for [`build`].
///
/// Keys must be sorted and distinct. Returns the truncation length of each
/// key (capped at the key's own length).
pub fn distinguishing_lengths(keys: &[&[u8]]) -> Vec<usize> {
    let n = keys.len();
    let mut lens = vec![0usize; n];
    let lcp = |a: &[u8], b: &[u8]| a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    for i in 0..n {
        let left = if i > 0 { lcp(keys[i - 1], keys[i]) } else { 0 };
        let right = if i + 1 < n {
            lcp(keys[i], keys[i + 1])
        } else {
            0
        };
        lens[i] = (left.max(right) + 1).min(keys[i].len());
    }
    lens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishing_prefixes_are_prefix_free() {
        let keys: Vec<&[u8]> = vec![b"apple", b"apricot", b"banana", b"band", b"bandana~x"];
        let lens = distinguishing_lengths(&keys);
        let trunc: Vec<&[u8]> = keys.iter().zip(&lens).map(|(k, &l)| &k[..l]).collect();
        assert_eq!(trunc, vec![&b"app"[..], b"apr", b"bana", b"band", b"banda"]);
        // Sorted & prefix-free? "band" is a prefix of "banda": NOT prefix
        // free. This is exactly the case where SuRF's truncation needs the
        // terminator; fixed-length keys avoid it. Assert the function
        // reports it so callers can handle it.
        assert!(trunc[4].starts_with(trunc[3]));
    }

    #[test]
    fn fixed_length_keys_always_prefix_free() {
        let keys: Vec<Vec<u8>> = (0..200u64)
            .map(|i| (i * 999).to_be_bytes().to_vec())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let lens = distinguishing_lengths(&refs);
        let trunc: Vec<Vec<u8>> = refs
            .iter()
            .zip(&lens)
            .map(|(k, &l)| k[..l].to_vec())
            .collect();
        for w in trunc.windows(2) {
            assert!(w[0] < w[1]);
            assert!(!w[1].starts_with(w[0].as_slice()));
        }
    }

    #[test]
    fn build_single_key() {
        let keys: Vec<&[u8]> = vec![b"k"];
        let r = build(&keys);
        assert_eq!(r.fst.num_leaves(), 1);
        assert_eq!(r.leaf_to_key, vec![0]);
    }

    #[test]
    #[should_panic(expected = "prefix-free")]
    fn rejects_prefix_violation() {
        let keys: Vec<&[u8]> = vec![b"ab", b"abc"];
        build(&keys);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted() {
        let keys: Vec<&[u8]> = vec![b"b", b"a"];
        build(&keys);
    }
}
