//! A Fast Succinct Trie (FST) in the LOUDS-Sparse encoding of SuRF
//! (Zhang et al., SIGMOD 2018) — the substrate of the SuRF and Proteus range
//! filters in this reproduction.
//!
//! The trie over a prefix-free set of byte strings is serialised level by
//! level into three parallel arrays, one entry per *branch* (edge):
//!
//! * `labels` — the branch byte;
//! * `has_child` — 1 if the branch leads to an internal node, 0 if it ends a
//!   stored key (a leaf);
//! * `louds` — 1 iff the branch is the first branch of its node.
//!
//! Navigation is pure rank/select arithmetic: the child of the internal
//! branch at position `pos` is node `rank1(has_child, pos) + 1`, and node
//! `k` occupies positions `select1(louds, k) .. select1(louds, k + 1)`.
//! The space is `10 + o(1)` bits per branch, matching the LOUDS-Sparse row
//! of the paper's Table 1 analysis (§5).
//!
//! The [`louds_dense`] module adds SuRF's LOUDS-Dense encoding for the top
//! levels (256-bit label/child bitmaps per node) and composes the two into
//! the full LOUDS-DS layout ([`FstDs`]), which SuRF uses by default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod louds_dense;
pub mod trie;

pub use louds_dense::{DsIter, FstDs};
pub use trie::{Fst, FstIter, Lookup};
