//! The LOUDS-Dense encoding for the upper trie levels, composed with the
//! LOUDS-Sparse encoding for the rest — SuRF's full "LOUDS-DS" layout
//! (paper §2: "The trie uses the LOUDS-Dense encoding for the upper levels
//! and LOUDS-Sparse for the lower levels").
//!
//! Each dense node spends two 256-bit bitmaps — `labels` (which bytes
//! branch) and `has_child` (which branches are internal) — so a branch
//! lookup is a single bit probe instead of a label binary search. Dense
//! pays 512 bits per *node*, sparse 10 bits per *branch*; following SuRF's
//! size-ratio rule, levels stay dense while their bitmap cost is within a
//! constant factor of their sparse cost.
//!
//! Node numbering is global level-order: dense nodes first (the bitmaps are
//! laid out in level order), then the sparse *forest* whose roots are the
//! children of the deepest dense level, built with
//! [`crate::builder::build_forest`] so leaf indices keep a single global
//! level-order numbering across both halves.

use grafite_succinct::io::{DecodeError, WordSource, WordWriter};
use grafite_succinct::{BitVec, RsBitVec};

use crate::builder::{build_forest, BuildResult};
use crate::trie::{Fst, FstIter, Lookup};

/// A trie with LOUDS-Dense upper levels and LOUDS-Sparse lower levels.
#[derive(Clone, Debug)]
pub struct FstDs {
    /// 256 bits per dense node: which labels exist.
    labels: RsBitVec,
    /// 256 bits per dense node: which existing labels have a child.
    has_child: RsBitVec,
    dense_nodes: usize,
    dense_leaves: usize,
    /// Number of dense byte-levels (`0` = pure sparse).
    dense_depth: usize,
    sparse: Fst,
}

/// Build output: trie plus the global level-order leaf → key mapping.
pub struct DsBuildResult {
    /// The encoded trie.
    pub fst: FstDs,
    /// `leaf_to_key[leaf] = key index` (dense leaves first, then sparse).
    pub leaf_to_key: Vec<usize>,
}

impl FstDs {
    /// Builds with an automatically chosen dense depth: a level stays dense
    /// while its bitmap cost is at most `16x` its sparse cost (SuRF's
    /// size-ratio heuristic).
    pub fn build_auto(keys: &[&[u8]]) -> DsBuildResult {
        let mut depth = 0usize;
        // Nodes at level d = distinct d-byte prefixes that are internal;
        // approximate both costs from distinct prefix counts.
        loop {
            let nodes = distinct_prefixes(keys, depth);
            let branches = distinct_prefixes(keys, depth + 1);
            if nodes == 0 || branches == 0 {
                break;
            }
            let dense_bits = nodes * 512;
            let sparse_bits = branches * 10;
            if dense_bits > 16 * sparse_bits {
                break;
            }
            depth += 1;
            if depth >= 8 {
                break;
            }
        }
        Self::build_with_depth(keys, depth)
    }

    /// Builds with exactly `dense_depth` dense byte-levels (`0` = pure
    /// sparse). Key contract as in [`crate::builder::build`].
    pub fn build_with_depth(keys: &[&[u8]], dense_depth: usize) -> DsBuildResult {
        let mut labels = BitVec::new();
        let mut has_child = BitVec::new();
        let mut dense_leaf_keys: Vec<usize> = Vec::new();
        let mut sparse_roots: Vec<(usize, usize, usize)> = Vec::new();
        let mut dense_nodes = 0usize;

        if dense_depth == 0 || keys.is_empty() {
            if !keys.is_empty() {
                sparse_roots.push((0, keys.len(), 0));
            }
        } else {
            // Level-order walk over the dense levels.
            let mut queue: std::collections::VecDeque<(usize, usize, usize)> =
                std::collections::VecDeque::new();
            queue.push_back((0, keys.len(), 0));
            while let Some((lo, hi, depth)) = queue.pop_front() {
                let base = dense_nodes * 256;
                dense_nodes += 1;
                labels.push_bits(0, 0); // no-op, keeps symmetry readable
                while labels.len() < base + 256 {
                    labels.push(false);
                }
                while has_child.len() < base + 256 {
                    has_child.push(false);
                }
                let mut i = lo;
                while i < hi {
                    let byte = keys[i][depth];
                    let mut j = i + 1;
                    while j < hi && keys[j][depth] == byte {
                        j += 1;
                    }
                    labels.set(base + byte as usize, true);
                    if j - i == 1 && keys[i].len() == depth + 1 {
                        dense_leaf_keys.push(i); // leaf branch: has_child stays 0
                    } else {
                        has_child.set(base + byte as usize, true);
                        if depth + 1 == dense_depth {
                            sparse_roots.push((i, j, depth + 1));
                        } else {
                            queue.push_back((i, j, depth + 1));
                        }
                    }
                    i = j;
                }
            }
        }

        let BuildResult {
            fst: sparse,
            leaf_to_key: sparse_leaf_keys,
        } = build_forest(keys, sparse_roots);

        // Dense leaf emission above is queue order = level order, but the
        // bitmap-derived leaf index is *bitmap order* — identical, because
        // nodes are appended in level order and bytes scanned ascending.
        let dense_leaves = dense_leaf_keys.len();
        let mut leaf_to_key = dense_leaf_keys;
        leaf_to_key.extend(sparse_leaf_keys);

        DsBuildResult {
            fst: FstDs {
                labels: RsBitVec::new(labels),
                has_child: RsBitVec::new(has_child),
                dense_nodes,
                dense_leaves,
                dense_depth: if dense_nodes == 0 { 0 } else { dense_depth },
                sparse,
            },
            leaf_to_key,
        }
    }

    /// Number of stored keys.
    pub fn num_leaves(&self) -> usize {
        self.dense_leaves + self.sparse.num_leaves()
    }

    /// The number of dense byte-levels in use.
    pub fn dense_depth(&self) -> usize {
        self.dense_depth
    }

    /// Heap size in bits (dense bitmaps + sparse arrays + directories).
    pub fn size_in_bits(&self) -> usize {
        self.labels.size_in_bits() + self.has_child.size_in_bits() + self.sparse.size_in_bits()
    }

    /// Leaf index of a dense leaf branch at bitmap position `pos`
    /// (global numbering: dense leaves come first).
    #[inline]
    fn dense_leaf_index(&self, pos: usize) -> usize {
        self.labels.rank1(pos) - self.has_child.rank1(pos)
    }

    /// Child node number of the internal dense branch at `pos`; values
    /// `>= dense_nodes` denote sparse roots (`child − dense_nodes`).
    #[inline]
    fn dense_child(&self, pos: usize) -> usize {
        self.has_child.rank1(pos + 1)
    }

    /// Walks the trie along `key` (cf. [`Fst::lookup`]).
    pub fn lookup(&self, key: &[u8]) -> Lookup {
        if self.dense_depth == 0 {
            return self.sparse.lookup(key);
        }
        let mut node = 0usize;
        for depth in 0..key.len() {
            let pos = node * 256 + key[depth] as usize;
            if !self.labels.get(pos) {
                return Lookup::NotFound;
            }
            if !self.has_child.get(pos) {
                return Lookup::Leaf {
                    leaf: self.dense_leaf_index(pos),
                    depth: depth + 1,
                };
            }
            let child = self.dense_child(pos);
            if depth + 1 == self.dense_depth {
                // Continue in the sparse forest.
                let root = child - self.dense_nodes;
                return match self.sparse.lookup_in(root, &key[depth + 1..]) {
                    Lookup::NotFound => Lookup::NotFound,
                    Lookup::ExhaustedAtInternal => Lookup::ExhaustedAtInternal,
                    Lookup::Leaf { leaf, depth: d } => Lookup::Leaf {
                        leaf: self.dense_leaves + leaf,
                        depth: depth + 1 + d,
                    },
                };
            }
            node = child;
        }
        Lookup::ExhaustedAtInternal
    }

    /// Positions an iterator at the first stored key not decidedly smaller
    /// than `probe` (same contract as [`Fst::seek`]).
    pub fn seek(&self, probe: &[u8]) -> Option<DsIter<'_>> {
        if self.num_leaves() == 0 {
            return None;
        }
        if self.dense_depth == 0 {
            let inner = self.sparse.seek(probe)?;
            return Some(DsIter {
                fst: self,
                dense_stack: Vec::new(),
                dense_key: Vec::new(),
                dense_leaf_pos: None,
                sparse_iter: Some(inner),
            });
        }
        let mut it = DsIter {
            fst: self,
            dense_stack: Vec::with_capacity(self.dense_depth),
            dense_key: Vec::with_capacity(self.dense_depth),
            dense_leaf_pos: None,
            sparse_iter: None,
        };
        let mut node = 0usize;
        let mut depth = 0usize;
        loop {
            if depth >= probe.len() {
                // Probe exhausted: leftmost leaf of this dense subtree.
                let pos = self
                    .labels
                    .bits()
                    .next_one(node * 256)
                    .expect("non-empty node");
                it.push_dense(pos);
                return if it.settle_leftmost() { Some(it) } else { None };
            }
            let target = probe[depth];
            let base = node * 256;
            match self
                .labels
                .bits()
                .next_one(base + target as usize)
                .filter(|&p| p < base + 256)
            {
                None => {
                    return if it.advance_dense() { Some(it) } else { None };
                }
                Some(pos) if pos > base + target as usize => {
                    it.push_dense(pos);
                    return if it.settle_leftmost() { Some(it) } else { None };
                }
                Some(pos) => {
                    // Exact label match.
                    it.push_dense(pos);
                    if !self.has_child.get(pos) {
                        it.dense_leaf_pos = Some(pos);
                        return Some(it);
                    }
                    let child = self.dense_child(pos);
                    if depth + 1 == self.dense_depth {
                        let root = child - self.dense_nodes;
                        match self.sparse.seek_in(root, &probe[depth + 1..]) {
                            Some(inner) => {
                                it.sparse_iter = Some(inner);
                                return Some(it);
                            }
                            None => {
                                // Subtree exhausted below: next dense branch.
                                return if it.advance_dense() { Some(it) } else { None };
                            }
                        }
                    }
                    node = child;
                    depth += 1;
                }
            }
        }
    }

    /// Access to the sparse half (diagnostics).
    pub fn sparse(&self) -> &Fst {
        &self.sparse
    }

    /// Serializes the full LOUDS-DS layout: the dense `labels`/`has_child`
    /// bit planes (with their rank directories) followed by the sparse
    /// half. Layout: `[dense_nodes, dense_leaves, dense_depth] + labels +
    /// has_child + sparse`. Returns the word count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.dense_nodes as u64)?;
        w.word(self.dense_leaves as u64)?;
        w.word(self.dense_depth as u64)?;
        self.labels.write_to(w)?;
        self.has_child.write_to(w)?;
        self.sparse.write_to(w)?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`FstDs::write_to`] wrote — rebuild-free, like every
    /// loader in the workspace.
    pub fn read_from<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
    ) -> Result<Self, DecodeError> {
        Self::read_from_impl(src, false)
    }

    /// Reads the **format-v1** stream (legacy select-hint directories in
    /// every embedded [`RsBitVec`]); position samples are rebuilt on load.
    pub fn read_from_v1<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
    ) -> Result<Self, DecodeError> {
        Self::read_from_impl(src, true)
    }

    fn read_from_impl<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        legacy: bool,
    ) -> Result<Self, DecodeError> {
        let dense_nodes = src.length()?;
        let dense_leaves = src.length()?;
        let dense_depth = src.length()?;
        let (labels, has_child, sparse) = if legacy {
            (
                RsBitVec::read_from_v1(src)?,
                RsBitVec::read_from_v1(src)?,
                Fst::read_from_v1(src)?,
            )
        } else {
            (
                RsBitVec::read_from(src)?,
                RsBitVec::read_from(src)?,
                Fst::read_from(src)?,
            )
        };
        // `checked_mul` matters here: a crafted `dense_nodes` close to
        // `usize::MAX` must not wrap into a small product that happens to
        // equal `labels.len()` and slip past the size check.
        let expected_bits = dense_nodes
            .checked_mul(256)
            .ok_or(DecodeError::Invalid("dense node count overflows"))?;
        if labels.len() != expected_bits || has_child.len() != labels.len() {
            return Err(DecodeError::Invalid("dense bitmap sizes inconsistent"));
        }
        let expected_ones = dense_leaves
            .checked_add(has_child.count_ones())
            .ok_or(DecodeError::Invalid("dense leaf count overflows"))?;
        if labels.count_ones() != expected_ones {
            return Err(DecodeError::Invalid("dense leaf count inconsistent"));
        }
        if dense_nodes == 0 && dense_depth != 0 {
            return Err(DecodeError::Invalid("dense depth without dense nodes"));
        }
        Ok(Self {
            labels,
            has_child,
            dense_nodes,
            dense_leaves,
            dense_depth,
            sparse,
        })
    }
}

fn distinct_prefixes(keys: &[&[u8]], depth: usize) -> usize {
    let mut count = 0usize;
    let mut prev: Option<&[u8]> = None;
    for k in keys {
        if k.len() < depth {
            continue;
        }
        let p = &k[..depth];
        if prev != Some(p) {
            count += 1;
            prev = Some(p);
        }
    }
    count
}

/// A cursor over the leaves of an [`FstDs`] in lexicographic order.
#[derive(Clone, Debug)]
pub struct DsIter<'a> {
    fst: &'a FstDs,
    /// Bitmap positions of the chosen branch per dense level.
    dense_stack: Vec<usize>,
    dense_key: Vec<u8>,
    /// Set when the cursor rests on a dense leaf.
    dense_leaf_pos: Option<usize>,
    /// Set when the cursor rests inside the sparse forest.
    sparse_iter: Option<FstIter<'a>>,
}

impl<'a> DsIter<'a> {
    fn push_dense(&mut self, pos: usize) {
        self.dense_stack.push(pos);
        self.dense_key.push((pos % 256) as u8);
    }

    /// Descends from the dense branch on top of the stack to the leftmost
    /// leaf of its subtree (crossing into the sparse forest if needed).
    fn settle_leftmost(&mut self) -> bool {
        loop {
            let pos = *self
                .dense_stack
                .last()
                .expect("settle on empty dense stack");
            if !self.fst.has_child.get(pos) {
                self.dense_leaf_pos = Some(pos);
                return true;
            }
            let child = self.fst.dense_child(pos);
            if self.dense_stack.len() == self.fst.dense_depth {
                let root = child - self.fst.dense_nodes;
                match self.fst.sparse.seek_in(root, &[]) {
                    Some(inner) => {
                        self.sparse_iter = Some(inner);
                        return true;
                    }
                    None => unreachable!("sparse root with no leaves"),
                }
            }
            let next = self
                .fst
                .labels
                .bits()
                .next_one(child * 256)
                .expect("internal dense node with no labels");
            self.push_dense(next);
        }
    }

    /// Moves to the next dense branch in DFS order and settles leftmost.
    fn advance_dense(&mut self) -> bool {
        self.dense_leaf_pos = None;
        self.sparse_iter = None;
        loop {
            let pos = match self.dense_stack.pop() {
                None => return false,
                Some(p) => p,
            };
            self.dense_key.pop();
            let node_end = (pos / 256 + 1) * 256;
            if let Some(next) = self
                .fst
                .labels
                .bits()
                .next_one(pos + 1)
                .filter(|&p| p < node_end)
            {
                self.push_dense(next);
                return self.settle_leftmost();
            }
        }
    }

    /// The current key (dense prefix + sparse suffix).
    pub fn key(&self) -> Vec<u8> {
        let mut k = self.dense_key.clone();
        if let Some(inner) = &self.sparse_iter {
            k.extend_from_slice(inner.key());
        }
        k
    }

    /// Global leaf index (dense leaves first, then sparse).
    pub fn leaf_index(&self) -> usize {
        match (&self.dense_leaf_pos, &self.sparse_iter) {
            (Some(pos), _) => self.fst.dense_leaf_index(*pos),
            (None, Some(inner)) => self.fst.dense_leaves + inner.leaf_index(),
            _ => panic!("iterator not positioned on a leaf"),
        }
    }

    /// Steps to the next leaf in key order; `false` past the end.
    pub fn advance(&mut self) -> bool {
        if let Some(inner) = &mut self.sparse_iter {
            if inner.advance() {
                return true;
            }
        }
        if self.dense_stack.is_empty() {
            // Pure-sparse configuration: the inner iterator is the walk.
            return false;
        }
        self.advance_dense()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;

    fn random_byte_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed;
        let mut keys: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state.to_be_bytes().to_vec()
            })
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// The definitive check: on identical key sets, LOUDS-DS must agree
    /// with pure LOUDS-Sparse on every lookup and every seek.
    #[test]
    fn agrees_with_pure_sparse() {
        let keys = random_byte_keys(3000, 5);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let sparse = build(&refs);
        for depth in [0usize, 1, 2, 3] {
            let ds = FstDs::build_with_depth(&refs, depth);
            assert_eq!(
                ds.fst.num_leaves(),
                sparse.fst.num_leaves(),
                "depth {depth}"
            );
            let mut state = 99u64;
            for _ in 0..2000 {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                let probe = state.to_be_bytes();
                // Lookup agreement (including mapped key identity).
                let via_sparse = match sparse.fst.lookup(&probe) {
                    Lookup::Leaf { leaf, depth } => Some((sparse.leaf_to_key[leaf], depth)),
                    _ => None,
                };
                let via_ds = match ds.fst.lookup(&probe) {
                    Lookup::Leaf { leaf, depth } => Some((ds.leaf_to_key[leaf], depth)),
                    _ => None,
                };
                assert_eq!(via_ds, via_sparse, "lookup {state} depth {depth}");
                // Seek agreement.
                let s = sparse
                    .fst
                    .seek(&probe)
                    .map(|it| (it.key().to_vec(), sparse.leaf_to_key[it.leaf_index()]));
                let d = ds
                    .fst
                    .seek(&probe)
                    .map(|it| (it.key(), ds.leaf_to_key[it.leaf_index()]));
                assert_eq!(d, s, "seek {state} depth {depth}");
            }
        }
    }

    #[test]
    fn iteration_visits_all_keys_in_order() {
        let keys = random_byte_keys(500, 3);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for depth in [0usize, 1, 2] {
            let ds = FstDs::build_with_depth(&refs, depth);
            let mut it = ds.fst.seek(&[]).unwrap();
            let mut seen = vec![it.key()];
            while it.advance() {
                seen.push(it.key());
            }
            assert_eq!(seen.len(), keys.len(), "depth {depth}");
            assert_eq!(seen, keys, "depth {depth}");
        }
    }

    #[test]
    fn dense_leaves_in_upper_levels() {
        // Mixed-length prefix-free keys produce leaves in the dense levels.
        let keys: Vec<&[u8]> = vec![b"a", b"ba", b"bb", b"c", b"dddd"];
        let ds = FstDs::build_with_depth(&keys, 2);
        assert_eq!(ds.fst.num_leaves(), 5);
        for (i, k) in keys.iter().enumerate() {
            match ds.fst.lookup(k) {
                Lookup::Leaf { leaf, depth } => {
                    assert_eq!(depth, k.len());
                    assert_eq!(ds.leaf_to_key[leaf], i, "{k:?}");
                }
                other => panic!("lookup({k:?}) = {other:?}"),
            }
        }
        // "a" is a proper prefix of the probe: the undecided case the seek
        // contract returns (the caller refines with suffix bits).
        assert_eq!(ds.fst.seek(b"ab").unwrap().key(), b"a".to_vec());
        assert_eq!(ds.fst.seek(b"b0").unwrap().key(), b"ba".to_vec());
        assert_eq!(ds.fst.seek(b"cz").unwrap().key(), b"c".to_vec()); // prefix case again
        assert_eq!(ds.fst.seek(b"d0").unwrap().key(), b"dddd".to_vec());
        assert!(ds.fst.seek(b"e").is_none());
    }

    #[test]
    fn auto_depth_reasonable() {
        let keys = random_byte_keys(20_000, 11);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let ds = FstDs::build_auto(&refs);
        assert!(
            ds.fst.dense_depth() >= 1,
            "random 64-bit keys should go dense at the top"
        );
        assert!(ds.fst.dense_depth() <= 3);
        // Space stays in the LOUDS-Sparse ballpark (dense is bounded by the
        // 16x per-level rule).
        let sparse = build(&refs);
        assert!(
            ds.fst.size_in_bits() < 3 * sparse.fst.size_in_bits(),
            "dense head blew up the space"
        );
    }

    #[test]
    fn empty_and_tiny() {
        let ds = FstDs::build_with_depth(&[], 2);
        assert_eq!(ds.fst.num_leaves(), 0);
        assert!(ds.fst.seek(b"x").is_none());
        assert_eq!(ds.fst.lookup(b"x"), Lookup::NotFound);

        let keys: Vec<&[u8]> = vec![b"zz"];
        let ds = FstDs::build_with_depth(&keys, 1);
        assert!(matches!(
            ds.fst.lookup(b"zz"),
            Lookup::Leaf { depth: 2, .. }
        ));
        assert_eq!(ds.fst.seek(b"a").unwrap().key(), b"zz".to_vec());
    }
}
