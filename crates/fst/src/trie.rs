//! The immutable LOUDS-Sparse trie: point lookups, order-preserving leaf
//! iteration, and the `seek` (lower-bound) operation SuRF's range queries
//! are built on.

use grafite_succinct::io::{DecodeError, WordSource, WordWriter};
use grafite_succinct::RsBitVec;

/// A LOUDS-Sparse encoded trie over a prefix-free byte-string set.
///
/// Construct via [`crate::builder::build`].
#[derive(Clone, Debug)]
pub struct Fst {
    labels: Vec<u8>,
    has_child: RsBitVec,
    louds: RsBitVec,
    num_nodes: usize,
    num_leaves: usize,
    /// Nodes `0..num_roots` are forest roots; the `j`-th internal branch's
    /// child is node `num_roots + j` in level order.
    num_roots: usize,
}

/// Result of a point lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// No stored key is a prefix of the probe along the walked path.
    NotFound,
    /// A stored key of length `depth` is a prefix of (or equal to) the probe.
    Leaf {
        /// Index of the leaf in level-order emission (use with
        /// `leaf_to_key` from the builder to reach per-key payload).
        leaf: usize,
        /// Length of the stored (truncated) key.
        depth: usize,
    },
    /// The probe was exhausted at an internal node: stored keys strictly
    /// extend the probe.
    ExhaustedAtInternal,
}

impl Fst {
    pub(crate) fn from_parts(
        labels: Vec<u8>,
        has_child: RsBitVec,
        louds: RsBitVec,
        num_nodes: usize,
        num_leaves: usize,
        num_roots: usize,
    ) -> Self {
        Self {
            labels,
            has_child,
            louds,
            num_nodes,
            num_leaves,
            num_roots,
        }
    }

    /// Number of stored keys (= leaves).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Number of trie nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of branches (entries of the parallel arrays).
    #[inline]
    pub fn num_branches(&self) -> usize {
        self.labels.len()
    }

    /// Heap size in bits: 8 (label) + 1 (has-child) + 1 (louds) per branch
    /// plus rank/select directories — the "10 bits per node" of the paper's
    /// §5 SuRF analysis.
    pub fn size_in_bits(&self) -> usize {
        self.labels.len() * 8 + self.has_child.size_in_bits() + self.louds.size_in_bits()
    }

    /// Serializes the trie — the LOUDS-DENSE/Sparse bit planes travel with
    /// their rank/select directories, so loading is rebuild-free. Layout:
    /// `[n_labels, num_nodes, num_leaves, num_roots] + labels (word-padded
    /// bytes) + has_child + louds`. Returns the word count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.labels.len() as u64)?;
        w.word(self.num_nodes as u64)?;
        w.word(self.num_leaves as u64)?;
        w.word(self.num_roots as u64)?;
        w.bytes_padded(&self.labels)?;
        self.has_child.write_to(w)?;
        self.louds.write_to(w)?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`Fst::write_to`] wrote.
    pub fn read_from<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
    ) -> Result<Self, DecodeError> {
        Self::read_from_impl(src, false)
    }

    /// Reads the **format-v1** stream, whose embedded
    /// [`RsBitVec`]s store the legacy block-index select hints; their
    /// position-sampled directories are rebuilt on load.
    pub fn read_from_v1<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
    ) -> Result<Self, DecodeError> {
        Self::read_from_impl(src, true)
    }

    fn read_from_impl<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
        legacy: bool,
    ) -> Result<Self, DecodeError> {
        let n_labels = src.length()?;
        let num_nodes = src.length()?;
        let num_leaves = src.length()?;
        let num_roots = src.length()?;
        let labels = src.take_bytes(n_labels)?;
        let read_rs = if legacy {
            RsBitVec::read_from_v1
        } else {
            RsBitVec::read_from
        };
        let has_child = read_rs(src)?;
        let louds = read_rs(src)?;
        if has_child.len() != n_labels || louds.len() != n_labels {
            return Err(DecodeError::Invalid("trie parallel array lengths differ"));
        }
        if louds.count_ones() != num_nodes || has_child.rank0(n_labels) != num_leaves {
            return Err(DecodeError::Invalid("trie node/leaf counts inconsistent"));
        }
        if num_roots > num_nodes {
            return Err(DecodeError::Invalid("trie root count exceeds node count"));
        }
        Ok(Self {
            labels,
            has_child,
            louds,
            num_nodes,
            num_leaves,
            num_roots,
        })
    }

    /// The half-open branch-position range of node `k`.
    #[inline]
    fn node_range(&self, k: usize) -> (usize, usize) {
        let start = self.louds.select1(k);
        let end = if k + 1 < self.num_nodes {
            self.louds.select1(k + 1)
        } else {
            self.labels.len()
        };
        (start, end)
    }

    /// The node a child branch leads to: the `j`-th internal branch (in
    /// level order) parents node `num_roots + j`.
    #[inline]
    fn child_node(&self, pos: usize) -> usize {
        self.num_roots + self.has_child.rank1(pos)
    }

    /// The leaf index of a non-child branch.
    #[inline]
    fn leaf_index(&self, pos: usize) -> usize {
        self.has_child.rank0(pos)
    }

    /// Binary search for `byte` within the (sorted) labels of `[s, e)`.
    #[inline]
    fn find_label(&self, s: usize, e: usize, byte: u8) -> Option<usize> {
        let slice = &self.labels[s..e];
        match slice.binary_search(&byte) {
            Ok(i) => Some(s + i),
            Err(_) => None,
        }
    }

    /// First position in `[s, e)` whose label is `>= byte`.
    #[inline]
    fn find_label_geq(&self, s: usize, e: usize, byte: u8) -> Option<usize> {
        let slice = &self.labels[s..e];
        let i = slice.partition_point(|&l| l < byte);
        if i < slice.len() {
            Some(s + i)
        } else {
            None
        }
    }

    /// Walks the trie along `key`.
    pub fn lookup(&self, key: &[u8]) -> Lookup {
        self.lookup_in(0, key)
    }

    /// Walks the subtree rooted at node `root` along `key` (which must be
    /// the key *suffix* from that node's depth on). Used by the LOUDS-Dense
    /// head to continue a walk in its sparse forest.
    pub fn lookup_in(&self, root: usize, key: &[u8]) -> Lookup {
        if self.num_nodes == 0 {
            return Lookup::NotFound;
        }
        let mut node = root;
        for (depth, &byte) in key.iter().enumerate() {
            let (s, e) = self.node_range(node);
            match self.find_label(s, e, byte) {
                None => return Lookup::NotFound,
                Some(pos) => {
                    if !self.has_child.get(pos) {
                        return Lookup::Leaf {
                            leaf: self.leaf_index(pos),
                            depth: depth + 1,
                        };
                    }
                    node = self.child_node(pos);
                }
            }
        }
        Lookup::ExhaustedAtInternal
    }

    /// Iterator over the leftmost leaf (smallest stored key), if any.
    pub fn iter_first(&self) -> Option<FstIter<'_>> {
        self.seek(&[])
    }

    /// Positions an iterator at the first stored key `t` (in lexicographic
    /// order) that is **not decidedly smaller** than `probe` — i.e. either
    /// `t >= probe` as byte strings or `t` is a proper prefix of `probe`
    /// (the undecided case that SuRF resolves with suffix bits, which the
    /// caller may refine via [`FstIter::advance`]).
    ///
    /// Returns `None` when every stored key is decidedly smaller.
    pub fn seek(&self, probe: &[u8]) -> Option<FstIter<'_>> {
        self.seek_in(0, probe)
    }

    /// [`Fst::seek`] within the subtree rooted at node `root`; `probe` is
    /// the probe suffix from that node's depth on, and the returned
    /// iterator's `key()` is likewise a suffix. The iterator never escapes
    /// the subtree.
    pub fn seek_in(&self, root: usize, probe: &[u8]) -> Option<FstIter<'_>> {
        if self.num_nodes == 0 {
            return None;
        }
        let mut it = FstIter {
            fst: self,
            stack: Vec::with_capacity(16),
            key: Vec::with_capacity(16),
            leaf_pos: usize::MAX,
        };
        let mut node = root;
        let mut depth = 0usize;
        loop {
            let (s, e) = self.node_range(node);
            if depth >= probe.len() {
                // Probe exhausted: every key in this subtree extends it.
                it.push_branch(s, e, s);
                return if it.settle_leftmost() { Some(it) } else { None };
            }
            let target = probe[depth];
            match self.find_label_geq(s, e, target) {
                None => {
                    // All labels smaller: the answer lies after this subtree.
                    return if it.advance_from_stack() {
                        Some(it)
                    } else {
                        None
                    };
                }
                Some(pos) if self.labels[pos] > target => {
                    it.push_branch(s, e, pos);
                    return if it.settle_leftmost() { Some(it) } else { None };
                }
                Some(pos) => {
                    it.push_branch(s, e, pos);
                    if !self.has_child.get(pos) {
                        // Stored key is a prefix of (or equals) the probe —
                        // the undecided case.
                        it.leaf_pos = pos;
                        return Some(it);
                    }
                    node = self.child_node(pos);
                    depth += 1;
                }
            }
        }
    }
}

/// A cursor over the leaves of an [`Fst`] in lexicographic key order.
#[derive(Clone, Debug)]
pub struct FstIter<'a> {
    fst: &'a Fst,
    /// Per-level `(node_start, node_end, chosen_pos)`.
    stack: Vec<(usize, usize, usize)>,
    /// Labels along the chosen path (the current truncated key).
    key: Vec<u8>,
    leaf_pos: usize,
}

impl<'a> FstIter<'a> {
    #[inline]
    fn push_branch(&mut self, s: usize, e: usize, pos: usize) {
        self.stack.push((s, e, pos));
        self.key.push(self.fst.labels[pos]);
    }

    /// Descends from the branch on top of the stack to the leftmost leaf of
    /// its subtree. Returns `true` on success (always, on a well-formed
    /// trie).
    fn settle_leftmost(&mut self) -> bool {
        loop {
            let &(_, _, pos) = self.stack.last().expect("settle on empty stack");
            if !self.fst.has_child.get(pos) {
                self.leaf_pos = pos;
                return true;
            }
            let child = self.fst.child_node(pos);
            let (s, e) = self.fst.node_range(child);
            self.push_branch(s, e, s);
        }
    }

    /// Moves to the next subtree in DFS order (skipping the current top
    /// branch's subtree) and settles on its leftmost leaf.
    fn advance_from_stack(&mut self) -> bool {
        loop {
            match self.stack.pop() {
                None => return false,
                Some((s, e, pos)) => {
                    self.key.pop();
                    if pos + 1 < e {
                        self.push_branch(s, e, pos + 1);
                        return self.settle_leftmost();
                    }
                }
            }
        }
    }

    /// The current (truncated) key.
    #[inline]
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// The current leaf's index in level-order emission.
    #[inline]
    pub fn leaf_index(&self) -> usize {
        self.fst.leaf_index(self.leaf_pos)
    }

    /// Steps to the next leaf in key order; returns `false` past the end.
    pub fn advance(&mut self) -> bool {
        self.advance_from_stack()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::build;

    fn keys_set() -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = vec![
            b"ab".to_vec(),
            b"ad".to_vec(),
            b"ba".to_vec(),
            b"bcd".to_vec(),
            b"bce".to_vec(),
            b"ca".to_vec(),
            b"zz".to_vec(),
        ];
        keys.sort();
        keys
    }

    #[test]
    fn lookup_present_and_absent() {
        let keys = keys_set();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let r = build(&refs);
        for (i, k) in keys.iter().enumerate() {
            match r.fst.lookup(k) {
                crate::Lookup::Leaf { leaf, depth } => {
                    assert_eq!(depth, k.len());
                    assert_eq!(r.leaf_to_key[leaf], i, "leaf mapping for {k:?}");
                }
                other => panic!("lookup({k:?}) = {other:?}"),
            }
        }
        assert_eq!(r.fst.lookup(b"aa"), crate::Lookup::NotFound);
        assert_eq!(r.fst.lookup(b"b"), crate::Lookup::ExhaustedAtInternal);
        assert_eq!(r.fst.lookup(b"bcf"), crate::Lookup::NotFound);
        // A probe extending a stored key reports the stored key as prefix.
        assert!(matches!(
            r.fst.lookup(b"abX"),
            crate::Lookup::Leaf { depth: 2, .. }
        ));
    }

    #[test]
    fn iteration_visits_keys_in_order() {
        let keys = keys_set();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let r = build(&refs);
        let mut it = r.fst.iter_first().unwrap();
        let mut seen = vec![it.key().to_vec()];
        while it.advance() {
            seen.push(it.key().to_vec());
        }
        assert_eq!(seen, keys);
    }

    #[test]
    fn seek_matches_reference() {
        let keys = keys_set();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let r = build(&refs);
        // Reference: first key t with t >= probe OR t a proper prefix of
        // probe (the conservative contract).
        let reference = |probe: &[u8]| {
            keys.iter()
                .find(|t| t.as_slice() >= probe || probe.starts_with(t))
                .cloned()
        };
        let probes: Vec<&[u8]> = vec![
            b"", b"a", b"ab", b"abc", b"ac", b"ad", b"ae", b"b", b"bb", b"bcd", b"bcdX", b"bcf",
            b"c", b"cb", b"y", b"zz", b"zzz", b"~~~",
        ];
        for probe in probes {
            let got = r.fst.seek(probe).map(|it| it.key().to_vec());
            assert_eq!(got, reference(probe), "seek({probe:?})");
        }
    }

    #[test]
    fn seek_on_u64_keys_matches_btree() {
        use std::collections::BTreeSet;
        let mut state = 321u64;
        let mut set = BTreeSet::new();
        for _ in 0..800 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            set.insert(state);
        }
        let byte_keys: Vec<[u8; 8]> = set.iter().map(|k| k.to_be_bytes()).collect();
        let refs: Vec<&[u8]> = byte_keys.iter().map(|k| k.as_slice()).collect();
        let r = build(&refs);
        assert_eq!(r.fst.num_leaves(), set.len());
        let mut probe_state = 9u64;
        for _ in 0..2000 {
            probe_state = probe_state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let probe = probe_state.to_be_bytes();
            let expect = set.range(probe_state..).next().map(|k| k.to_be_bytes());
            let got = r.fst.seek(&probe).map(|it| {
                // Fixed-length keys: reconstructed key is full.
                let mut buf = [0u8; 8];
                buf.copy_from_slice(it.key());
                buf
            });
            assert_eq!(got, expect, "probe {probe_state}");
        }
    }

    #[test]
    fn empty_trie() {
        let r = build(&[]);
        assert_eq!(r.fst.num_leaves(), 0);
        assert_eq!(r.fst.lookup(b"x"), crate::Lookup::NotFound);
        assert!(r.fst.seek(b"x").is_none());
        assert!(r.fst.iter_first().is_none());
    }

    #[test]
    fn single_chain_key() {
        let keys: Vec<&[u8]> = vec![b"abcdef"];
        let r = build(&keys);
        assert_eq!(r.fst.num_leaves(), 1);
        assert!(matches!(
            r.fst.lookup(b"abcdef"),
            crate::Lookup::Leaf { depth: 6, .. }
        ));
        assert_eq!(r.fst.seek(b"abc").unwrap().key(), b"abcdef");
        assert!(r.fst.seek(b"abd").is_none());
        assert_eq!(r.fst.seek(b"aaa").unwrap().key(), b"abcdef");
    }

    #[test]
    fn space_near_ten_bits_per_branch() {
        let byte_keys: Vec<[u8; 8]> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes())
            .collect();
        let mut refs: Vec<&[u8]> = byte_keys.iter().map(|k| k.as_slice()).collect();
        refs.sort();
        let r = build(&refs);
        let per_branch = r.fst.size_in_bits() as f64 / r.fst.num_branches() as f64;
        assert!(
            per_branch < 13.0,
            "LOUDS-Sparse at {per_branch} bits/branch"
        );
    }
}
