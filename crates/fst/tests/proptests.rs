//! Property tests for both trie encodings against ordered-set references.

use std::collections::BTreeSet;

use grafite_fst::{builder, FstDs, Lookup};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fixed-length keys: lookup and seek match a BTreeSet for every dense
    /// depth, including pure sparse.
    #[test]
    fn lookup_and_seek_match_btreeset(
        keys in prop::collection::btree_set(any::<u64>(), 1..400),
        probes in prop::collection::vec(any::<u64>(), 1..100),
        dense_depth in 0usize..4,
    ) {
        let set: BTreeSet<u64> = keys.iter().copied().collect();
        let byte_keys: Vec<[u8; 8]> = set.iter().map(|k| k.to_be_bytes()).collect();
        let refs: Vec<&[u8]> = byte_keys.iter().map(|k| k.as_slice()).collect();
        let ds = FstDs::build_with_depth(&refs, dense_depth);
        prop_assert_eq!(ds.fst.num_leaves(), set.len());
        for &p in &probes {
            let present = set.contains(&p);
            let found = matches!(ds.fst.lookup(&p.to_be_bytes()), Lookup::Leaf { depth: 8, .. });
            prop_assert_eq!(found, present, "lookup({}) dense_depth={}", p, dense_depth);
            let expect = set.range(p..).next().map(|k| k.to_be_bytes().to_vec());
            let got = ds.fst.seek(&p.to_be_bytes()).map(|it| it.key());
            prop_assert_eq!(got, expect, "seek({}) dense_depth={}", p, dense_depth);
        }
    }

    /// Variable-length prefix-free keys: iteration yields the sorted set.
    #[test]
    fn iteration_in_order_on_prefix_free_sets(
        raw in prop::collection::btree_set(prop::collection::vec(1u8..255, 1..6), 1..150),
        dense_depth in 0usize..3,
    ) {
        // Make the set prefix-free by dropping keys that prefix another.
        let all: Vec<Vec<u8>> = raw.iter().cloned().collect();
        let mut keys: Vec<Vec<u8>> = Vec::new();
        'outer: for k in &all {
            for other in &all {
                if other != k && other.starts_with(k) {
                    continue 'outer;
                }
            }
            keys.push(k.clone());
        }
        if keys.is_empty() {
            return Ok(());
        }
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let ds = FstDs::build_with_depth(&refs, dense_depth);
        let mut it = match ds.fst.seek(&[]) {
            Some(it) => it,
            None => return Err(TestCaseError::fail("empty iterator on non-empty trie")),
        };
        let mut seen = vec![it.key()];
        while it.advance() {
            seen.push(it.key());
        }
        prop_assert_eq!(seen, keys);
    }

    /// The builder's distinguishing-prefix truncation always produces a
    /// sorted set whose lookup identifies the right key.
    #[test]
    fn distinguishing_prefix_lookup_roundtrip(
        keys in prop::collection::btree_set(any::<u64>(), 2..300),
    ) {
        let sorted: Vec<u64> = keys.iter().copied().collect();
        let byte_keys: Vec<[u8; 8]> = sorted.iter().map(|k| k.to_be_bytes()).collect();
        let refs: Vec<&[u8]> = byte_keys.iter().map(|k| k.as_slice()).collect();
        let lens = builder::distinguishing_lengths(&refs);
        let truncated: Vec<&[u8]> = refs.iter().zip(&lens).map(|(k, &l)| &k[..l]).collect();
        let result = builder::build(&truncated);
        for (i, k) in refs.iter().enumerate() {
            match result.fst.lookup(k) {
                Lookup::Leaf { leaf, depth } => {
                    prop_assert_eq!(result.leaf_to_key[leaf], i);
                    prop_assert_eq!(depth, lens[i]);
                }
                other => return Err(TestCaseError::fail(format!("lookup {i}: {other:?}"))),
            }
        }
    }
}
