//! Hash families for the Grafite range-filter reproduction.
//!
//! * [`PairwiseHash`] — the textbook pairwise-independent family
//!   `q(x) = ((c1·x + c2) mod p) mod r` of Wegman and Carter \[39\], which the
//!   paper uses to draw Grafite's inner hash `q` (Section 3).
//! * [`LocalityHash`] — the locality-preserving universe reduction
//!   `h(x) = (q(⌊x/r⌋) + x) mod r` of Goswami et al. \[18\] (paper eq. (1)),
//!   plus the power-of-two variant `h(x) = (q(x >> k) + x) & (r − 1)`
//!   suggested in the paper's Section 7 for string keys.
//! * [`xxhash::xxh64`] — a from-scratch xxHash64, the practical string hash
//!   the paper names for the string-key extension.
//! * [`mix`] — 64-bit finalizer mixers and a SplitMix64 generator used for
//!   Bloom-filter double hashing and deterministic parameter generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod locality;
pub mod mix;
pub mod pairwise;
pub mod xxhash;

pub use locality::{LocalityHash, LocalityHashPow2};
pub use pairwise::PairwiseHash;
