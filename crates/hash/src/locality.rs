//! The locality-preserving universe reduction of Goswami et al. \[18\], the
//! key ingredient of Grafite (paper eq. (1)).
//!
//! `h(x) = (q(⌊x/r⌋) + x) mod r` maps the universe `[u]` to `[r]` such that
//! within one aligned block of `r` consecutive keys the mapping is a pure
//! translation — consecutive keys stay consecutive modulo `r` — while two
//! keys from different blocks collide pairwise-independently with probability
//! `1/r`. This is exactly what lets a range `[a, b]` of length at most `r`
//! be answered by at most two contiguous range probes in the reduced
//! universe (paper conditions (2) and footnote 2).

use crate::pairwise::PairwiseHash;

/// The reduction `h(x) = (q(⌊x/r⌋) + x) mod r` for an arbitrary modulus `r`.
#[derive(Clone, Copy, Debug)]
pub struct LocalityHash {
    q: PairwiseHash,
    r: u64,
}

impl LocalityHash {
    /// Draws a reduction into `[0, r)` with parameters derived from `seed`.
    pub fn from_seed(seed: u64, r: u64) -> Self {
        Self {
            q: PairwiseHash::from_seed(seed, r),
            r,
        }
    }

    /// Builds from an explicit inner hash (tests use the paper's Example 3.2
    /// parameters).
    pub fn from_pairwise(q: PairwiseHash) -> Self {
        let r = q.range();
        Self { q, r }
    }

    /// The reduced universe size `r`.
    #[inline]
    pub fn r(&self) -> u64 {
        self.r
    }

    /// The inner pairwise-independent hash (for persistence).
    #[inline]
    pub fn pairwise(&self) -> PairwiseHash {
        self.q
    }

    /// Evaluates `h(x)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        // (q + x) mod r with both addends already < r: a single conditional
        // subtraction replaces the division.
        let s = self.q.eval(x / self.r) + x % self.r;
        if s >= self.r {
            s - self.r
        } else {
            s
        }
    }

    /// The block index `⌊x/r⌋` of a key: two keys in the same block are
    /// mapped by the same translation.
    #[inline]
    pub fn block(&self, x: u64) -> u64 {
        x / self.r
    }
}

/// The power-of-two variant `h(x) = (q(x >> k) + x) & (r − 1)` with
/// `r = 2^k`, proposed in the paper's Section 7: divisions and moduli become
/// shifts and masks.
#[derive(Clone, Copy, Debug)]
pub struct LocalityHashPow2 {
    q: PairwiseHash,
    k: u32,
}

impl LocalityHashPow2 {
    /// Draws a reduction into `[0, 2^k)`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k >= 61` (the inner prime must exceed `r`).
    pub fn from_seed(seed: u64, k: u32) -> Self {
        assert!(k > 0 && k < 61, "k = {k} out of supported range [1, 60]");
        Self {
            q: PairwiseHash::from_seed(seed, 1u64 << k),
            k,
        }
    }

    /// The reduced universe size `r = 2^k`.
    #[inline]
    pub fn r(&self) -> u64 {
        1u64 << self.k
    }

    /// The exponent `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Evaluates `h(x)` with shifts and masks only.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        (self.q.eval(x >> self.k).wrapping_add(x)) & (self.r() - 1)
    }

    /// The block index `x >> k`.
    #[inline]
    pub fn block(&self, x: u64) -> u64 {
        x >> self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full worked Example 3.2 of the paper.
    #[test]
    fn paper_example_hash_codes() {
        let q = PairwiseHash::with_params(10, 5, (1 << 31) - 1, 100);
        let h = LocalityHash::from_pairwise(q);
        let s = [9u64, 48, 50, 191, 226, 269, 335, 446, 487, 511];
        let expected = [14u64, 53, 55, 6, 51, 94, 70, 91, 32, 66];
        let got: Vec<u64> = s.iter().map(|&x| h.eval(x)).collect();
        assert_eq!(got, expected);
        // Example 3.3's query endpoints.
        assert_eq!(h.eval(44), 49);
        assert_eq!(h.eval(47), 52);
    }

    #[test]
    fn locality_within_block() {
        let h = LocalityHash::from_seed(3, 1 << 20);
        let r = h.r();
        // Any two keys in the same block keep their distance modulo r.
        for base in [0u64, r * 5, r * 1234] {
            let h0 = h.eval(base);
            for d in 1..100 {
                let hd = h.eval(base + d);
                assert_eq!(hd, (h0 + d) % r, "distance not preserved at {base}+{d}");
            }
        }
    }

    #[test]
    fn pow2_locality_within_block() {
        let h = LocalityHashPow2::from_seed(3, 20);
        let r = h.r();
        for base in [0u64, r * 7, r * 99] {
            let h0 = h.eval(base);
            for d in 1..100 {
                assert_eq!(h.eval(base + d), (h0 + d) & (r - 1));
            }
        }
    }

    #[test]
    fn cross_block_collision_rate_near_inverse_r() {
        // Empirical check of [18, Lemma 3.1]: Pr[h(x) = h(y)] <= 1/r for x, y
        // in different blocks. With r = 1024 and 2000 independent pairs,
        // expect about 2 collisions; allow generous slack.
        let r = 1024u64;
        let mut collisions = 0;
        let trials = 4000u64;
        for t in 0..trials {
            let h = LocalityHash::from_seed(t, r);
            let x = 123 + t; // block 0..small
            let y = r * 1000 + 77 + t * 13; // far block
            if h.eval(x) == h.eval(y) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!(rate < 4.0 / r as f64, "collision rate {rate} too high");
    }

    #[test]
    fn outputs_in_range() {
        let h = LocalityHash::from_seed(5, 999);
        for x in (0..2_000_000u64).step_by(7919) {
            assert!(h.eval(x) < 999);
        }
        let hp = LocalityHashPow2::from_seed(5, 33);
        for x in (0..u64::MAX).step_by(u64::MAX as usize / 1000) {
            assert!(hp.eval(x) < 1u64 << 33);
        }
    }
}
