//! 64-bit mixers and a tiny deterministic generator.

/// The SplitMix64 finalizer: a full-avalanche bijective mixer on `u64`.
///
/// Used to derive independent-looking hash streams for Bloom-filter double
/// hashing and to expand seeds into hash-function parameters.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The MurmurHash3 64-bit finalizer (fmix64).
#[inline]
pub fn murmur_mix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^= k >> 33;
    k
}

/// A minimal deterministic sequential generator based on SplitMix64.
///
/// Library crates use this instead of pulling in a full RNG dependency; it is
/// the reference PRNG for seeding hash-function parameters reproducibly.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via rejection-free multiply-shift
    /// (Lemire); slight bias below 2^-32 for bounds under 2^32, irrelevant
    /// for parameter generation.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First three outputs for seed 0 from the reference implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn mixers_are_injective_on_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(murmur_mix64(i)));
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut g = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 100, 1 << 40] {
            for _ in 0..100 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }
}
