//! The pairwise-independent hash family of Wegman and Carter \[39\] used by
//! Grafite as its inner hash `q : [u/r] -> [r]`.
//!
//! `q(x) = ((c1·x + c2) mod p) mod r`, where `p` is a large prime and
//! `0 < c1 < p`, `0 <= c2 < p` are drawn at random. Pairwise independence
//! holds for inputs below `p`; Grafite's inputs are block indices
//! `⌊x/r⌋ < u/r`, far below our default prime `2^61 − 1` for every
//! configuration in the paper (and a debug assertion guards the domain).

use crate::mix::SplitMix64;

/// The Mersenne prime `2^61 − 1`, the default modulus.
pub const MERSENNE_61: u64 = (1u64 << 61) - 1;

/// A hash function drawn from the pairwise-independent family
/// `{x -> ((c1·x + c2) mod p) mod r}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairwiseHash {
    c1: u64,
    c2: u64,
    p: u64,
    r: u64,
}

impl PairwiseHash {
    /// Draws a function with random parameters (from `seed`) mapping into
    /// `[0, r)` with the default prime [`MERSENNE_61`].
    ///
    /// # Panics
    /// Panics if `r == 0` or `r >= p`.
    pub fn from_seed(seed: u64, r: u64) -> Self {
        let mut gen = SplitMix64::new(seed);
        let c1 = 1 + gen.next_below(MERSENNE_61 - 1); // c1 in [1, p)
        let c2 = gen.next_below(MERSENNE_61); // c2 in [0, p)
        Self::with_params(c1, c2, MERSENNE_61, r)
    }

    /// Builds a function with explicit parameters (used by tests to reproduce
    /// the paper's Example 3.2, which sets `p = 2^31 − 1`, `c1 = 10`,
    /// `c2 = 5`).
    ///
    /// # Panics
    /// Panics if `c1 == 0`, `c1 >= p`, `c2 >= p`, `r == 0`, or `r >= p`.
    pub fn with_params(c1: u64, c2: u64, p: u64, r: u64) -> Self {
        assert!(r > 0, "range must be positive");
        assert!(r < p, "prime {p} must exceed range {r}");
        assert!(c1 > 0 && c1 < p, "c1 must be in [1, p)");
        assert!(c2 < p, "c2 must be in [0, p)");
        Self { c1, c2, p, r }
    }

    /// Evaluates the hash.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        debug_assert!(
            x < self.p,
            "input {x} outside the pairwise-independence domain [0, {})",
            self.p
        );
        let v = (self.c1 as u128 * x as u128 + self.c2 as u128) % self.p as u128;
        (v % self.r as u128) as u64
    }

    /// The output range `r`.
    #[inline]
    pub fn range(&self) -> u64 {
        self.r
    }

    /// The modulus `p`.
    #[inline]
    pub fn prime(&self) -> u64 {
        self.p
    }

    /// The multiplier `c1` (for persistence).
    #[inline]
    pub fn c1(&self) -> u64 {
        self.c1
    }

    /// The offset `c2` (for persistence).
    #[inline]
    pub fn c2(&self) -> u64 {
        self.c2
    }

    /// Whether `(c1, c2, p, r)` satisfy the family's constructor contract,
    /// so deserializers can validate before calling
    /// [`PairwiseHash::with_params`] (which panics on violation).
    pub fn params_valid(c1: u64, c2: u64, p: u64, r: u64) -> bool {
        r > 0 && r < p && c1 > 0 && c1 < p && c2 < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_parameters() {
        // Example 3.2: p = 2^31 - 1, c1 = 10, c2 = 5, r = 100.
        let q = PairwiseHash::with_params(10, 5, (1 << 31) - 1, 100);
        assert_eq!(q.eval(0), 5);
        assert_eq!(q.eval(1), 15);
        assert_eq!(q.eval(5), 55);
    }

    #[test]
    fn outputs_within_range() {
        let q = PairwiseHash::from_seed(42, 1000);
        for x in 0..10_000u64 {
            assert!(q.eval(x) < 1000);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = PairwiseHash::from_seed(7, 12345);
        let b = PairwiseHash::from_seed(7, 12345);
        for x in 0..1000 {
            assert_eq!(a.eval(x), b.eval(x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = PairwiseHash::from_seed(1, 1 << 30);
        let b = PairwiseHash::from_seed(2, 1 << 30);
        let same = (0..1000u64).filter(|&x| a.eval(x) == b.eval(x)).count();
        assert!(same < 10, "seeds produce near-identical functions");
    }

    #[test]
    fn roughly_uniform() {
        // Chi-square-ish sanity check on bucket occupancy.
        let r = 64u64;
        let q = PairwiseHash::from_seed(99, r);
        let mut counts = vec![0usize; r as usize];
        let n = 64_000u64;
        for x in 0..n {
            counts[q.eval(x) as usize] += 1;
        }
        let expect = (n / r) as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(
                dev < 0.5,
                "bucket {bucket} occupancy {c} vs expected {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must exceed range")]
    fn range_at_least_prime_rejected() {
        PairwiseHash::with_params(1, 0, 97, 97);
    }
}
