//! A from-scratch implementation of xxHash64, the fast non-cryptographic
//! string hash the paper suggests for the string-key extension of Grafite
//! (Section 7).
//!
//! Follows the canonical specification (XXH64) exactly; verified against the
//! published test vectors.

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

/// Computes the 64-bit xxHash of `data` with the given `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(P5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= (read_u32(rest) as u64).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= (byte as u64).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_test_vectors() {
        // Canonical vectors from the xxHash reference implementation docs.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn long_input_exercises_stripe_loop() {
        // 39 bytes (> 32): classic example string from the python-xxhash
        // documentation.
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition", 0),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(xxh64(b"grafite", 0), xxh64(b"grafite", 1));
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(xxh64(&data, 7), xxh64(&data, 7));
    }

    #[test]
    fn length_boundaries() {
        // Hit every tail-handling path: 0..40 byte lengths must all hash
        // without panicking and produce distinct values for distinct data.
        let data: Vec<u8> = (0..64u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=40 {
            assert!(seen.insert(xxh64(&data[..len], 0)));
        }
    }
}
