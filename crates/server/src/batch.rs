//! Request coalescing: concurrently arriving probes from many connection
//! threads merge into one store batch, so a filter family's batch
//! specialisation (Grafite's one-pass sorted probe over the Elias–Fano
//! sequence) runs once per *coalesced* batch instead of once per request.
//!
//! The combining protocol is leader/follower: the first thread to find no
//! batch in flight becomes the leader, takes everything queued so far
//! (its own probes included), and executes it against one snapshot.
//! Threads arriving while the leader runs enqueue into the *next*
//! generation and block on that generation's result slot; the leader
//! drains generation after generation until the queue is empty, so no
//! follower ever waits without a leader working on its behalf. Under no
//! concurrency the fast path is one uncontended mutex and a direct
//! execution — a single client pays nothing for the machinery.

use std::sync::{Arc, Condvar, Mutex};

use grafite_store::FilterStore;

use crate::telemetry::Telemetry;

/// One generation's result slot: followers block on it until the leader
/// fills it with the whole generation's answers.
struct Slot {
    out: Mutex<Option<Arc<Vec<bool>>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            out: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, answers: Vec<bool>) {
        let mut out = self.out.lock().expect("batch slot poisoned");
        *out = Some(Arc::new(answers));
        self.ready.notify_all();
    }

    fn wait(&self, start: usize, len: usize) -> Vec<bool> {
        let mut out = self.out.lock().expect("batch slot poisoned");
        loop {
            if let Some(answers) = out.as_ref() {
                return answers
                    .get(start..start.saturating_add(len))
                    .map(<[bool]>::to_vec)
                    .unwrap_or_else(|| vec![false; len]);
            }
            out = self.ready.wait(out).expect("batch slot poisoned");
        }
    }
}

/// The accumulating generation: probes queued since the last batch was
/// taken, and the slot their submitters wait on.
struct Pending {
    queue: Vec<(u64, u64)>,
    slot: Arc<Slot>,
    /// Whether a leader is currently draining generations.
    busy: bool,
}

/// Coalesces concurrent probe submissions into store batches. Shared
/// (behind `Arc`) by every connection thread of a server.
pub struct Batcher {
    store: Arc<FilterStore>,
    telemetry: Arc<Telemetry>,
    pending: Mutex<Pending>,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher").finish_non_exhaustive()
    }
}

impl Batcher {
    /// A batcher executing against `store` and recording coalescing
    /// telemetry into `telemetry`.
    pub fn new(store: Arc<FilterStore>, telemetry: Arc<Telemetry>) -> Self {
        Self {
            store,
            telemetry,
            pending: Mutex::new(Pending {
                queue: Vec::new(),
                slot: Arc::new(Slot::new()),
                busy: false,
            }),
        }
    }

    /// Submits `queries` (closed ranges, each `a <= b`) and blocks until
    /// their answers are in, in submission order. Concurrent callers'
    /// probes ride in the same store batch whenever their submissions
    /// overlap in time.
    pub fn submit(&self, queries: &[(u64, u64)]) -> Vec<bool> {
        if queries.is_empty() {
            return Vec::new();
        }
        let (slot, start) = {
            let mut pending = self.pending.lock().expect("batcher lock poisoned");
            let start = pending.queue.len();
            pending.queue.extend_from_slice(queries);
            let slot = Arc::clone(&pending.slot);
            if !pending.busy {
                pending.busy = true;
                self.drain(pending);
            }
            (slot, start)
        };
        slot.wait(start, queries.len())
    }

    /// Leader loop: executes generation after generation until the queue
    /// stays empty, then clears `busy`. Consumes the guard so the lock is
    /// released while each batch runs.
    fn drain<'a>(&'a self, mut pending: std::sync::MutexGuard<'a, Pending>) {
        loop {
            let batch = std::mem::take(&mut pending.queue);
            let slot = std::mem::replace(&mut pending.slot, Arc::new(Slot::new()));
            drop(pending);
            // Adjacent identical probes collapse to one store probe: a
            // client hammering the same range (or a burst of retries)
            // pays for it once per run, and the store batch stays
            // smaller. `expand` maps each original position back to its
            // representative's answer slot.
            let mut unique: Vec<(u64, u64)> = Vec::with_capacity(batch.len());
            let mut expand: Vec<usize> = Vec::with_capacity(batch.len());
            for &probe in &batch {
                if unique.last() != Some(&probe) {
                    unique.push(probe);
                }
                expand.push(unique.len().saturating_sub(1));
            }
            let dedup_hits = (batch.len() - unique.len()) as u64;
            let mut compact = Vec::new();
            self.store.snapshot().query_ranges(&unique, &mut compact);
            let answers: Vec<bool> = expand
                .iter()
                .map(|&i| compact.get(i).copied().unwrap_or(false))
                .collect();
            self.telemetry.record_batch(batch.len() as u64);
            if dedup_hits > 0 {
                self.telemetry.record_dedup_hits(dedup_hits);
            }
            slot.fill(answers);
            pending = self.pending.lock().expect("batcher lock poisoned");
            if pending.queue.is_empty() {
                pending.busy = false;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafite_core::registry::{FilterSpec, Registry};
    use grafite_store::{FamilySpec, Partitioning, StoreConfig};

    fn small_store() -> Arc<FilterStore> {
        let keys: Vec<u64> = (0..2000u64).map(|i| i * 99_991).collect();
        let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
            .bits_per_key(14.0)
            .max_range(64)
            .partitioning(Partitioning::Range { shards: 4 });
        Arc::new(FilterStore::build(&Registry::new(), config, &keys).unwrap())
    }

    #[test]
    fn adjacent_duplicates_are_answered_once() {
        let store = small_store();
        let telemetry = Arc::new(Telemetry::new(4));
        let batcher = Batcher::new(Arc::clone(&store), Arc::clone(&telemetry));
        let snap = store.snapshot();
        // Runs of identical probes interleaved with distinct ones.
        let mut queries = Vec::new();
        for i in 0..50u64 {
            let a = i * 99_991;
            let b = a + (i % 16);
            for _ in 0..=(i % 4) {
                queries.push((a, b));
            }
        }
        let got = batcher.submit(&queries);
        let want: Vec<bool> = queries
            .iter()
            .map(|&(a, b)| snap.may_contain_range(a, b))
            .collect();
        assert_eq!(got, want, "dedup must not change any answer");
        let expected_hits: u64 = (0..50u64).map(|i| i % 4).sum();
        assert_eq!(telemetry.dedup_hits(), expected_hits);
    }

    #[test]
    fn coalesced_answers_match_direct_queries() {
        let store = small_store();
        let telemetry = Arc::new(Telemetry::new(4));
        let batcher = Arc::new(Batcher::new(Arc::clone(&store), Arc::clone(&telemetry)));
        let snap = store.snapshot();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let batcher = Arc::clone(&batcher);
            let snap = Arc::clone(&snap);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let a = (t * 7919 + i).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1;
                    let b = a.saturating_add(i % 32);
                    let got = batcher.submit(&[(a, b)]);
                    assert_eq!(got, vec![snap.may_contain_range(a, b)], "[{a}, {b}]");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every probe rode in some executed batch.
        assert!(
            telemetry.coalescing_factor() >= 1.0,
            "coalescing factor {}",
            telemetry.coalescing_factor()
        );
    }
}
