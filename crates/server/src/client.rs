//! A minimal blocking client for the [`crate::protocol`] frame protocol:
//! one TCP stream, one in-flight request at a time.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{self, verb, ProtocolError};

/// The summary an `APPLY` request returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplySummary {
    /// The store version the batch produced (unchanged if nothing was
    /// dirty).
    pub version: u64,
    /// Keys newly present.
    pub inserted: u64,
    /// Keys newly absent.
    pub deleted: u64,
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// One request/response round trip; checks the response verb.
    fn call(&mut self, request: u8, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        protocol::write_frame(&mut self.stream, request, payload)?;
        let frame = protocol::read_frame(&mut self.stream)?;
        if frame.verb == verb::ERR {
            return Err(ProtocolError::Remote(
                String::from_utf8_lossy(&frame.payload).into_owned(),
            ));
        }
        if frame.verb != protocol::ok_verb(request) {
            return Err(ProtocolError::UnknownVerb(frame.verb));
        }
        Ok(frame.payload)
    }

    /// Whether the closed range `[a, b]` may contain a key.
    pub fn query(&mut self, a: u64, b: u64) -> Result<bool, ProtocolError> {
        let payload = self.call(verb::QUERY, &protocol::encode_query(a, b))?;
        let answers = protocol::decode_bools(&payload, 1)?;
        answers
            .first()
            .copied()
            .ok_or(ProtocolError::BadPayload("empty query answer"))
    }

    /// Answers a batch of closed ranges, one `bool` per query in order.
    pub fn query_batch(&mut self, queries: &[(u64, u64)]) -> Result<Vec<bool>, ProtocolError> {
        let payload = self.call(verb::BATCH_QUERY, &protocol::encode_batch(queries)?)?;
        protocol::decode_bools(&payload, queries.len())
    }

    /// Applies `(insert?, key)` updates atomically on the server.
    pub fn apply(&mut self, updates: &[(bool, u64)]) -> Result<ApplySummary, ProtocolError> {
        let payload = self.call(verb::APPLY, &protocol::encode_apply(updates)?)?;
        let (version, inserted, deleted) = protocol::decode_apply_report(&payload)?;
        Ok(ApplySummary {
            version,
            inserted,
            deleted,
        })
    }

    /// The server's telemetry snapshot as a JSON string.
    pub fn stats_json(&mut self) -> Result<String, ProtocolError> {
        let payload = self.call(verb::STATS, &[])?;
        String::from_utf8(payload).map_err(|_| ProtocolError::BadPayload("stats not UTF-8"))
    }

    /// Hot-reloads the server's manifest: `Some(path)` names a manifest
    /// file on the *server's* filesystem, `None` re-reads the one it was
    /// started with. Returns the new store version.
    pub fn reload(&mut self, path: Option<&str>) -> Result<u64, ProtocolError> {
        let payload = self.call(verb::RELOAD, path.unwrap_or("").as_bytes())?;
        protocol::decode_version(&payload)
    }

    /// Asks the server to stop accepting and shut down.
    pub fn shutdown(&mut self) -> Result<(), ProtocolError> {
        self.call(verb::SHUTDOWN, &[]).map(|_| ())
    }
}
