//! # grafite-server — the network serving front end
//!
//! A dependency-free TCP server over the sharded
//! [`FilterStore`](grafite_store::FilterStore): a small blocking pool
//! speaking a length-prefixed binary protocol
//! (`QUERY` / `BATCH_QUERY` / `APPLY` / `STATS` / `RELOAD` / `SHUTDOWN`),
//! with three properties the paper's static benchmark setting doesn't
//! need but a deployment does:
//!
//! * **Request coalescing** ([`Batcher`]): probes arriving concurrently on
//!   different connections merge into one store batch, so Grafite's
//!   one-pass sorted probe amortizes across clients.
//! * **Mapped cold starts and hot reloads**: the binary serves a saved
//!   manifest through [`FilterStore::open_mapped`] — `O(shards)` small
//!   reads, shards materialize on first probe — and `RELOAD` swaps in a
//!   new manifest atomically without failing one in-flight query.
//! * **Operational telemetry** ([`Telemetry`]): per-verb counts and
//!   latency histograms, per-shard traffic, batch-coalescing factor,
//!   rebuild durations, and an observed-FP estimator fed by retained-key
//!   refutation — all plain atomics, exported as JSON over `STATS`.
//!
//! [`FilterStore::open_mapped`]: grafite_store::FilterStore::open_mapped
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use grafite_core::registry::{FilterSpec, Registry};
//! use grafite_server::{serve, Client};
//! use grafite_store::{FamilySpec, FilterStore, StoreConfig};
//!
//! let keys: Vec<u64> = (0..10_000u64).map(|i| i * 99_991).collect();
//! let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite));
//! let store = Arc::new(FilterStore::build(&Registry::new(), config, &keys).unwrap());
//!
//! let handle = serve(store, "127.0.0.1:0", None).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! assert!(client.query(99_991, 99_991).unwrap());
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use batch::Batcher;
pub use client::{ApplySummary, Client};
pub use protocol::{Frame, ProtocolError, MAX_FRAME};
pub use server::{serve, ServerHandle};
pub use telemetry::{Histogram, Telemetry};
