//! The `grafite-server` binary: build a store manifest (`gen`), serve one
//! over TCP (`serve`), or run an end-to-end self-check against a freshly
//! started server (`smoke`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use grafite_core::registry::{FilterSpec, Registry};
use grafite_server::{serve, Client};
use grafite_store::{FamilySpec, FilterStore, Partitioning, StoreConfig};

const USAGE: &str = "\
usage:
  grafite-server gen   --out PATH [--keys N] [--shards N] [--bpk F] [--seed N]
  grafite-server serve --store PATH [--addr HOST:PORT]
  grafite-server smoke --store PATH [--queries N] [--stats-out PATH]

gen    builds a range-partitioned Grafite store over a deterministic key
       set and writes its manifest to --out.
serve  maps the manifest lazily and serves it until a SHUTDOWN frame.
smoke  starts an ephemeral server on the manifest, replays queries through
       the network and directly against the store, fails on any answer
       mismatch or non-zero error counter, and prints the STATS JSON.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let result = match it.next().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// `--flag value` extraction over the raw argument list.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|at| args.get(at + 1))
        .map(String::as_str)
}

fn flag_u64(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("{name} wants an integer, got {s:?}")),
    }
}

fn flag_f64(args: &[String], name: &str, default: f64) -> Result<f64, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(s) => s
            .parse::<f64>()
            .map_err(|_| format!("{name} wants a number, got {s:?}")),
    }
}

/// The deterministic key set `gen` builds over (golden-ratio stride, same
/// family as the store tests).
fn gen_keys(n: u64, seed: u64) -> Vec<u64> {
    (0..n)
        .map(|i| i.wrapping_add(seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1)
        .collect()
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("gen needs --out PATH")?;
    let n_keys = flag_u64(args, "--keys", 200_000)?;
    let shards = flag_u64(args, "--shards", 8)?;
    let bpk = flag_f64(args, "--bpk", 14.0)?;
    let seed = flag_u64(args, "--seed", 7)?;
    let keys = gen_keys(n_keys, seed);
    let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
        .bits_per_key(bpk)
        .max_range(1 << 6)
        .seed(seed)
        .partitioning(Partitioning::Range {
            shards: usize::try_from(shards).unwrap_or(usize::MAX),
        });
    let store = FilterStore::build(&Registry::new(), config, &keys).map_err(|e| e.to_string())?;
    let bytes = store.to_bytes();
    std::fs::write(out, &bytes).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} keys, {} shards, {} bytes)",
        out,
        store.num_keys(),
        store.snapshot().num_shards(),
        bytes.len()
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--store").ok_or("serve needs --store PATH")?;
    let addr = flag(args, "--addr").unwrap_or("127.0.0.1:7878");
    let store = Arc::new(
        FilterStore::open_mapped(&Registry::new(), Path::new(path)).map_err(|e| e.to_string())?,
    );
    let handle = serve(store, addr, Some(PathBuf::from(path))).map_err(|e| e.to_string())?;
    println!("serving {} on {}", path, handle.addr());
    handle.join();
    Ok(())
}

fn cmd_smoke(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--store").ok_or("smoke needs --store PATH")?;
    let n_queries = flag_u64(args, "--queries", 20_000)?;
    let stats_out = flag(args, "--stats-out");

    let registry = Registry::new();
    let store =
        Arc::new(FilterStore::open_mapped(&registry, Path::new(path)).map_err(|e| e.to_string())?);
    let direct = FilterStore::open(&registry, &std::fs::read(path).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let snap = direct.snapshot();

    let handle =
        serve(store, "127.0.0.1:0", Some(PathBuf::from(path))).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;

    // Mixed single and batch probes, bit-compared against the direct store.
    let queries: Vec<(u64, u64)> = (0..n_queries)
        .map(|i| {
            let a = i.wrapping_mul(0xD134_2543_DE82_EF95) >> 1;
            (a, a.saturating_add(i % 61))
        })
        .collect();
    let mut mismatches = 0u64;
    for chunk in queries.chunks(512) {
        let got = client.query_batch(chunk).map_err(|e| e.to_string())?;
        for (&(a, b), &hit) in chunk.iter().zip(&got) {
            if hit != snap.may_contain_range(a, b) {
                mismatches += 1;
            }
        }
    }
    for &(a, b) in queries.iter().step_by(997) {
        let hit = client.query(a, b).map_err(|e| e.to_string())?;
        if hit != snap.may_contain_range(a, b) {
            mismatches += 1;
        }
    }

    // Reload mid-session, then probe again on the new snapshot.
    let version = client.reload(None).map_err(|e| e.to_string())?;
    for &(a, b) in queries.iter().step_by(1013) {
        let hit = client.query(a, b).map_err(|e| e.to_string())?;
        if hit != snap.may_contain_range(a, b) {
            mismatches += 1;
        }
    }

    let stats = client.stats_json().map_err(|e| e.to_string())?;
    client.shutdown().map_err(|e| e.to_string())?;
    handle.join();

    if let Some(out) = stats_out {
        std::fs::write(out, &stats).map_err(|e| e.to_string())?;
    }
    println!("{stats}");

    if mismatches > 0 {
        return Err(format!(
            "{mismatches} answers diverged from the direct store"
        ));
    }
    if stats.contains("\"total_errors\":0,") {
        println!(
            "smoke ok: {} probes, reload -> v{version}, zero errors",
            queries.len()
        );
        Ok(())
    } else {
        Err("server reported non-zero error counters".to_string())
    }
}
