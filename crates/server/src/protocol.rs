//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every message — request or response, either direction — is one frame:
//!
//! ```text
//! [u32 le: length of the rest] [u8: verb] [payload bytes]
//! ```
//!
//! The length counts the verb byte plus the payload (so the minimum legal
//! length is 1) and is capped at [`MAX_FRAME`]; a peer claiming more is
//! rejected before any allocation. Responses echo the request verb with
//! the high bit set ([`ok_verb`]); failures come back as an [`verb::ERR`]
//! frame whose payload is a UTF-8 message.
//!
//! Request payloads:
//!
//! | verb | payload | response payload |
//! |---|---|---|
//! | `QUERY` | `a: u64, b: u64` (closed range, `a <= b`) | one byte, 0/1 |
//! | `BATCH_QUERY` | `count: u32`, then `count` × (`a: u64, b: u64`) | `count` bytes, 0/1 each |
//! | `APPLY` | `count: u32`, then `count` × (`op: u8` (0=insert, 1=delete), `key: u64`) | `version: u64, inserted: u64, deleted: u64` |
//! | `STATS` | empty | UTF-8 JSON |
//! | `RELOAD` | UTF-8 manifest path (empty = the path served at startup) | `version: u64` |
//! | `SHUTDOWN` | empty | empty |
//!
//! All integers are little-endian. Every decoder in this module is total:
//! truncated, oversized, or garbage bytes come back as a typed
//! [`ProtocolError`], never a panic — this file is on the repo's untrusted
//! audit list, so the lint suite enforces it.

use std::io::{Read, Write};

/// Hard cap on a frame's declared length (verb + payload), request or
/// response: 64 MiB. Large enough for a million-probe batch, small enough
/// that a hostile length prefix cannot drive allocation.
pub const MAX_FRAME: usize = 1 << 26;

/// The request verbs (responses echo them through [`ok_verb`]).
pub mod verb {
    /// One closed-range probe.
    pub const QUERY: u8 = 1;
    /// Many closed-range probes in one frame.
    pub const BATCH_QUERY: u8 = 2;
    /// A batch of key inserts/deletes.
    pub const APPLY: u8 = 3;
    /// Telemetry snapshot as JSON.
    pub const STATS: u8 = 4;
    /// Hot-swap the served manifest.
    pub const RELOAD: u8 = 5;
    /// Stop the server.
    pub const SHUTDOWN: u8 = 6;
    /// Response verb for a failed request; payload is a UTF-8 message.
    pub const ERR: u8 = 0xFF;
}

/// The bit a response verb sets on top of its request verb.
pub const OK_BIT: u8 = 0x80;

/// The success-response verb for a request verb.
pub fn ok_verb(request: u8) -> u8 {
    request | OK_BIT
}

/// Everything that can go wrong speaking the protocol. Parsing is total:
/// every hostile input maps to one of these, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame declared length 0 — there is no verb byte.
    EmptyFrame,
    /// The frame declared more than [`MAX_FRAME`] bytes.
    Oversized {
        /// The declared length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The verb byte names no known request (or expected response).
    UnknownVerb(u8),
    /// The payload does not parse under its verb's schema.
    BadPayload(&'static str),
    /// The peer answered with an [`verb::ERR`] frame (client side).
    Remote(String),
    /// The underlying stream failed (kind retained; connection closed
    /// mid-frame surfaces as `UnexpectedEof`).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::EmptyFrame => write!(f, "frame with zero length (no verb byte)"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame declares {len} bytes, cap is {max}")
            }
            ProtocolError::UnknownVerb(v) => write!(f, "unknown verb {v:#04x}"),
            ProtocolError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            ProtocolError::Remote(msg) => write!(f, "server error: {msg}"),
            ProtocolError::Io(kind) => write!(f, "stream error: {kind}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e.kind())
    }
}

/// One decoded frame: the verb byte and its payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The verb byte (request verb, success verb, or [`verb::ERR`]).
    pub verb: u8,
    /// The payload bytes after the verb.
    pub payload: Vec<u8>,
}

/// Reads one frame. The declared length is validated against
/// [`MAX_FRAME`] *before* the payload buffer is allocated.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    finish_frame(u32::from_le_bytes(len_bytes), r)
}

/// Reads the rest of a frame whose *first* length byte the caller already
/// consumed — the server's poll loop peels one byte to distinguish "idle"
/// from "frame incoming" without ever losing stream position.
pub fn read_frame_continuing(first: u8, r: &mut impl Read) -> Result<Frame, ProtocolError> {
    let mut rest = [0u8; 3];
    r.read_exact(&mut rest)?;
    let [b1, b2, b3] = rest;
    finish_frame(u32::from_le_bytes([first, b1, b2, b3]), r)
}

/// Validates a declared length and reads the verb + payload behind it.
fn finish_frame(declared: u32, r: &mut impl Read) -> Result<Frame, ProtocolError> {
    let len = declared as usize;
    if len == 0 {
        return Err(ProtocolError::EmptyFrame);
    }
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let verb = body.first().copied().ok_or(ProtocolError::EmptyFrame)?;
    let payload = body.get(1..).unwrap_or(&[]).to_vec();
    Ok(Frame { verb, payload })
}

/// Writes one frame (length prefix, verb, payload).
pub fn write_frame(w: &mut impl Write, verb: u8, payload: &[u8]) -> Result<(), ProtocolError> {
    let total = payload
        .len()
        .checked_add(1)
        .filter(|&t| t <= MAX_FRAME)
        .ok_or(ProtocolError::Oversized {
            len: payload.len(),
            max: MAX_FRAME,
        })?;
    let prefix = u32::try_from(total).map_err(|_| ProtocolError::Oversized {
        len: total,
        max: MAX_FRAME,
    })?;
    w.write_all(&prefix.to_le_bytes())?;
    w.write_all(&[verb])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// The little-endian `u64` at byte offset `off`, if fully in bounds.
fn u64_at(payload: &[u8], off: usize) -> Option<u64> {
    let end = off.checked_add(8)?;
    let bytes: [u8; 8] = payload.get(off..end)?.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

/// The little-endian `u32` at byte offset `off`, if fully in bounds.
fn u32_at(payload: &[u8], off: usize) -> Option<u32> {
    let end = off.checked_add(4)?;
    let bytes: [u8; 4] = payload.get(off..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// Encodes a `QUERY` payload.
pub fn encode_query(a: u64, b: u64) -> [u8; 16] {
    let mut out = [0u8; 16];
    let (lo, hi) = out.split_at_mut(8);
    lo.copy_from_slice(&a.to_le_bytes());
    hi.copy_from_slice(&b.to_le_bytes());
    out
}

/// Decodes a `QUERY` payload: exactly 16 bytes, `a <= b`.
pub fn decode_query(payload: &[u8]) -> Result<(u64, u64), ProtocolError> {
    if payload.len() != 16 {
        return Err(ProtocolError::BadPayload("query wants exactly 16 bytes"));
    }
    let a = u64_at(payload, 0).ok_or(ProtocolError::BadPayload("query truncated"))?;
    let b = u64_at(payload, 8).ok_or(ProtocolError::BadPayload("query truncated"))?;
    if a > b {
        return Err(ProtocolError::BadPayload("inverted range (a > b)"));
    }
    Ok((a, b))
}

/// Encodes a `BATCH_QUERY` payload. Fails [`ProtocolError::Oversized`] if
/// the batch cannot fit a frame.
pub fn encode_batch(queries: &[(u64, u64)]) -> Result<Vec<u8>, ProtocolError> {
    let count = u32::try_from(queries.len()).map_err(|_| ProtocolError::Oversized {
        len: queries.len(),
        max: MAX_FRAME,
    })?;
    let bytes = queries
        .len()
        .checked_mul(16)
        .and_then(|b| b.checked_add(4))
        .filter(|&b| b < MAX_FRAME)
        .ok_or(ProtocolError::Oversized {
            len: queries.len(),
            max: MAX_FRAME,
        })?;
    let mut out = Vec::with_capacity(bytes);
    out.extend_from_slice(&count.to_le_bytes());
    for &(a, b) in queries {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
    Ok(out)
}

/// Decodes a `BATCH_QUERY` payload: a count, then exactly that many
/// 16-byte pairs, each a valid closed range.
pub fn decode_batch(payload: &[u8]) -> Result<Vec<(u64, u64)>, ProtocolError> {
    let count = u32_at(payload, 0).ok_or(ProtocolError::BadPayload("batch count truncated"))?;
    let count = count as usize;
    let body = payload.get(4..).unwrap_or(&[]);
    let want = count
        .checked_mul(16)
        .ok_or(ProtocolError::BadPayload("batch count overflows"))?;
    if body.len() != want {
        return Err(ProtocolError::BadPayload(
            "batch body length disagrees with count",
        ));
    }
    let mut queries = Vec::with_capacity(count);
    for pair in body.chunks_exact(16) {
        let a = u64_at(pair, 0).ok_or(ProtocolError::BadPayload("batch pair truncated"))?;
        let b = u64_at(pair, 8).ok_or(ProtocolError::BadPayload("batch pair truncated"))?;
        if a > b {
            return Err(ProtocolError::BadPayload("inverted range (a > b)"));
        }
        queries.push((a, b));
    }
    Ok(queries)
}

/// Encodes an `APPLY` payload from `(insert?, key)` pairs.
pub fn encode_apply(updates: &[(bool, u64)]) -> Result<Vec<u8>, ProtocolError> {
    let count = u32::try_from(updates.len()).map_err(|_| ProtocolError::Oversized {
        len: updates.len(),
        max: MAX_FRAME,
    })?;
    let bytes = updates
        .len()
        .checked_mul(9)
        .and_then(|b| b.checked_add(4))
        .filter(|&b| b < MAX_FRAME)
        .ok_or(ProtocolError::Oversized {
            len: updates.len(),
            max: MAX_FRAME,
        })?;
    let mut out = Vec::with_capacity(bytes);
    out.extend_from_slice(&count.to_le_bytes());
    for &(insert, key) in updates {
        out.push(if insert { 0 } else { 1 });
        out.extend_from_slice(&key.to_le_bytes());
    }
    Ok(out)
}

/// Decodes an `APPLY` payload into `(insert?, key)` pairs.
pub fn decode_apply(payload: &[u8]) -> Result<Vec<(bool, u64)>, ProtocolError> {
    let count = u32_at(payload, 0).ok_or(ProtocolError::BadPayload("apply count truncated"))?;
    let count = count as usize;
    let body = payload.get(4..).unwrap_or(&[]);
    let want = count
        .checked_mul(9)
        .ok_or(ProtocolError::BadPayload("apply count overflows"))?;
    if body.len() != want {
        return Err(ProtocolError::BadPayload(
            "apply body length disagrees with count",
        ));
    }
    let mut updates = Vec::with_capacity(count);
    for rec in body.chunks_exact(9) {
        let insert = match rec.first() {
            Some(0) => true,
            Some(1) => false,
            _ => return Err(ProtocolError::BadPayload("apply op must be 0 or 1")),
        };
        let key = u64_at(rec, 1).ok_or(ProtocolError::BadPayload("apply key truncated"))?;
        updates.push((insert, key));
    }
    Ok(updates)
}

/// Encodes an `APPLY` success response.
pub fn encode_apply_report(version: u64, inserted: u64, deleted: u64) -> [u8; 24] {
    let mut out = [0u8; 24];
    let (v, rest) = out.split_at_mut(8);
    let (ins, del) = rest.split_at_mut(8);
    v.copy_from_slice(&version.to_le_bytes());
    ins.copy_from_slice(&inserted.to_le_bytes());
    del.copy_from_slice(&deleted.to_le_bytes());
    out
}

/// Decodes an `APPLY` success response into `(version, inserted, deleted)`.
pub fn decode_apply_report(payload: &[u8]) -> Result<(u64, u64, u64), ProtocolError> {
    if payload.len() != 24 {
        return Err(ProtocolError::BadPayload(
            "apply report wants exactly 24 bytes",
        ));
    }
    let version = u64_at(payload, 0).ok_or(ProtocolError::BadPayload("apply report truncated"))?;
    let inserted = u64_at(payload, 8).ok_or(ProtocolError::BadPayload("apply report truncated"))?;
    let deleted = u64_at(payload, 16).ok_or(ProtocolError::BadPayload("apply report truncated"))?;
    Ok((version, inserted, deleted))
}

/// Decodes a single-`u64` payload (the `RELOAD` response's version).
pub fn decode_version(payload: &[u8]) -> Result<u64, ProtocolError> {
    if payload.len() != 8 {
        return Err(ProtocolError::BadPayload("version wants exactly 8 bytes"));
    }
    u64_at(payload, 0).ok_or(ProtocolError::BadPayload("version truncated"))
}

/// Decodes a `BATCH_QUERY` response: exactly `expected` bytes of 0/1.
pub fn decode_bools(payload: &[u8], expected: usize) -> Result<Vec<bool>, ProtocolError> {
    if payload.len() != expected {
        return Err(ProtocolError::BadPayload(
            "answer count disagrees with batch size",
        ));
    }
    payload
        .iter()
        .map(|&byte| match byte {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtocolError::BadPayload("answer byte must be 0 or 1")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, verb::QUERY, &encode_query(3, 9)).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.verb, verb::QUERY);
        assert_eq!(decode_query(&frame.payload).unwrap(), (3, 9));
    }

    #[test]
    fn hostile_frames_fail_typed() {
        // Zero length.
        let z = 0u32.to_le_bytes().to_vec();
        assert_eq!(
            read_frame(&mut z.as_slice()),
            Err(ProtocolError::EmptyFrame)
        );
        // Oversized declared length, no allocation.
        let huge = (u32::MAX).to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(ProtocolError::Oversized { .. })
        ));
        // Truncated body.
        let mut t = 5u32.to_le_bytes().to_vec();
        t.push(verb::QUERY);
        assert_eq!(
            read_frame(&mut t.as_slice()),
            Err(ProtocolError::Io(std::io::ErrorKind::UnexpectedEof))
        );
    }

    #[test]
    fn payload_schemas_reject_garbage() {
        assert!(decode_query(&[0; 15]).is_err());
        assert!(decode_query(&encode_query(9, 3)).is_err(), "inverted range");
        let mut batch = encode_batch(&[(1, 2)]).unwrap();
        batch.pop();
        assert!(decode_batch(&batch).is_err());
        let mut apply = encode_apply(&[(true, 7)]).unwrap();
        apply[4] = 9; // invalid op byte
        assert!(decode_apply(&apply).is_err());
        assert!(decode_bools(&[0, 1, 2], 3).is_err());
        assert_eq!(decode_bools(&[0, 1], 2).unwrap(), vec![false, true]);
    }
}
