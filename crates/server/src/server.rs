//! The TCP server: a small blocking pool (one thread per connection plus
//! an acceptor) speaking the [`crate::protocol`] frame protocol over a
//! shared [`FilterStore`].
//!
//! Single probes and batches both route through the [`Batcher`], so
//! concurrent load coalesces into the store's sorted batch path. `RELOAD`
//! swaps manifests atomically under the store's writer lock: in-flight
//! queries finish on the snapshot they already hold, and not one of them
//! fails or blocks during the swap. Positive answers are spot-checked
//! against the snapshot's retained keys to feed the observed-FP estimator
//! in [`Telemetry`].

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use grafite_store::{FilterStore, Snapshot, Update};

use crate::batch::Batcher;
use crate::protocol::{self, verb, Frame, ProtocolError};
use crate::telemetry::Telemetry;

/// How long a connection read blocks before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A running server: its bound address and the handles to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    store: Arc<FilterStore>,
    telemetry: Arc<Telemetry>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served store.
    pub fn store(&self) -> &Arc<FilterStore> {
        &self.store
    }

    /// The server's telemetry (live; scraped over `STATS` as JSON).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Whether a `SHUTDOWN` frame (or [`ServerHandle::shutdown`]) has
    /// stopped the accept loop.
    pub fn is_stopped(&self) -> bool {
        // ordering: Relaxed-flag; no data is published alongside the stop
        // flag, so relaxed reads are enough for a poll.
        self.stop.load(Ordering::Relaxed)
    }

    /// Stops accepting, lets in-flight connections drain, and joins the
    /// acceptor.
    pub fn shutdown(mut self) {
        // ordering: Relaxed-flag; no data rides on the stop flag,
        // connection threads poll it between frames.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Blocks until the server stops (a client sends `SHUTDOWN`).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Everything the connection handlers share.
struct Shared {
    store: Arc<FilterStore>,
    batcher: Batcher,
    telemetry: Arc<Telemetry>,
    stop: Arc<AtomicBool>,
    /// The manifest path served at startup; an empty-payload `RELOAD`
    /// re-reads it.
    manifest_path: Option<PathBuf>,
}

/// Starts serving `store` on `addr` (use port 0 for an ephemeral port).
/// `manifest_path` is the file an empty `RELOAD` request re-reads.
pub fn serve(
    store: Arc<FilterStore>,
    addr: impl ToSocketAddrs,
    manifest_path: Option<PathBuf>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let telemetry = Arc::new(Telemetry::new(store.snapshot().num_shards()));
    let stop = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        batcher: Batcher::new(Arc::clone(&store), Arc::clone(&telemetry)),
        store: Arc::clone(&store),
        telemetry: Arc::clone(&telemetry),
        stop: Arc::clone(&stop),
        manifest_path,
    });
    let acceptor = std::thread::spawn(move || accept_loop(listener, shared));
    Ok(ServerHandle {
        addr: local,
        stop,
        acceptor: Some(acceptor),
        store,
        telemetry,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    // ordering: Relaxed-flag; stop poll, no data is published through it.
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                workers.push(std::thread::spawn(move || {
                    handle_connection(stream, shared)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Serves one connection until it closes, errors fatally, or the server
/// stops. Malformed frames get an error response and the connection stays
/// up — one bad client request must never take the stream (or the server)
/// down.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        // ordering: Relaxed-flag; stop poll, no data is published through it.
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        // Poll for the first byte of the next frame: an idle timeout here
        // has consumed nothing, so looping is safe. Once a byte arrives,
        // the rest of the frame is read strictly — a timeout *mid-frame*
        // means a stalled or hostile peer and closes the connection, never
        // a silent resync.
        let mut first = [0u8; 1];
        match reader.read(&mut first) {
            Ok(0) => return, // clean close
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle poll tick
            }
            Err(_) => return,
        }
        let frame = match protocol::read_frame_continuing(first[0], &mut reader) {
            Ok(frame) => frame,
            Err(ProtocolError::Io(_)) => return, // peer went away / stalled
            Err(e) => {
                // A hostile length prefix means the rest of the stream is
                // unframed: answer with the typed error, then drop.
                shared.telemetry.record_bad_frame();
                let _ = respond_err(&mut writer, &e);
                return;
            }
        };
        let started = Instant::now();
        match dispatch(&frame, &shared) {
            Ok(Reply::Payload(payload)) => {
                shared
                    .telemetry
                    .record_request(frame.verb, elapsed_us(started));
                if protocol::write_frame(&mut writer, protocol::ok_verb(frame.verb), &payload)
                    .is_err()
                {
                    return;
                }
            }
            Ok(Reply::Stop) => {
                shared
                    .telemetry
                    .record_request(frame.verb, elapsed_us(started));
                // ordering: Relaxed-flag; connection threads and the
                // acceptor poll the stop flag, no data rides on it.
                shared.stop.store(true, Ordering::Relaxed);
                let _ = protocol::write_frame(&mut writer, protocol::ok_verb(frame.verb), &[]);
                return;
            }
            Err(msg) => {
                shared.telemetry.record_error(frame.verb);
                if respond_err_msg(&mut writer, &msg).is_err() {
                    return;
                }
            }
        }
    }
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// A handler's successful outcome.
enum Reply {
    Payload(Vec<u8>),
    Stop,
}

fn respond_err(w: &mut TcpStream, e: &ProtocolError) -> Result<(), ProtocolError> {
    respond_err_msg(w, &e.to_string())
}

fn respond_err_msg(w: &mut TcpStream, msg: &str) -> Result<(), ProtocolError> {
    protocol::write_frame(w, verb::ERR, msg.as_bytes())
}

/// Routes one request frame to its handler. Returns `Err(message)` for
/// anything that should come back as an `ERR` frame.
fn dispatch(frame: &Frame, shared: &Shared) -> Result<Reply, String> {
    match frame.verb {
        verb::QUERY => {
            let (a, b) = protocol::decode_query(&frame.payload).map_err(|e| e.to_string())?;
            let hit = answer_probes(shared, &[(a, b)])
                .first()
                .copied()
                .unwrap_or(false);
            Ok(Reply::Payload(vec![u8::from(hit)]))
        }
        verb::BATCH_QUERY => {
            let queries = protocol::decode_batch(&frame.payload).map_err(|e| e.to_string())?;
            let answers = answer_probes(shared, &queries);
            Ok(Reply::Payload(
                answers.iter().map(|&h| u8::from(h)).collect(),
            ))
        }
        verb::APPLY => {
            let pairs = protocol::decode_apply(&frame.payload).map_err(|e| e.to_string())?;
            let updates: Vec<Update> = pairs
                .iter()
                .map(|&(insert, key)| {
                    if insert {
                        Update::Insert(key)
                    } else {
                        Update::Delete(key)
                    }
                })
                .collect();
            let started = Instant::now();
            let report = shared.store.apply(&updates).map_err(|e| e.to_string())?;
            shared.telemetry.record_rebuild(elapsed_us(started));
            Ok(Reply::Payload(
                protocol::encode_apply_report(
                    report.version,
                    report.inserted as u64,
                    report.deleted as u64,
                )
                .to_vec(),
            ))
        }
        verb::STATS => Ok(Reply::Payload(
            crate::telemetry::render_json(&shared.telemetry, &shared.store).into_bytes(),
        )),
        verb::RELOAD => {
            let path = if frame.payload.is_empty() {
                shared
                    .manifest_path
                    .clone()
                    .ok_or("reload: no manifest path configured and none given")?
            } else {
                let s = std::str::from_utf8(&frame.payload)
                    .map_err(|_| "reload: path is not UTF-8".to_string())?;
                PathBuf::from(s)
            };
            let version = shared
                .store
                .reload_mapped(Path::new(&path))
                .map_err(|e| e.to_string())?;
            Ok(Reply::Payload(version.to_le_bytes().to_vec()))
        }
        verb::SHUTDOWN => Ok(Reply::Stop),
        other => Err(ProtocolError::UnknownVerb(other).to_string()),
    }
}

/// Answers probes through the batcher and feeds the telemetry: per-shard
/// probe counts, and retained-key refutation of positive answers (the
/// observed-FP estimator). Refutation is exact — the snapshot retains
/// every key — so `refuted == answered true but no key in range`.
fn answer_probes(shared: &Shared, queries: &[(u64, u64)]) -> Vec<bool> {
    let snap = shared.store.snapshot();
    for &(a, _b) in queries {
        shared
            .telemetry
            .record_shard_probe(snap.routing().shard_of(a));
    }
    let answers = shared.batcher.submit(queries);
    for (&(a, b), &hit) in queries.iter().zip(&answers) {
        if hit {
            shared.telemetry.record_positive(!truth(&snap, a, b));
        }
    }
    answers
}

/// Ground truth from the snapshot's retained keys: does any shard hold a
/// key in `[a, b]`?
fn truth(snap: &Snapshot, a: u64, b: u64) -> bool {
    snap.shards().iter().any(|shard| {
        let keys = shard.keys();
        let at = keys.partition_point(|&k| k < a);
        keys.get(at).is_some_and(|&k| k <= b)
    })
}
