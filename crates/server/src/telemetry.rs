//! Operational telemetry: lock-free counters and streaming histograms the
//! server updates on every request and exports as JSON over `STATS`.
//!
//! Everything is plain `std` atomics — no dependencies, no sampling locks
//! — so recording costs a handful of relaxed atomic adds per request:
//!
//! * per-verb request counts, error counts, and log₂-bucketed latency
//!   histograms (approximate p50/p99 in microseconds),
//! * per-shard probe counts (which shards the routing sends traffic to),
//! * batch coalescing: how many probes each executed batch carried,
//! * rebuild (apply) durations,
//! * an observed-false-positive estimator: every positive answer the
//!   server can refute against the snapshot's retained keys counts as a
//!   confirmed false positive, so `fp.observed_rate` converges on the
//!   store's real FPR under live traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use grafite_store::FilterStore;

/// Relaxed monotonic add — every counter in this module goes through here.
fn add(counter: &AtomicU64, n: u64) {
    // ordering: Relaxed-counter; pure monotonic event counter, nothing
    // synchronizes on it.
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Relaxed counter read for reporting.
fn get(counter: &AtomicU64) -> u64 {
    // ordering: Relaxed-counter; statistical snapshot read — slight
    // tearing across counters is acceptable for telemetry.
    counter.load(Ordering::Relaxed)
}

/// A log₂-bucketed streaming histogram of `u64` samples: bucket `i` holds
/// samples whose bit length is `i` (value 0 lands in bucket 0). Quantiles
/// come back as the upper bound of the bucket the rank falls in — within
/// 2× of the true value, which is all a latency dashboard needs.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros() as usize).min(63);
        if let Some(bucket) = self.buckets.get(idx) {
            add(bucket, 1);
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(get).sum()
    }

    /// The approximate `num/den` quantile: the upper bound of the bucket
    /// holding that rank (0 when empty).
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        let total = self.count();
        if total == 0 || den == 0 {
            return 0;
        }
        let rank = (total as u128)
            .saturating_mul(num as u128)
            .div_ceil(den as u128)
            .max(1) as u64;
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(get(bucket));
            if seen >= rank {
                return upper_bound(idx);
            }
        }
        upper_bound(63)
    }
}

/// The largest value bucket `idx` can hold.
fn upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 63 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Labels for the six request verbs, indexed by `verb - 1`.
const VERB_LABELS: [&str; 6] = [
    "query",
    "batch_query",
    "apply",
    "stats",
    "reload",
    "shutdown",
];

/// One verb's counters: requests served, requests failed, latency.
#[derive(Debug, Default)]
pub struct VerbStats {
    count: AtomicU64,
    errors: AtomicU64,
    latency_us: Histogram,
}

impl VerbStats {
    /// Requests of this verb answered successfully.
    pub fn count(&self) -> u64 {
        get(&self.count)
    }

    /// Requests of this verb that failed (malformed or rejected).
    pub fn errors(&self) -> u64 {
        get(&self.errors)
    }

    /// The latency histogram (microseconds).
    pub fn latency_us(&self) -> &Histogram {
        &self.latency_us
    }
}

/// The server's full telemetry state. One instance lives as long as the
/// server; handlers record into it lock-free from every connection thread.
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    verbs: [VerbStats; 6],
    shard_probes: Vec<AtomicU64>,
    batches: AtomicU64,
    batched_probes: AtomicU64,
    dedup_hits: AtomicU64,
    positives: AtomicU64,
    refuted: AtomicU64,
    rebuild_us: Histogram,
    bad_frames: AtomicU64,
}

impl Telemetry {
    /// Fresh telemetry for a store with `num_shards` shards (per-shard
    /// probe counters are sized once; probes to shards beyond the initial
    /// count — possible after a reload — are dropped from the per-shard
    /// breakdown but still counted per verb).
    pub fn new(num_shards: usize) -> Self {
        Self {
            started: Instant::now(),
            verbs: Default::default(),
            shard_probes: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            batches: AtomicU64::new(0),
            batched_probes: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            positives: AtomicU64::new(0),
            refuted: AtomicU64::new(0),
            rebuild_us: Histogram::default(),
            bad_frames: AtomicU64::new(0),
        }
    }

    fn verb_slot(&self, verb: u8) -> Option<&VerbStats> {
        self.verbs.get((verb as usize).wrapping_sub(1))
    }

    /// Records one successfully served request of `verb` and its latency.
    pub fn record_request(&self, verb: u8, latency_us: u64) {
        if let Some(slot) = self.verb_slot(verb) {
            add(&slot.count, 1);
            slot.latency_us.record(latency_us);
        }
    }

    /// Records one failed request of `verb` (pass `0` for frames whose
    /// verb never parsed; those land in no per-verb slot but the caller
    /// still counts them via [`Telemetry::record_bad_frame`]).
    pub fn record_error(&self, verb: u8) {
        if let Some(slot) = self.verb_slot(verb) {
            add(&slot.errors, 1);
        } else {
            self.record_bad_frame();
        }
    }

    /// Records a frame that failed before its verb was known (bad length
    /// prefix, unknown verb). These land in a dedicated counter rather
    /// than any per-verb error slot.
    pub fn record_bad_frame(&self) {
        add(&self.bad_frames, 1);
    }

    /// Records one probe routed to `shard`.
    pub fn record_shard_probe(&self, shard: usize) {
        if let Some(slot) = self.shard_probes.get(shard) {
            add(slot, 1);
        }
    }

    /// Records one executed batch carrying `probes` coalesced probes.
    pub fn record_batch(&self, probes: u64) {
        add(&self.batches, 1);
        add(&self.batched_probes, probes);
    }

    /// Records `n` probes the batcher answered from an adjacent duplicate
    /// instead of probing the store.
    pub fn record_dedup_hits(&self, n: u64) {
        add(&self.dedup_hits, n);
    }

    /// Probes answered by adjacent-duplicate reuse rather than a store
    /// probe.
    pub fn dedup_hits(&self) -> u64 {
        get(&self.dedup_hits)
    }

    /// Records one positive answer and whether the retained-key check
    /// refuted it (refuted = confirmed false positive).
    pub fn record_positive(&self, refuted: bool) {
        add(&self.positives, 1);
        if refuted {
            add(&self.refuted, 1);
        }
    }

    /// Records one `apply` rebuild duration in microseconds.
    pub fn record_rebuild(&self, duration_us: u64) {
        self.rebuild_us.record(duration_us);
    }

    /// Total requests that failed across all verbs plus unparseable
    /// frames — the number a smoke test gates on.
    pub fn total_errors(&self) -> u64 {
        self.verbs
            .iter()
            .map(VerbStats::errors)
            .sum::<u64>()
            .saturating_add(get(&self.bad_frames))
    }

    /// The mean number of probes per executed batch (the coalescing
    /// factor; 0.0 before the first batch).
    pub fn coalescing_factor(&self) -> f64 {
        let batches = get(&self.batches);
        if batches == 0 {
            return 0.0;
        }
        get(&self.batched_probes) as f64 / batches as f64
    }

    /// The observed false-positive rate: refuted positives over all
    /// positives (0.0 before the first positive).
    pub fn observed_fp_rate(&self) -> f64 {
        let positives = get(&self.positives);
        if positives == 0 {
            return 0.0;
        }
        get(&self.refuted) as f64 / positives as f64
    }
}

/// Renders the full telemetry state — plus the store's own counters and
/// current snapshot shape — as one JSON object. Hand-rolled: keys are
/// fixed identifiers and values numeric, so no escaping is needed.
pub fn render_json(t: &Telemetry, store: &FilterStore) -> String {
    let uptime = t.started.elapsed();
    let uptime_s = uptime.as_secs_f64().max(1e-9);
    let snap = store.snapshot();
    let stats = store.stats();
    let mut out = String::with_capacity(2048);
    out.push('{');
    push_kv(&mut out, "schema", "\"grafite-server-stats-v1\"");
    push_kv(
        &mut out,
        "family",
        &format!("\"{}\"", store.config().family.label()),
    );
    push_kv(&mut out, "uptime_ms", &format!("{}", uptime.as_millis()));
    out.push_str("\"verbs\":{");
    for (idx, label) in VERB_LABELS.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        let slot = &t.verbs[idx];
        out.push_str(&format!(
            "\"{label}\":{{\"count\":{},\"errors\":{},\"qps\":{:.3},\"p50_us\":{},\"p99_us\":{}}}",
            slot.count(),
            slot.errors(),
            slot.count() as f64 / uptime_s,
            slot.latency_us().quantile(1, 2),
            slot.latency_us().quantile(99, 100),
        ));
    }
    out.push_str("},");
    push_kv(&mut out, "bad_frames", &format!("{}", get(&t.bad_frames)));
    push_kv(&mut out, "total_errors", &format!("{}", t.total_errors()));
    out.push_str("\"batch\":{");
    out.push_str(&format!(
        "\"batches\":{},\"probes\":{},\"dedup_hits\":{},\"coalescing_factor\":{:.3}}},",
        get(&t.batches),
        get(&t.batched_probes),
        get(&t.dedup_hits),
        t.coalescing_factor(),
    ));
    out.push_str("\"shard_probes\":[");
    for (idx, slot) in t.shard_probes.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}", get(slot)));
    }
    out.push_str("],");
    out.push_str(&format!(
        "\"fp\":{{\"positives\":{},\"refuted\":{},\"observed_rate\":{:.6}}},",
        get(&t.positives),
        get(&t.refuted),
        t.observed_fp_rate(),
    ));
    out.push_str(&format!(
        "\"rebuild_us\":{{\"count\":{},\"p50\":{},\"p99\":{}}},",
        t.rebuild_us.count(),
        t.rebuild_us.quantile(1, 2),
        t.rebuild_us.quantile(99, 100),
    ));
    out.push_str(&format!(
        "\"store\":{{\"version\":{},\"published_version\":{},\"num_shards\":{},\"lazy_shard_loads\":{},\"shard_load_errors\":{},\"reloads\":{},\"degraded\":{},",
        snap.version(),
        store.version(),
        snap.num_shards(),
        stats.lazy_shard_loads(),
        stats.shard_load_errors(),
        stats.reloads(),
        stats.is_degraded(),
    ));
    // Construction parallelism: worker threads of the last build/rebuild
    // fan-out plus the per-shard build wall-time histogram (log2 buckets,
    // microseconds — bucket i counts builds in [2^i, 2^(i+1)) µs).
    out.push_str(&format!(
        "\"rebuild_workers\":{},\"shard_build_us_log2\":[",
        stats.rebuild_workers()
    ));
    for (idx, count) in stats.shard_build_histogram().iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        out.push_str(&format!("{count}"));
    }
    out.push_str("]}");
    out.push('}');
    out
}

/// Appends `"key":value,` to a JSON object under construction.
fn push_kv(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
    out.push(',');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let p50 = h.quantile(1, 2);
        let p99 = h.quantile(99, 100);
        assert!((3..=127).contains(&p50), "p50 bucket bound: {p50}");
        assert!(p99 >= 100_000, "p99 bound: {p99}");
        assert!(p99 <= 262_143, "p99 bound: {p99}");
        assert_eq!(Histogram::default().quantile(1, 2), 0);
    }

    #[test]
    fn telemetry_counts_and_ratios() {
        let t = Telemetry::new(4);
        t.record_request(1, 10);
        t.record_request(1, 20);
        t.record_error(1);
        t.record_bad_frame();
        t.record_batch(8);
        t.record_batch(2);
        t.record_dedup_hits(3);
        assert_eq!(t.dedup_hits(), 3);
        t.record_positive(true);
        t.record_positive(false);
        t.record_shard_probe(2);
        t.record_shard_probe(99); // out of range: dropped, no panic
        assert_eq!(t.total_errors(), 2);
        assert!((t.coalescing_factor() - 5.0).abs() < 1e-9);
        assert!((t.observed_fp_rate() - 0.5).abs() < 1e-9);
    }
}
