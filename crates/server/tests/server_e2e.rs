//! End-to-end tests over a live server: bit-identical answers vs the
//! direct store, atomic hot reload under concurrent readers, APPLY and
//! STATS round trips, and an exhaustive frame-corruption sweep proving
//! the server survives arbitrary garbage.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use grafite_core::registry::{FilterSpec, Registry};
use grafite_server::protocol::{self, verb};
use grafite_server::{serve, Client};
use grafite_store::{FamilySpec, FilterStore, Partitioning, StoreConfig};

fn test_keys(n: u64, seed: u64) -> Vec<u64> {
    (0..n)
        .map(|i| i.wrapping_add(seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1)
        .collect()
}

fn build_store(keys: &[u64], shards: usize) -> FilterStore {
    let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
        .bits_per_key(14.0)
        .max_range(64)
        .partitioning(Partitioning::Range { shards });
    FilterStore::build(&Registry::new(), config, keys).unwrap()
}

fn save_manifest(store: &FilterStore, name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("grafite-e2e-{name}-{}", std::process::id()));
    std::fs::write(&path, store.to_bytes()).unwrap();
    path
}

#[test]
fn served_answers_are_bit_identical_to_the_direct_store() {
    let keys = test_keys(6000, 1);
    let store = build_store(&keys, 5);
    let snap = store.snapshot();
    let handle = serve(Arc::new(build_store(&keys, 5)), "127.0.0.1:0", None).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let queries: Vec<(u64, u64)> = (0..3000u64)
        .map(|i| {
            let a = i.wrapping_mul(0xD134_2543_DE82_EF95) >> 1;
            (a, a.saturating_add(i % 61))
        })
        .collect();
    let direct: Vec<bool> = queries
        .iter()
        .map(|&(a, b)| snap.may_contain_range(a, b))
        .collect();
    // Batch path.
    let batched = client.query_batch(&queries).unwrap();
    assert_eq!(batched, direct, "batch answers diverged");
    // Single path (sampled).
    for (i, &(a, b)) in queries.iter().enumerate().step_by(101) {
        assert_eq!(client.query(a, b).unwrap(), direct[i], "[{a}, {b}]");
    }
    // Present keys can never answer false over the wire.
    for &k in keys.iter().step_by(37) {
        assert!(client.query(k, k).unwrap(), "network FN at {k}");
    }

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn apply_over_the_wire_updates_the_store() {
    let keys = test_keys(2000, 2);
    let handle = serve(Arc::new(build_store(&keys, 3)), "127.0.0.1:0", None).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let fresh = 0xDEAD_BEEF_0000_0042u64;
    assert!(!client.query(fresh, fresh).unwrap());
    let summary = client.apply(&[(true, fresh)]).unwrap();
    assert_eq!((summary.inserted, summary.deleted), (1, 0));
    assert_eq!(summary.version, 1);
    assert!(client.query(fresh, fresh).unwrap());
    let summary = client.apply(&[(false, fresh)]).unwrap();
    assert_eq!(summary.deleted, 1);
    assert!(handle.store().num_keys() <= keys.len());

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn reload_under_concurrent_readers_drops_zero_queries() {
    let old_keys = test_keys(4000, 3);
    let new_keys = test_keys(4000, 900_000);
    let old_store = build_store(&old_keys, 4);
    let new_store = build_store(&new_keys, 4);
    let new_path = save_manifest(&new_store, "reload-new");
    let old_snap = old_store.snapshot();
    let new_snap = new_store.snapshot();

    let handle = serve(Arc::new(old_store), "127.0.0.1:0", None).unwrap();
    let addr = handle.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Four concurrent readers hammer the server across the swap. Every
    // request must succeed, and every answer must match either the old or
    // the new snapshot exactly (the swap is atomic: no blended state).
    let readers: Vec<_> = (0..4u64)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let old_snap = Arc::clone(&old_snap);
            let new_snap = Arc::clone(&new_snap);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut served = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let a = (t * 7919 + i).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1;
                    let b = a.saturating_add(i % 48);
                    let got = client
                        .query(a, b)
                        .unwrap_or_else(|e| panic!("query failed during reload: {e}"));
                    let old_ans = old_snap.may_contain_range(a, b);
                    let new_ans = new_snap.may_contain_range(a, b);
                    assert!(
                        got == old_ans || got == new_ans,
                        "answer matches neither snapshot at [{a}, {b}]"
                    );
                    served += 1;
                    i += 1;
                }
                served
            })
        })
        .collect();

    // Let the readers get going, then swap, then let them keep going.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut admin = Client::connect(addr).unwrap();
    let version = admin.reload(Some(new_path.to_str().unwrap())).unwrap();
    assert_eq!(version, 1);
    std::thread::sleep(std::time::Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers served nothing");

    // After the swap the server answers for the NEW key set.
    for &k in new_keys.iter().step_by(29) {
        assert!(admin.query(k, k).unwrap(), "post-reload FN at {k}");
    }

    let stats = admin.stats_json().unwrap();
    assert!(stats.contains("\"reloads\":1"), "stats: {stats}");
    assert!(stats.contains("\"total_errors\":0"), "stats: {stats}");

    admin.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_file(&new_path);
}

#[test]
fn stats_report_coalescing_and_fp_estimation() {
    let keys = test_keys(3000, 4);
    let handle = serve(Arc::new(build_store(&keys, 4)), "127.0.0.1:0", None).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Querying far outside the key range guarantees some positives are
    // refutable and negatives dominate; querying keys guarantees
    // non-refutable positives.
    for &k in keys.iter().take(64) {
        assert!(client.query(k, k).unwrap());
    }
    let far: Vec<(u64, u64)> = (0..512u64).map(|i| (i * 3, i * 3 + 1)).collect();
    let _ = client.query_batch(&far).unwrap();

    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"schema\":\"grafite-server-stats-v1\""));
    assert!(stats.contains("\"coalescing_factor\":"));
    assert!(stats.contains("\"observed_rate\":"));
    assert!(stats.contains("\"shard_probes\":["));
    let telemetry = handle.telemetry();
    assert!(telemetry.coalescing_factor() >= 1.0);
    assert_eq!(telemetry.total_errors(), 0);

    client.shutdown().unwrap();
    handle.join();
}

/// Raw-socket corruption sweep: every frame prefix/verb/payload mutation
/// must produce a typed ERR response (or a clean disconnect) and must
/// leave the server serving the *next* connection — never a panic, never
/// a hang.
#[test]
fn hostile_frames_never_take_the_server_down() {
    let keys = test_keys(1500, 5);
    let handle = serve(Arc::new(build_store(&keys, 2)), "127.0.0.1:0", None).unwrap();
    let addr = handle.addr();

    let good_query = {
        let mut f = Vec::new();
        protocol::write_frame(&mut f, verb::QUERY, &protocol::encode_query(1, 2)).unwrap();
        f
    };

    let mut hostile: Vec<Vec<u8>> = vec![
        vec![],                              // connect-and-close
        vec![0x01],                          // truncated length prefix
        0u32.to_le_bytes().to_vec(),         // zero-length frame
        u32::MAX.to_le_bytes().to_vec(),     // oversized declared length
        (1u32 << 27).to_le_bytes().to_vec(), // just past MAX_FRAME
        vec![5, 0, 0, 0, verb::QUERY],       // declares 5, sends 1
        vec![1, 0, 0, 0, 0x00],              // verb 0 (unknown)
        vec![1, 0, 0, 0, 0x7E],              // verb 126 (unknown)
        vec![1, 0, 0, 0, verb::ERR],         // a client sending ERR
        vec![1, 0, 0, 0, verb::QUERY],       // query with empty payload
    ];
    // Truncations of a valid frame at every boundary.
    for cut in 0..good_query.len() {
        hostile.push(good_query[..cut].to_vec());
    }
    // Single-byte corruptions of a valid frame.
    for at in 0..good_query.len() {
        let mut mutated = good_query.clone();
        mutated[at] ^= 0xA5;
        hostile.push(mutated);
    }
    // An inverted range under the right verb (encode_query doesn't
    // validate, so build the frame by hand).
    hostile.push({
        let mut f = Vec::new();
        f.extend_from_slice(&17u32.to_le_bytes());
        f.push(verb::QUERY);
        f.extend_from_slice(&9u64.to_le_bytes());
        f.extend_from_slice(&3u64.to_le_bytes());
        f
    });

    for (i, bytes) in hostile.iter().enumerate() {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_millis(150)))
            .unwrap();
        s.write_all(bytes).unwrap();
        // Drain whatever comes back (ERR frame, EOF, or our own timeout);
        // all are acceptable for a hostile sender.
        let mut sink = Vec::new();
        let _ = (&mut s).take(1 << 16).read_to_end(&mut sink);
        drop(s);
        // The server must still answer a well-formed request afterwards.
        let probe = keys[i % keys.len()];
        let mut client = Client::connect(addr)
            .unwrap_or_else(|e| panic!("server unreachable after hostile frame {i}: {e}"));
        assert!(
            client.query(probe, probe).unwrap(),
            "server lost key {probe} after hostile frame {i}"
        );
    }

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join();
}
