//! The erased filter handle the store serves: [`FamilySpec`] names every
//! servable filter family — the paper's eleven registry configurations plus
//! the string-key Grafite of §7 — and [`DynRangeFilter`] wraps one built or
//! loaded instance behind an object-safe face.
//!
//! The split from [`FilterSpec`] exists because the registry table is
//! deliberately fixed to the paper's eleven-way comparison, while the
//! serving layer must also host families outside that comparison (today
//! [`StringGrafite`], spec id 32). A [`FamilySpec`] resolves construction
//! and loading either through the [`Registry`] or through the family's own
//! typed [`BuildableFilter`]/[`PersistentFilter`] implementations.

use std::io;

use grafite_core::persist::{spec_id, Header};
use grafite_core::registry::{FilterSpec, Registry};
use grafite_core::{
    BuildableFilter, FilterConfig, FilterError, PersistentFilter, RangeFilter, StringGrafite,
};

/// A filter family the serving layer can build, persist, and revive: one of
/// the paper's eleven registry configurations, or a workspace family outside
/// that comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FamilySpec {
    /// One of the eleven [`FilterSpec`] configurations, resolved through the
    /// [`Registry`] passed at build/open time.
    Registry(FilterSpec),
    /// Grafite over embedded string keys (paper §7; spec id 32), resolved
    /// through its typed implementation — it has no registry row.
    StringGrafite,
}

impl FamilySpec {
    /// Every servable family: the eleven registry specs plus
    /// [`FamilySpec::StringGrafite`].
    pub const ALL: [FamilySpec; FilterSpec::COUNT + 1] = [
        FamilySpec::Registry(FilterSpec::Grafite),
        FamilySpec::Registry(FilterSpec::Bucketing),
        FamilySpec::Registry(FilterSpec::Snarf),
        FamilySpec::Registry(FilterSpec::SurfReal),
        FamilySpec::Registry(FilterSpec::SurfHash),
        FamilySpec::Registry(FilterSpec::Proteus),
        FamilySpec::Registry(FilterSpec::Rosetta),
        FamilySpec::Registry(FilterSpec::REncoder),
        FamilySpec::Registry(FilterSpec::REncoderSS),
        FamilySpec::Registry(FilterSpec::REncoderSE),
        FamilySpec::Registry(FilterSpec::TrivialBloom),
        FamilySpec::StringGrafite,
    ];

    /// The stable on-disk spec id (see [`grafite_core::persist::spec_id`])
    /// this family writes into blob headers and the store manifest.
    pub fn spec_id(&self) -> u32 {
        match self {
            FamilySpec::Registry(spec) => spec.spec_id(),
            FamilySpec::StringGrafite => spec_id::STRING_GRAFITE,
        }
    }

    /// Inverse of [`FamilySpec::spec_id`], for manifest and header dispatch.
    pub fn from_spec_id(id: u32) -> Option<FamilySpec> {
        if id == spec_id::STRING_GRAFITE {
            return Some(FamilySpec::StringGrafite);
        }
        FilterSpec::from_spec_id(id).map(FamilySpec::Registry)
    }

    /// Display name (the registry label, or the family's own).
    pub fn label(&self) -> &'static str {
        match self {
            FamilySpec::Registry(spec) => spec.label(),
            FamilySpec::StringGrafite => "Grafite-String",
        }
    }

    /// Builds one filter of this family from the shared config, boxed into
    /// an erased [`DynRangeFilter`] handle.
    pub fn build(
        &self,
        registry: &Registry,
        cfg: &FilterConfig<'_>,
    ) -> Result<DynRangeFilter, FilterError> {
        let inner = match self {
            FamilySpec::Registry(spec) => registry.build(*spec, cfg)?,
            FamilySpec::StringGrafite => {
                Box::new(<StringGrafite as BuildableFilter>::build(cfg)?) as _
            }
        };
        Ok(DynRangeFilter {
            family: *self,
            inner,
        })
    }

    /// Revives one serialized filter of *this* family from a blob in the
    /// [`grafite_core::persist`] format. A blob of a different family is a
    /// typed [`FilterError::SpecMismatch`], never a misload.
    pub fn load(&self, registry: &Registry, bytes: &[u8]) -> Result<DynRangeFilter, FilterError> {
        let header = Header::peek(bytes)?;
        if header.spec_id != self.spec_id() {
            return Err(FilterError::SpecMismatch(header.spec_id));
        }
        let inner = match self {
            FamilySpec::Registry(_) => registry.load(bytes)?,
            FamilySpec::StringGrafite => Box::new(StringGrafite::deserialize(bytes)?) as _,
        };
        Ok(DynRangeFilter {
            family: *self,
            inner,
        })
    }
}

/// An erased, thread-shareable handle to one built (or loaded) filter of
/// any servable family.
///
/// This is the value a [`FilterStore`](crate::FilterStore) shard holds: it
/// answers the full [`RangeFilter`] contract — batched queries forward to
/// the concrete filter, so family specialisations like Grafite's one-pass
/// sorted-probe batch survive the erasure — and it serializes through the
/// wrapped [`PersistentFilter`], so a shard blob is exactly the filter's own
/// versioned flat-byte format.
pub struct DynRangeFilter {
    family: FamilySpec,
    inner: Box<dyn PersistentFilter>,
}

impl std::fmt::Debug for DynRangeFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynRangeFilter")
            .field("family", &self.family)
            .field("num_keys", &self.inner.num_keys())
            .finish_non_exhaustive()
    }
}

impl DynRangeFilter {
    /// Builds a filter of `family` from the shared config (equivalent to
    /// [`FamilySpec::build`]).
    pub fn build(
        registry: &Registry,
        family: FamilySpec,
        cfg: &FilterConfig<'_>,
    ) -> Result<Self, FilterError> {
        family.build(registry, cfg)
    }

    /// Revives a serialized filter of any servable family: the blob header
    /// names the family, so no spec needs to be supplied.
    pub fn load(registry: &Registry, bytes: &[u8]) -> Result<Self, FilterError> {
        let header = Header::peek(bytes)?;
        let family = FamilySpec::from_spec_id(header.spec_id)
            .ok_or(FilterError::UnknownSpecId(header.spec_id))?;
        family.load(registry, bytes)
    }

    /// Wraps a pre-boxed filter under an explicit family — the mapped load
    /// path's entry point, where the concrete type (e.g. a
    /// `GrafiteFilter<MappedSource>` or a pass-all placeholder) is chosen
    /// per shard at materialization time.
    pub(crate) fn from_boxed(family: FamilySpec, inner: Box<dyn PersistentFilter>) -> Self {
        Self { family, inner }
    }

    /// Wraps an already-built typed filter. Fails with
    /// [`FilterError::UnknownSpecId`] if the filter's spec id names no
    /// servable family (a custom family outside [`FamilySpec::ALL`]).
    pub fn wrap<F: PersistentFilter + 'static>(filter: F) -> Result<Self, FilterError> {
        let family = FamilySpec::from_spec_id(filter.spec_id())
            .ok_or(FilterError::UnknownSpecId(filter.spec_id()))?;
        Ok(Self {
            family,
            inner: Box::new(filter),
        })
    }

    /// Which family this handle holds.
    pub fn family(&self) -> FamilySpec {
        self.family
    }

    /// The wrapped filter, for protocols the erased handle does not re-export.
    pub fn as_persistent(&self) -> &dyn PersistentFilter {
        self.inner.as_ref()
    }

    /// Serializes the wrapped filter (header + payload) into `out`,
    /// returning the bytes written.
    pub fn serialize_into(&self, out: &mut dyn io::Write) -> Result<usize, FilterError> {
        self.inner.serialize_into(out)
    }

    /// Serializes into a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.inner.to_bytes()
    }

    /// The wrapped filter's measured serialized footprint in bits.
    pub fn serialized_bits(&self) -> usize {
        self.inner.serialized_bits()
    }
}

impl RangeFilter for DynRangeFilter {
    #[inline]
    fn may_contain_range(&self, a: u64, b: u64) -> bool {
        self.inner.may_contain_range(a, b)
    }

    /// Forwards to the wrapped filter so its batch specialisation (e.g.
    /// Grafite's one-pass sorted probe) is reused through the erasure.
    fn may_contain_ranges(&self, queries: &[(u64, u64)], out: &mut Vec<bool>) {
        self.inner.may_contain_ranges(queries, out);
    }

    fn size_in_bits(&self) -> usize {
        self.inner.size_in_bits()
    }

    fn num_keys(&self) -> usize {
        self.inner.num_keys()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_spec_ids_roundtrip() {
        for family in FamilySpec::ALL {
            assert_eq!(FamilySpec::from_spec_id(family.spec_id()), Some(family));
        }
        assert_eq!(FamilySpec::StringGrafite.spec_id(), 32);
        assert_eq!(FamilySpec::from_spec_id(0), None);
        assert_eq!(FamilySpec::from_spec_id(999), None);
    }

    #[test]
    fn build_load_and_wrap_core_families() {
        let keys: Vec<u64> = (0..800u64).map(|i| i * 999_983).collect();
        let cfg = FilterConfig::new(&keys).bits_per_key(14.0);
        let registry = Registry::new();
        for family in [
            FamilySpec::Registry(FilterSpec::Grafite),
            FamilySpec::Registry(FilterSpec::Bucketing),
            FamilySpec::StringGrafite,
        ] {
            let built = family.build(&registry, &cfg).unwrap();
            assert_eq!(built.family(), family);
            assert_eq!(built.num_keys(), keys.len());
            let blob = built.to_bytes();
            let loaded = DynRangeFilter::load(&registry, &blob).unwrap();
            assert_eq!(loaded.family(), family);
            for &k in keys.iter().step_by(29) {
                assert!(loaded.may_contain(k), "{} lost {k}", family.label());
            }
        }
        // wrap() recovers the family from the filter's own spec id.
        let typed = StringGrafite::build(&cfg).unwrap();
        let wrapped = DynRangeFilter::wrap(typed).unwrap();
        assert_eq!(wrapped.family(), FamilySpec::StringGrafite);
    }

    #[test]
    fn load_rejects_cross_family_blobs() {
        let keys: Vec<u64> = (0..300u64).map(|i| i * 7919).collect();
        let cfg = FilterConfig::new(&keys).bits_per_key(14.0);
        let registry = Registry::new();
        let grafite = FamilySpec::Registry(FilterSpec::Grafite)
            .build(&registry, &cfg)
            .unwrap();
        let blob = grafite.to_bytes();
        assert_eq!(
            FamilySpec::StringGrafite.load(&registry, &blob).err(),
            Some(FilterError::SpecMismatch(spec_id::GRAFITE))
        );
    }
}
