//! # grafite-store — the serving layer over every filter family
//!
//! The paper evaluates its filters as static build-once structures; this
//! crate is the lifecycle API a production deployment needs on top:
//! **build → serve → update → reload**.
//!
//! * [`DynRangeFilter`] — an erased, thread-shareable handle to one filter
//!   of any servable [`FamilySpec`] (the paper's eleven registry
//!   configurations plus [`StringGrafite`](grafite_core::StringGrafite)),
//!   built from a [`FilterConfig`](grafite_core::FilterConfig) through the
//!   [`Registry`](grafite_core::Registry) or revived from a serialized
//!   blob.
//! * [`FilterStore`] — hash-or-range partitions the key space into N
//!   shards, each holding its own filter, and serves queries from
//!   immutable [`Snapshot`]s behind `Arc`: unboundedly many reader threads
//!   query lock-free while one writer applies [`Update`] batches by
//!   rebuilding only the dirty shards and atomically swapping snapshots.
//! * [`manifest`] — the versioned multi-shard on-disk format
//!   ([`FilterStore::save_to`] / [`FilterStore::open`]): per-shard blobs in
//!   the `grafite_core::persist` flat-byte format plus routing metadata,
//!   so a store built offline revives on another machine with one call.
//! * [`mapped`] — the lazy open path ([`FilterStore::open_mapped`] /
//!   [`FilterStore::reload_mapped`]): the manifest file is *indexed* in
//!   `O(shards)` small reads instead of parsed whole, and each shard
//!   materializes from disk on first touch — Grafite shards zero-copy over
//!   a shared word buffer — so a multi-gigabyte store cold-starts in
//!   milliseconds and hot-reloads without dropping in-flight queries.
//! * [`StoreStats`] — always-on operational counters (lazy loads, load
//!   failures, reloads) the serving front end scrapes into its telemetry.
//!
//! # Example
//!
//! ```
//! use grafite_core::registry::{FilterSpec, Registry};
//! use grafite_store::{FamilySpec, FilterStore, Partitioning, StoreConfig, Update};
//!
//! let keys: Vec<u64> = (0..4000u64).map(|i| i * 99_991).collect();
//! let registry = Registry::new(); // grafite_filters::standard_registry() for all 11
//! let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
//!     .bits_per_key(14.0)
//!     .partitioning(Partitioning::Range { shards: 4 });
//! let store = FilterStore::build(&registry, config, &keys).unwrap();
//!
//! // Serve: snapshots are immutable and lock-free to query.
//! let snap = store.snapshot();
//! assert!(snap.may_contain(99_991));
//!
//! // Update: only the dirty shard rebuilds; the swap is atomic.
//! let report = store.apply(&[Update::Insert(7), Update::Delete(99_991)]).unwrap();
//! assert_eq!(report.dirty_shards, 1);
//! assert!(store.may_contain(7));
//! assert!(snap.may_contain(99_991)); // the old snapshot never changes
//!
//! // Reload: the manifest round-trips the whole store.
//! let bytes = store.to_bytes();
//! let reopened = FilterStore::open(&registry, &bytes).unwrap();
//! assert!(reopened.may_contain(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod family;
pub mod manifest;
pub mod mapped;
pub mod stats;
pub mod store;

pub use family::{DynRangeFilter, FamilySpec};
pub use manifest::{MANIFEST_HEADER_WORDS, STORE_FORMAT_VERSION, STORE_MAGIC};
pub use mapped::MappedManifest;
pub use stats::{StoreStats, BUILD_HIST_BUCKETS};
pub use store::{
    ApplyReport, FilterStore, Partitioning, Routing, Shard, Snapshot, StoreConfig, Update,
};
