//! The versioned multi-shard manifest a [`FilterStore`](crate::FilterStore)
//! saves to and opens from: routing metadata plus one per-shard filter blob
//! in the [`grafite_core::persist`] flat-byte format, framed and
//! checksummed the same way — so a store built offline revives on another
//! machine with one call.
//!
//! # Manifest layout
//!
//! A manifest is a sequence of little-endian `u64` words: a fixed ten-word
//! header, then a body.
//!
//! | word | contents |
//! |---|---|
//! | 0 | [`STORE_MAGIC`] (`b"GRAFSHRD"` as a little-endian word) |
//! | 1 | low 32 bits: family spec id; high 32 bits: [`STORE_FORMAT_VERSION`] |
//! | 2 | routing kind (0 = range, 1 = hash) |
//! | 3 | shard count `S` |
//! | 4 | total distinct keys |
//! | 5 | `bits_per_key` as `f64::to_bits` |
//! | 6 | `max_range` |
//! | 7 | seed |
//! | 8 | body length in words |
//! | 9 | checksum ([`checksum_words`] over words 1–8 and the body words) |
//!
//! The body is, in order:
//!
//! * the **metadata checksum**: [`checksum_words`] over header words 1–8,
//!   the routing words, the sample words, and every per-shard framing word
//!   (key count, keys checksum, blob length) — exactly the words the lazy
//!   scan of [`crate::mapped`] reads, so a scan that never touches key or
//!   blob bytes still authenticates everything it routes by;
//! * routing words — range routing: `S` interval-start keys (word 2 names
//!   the kind; hash routing has no body words, its seed is header word 7);
//! * the tuning sample: a pair count followed by `lo, hi` words per pair;
//! * per shard: the key count, the sorted keys, a [`checksum_words`] over
//!   the keys, the shard blob's byte length, and the blob itself
//!   ([`grafite_core::persist`] header included) zero-padded to a word
//!   boundary.
//!
//! Shard keys ride in the manifest because updates rebuild dirty shards
//! from them; each shard blob additionally carries its own header and
//! checksum, so a manifest is two nested layers of the same threat model
//! as [`grafite_core::persist`]: accidental damage surfaces as typed
//! [`FilterError`]s, while deliberate forgery requires provenance checks
//! upstream.

use std::io;
use std::sync::Arc;

use grafite_core::persist::checksum_words;
use grafite_core::registry::Registry;
use grafite_core::{FilterError, RangeFilter};
use grafite_succinct::io::{le_word, WordCursor, WordSource, WordWriter};

use crate::family::FamilySpec;
use crate::store::{Partitioning, Routing, Shard, Snapshot, StoreConfig};

/// `b"GRAFSHRD"` read as a little-endian word: the first 8 bytes of every
/// store manifest (distinct from the per-filter `GRAFILT\0` magic, so a
/// manifest handed to a filter loader — or vice versa — fails typed).
pub const STORE_MAGIC: u64 = u64::from_le_bytes(*b"GRAFSHRD");

/// The manifest format version this build writes and reads. Bumped on any
/// incompatible change, exactly like
/// [`grafite_core::persist::FORMAT_VERSION`] (the two version independently:
/// a manifest change does not invalidate filter blobs).
pub const STORE_FORMAT_VERSION: u32 = 2;

/// Header length in words.
pub const MANIFEST_HEADER_WORDS: usize = 10;

pub(crate) const ROUTING_RANGE: u64 = 0;
pub(crate) const ROUTING_HASH: u64 = 1;

/// Serializes `snapshot` under `config` into `out`. Returns bytes written.
pub fn write(
    config: &StoreConfig,
    snapshot: &Snapshot,
    out: &mut dyn io::Write,
) -> Result<usize, FilterError> {
    // `framing` collects every word the lazy scan reads (routing, sample,
    // per-shard record framing); the metadata checksum over them — plus
    // header words 1–8 — is the scan's integrity anchor.
    let mut rest = Vec::new();
    let mut framing: Vec<u64> = Vec::new();
    {
        let mut w = WordWriter::new(&mut rest);
        match snapshot.routing() {
            Routing::Range { starts } => {
                w.words(starts)?;
                framing.extend_from_slice(starts);
            }
            Routing::Hash { .. } => {}
        }
        w.word(config.sample.len() as u64)?;
        framing.push(config.sample.len() as u64);
        for &(lo, hi) in &config.sample {
            w.word(lo)?;
            w.word(hi)?;
            framing.push(lo);
            framing.push(hi);
        }
        for shard in snapshot.shards() {
            let keys = shard.keys();
            w.prefixed(keys)?;
            let keys_checksum = checksum_words(keys.iter().copied());
            w.word(keys_checksum)?;
            let blob = shard.filter().to_bytes();
            w.word(blob.len() as u64)?;
            w.bytes_padded(&blob)?;
            framing.push(keys.len() as u64);
            framing.push(keys_checksum);
            framing.push(blob.len() as u64);
        }
    }
    debug_assert_eq!(rest.len() % 8, 0);
    let (routing_kind, n_shards) = match snapshot.routing() {
        Routing::Range { starts } => (ROUTING_RANGE, starts.len() as u64),
        Routing::Hash { shards, .. } => (ROUTING_HASH, *shards as u64),
    };
    let body_words = ((rest.len() / 8).saturating_add(1)) as u64; // + the metadata checksum word
    let header: [u64; MANIFEST_HEADER_WORDS - 1] = [
        STORE_MAGIC,
        ((STORE_FORMAT_VERSION as u64) << 32) | config.family.spec_id() as u64,
        routing_kind,
        n_shards,
        snapshot.num_keys() as u64,
        config.bits_per_key.to_bits(),
        config.max_range,
        config.seed,
        body_words,
    ];
    let meta_checksum = checksum_words(
        header
            .iter()
            .skip(1)
            .copied()
            .chain(framing.iter().copied()),
    );
    let checksum = checksum_words(
        header
            .iter()
            .skip(1)
            .copied()
            .chain([meta_checksum])
            .chain(rest.chunks_exact(8).map(le_word)),
    );
    for w in header.iter().copied().chain([checksum, meta_checksum]) {
        out.write_all(&w.to_le_bytes())?;
    }
    out.write_all(&rest)?;
    Ok((MANIFEST_HEADER_WORDS.saturating_mul(8))
        .saturating_add(8)
        .saturating_add(rest.len()))
}

/// The validated ten-word manifest header — everything the open paths
/// (eager [`read`] and the lazy mapped scan of [`crate::mapped`]) agree on
/// before touching the body.
pub(crate) struct ManifestHead {
    /// The shard filter family.
    pub(crate) family: FamilySpec,
    /// Routing kind word ([`ROUTING_RANGE`] / [`ROUTING_HASH`], already
    /// range-checked).
    pub(crate) routing_kind: u64,
    /// Shard count (at least 1).
    pub(crate) n_shards: usize,
    /// Total distinct keys across shards, per the header.
    pub(crate) total_keys: u64,
    /// Per-shard space budget.
    pub(crate) bits_per_key: f64,
    /// The workload's max range size.
    pub(crate) max_range: u64,
    /// Seed for filter components and hash routing.
    pub(crate) seed: u64,
    /// Body length in words.
    pub(crate) body_words: u64,
    /// Checksum over header words 1–8 and the body words.
    pub(crate) checksum: u64,
}

impl ManifestHead {
    /// Validates the fixed header fields: magic, version, family, shard
    /// count, budget, and routing kind. Body extent and checksum are the
    /// caller's job (the eager path checks both; the mapped path defers the
    /// body checksum to per-shard validation).
    pub(crate) fn validate(head: [u64; MANIFEST_HEADER_WORDS]) -> Result<Self, FilterError> {
        let [magic, spec_version, routing_kind, n_shards_w, total_keys, bits_w, max_range, seed, body_words, checksum] =
            head;
        if magic != STORE_MAGIC {
            return Err(FilterError::BadMagic(magic));
        }
        let version = (spec_version >> 32) as u32;
        if version != STORE_FORMAT_VERSION {
            return Err(FilterError::UnsupportedFormatVersion {
                found: version,
                supported: STORE_FORMAT_VERSION,
            });
        }
        let spec_id = spec_version as u32;
        let family =
            FamilySpec::from_spec_id(spec_id).ok_or(FilterError::UnknownSpecId(spec_id))?;
        let n_shards = usize::try_from(n_shards_w)
            .ok()
            .filter(|&s| s >= 1)
            .ok_or_else(|| FilterError::corrupt("shard count out of range"))?;
        let bits_per_key = f64::from_bits(bits_w);
        if !(bits_per_key.is_finite() && bits_per_key > 0.0) {
            return Err(FilterError::corrupt(
                "store bits-per-key not a positive float",
            ));
        }
        if !matches!(routing_kind, ROUTING_RANGE | ROUTING_HASH) {
            return Err(FilterError::corrupt("unknown routing kind"));
        }
        Ok(Self {
            family,
            routing_kind,
            n_shards,
            total_keys,
            bits_per_key,
            max_range,
            seed,
            body_words,
            checksum,
        })
    }

    /// The routing table and partitioning named by the header plus the
    /// routing body words (range-interval starts; empty for hash routing).
    pub(crate) fn routing(&self, starts: Vec<u64>) -> Result<(Routing, Partitioning), FilterError> {
        match self.routing_kind {
            ROUTING_RANGE => {
                if starts.first() != Some(&0)
                    || !starts.windows(2).all(|w| matches!(w, [a, b] if a < b))
                {
                    return Err(FilterError::corrupt(
                        "range routing starts not strictly increasing from 0",
                    ));
                }
                Ok((
                    Routing::Range { starts },
                    Partitioning::Range {
                        shards: self.n_shards,
                    },
                ))
            }
            _ => {
                let shards = u32::try_from(self.n_shards)
                    .map_err(|_| FilterError::corrupt("hash shard count above u32"))?;
                Ok((
                    Routing::Hash {
                        shards,
                        seed: self.seed,
                    },
                    Partitioning::Hash {
                        shards: self.n_shards,
                    },
                ))
            }
        }
    }

    /// The reconstructed [`StoreConfig`] (given the body's tuning sample).
    pub(crate) fn config(
        &self,
        partitioning: Partitioning,
        sample: Vec<(u64, u64)>,
    ) -> StoreConfig {
        StoreConfig::new(self.family)
            .bits_per_key(self.bits_per_key)
            .max_range(self.max_range)
            .seed(self.seed)
            .sample(sample)
            .partitioning(partitioning)
    }
}

/// Parses and validates a manifest, loading every shard filter through
/// `registry` (or the family's typed loader for non-registry families).
/// Returns the reconstructed configuration, routing, and shards.
#[allow(clippy::type_complexity)]
pub fn read(
    registry: &Registry,
    bytes: &[u8],
) -> Result<(StoreConfig, Routing, Vec<Arc<Shard>>), FilterError> {
    let header_bytes = MANIFEST_HEADER_WORDS * 8;
    if bytes.len() < header_bytes {
        return Err(FilterError::TruncatedBuffer {
            needed: header_bytes,
            have: bytes.len(),
        });
    }
    let mut raw_head = [0u64; MANIFEST_HEADER_WORDS];
    for (w, c) in raw_head.iter_mut().zip(bytes.chunks_exact(8)) {
        *w = le_word(c);
    }
    let head = ManifestHead::validate(raw_head)?;
    let n_shards = head.n_shards;
    let total_keys = head.total_keys;
    let body_end = usize::try_from(head.body_words)
        .ok()
        .and_then(|bw| bw.checked_add(MANIFEST_HEADER_WORDS))
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| FilterError::corrupt("manifest body length overflows usize"))?;
    let body_bytes = bytes
        .get(header_bytes..body_end)
        .ok_or(FilterError::TruncatedBuffer {
            needed: body_end,
            have: bytes.len(),
        })?;
    let body: Vec<u64> = body_bytes.chunks_exact(8).map(le_word).collect();
    let actual = checksum_words(
        raw_head
            .iter()
            .skip(1)
            .take(MANIFEST_HEADER_WORDS - 2)
            .copied()
            .chain(body.iter().copied()),
    );
    if actual != head.checksum {
        return Err(FilterError::ChecksumMismatch {
            expected: head.checksum,
            actual,
        });
    }

    let mut cursor = WordCursor::new(&body);
    // The metadata checksum exists for the lazy scan (which never sees the
    // whole body); the full-body checksum above already covers every word
    // it covers, so the eager path just steps over it.
    let _meta_checksum = cursor.word()?;
    let routing_starts = match head.routing_kind {
        ROUTING_RANGE => cursor.take(n_shards)?.to_vec(),
        _ => Vec::new(),
    };
    let (routing, partitioning) = head.routing(routing_starts)?;
    let sample_len = cursor.length()?;
    let mut sample = Vec::with_capacity(sample_len.min(1 << 20));
    for _ in 0..sample_len {
        let lo = cursor.word()?;
        let hi = cursor.word()?;
        sample.push((lo, hi));
    }
    let config = head.config(partitioning, sample);

    // `n_shards` is attacker-controlled until the per-shard reads below
    // bound it against the body length; clamp the capacity hint so a
    // forged count cannot force a huge up-front allocation (range routing
    // already fails fast at the `cursor.take(n_shards)` above, but hash
    // routing reaches here unchecked).
    let mut shards = Vec::with_capacity(n_shards.min(1 << 20));
    let mut keys_total = 0u64;
    for s in 0..n_shards {
        let n_keys = cursor.length()?;
        let keys: Vec<u64> = cursor.take(n_keys)?.to_vec();
        if !keys.windows(2).all(|w| matches!(w, [a, b] if a < b)) {
            return Err(FilterError::corrupt("shard keys not strictly increasing"));
        }
        if keys.iter().any(|&k| routing.shard_of(k) != s) {
            return Err(FilterError::corrupt(
                "shard key routes to a different shard",
            ));
        }
        let keys_checksum = cursor.word()?;
        let keys_actual = checksum_words(keys.iter().copied());
        if keys_actual != keys_checksum {
            return Err(FilterError::ChecksumMismatch {
                expected: keys_checksum,
                actual: keys_actual,
            });
        }
        keys_total = keys_total.saturating_add(keys.len() as u64);
        let blob_len = cursor.length()?;
        // The blob sits word-aligned inside `bytes`; advance the cursor
        // over its padded words (bounds-checking in the process) and hand
        // the loader a sub-slice of the original buffer rather than a
        // `take_bytes` copy.
        let blob = cursor
            .position()
            .checked_mul(8)
            .and_then(|off| off.checked_add(header_bytes))
            .and_then(|blob_start| {
                let blob_end = blob_start.checked_add(blob_len)?;
                bytes.get(blob_start..blob_end)
            })
            .ok_or(FilterError::corrupt("shard blob extent exceeds manifest"))?;
        let _ = cursor.take(blob_len.div_ceil(8))?;
        let filter = config.family.load(registry, blob)?;
        if filter.num_keys() != keys.len() {
            return Err(FilterError::corrupt(
                "shard blob key count differs from manifest",
            ));
        }
        shards.push(Arc::new(Shard::from_parts(keys, filter)));
    }
    if keys_total != total_keys {
        return Err(FilterError::corrupt(
            "total key count differs from shard sum",
        ));
    }
    Ok((config, routing, shards))
}
