//! The lazy, file-backed open path of the store: a [`MappedManifest`]
//! indexes a saved manifest *in place* — one `O(shards)` pass of small
//! header reads and seeks, never touching key or blob bytes — so a
//! multi-gigabyte store cold-starts in milliseconds. Shards materialize on
//! first touch: their keys and filter blob are read from the recorded
//! extents, validated, and (for Grafite) parsed zero-copy over one shared
//! word buffer via `GrafiteFilter<MappedSource>`.
//!
//! This crate forbids `unsafe`, so "mapped" means demand-paged through
//! ordinary positioned reads rather than a raw `mmap(2)`: the operating
//! system's page cache still backs the file, so concurrently serving
//! processes share pages the usual way, and nothing is read twice. On
//! unix the materialization path issues `pread(2)`-style offset reads
//! against a shared `&File` — no seek cursor, no lock — so shards
//! faulting in concurrently never contend on the handle.
//!
//! # Validation model
//!
//! The eager [`manifest::read`](crate::manifest::read) path checksums the
//! whole body before trusting anything. The mapped path deliberately skips
//! that full-body pass (it would defeat lazy loading) and splits the same
//! guarantees in two:
//!
//! * **Scan time**: the manifest's *metadata checksum* authenticates every
//!   word the scan routes by — header fields, routing starts, the tuning
//!   sample, and each shard's framing words (key count, keys checksum,
//!   blob length). This matters for correctness, not just hygiene: routing
//!   damage re-routes keys to healthy shards that never stored them, a
//!   false negative no per-shard check could ever catch, so it must fail
//!   *before* the store opens.
//! * **Materialization time**, per shard: the keys verify against the
//!   shard's (scan-authenticated) keys checksum and are re-checked for
//!   ordering and routing membership; the filter blob carries its own
//!   header checksum (verified by its loader); and the blob's key count
//!   must agree with the manifest's. A shard that fails any of these
//!   **fails open**: it serves a pass-all placeholder — the
//!   no-false-negative contract survives, queries degrade to `true` on
//!   that shard — and the failure is recorded in the store's
//!   [`StoreStats`] and the shard's
//!   [`load_error`](crate::Shard::load_error).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;
#[cfg(not(unix))]
use std::sync::Mutex;

use grafite_core::persist::{checksum_words, spec_id, Header};
use grafite_core::registry::Registry;
use grafite_core::{FilterError, MappedGrafiteFilter, PersistentFilter, RangeFilter};
use grafite_succinct::io::{le_word, MappedSource, WordSource, WordWriter};

use crate::family::{DynRangeFilter, FamilySpec};
use crate::manifest::{ManifestHead, MANIFEST_HEADER_WORDS, ROUTING_RANGE};
use crate::stats::StoreStats;
use crate::store::{LoadedShard, Routing, StoreConfig};

/// Where one shard's records live inside the manifest file, in absolute
/// byte offsets. Recorded by the scan, consumed at materialization.
#[derive(Clone, Copy, Debug)]
struct ShardExtent {
    /// Number of keys in the shard, per the manifest.
    n_keys: usize,
    /// Byte offset of the first key word.
    keys_start: u64,
    /// Expected [`checksum_words`] over the shard's keys, per the manifest.
    keys_checksum: u64,
    /// Byte offset of the shard's filter blob.
    blob_start: u64,
    /// Blob length in bytes (unpadded).
    blob_len: usize,
}

/// A poisoned file lock surfaces as a typed i/o failure, never a panic.
/// (Only the non-unix fallback path holds a lock at all.)
#[cfg(not(unix))]
fn lock_poisoned<T>(_: T) -> FilterError {
    FilterError::Io {
        kind: std::io::ErrorKind::Other,
        source: None,
    }
}

/// Reads `len` bytes at absolute offset `pos`.
fn read_bytes_at(file: &mut File, pos: u64, len: usize) -> Result<Vec<u8>, FilterError> {
    file.seek(SeekFrom::Start(pos))?;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

/// A read-only file handle answering positioned reads without a shared
/// cursor. On unix this is `pread(2)` via [`std::os::unix::fs::FileExt`]:
/// each call carries its own offset, takes `&File`, and never touches the
/// seek position, so concurrent cold-shard materializations proceed with
/// **no lock at all**. Elsewhere the handle falls back to the seed's
/// `Mutex<File>` + seek discipline (the cursor is shared process state).
struct PositionedFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl PositionedFile {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self {
                file: Mutex::new(file),
            }
        }
    }

    /// Reads `len` bytes at absolute offset `pos` — lock-free on unix.
    fn bytes_at(&self, pos: u64, len: usize) -> Result<Vec<u8>, FilterError> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            let mut buf = vec![0u8; len];
            self.file.read_exact_at(&mut buf, pos)?;
            Ok(buf)
        }
        #[cfg(not(unix))]
        {
            let mut file = self.file.lock().map_err(lock_poisoned)?;
            read_bytes_at(&mut file, pos, len)
        }
    }

    /// Reads `n` little-endian words at absolute offset `pos`.
    fn words_at(&self, pos: u64, n: usize) -> Result<Vec<u64>, FilterError> {
        let len = n
            .checked_mul(8)
            .ok_or(FilterError::corrupt("word read length overflows usize"))?;
        Ok(self
            .bytes_at(pos, len)?
            .chunks_exact(8)
            .map(le_word)
            .collect())
    }
}

/// Reads `n` little-endian words at absolute offset `pos`.
fn read_words_at(file: &mut File, pos: u64, n: usize) -> Result<Vec<u64>, FilterError> {
    let len = n
        .checked_mul(8)
        .ok_or(FilterError::corrupt("word read length overflows usize"))?;
    Ok(read_bytes_at(file, pos, len)?
        .chunks_exact(8)
        .map(le_word)
        .collect())
}

/// Reads one word at absolute offset `pos`.
fn read_word_at(file: &mut File, pos: u64) -> Result<u64, FilterError> {
    let bytes = read_bytes_at(file, pos, 8)?;
    Ok(le_word(&bytes))
}

/// A scanned-but-unread store manifest: header, routing, tuning sample,
/// and the byte extent of every shard's keys and blob — everything needed
/// to serve the store, with the expensive bytes still on disk.
pub struct MappedManifest {
    path: PathBuf,
    file: PositionedFile,
    registry: Registry,
    config: StoreConfig,
    routing: Routing,
    extents: Vec<ShardExtent>,
}

impl std::fmt::Debug for MappedManifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedManifest")
            .field("path", &self.path)
            .field("family", &self.config.family)
            .field("num_shards", &self.extents.len())
            .finish_non_exhaustive()
    }
}

impl MappedManifest {
    /// Indexes the manifest at `path`: validates the ten-word header, reads
    /// the routing table and tuning sample, and records each shard's key
    /// and blob extents by seeking — `O(shards)` small reads, independent
    /// of the store's total size. The full-body checksum is **not**
    /// verified here (see the module docs' validation model).
    pub fn scan(registry: &Registry, path: &Path) -> Result<Self, FilterError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let head_vec = read_words_at(&mut file, 0, MANIFEST_HEADER_WORDS)?;
        let mut raw = [0u64; MANIFEST_HEADER_WORDS];
        for (dst, src) in raw.iter_mut().zip(head_vec.iter()) {
            *dst = *src;
        }
        let head = ManifestHead::validate(raw)?;
        let header_bytes = (MANIFEST_HEADER_WORDS as u64).saturating_mul(8);
        let body_end = head
            .body_words
            .checked_mul(8)
            .and_then(|b| b.checked_add(header_bytes))
            .filter(|&end| end <= file_len)
            .ok_or(FilterError::TruncatedBuffer {
                needed: usize::try_from(head.body_words.saturating_mul(8)).unwrap_or(usize::MAX),
                have: usize::try_from(file_len).unwrap_or(usize::MAX),
            })?;
        let mut pos = header_bytes;
        // Claims `bytes` from the body at the running position, bounds-
        // checked against the declared body extent; returns the start.
        let claim = |pos: &mut u64, bytes: u64| -> Result<u64, FilterError> {
            let start = *pos;
            let end = start
                .checked_add(bytes)
                .filter(|&e| e <= body_end)
                .ok_or(FilterError::corrupt("manifest record exceeds body"))?;
            *pos = end;
            Ok(start)
        };

        // Everything the scan routes by — header fields, routing starts,
        // sample, per-shard framing words — must authenticate against the
        // metadata checksum, or a flipped routing byte could silently send
        // keys to a healthy shard that never stored them (a false
        // negative no per-shard check can catch). `framing` accumulates
        // those words as they are read; the checksum is verified once the
        // walk completes.
        let mut framing: Vec<u64> = raw.iter().skip(1).take(8).copied().collect();
        let at = claim(&mut pos, 8)?;
        let meta_expected = read_word_at(&mut file, at)?;

        let starts = if head.routing_kind == ROUTING_RANGE {
            let bytes = (head.n_shards as u64)
                .checked_mul(8)
                .ok_or(FilterError::corrupt("routing table length overflows"))?;
            let at = claim(&mut pos, bytes)?;
            read_words_at(&mut file, at, head.n_shards)?
        } else {
            Vec::new()
        };
        framing.extend_from_slice(&starts);
        let (routing, partitioning) = head.routing(starts)?;

        let at = claim(&mut pos, 8)?;
        let sample_len = usize::try_from(read_word_at(&mut file, at)?)
            .map_err(|_| FilterError::corrupt("sample length overflows usize"))?;
        framing.push(sample_len as u64);
        let sample_words = sample_len
            .checked_mul(2)
            .ok_or(FilterError::corrupt("sample length overflows usize"))?;
        let sample_bytes = (sample_words as u64)
            .checked_mul(8)
            .ok_or(FilterError::corrupt("sample length overflows"))?;
        let at = claim(&mut pos, sample_bytes)?;
        let sample_raw = read_words_at(&mut file, at, sample_words)?;
        framing.extend_from_slice(&sample_raw);
        let sample: Vec<(u64, u64)> = sample_raw
            .chunks_exact(2)
            .filter_map(|pair| match pair {
                [lo, hi] => Some((*lo, *hi)),
                _ => None,
            })
            .collect();

        let mut extents = Vec::with_capacity(head.n_shards.min(1 << 20));
        let mut keys_total: u64 = 0;
        for _ in 0..head.n_shards {
            let at = claim(&mut pos, 8)?;
            let n_keys = usize::try_from(read_word_at(&mut file, at)?)
                .map_err(|_| FilterError::corrupt("shard key count overflows usize"))?;
            let key_bytes = (n_keys as u64)
                .checked_mul(8)
                .ok_or(FilterError::corrupt("shard key run overflows"))?;
            let keys_start = claim(&mut pos, key_bytes)?;
            let at = claim(&mut pos, 8)?;
            let keys_checksum = read_word_at(&mut file, at)?;
            let at = claim(&mut pos, 8)?;
            let blob_len = usize::try_from(read_word_at(&mut file, at)?)
                .map_err(|_| FilterError::corrupt("shard blob length overflows usize"))?;
            let padded_bytes = (blob_len.div_ceil(8) as u64)
                .checked_mul(8)
                .ok_or(FilterError::corrupt("shard blob padding overflows"))?;
            let blob_start = claim(&mut pos, padded_bytes)?;
            keys_total = keys_total.saturating_add(n_keys as u64);
            framing.push(n_keys as u64);
            framing.push(keys_checksum);
            framing.push(blob_len as u64);
            extents.push(ShardExtent {
                n_keys,
                keys_start,
                keys_checksum,
                blob_start,
                blob_len,
            });
        }
        let meta_actual = checksum_words(framing.iter().copied());
        if meta_actual != meta_expected {
            return Err(FilterError::ChecksumMismatch {
                expected: meta_expected,
                actual: meta_actual,
            });
        }
        if keys_total != head.total_keys {
            return Err(FilterError::corrupt(
                "total key count differs from shard sum",
            ));
        }
        Ok(Self {
            path: path.to_path_buf(),
            file: PositionedFile::new(file),
            registry: registry.clone(),
            config: head.config(partitioning, sample),
            routing,
            extents,
        })
    }

    /// The manifest file this index was scanned from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The reconstructed store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The routing table.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Number of shards the manifest records.
    pub fn num_shards(&self) -> usize {
        self.extents.len()
    }

    /// The recorded key count of one shard (0 for an out-of-range index).
    pub fn shard_key_count(&self, shard: u32) -> usize {
        self.extents.get(shard as usize).map_or(0, |ext| ext.n_keys)
    }

    /// Materializes one shard from its recorded extents: reads its keys and
    /// blob, validates ordering, routing membership, the blob's own
    /// checksummed header, and the key-count agreement, and parses the
    /// filter — zero-copy over a shared buffer for current-format Grafite
    /// blobs, owned through the family codec otherwise. Failures come back
    /// as [`FilterError::ShardLoad`] naming the shard.
    pub fn load_shard(&self, shard: u32) -> Result<(Vec<u64>, DynRangeFilter), FilterError> {
        self.load_shard_inner(shard)
            .map_err(|e| FilterError::ShardLoad {
                shard,
                source: Box::new(e),
            })
    }

    fn load_shard_inner(&self, shard: u32) -> Result<(Vec<u64>, DynRangeFilter), FilterError> {
        let ext = *self
            .extents
            .get(shard as usize)
            .ok_or(FilterError::corrupt("shard index out of range"))?;
        // Positioned reads carry their own offsets, so concurrent cold
        // probes materializing different shards never serialize here.
        let keys = self.file.words_at(ext.keys_start, ext.n_keys)?;
        let blob = self.file.bytes_at(ext.blob_start, ext.blob_len)?;
        let keys_actual = checksum_words(keys.iter().copied());
        if keys_actual != ext.keys_checksum {
            return Err(FilterError::ChecksumMismatch {
                expected: ext.keys_checksum,
                actual: keys_actual,
            });
        }
        if !keys.windows(2).all(|w| matches!(w, [a, b] if a < b)) {
            return Err(FilterError::corrupt("shard keys not strictly increasing"));
        }
        let shard_idx = shard as usize;
        if keys.iter().any(|&k| self.routing.shard_of(k) != shard_idx) {
            return Err(FilterError::corrupt(
                "shard key routes to a different shard",
            ));
        }
        let filter = self.load_filter(&blob)?;
        if filter.num_keys() != keys.len() {
            return Err(FilterError::corrupt(
                "shard blob key count differs from manifest",
            ));
        }
        Ok((keys, filter))
    }

    /// Parses one shard blob, picking the zero-copy Grafite view path when
    /// the blob supports it.
    fn load_filter(&self, blob: &[u8]) -> Result<DynRangeFilter, FilterError> {
        let header = Header::peek(blob)?;
        if header.spec_id != self.config.family.spec_id() {
            return Err(FilterError::SpecMismatch(header.spec_id));
        }
        if header.spec_id == spec_id::GRAFITE && !header.legacy_directories() {
            // One byte→word conversion pass, then every container in the
            // filter is a sub-range of the same shared buffer.
            let source = MappedSource::from_le_bytes(blob).map_err(FilterError::from)?;
            let filter = MappedGrafiteFilter::open_mapped(&source)?;
            return Ok(DynRangeFilter::from_boxed(
                self.config.family,
                Box::new(filter),
            ));
        }
        self.config.family.load(&self.registry, blob)
    }
}

/// The lazy half of a [`Shard`](crate::Shard): which manifest to
/// materialize from, which shard, and where to record the outcome.
#[derive(Debug)]
pub(crate) struct ShardSource {
    manifest: Arc<MappedManifest>,
    index: u32,
    stats: Arc<StoreStats>,
}

impl ShardSource {
    pub(crate) fn new(manifest: Arc<MappedManifest>, index: u32, stats: Arc<StoreStats>) -> Self {
        Self {
            manifest,
            index,
            stats,
        }
    }

    /// Materializes the shard, failing open: on any load error the shard
    /// becomes a pass-all placeholder (no false negatives, every query on
    /// it answers `true`), the error is retained on the shard, and the
    /// store's stats record it.
    pub(crate) fn materialize(&self) -> LoadedShard {
        self.stats.record_lazy_load();
        match self.manifest.load_shard(self.index) {
            Ok((keys, filter)) => LoadedShard {
                keys,
                filter,
                error: None,
            },
            Err(error) => {
                self.stats.record_load_error();
                LoadedShard {
                    keys: Vec::new(),
                    filter: pass_all(
                        self.manifest.config.family,
                        self.manifest.shard_key_count(self.index),
                    ),
                    error: Some(error),
                }
            }
        }
    }
}

/// A pass-all placeholder for a shard that failed to materialize (see
/// [`ShardSource::materialize`]).
pub(crate) fn pass_all(family: FamilySpec, n_keys: usize) -> DynRangeFilter {
    DynRangeFilter::from_boxed(family, Box::new(PassAllFilter { family, n_keys }))
}

/// Answers `true` for every range: the safe degraded mode of a shard whose
/// bytes would not load. Not serializable — `FilterStore::save_to` refuses
/// stores holding one.
struct PassAllFilter {
    family: FamilySpec,
    n_keys: usize,
}

impl RangeFilter for PassAllFilter {
    fn may_contain_range(&self, _a: u64, _b: u64) -> bool {
        true
    }

    fn size_in_bits(&self) -> usize {
        0
    }

    fn num_keys(&self) -> usize {
        self.n_keys
    }

    fn name(&self) -> &'static str {
        "PassAll"
    }
}

impl PersistentFilter for PassAllFilter {
    fn spec_id(&self) -> u32 {
        self.family.spec_id()
    }

    fn spec_ids() -> &'static [u32] {
        &[]
    }

    /// Writes an empty payload: the placeholder has no filter bytes. A
    /// blob written this way fails typed on load (its family's decoder
    /// rejects the empty payload), and `FilterStore::save_to` refuses to
    /// get this far — the empty write only exists so size accounting and
    /// `to_bytes` stay panic-free.
    fn write_payload(&self, _w: &mut WordWriter<'_>) -> std::io::Result<()> {
        Ok(())
    }

    fn read_payload<Src: WordSource<Storage = Vec<u64>>>(
        _src: &mut Src,
        _header: &Header,
    ) -> Result<Self, FilterError> {
        Err(FilterError::corrupt(
            "pass-all placeholders are not serializable",
        ))
    }
}
