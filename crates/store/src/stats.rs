//! Operational counters for the serving store: cheap, always-on atomics
//! the serving front end (`grafite-server`) scrapes into its telemetry
//! export.
//!
//! The counters are deliberately *store-level* facts — lazy shard
//! materializations, materialization failures, manifest reloads — not
//! query-path metrics: per-query counting belongs to the server's
//! telemetry module, where it can be sampled and histogrammed without
//! taxing the store's lock-free read path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Monotonic counters shared by a [`FilterStore`](crate::FilterStore) and
/// every lazy shard it hands out. All methods are lock-free and safe to
/// call from any thread.
#[derive(Debug, Default)]
pub struct StoreStats {
    lazy_shard_loads: AtomicU64,
    shard_load_errors: AtomicU64,
    reloads: AtomicU64,
    /// Set (and never cleared) once any shard materialization fails —
    /// that shard now serves pass-all placeholders. Published with
    /// `Release` so a reader that observes the flag also observes the
    /// error count that preceded it.
    degraded: AtomicBool,
}

impl StoreStats {
    /// Records one lazy shard materialization attempt.
    pub(crate) fn record_lazy_load(&self) {
        // ordering: Relaxed-counter; pure monotonic event counter, nothing
        // synchronizes on it.
        self.lazy_shard_loads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed shard materialization (the shard now serves
    /// pass-all).
    pub(crate) fn record_load_error(&self) {
        // ordering: Relaxed-counter; pure monotonic event counter, nothing
        // synchronizes on it.
        self.shard_load_errors.fetch_add(1, Ordering::Relaxed);
        // ordering: Release->Acquire pairs-with degraded.load; the flag
        // publishes the error increment above — a reader that sees
        // `degraded` also sees a non-zero error count.
        self.degraded.store(true, Ordering::Release);
    }

    /// Records one successful manifest hot-reload.
    pub(crate) fn record_reload(&self) {
        // ordering: Relaxed-counter; pure monotonic event counter, nothing
        // synchronizes on it.
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Lazy shard materialization attempts so far (mapped stores only;
    /// eagerly opened stores never increment this).
    pub fn lazy_shard_loads(&self) -> u64 {
        // ordering: Relaxed-counter; independent read for reporting, no
        // ordering relationship with other memory is implied.
        self.lazy_shard_loads.load(Ordering::Relaxed)
    }

    /// Shard materializations that failed and fell back to a pass-all
    /// placeholder. Non-zero means queries are safe (no false negatives)
    /// but degraded (every query on that shard answers `true`).
    pub fn shard_load_errors(&self) -> u64 {
        // ordering: Relaxed-counter; independent read for reporting, no
        // ordering relationship with other memory is implied.
        self.shard_load_errors.load(Ordering::Relaxed)
    }

    /// Whether any shard materialization has ever failed: queries stay
    /// safe (no false negatives) but the failed shard answers pass-all,
    /// so the store's precision is degraded. Observing `true` here
    /// happens-after the failure's [`StoreStats::shard_load_errors`]
    /// increment.
    pub fn is_degraded(&self) -> bool {
        // ordering: Release->Acquire pairs-with degraded.store; observing
        // the flag also observes the error count recorded before it.
        self.degraded.load(Ordering::Acquire)
    }

    /// Successful manifest hot-reloads since the store opened.
    pub fn reloads(&self) -> u64 {
        // ordering: Relaxed-counter; independent read for reporting, no
        // ordering relationship with other memory is implied.
        self.reloads.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_zero_and_count() {
        let stats = StoreStats::default();
        assert_eq!(stats.lazy_shard_loads(), 0);
        assert_eq!(stats.shard_load_errors(), 0);
        assert_eq!(stats.reloads(), 0);
        stats.record_lazy_load();
        stats.record_lazy_load();
        stats.record_load_error();
        stats.record_reload();
        assert_eq!(stats.lazy_shard_loads(), 2);
        assert_eq!(stats.shard_load_errors(), 1);
        assert_eq!(stats.reloads(), 1);
    }
}
