//! Operational counters for the serving store: cheap, always-on atomics
//! the serving front end (`grafite-server`) scrapes into its telemetry
//! export.
//!
//! The counters are deliberately *store-level* facts — lazy shard
//! materializations, materialization failures, manifest reloads — not
//! query-path metrics: per-query counting belongs to the server's
//! telemetry module, where it can be sampled and histogrammed without
//! taxing the store's lock-free read path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of log2 buckets in the per-shard build wall-time histogram:
/// bucket `i` counts shard builds that took `[2^i, 2^(i+1))` microseconds
/// (bucket 0 absorbs sub-microsecond builds, the last bucket everything
/// from ~half a minute up).
pub const BUILD_HIST_BUCKETS: usize = 16;

/// Monotonic counters shared by a [`FilterStore`](crate::FilterStore) and
/// every lazy shard it hands out. All methods are lock-free and safe to
/// call from any thread.
#[derive(Debug, Default)]
pub struct StoreStats {
    lazy_shard_loads: AtomicU64,
    shard_load_errors: AtomicU64,
    reloads: AtomicU64,
    /// Set (and never cleared) once any shard materialization fails —
    /// that shard now serves pass-all placeholders. Published with
    /// `Release` so a reader that observes the flag also observes the
    /// error count that preceded it.
    degraded: AtomicBool,
    /// Worker-thread count of the most recent build or update-batch
    /// rebuild fan-out (0 until the first one).
    rebuild_workers: AtomicU64,
    /// Per-shard build wall times, log2-bucketed by microsecond (see
    /// [`BUILD_HIST_BUCKETS`]).
    shard_build_hist: [AtomicU64; BUILD_HIST_BUCKETS],
}

impl StoreStats {
    /// Records one lazy shard materialization attempt.
    pub(crate) fn record_lazy_load(&self) {
        // ordering: Relaxed-counter; pure monotonic event counter, nothing
        // synchronizes on it.
        self.lazy_shard_loads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed shard materialization (the shard now serves
    /// pass-all).
    pub(crate) fn record_load_error(&self) {
        // ordering: Relaxed-counter; pure monotonic event counter, nothing
        // synchronizes on it.
        self.shard_load_errors.fetch_add(1, Ordering::Relaxed);
        // ordering: Release->Acquire pairs-with degraded.load; the flag
        // publishes the error increment above — a reader that sees
        // `degraded` also sees a non-zero error count.
        self.degraded.store(true, Ordering::Release);
    }

    /// Records one successful manifest hot-reload.
    pub(crate) fn record_reload(&self) {
        // ordering: Relaxed-counter; pure monotonic event counter, nothing
        // synchronizes on it.
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Lazy shard materialization attempts so far (mapped stores only;
    /// eagerly opened stores never increment this).
    pub fn lazy_shard_loads(&self) -> u64 {
        // ordering: Relaxed-counter; independent read for reporting, no
        // ordering relationship with other memory is implied.
        self.lazy_shard_loads.load(Ordering::Relaxed)
    }

    /// Shard materializations that failed and fell back to a pass-all
    /// placeholder. Non-zero means queries are safe (no false negatives)
    /// but degraded (every query on that shard answers `true`).
    pub fn shard_load_errors(&self) -> u64 {
        // ordering: Relaxed-counter; independent read for reporting, no
        // ordering relationship with other memory is implied.
        self.shard_load_errors.load(Ordering::Relaxed)
    }

    /// Whether any shard materialization has ever failed: queries stay
    /// safe (no false negatives) but the failed shard answers pass-all,
    /// so the store's precision is degraded. Observing `true` here
    /// happens-after the failure's [`StoreStats::shard_load_errors`]
    /// increment.
    pub fn is_degraded(&self) -> bool {
        // ordering: Release->Acquire pairs-with degraded.store; observing
        // the flag also observes the error count recorded before it.
        self.degraded.load(Ordering::Acquire)
    }

    /// Successful manifest hot-reloads since the store opened.
    pub fn reloads(&self) -> u64 {
        // ordering: Relaxed-counter; independent read for reporting, no
        // ordering relationship with other memory is implied.
        self.reloads.load(Ordering::Relaxed)
    }

    /// Records the worker count a build/rebuild fan-out ran with.
    pub(crate) fn record_rebuild_workers(&self, workers: u64) {
        // ordering: Relaxed-counter; advisory last-value gauge for
        // telemetry, nothing synchronizes on it.
        self.rebuild_workers.store(workers, Ordering::Relaxed);
    }

    /// Records one shard build's wall time into the log2 histogram.
    pub(crate) fn record_shard_build(&self, nanos: u64) {
        let micros = nanos / 1_000;
        let bucket = (micros.max(1).ilog2() as usize).min(BUILD_HIST_BUCKETS - 1);
        // ordering: Relaxed-counter; pure monotonic event counter, nothing
        // synchronizes on it.
        self.shard_build_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Worker threads used by the most recent build or update-batch
    /// rebuild fan-out (0 if the store has never built a shard — e.g. it
    /// was opened from a manifest and not yet updated).
    pub fn rebuild_workers(&self) -> u64 {
        // ordering: Relaxed-counter; independent read for reporting, no
        // ordering relationship with other memory is implied.
        self.rebuild_workers.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-shard build wall-time histogram: entry `i`
    /// counts builds that took `[2^i, 2^(i+1))` microseconds.
    pub fn shard_build_histogram(&self) -> [u64; BUILD_HIST_BUCKETS] {
        // ordering: Relaxed-counter; independent reads for reporting, no
        // ordering relationship with other memory is implied.
        let load = |i: usize| self.shard_build_hist[i].load(Ordering::Relaxed);
        std::array::from_fn(load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_zero_and_count() {
        let stats = StoreStats::default();
        assert_eq!(stats.lazy_shard_loads(), 0);
        assert_eq!(stats.shard_load_errors(), 0);
        assert_eq!(stats.reloads(), 0);
        stats.record_lazy_load();
        stats.record_lazy_load();
        stats.record_load_error();
        stats.record_reload();
        assert_eq!(stats.lazy_shard_loads(), 2);
        assert_eq!(stats.shard_load_errors(), 1);
        assert_eq!(stats.reloads(), 1);
    }

    #[test]
    fn rebuild_telemetry_buckets_and_gauge() {
        let stats = StoreStats::default();
        assert_eq!(stats.rebuild_workers(), 0);
        assert_eq!(stats.shard_build_histogram(), [0; BUILD_HIST_BUCKETS]);
        stats.record_rebuild_workers(8);
        stats.record_rebuild_workers(4); // gauge: last write wins
        assert_eq!(stats.rebuild_workers(), 4);
        stats.record_shard_build(500); // < 1 µs -> bucket 0
        stats.record_shard_build(3_000); // 3 µs -> bucket 1
        stats.record_shard_build(1_000_000); // 1 ms -> bucket 9
        stats.record_shard_build(u64::MAX); // clamps to the last bucket
        let hist = stats.shard_build_histogram();
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 1);
        assert_eq!(hist[9], 1);
        assert_eq!(hist[BUILD_HIST_BUCKETS - 1], 1);
        assert_eq!(hist.iter().sum::<u64>(), 4);
    }
}
