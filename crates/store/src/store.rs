//! The sharded, snapshot-based serving store: [`FilterStore`] partitions
//! the key space across N shards (each holding one erased filter), serves
//! queries from immutable [`Snapshot`]s shared behind `Arc`, and applies
//! [`Update`] batches by rebuilding only the dirty shards and atomically
//! swapping in a new snapshot.
//!
//! # Consistency model
//!
//! * A [`Snapshot`] is immutable: once obtained from
//!   [`FilterStore::snapshot`], its answers never change, and queries on it
//!   take no locks at all.
//! * [`FilterStore::apply`] is atomic: readers see either the whole batch
//!   or none of it, never a half-applied state — and if any shard rebuild
//!   fails, the store is left exactly as it was.
//! * Writers are serialized with each other, but never block readers: the
//!   only shared critical section is an `Arc` clone/swap a few nanoseconds
//!   long.
//! * Every snapshot preserves the filter contract — **no false negatives**:
//!   a key present in the snapshot's key set always answers `true`, before,
//!   during, and after concurrent `apply` calls.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use grafite_core::registry::Registry;
use grafite_core::{sort, FilterConfig, FilterError, Parallelism, RangeFilter, DEFAULT_SEED};

use crate::family::{DynRangeFilter, FamilySpec};
use crate::manifest;
use crate::mapped::{MappedManifest, ShardSource};
use crate::stats::StoreStats;

/// How a [`FilterStore`] splits the key space across shards.
///
/// Shard counts are *targets*: a build clamps them to the number of build
/// keys (and to at least 1), since a shard without any possible key is
/// pure overhead — so a store over 100 keys asked for a million shards
/// gets 100.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioning {
    /// Contiguous key-space intervals with boundaries at build-time key
    /// quantiles. A range query touches only the shards its interval
    /// intersects — the right choice for range-heavy workloads.
    Range {
        /// Number of shards to target (degenerate key distributions may
        /// collapse equal quantile boundaries into fewer shards).
        shards: usize,
    },
    /// Keys scatter by a seeded multiplicative hash. Point queries touch
    /// one shard; *range* queries of width above one must probe every
    /// shard, so this suits point-dominated workloads and hostile key
    /// skew.
    Hash {
        /// Number of shards.
        shards: usize,
    },
}

/// The routing table a built store derives from its [`Partitioning`]: the
/// data-dependent part (range boundaries) is fixed at build time, persists
/// in the manifest, and stays stable across updates so every key — present
/// or future — routes deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Routing {
    /// Shard `i` covers keys in `[starts[i], starts[i+1])` (the last shard
    /// runs to `u64::MAX` inclusive). Invariants: `starts[0] == 0`,
    /// strictly increasing.
    Range {
        /// The first key of each shard's interval.
        starts: Vec<u64>,
    },
    /// Shard of `key` is `mix(key ^ seed) % shards`.
    Hash {
        /// Number of shards.
        shards: u32,
        /// Seed mixed into the hash (the store config's seed).
        seed: u64,
    },
}

/// SplitMix64's finalizer: an invertible full-avalanche mix, so hash
/// routing balances even adversarially regular key sets.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Routing {
    /// Derives the routing for `partitioning` over the (sorted, deduped)
    /// build key set. The requested shard count is clamped to
    /// `[1, max(1, keys)]` — more shards than keys would only add empty
    /// shards (and an unclamped `usize` count could truncate through the
    /// `u32` hash modulus).
    fn plan(partitioning: Partitioning, seed: u64, sorted_keys: &[u64]) -> Routing {
        let clamp = |shards: usize| shards.clamp(1, sorted_keys.len().max(1));
        match partitioning {
            Partitioning::Hash { shards } => Routing::Hash {
                shards: u32::try_from(clamp(shards)).unwrap_or(u32::MAX),
                seed,
            },
            Partitioning::Range { shards } => {
                let shards = clamp(shards);
                let mut starts = vec![0u64];
                for i in 1..shards {
                    let boundary = sorted_keys[i * sorted_keys.len() / shards];
                    if boundary > *starts.last().expect("starts is non-empty") {
                        starts.push(boundary);
                    }
                }
                Routing::Range { starts }
            }
        }
    }

    /// Number of shards this routing addresses.
    pub fn num_shards(&self) -> usize {
        match self {
            Routing::Range { starts } => starts.len(),
            Routing::Hash { shards, .. } => *shards as usize,
        }
    }

    /// The shard `key` lives in.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        match self {
            Routing::Range { starts } => starts.partition_point(|&s| s <= key) - 1,
            Routing::Hash { shards, seed } => (mix64(key ^ seed) % *shards as u64) as usize,
        }
    }

    /// For range routing: the inclusive key span shard `shard` covers.
    /// Hash-routed shards cover the whole universe.
    pub fn shard_span(&self, shard: usize) -> (u64, u64) {
        match self {
            Routing::Range { starts } => {
                let lo = starts[shard];
                let hi = starts.get(shard + 1).map_or(u64::MAX, |&next| next - 1);
                (lo, hi)
            }
            Routing::Hash { .. } => (0, u64::MAX),
        }
    }
}

/// One mutation of the store's key set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Adds a key (idempotent: inserting a present key is a no-op).
    Insert(u64),
    /// Removes a key (idempotent: deleting an absent key is a no-op).
    Delete(u64),
}

impl Update {
    /// The key this update targets.
    #[inline]
    pub fn key(&self) -> u64 {
        match self {
            Update::Insert(k) | Update::Delete(k) => *k,
        }
    }
}

/// Everything the store needs to build — and later rebuild — its shard
/// filters: the family, the shared [`FilterConfig`] knobs, and the
/// partitioning scheme. All of it persists in the manifest, so an opened
/// store keeps accepting updates with the same configuration it was built
/// with.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Which filter family every shard holds.
    pub family: FamilySpec,
    /// Space budget in bits per key (per shard filter). Default: 16.
    pub bits_per_key: f64,
    /// The workload's max range size `L`. Default: 2^10.
    pub max_range: u64,
    /// Seed for randomised filter components and hash routing. Default:
    /// [`DEFAULT_SEED`].
    pub seed: u64,
    /// Query sample for the auto-tuned families (owned: shard rebuilds
    /// re-tune with it on every update batch). Default: empty.
    pub sample: Vec<(u64, u64)>,
    /// How the key space splits across shards. Default: range partitioning
    /// into 4 shards.
    pub partitioning: Partitioning,
    /// Construction thread budget for builds and update-batch rebuilds,
    /// shared between the shard fan-out and each shard's internal
    /// hash/sort/encode pipeline. Purely a wall-clock knob — the produced
    /// snapshots and manifests are bit-identical at every thread count.
    /// Not persisted: a reopened store resolves it afresh (so the
    /// `GRAFITE_THREADS` override applies on the serving machine, not the
    /// one that built the manifest). Default: [`Parallelism::auto`].
    pub parallelism: Parallelism,
}

impl StoreConfig {
    /// Starts a configuration for `family` with the documented defaults.
    pub fn new(family: FamilySpec) -> Self {
        Self {
            family,
            bits_per_key: 16.0,
            max_range: 1 << 10,
            seed: DEFAULT_SEED,
            sample: Vec::new(),
            partitioning: Partitioning::Range { shards: 4 },
            parallelism: Parallelism::auto(),
        }
    }

    /// Sets the per-shard space budget in bits per key.
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn bits_per_key(mut self, bits: f64) -> Self {
        self.bits_per_key = bits;
        self
    }

    /// Sets the workload's max range size `L`.
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn max_range(mut self, l: u64) -> Self {
        self.max_range = l;
        self
    }

    /// Pins the seed for randomised components and hash routing.
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the query sample the auto-tuned families optimise for.
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn sample(mut self, sample: Vec<(u64, u64)>) -> Self {
        self.sample = sample;
        self
    }

    /// Sets the partitioning scheme.
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn partitioning(mut self, partitioning: Partitioning) -> Self {
        self.partitioning = partitioning;
        self
    }

    /// Sets the construction thread budget (see
    /// [`StoreConfig::parallelism`]).
    #[must_use = "the setters move `self`; dropping the result discards the whole configuration"]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The per-shard filter config over `keys`. `parallelism` is the
    /// shard's *own* thread budget — the fan-out hands each shard its
    /// share of [`StoreConfig::parallelism`], not the whole thing.
    fn filter_config<'a>(&'a self, keys: &'a [u64], parallelism: Parallelism) -> FilterConfig<'a> {
        FilterConfig::new(keys)
            .bits_per_key(self.bits_per_key)
            .max_range(self.max_range)
            .sample(&self.sample)
            .seed(self.seed)
            .parallelism(parallelism)
    }
}

/// A shard's materialized contents: its slice of the key set (retained so
/// updates can rebuild the filter), the filter serving it, and — for mapped
/// shards that failed to load — the retained error behind the pass-all
/// fallback.
pub(crate) struct LoadedShard {
    pub(crate) keys: Vec<u64>,
    pub(crate) filter: DynRangeFilter,
    pub(crate) error: Option<FilterError>,
}

/// One shard of the store. Eagerly built shards hold their keys and filter
/// from construction; shards of a mapped store ([`FilterStore::open_mapped`])
/// hold only a lazy source and materialize — read their keys and blob
/// from the manifest file — on first touch, memoized thereafter.
pub struct Shard {
    cell: OnceLock<LoadedShard>,
    source: Option<ShardSource>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Shard");
        match self.cell.get() {
            Some(loaded) => s
                .field("num_keys", &loaded.keys.len())
                .field("degraded", &loaded.error.is_some()),
            None => s.field("materialized", &false),
        }
        .finish_non_exhaustive()
    }
}

impl Shard {
    fn build(
        config: &StoreConfig,
        registry: &Registry,
        keys: Vec<u64>,
        parallelism: Parallelism,
    ) -> Result<Self, FilterError> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "shard keys sorted+deduped"
        );
        let filter = config
            .family
            .build(registry, &config.filter_config(&keys, parallelism))?;
        Ok(Self::eager(keys, filter))
    }

    /// A shard materialized from birth (the build and eager-open paths).
    fn eager(keys: Vec<u64>, filter: DynRangeFilter) -> Self {
        let cell = OnceLock::new();
        let _ = cell.set(LoadedShard {
            keys,
            filter,
            error: None,
        });
        Self { cell, source: None }
    }

    /// Reassembles a shard from already-validated parts (the manifest
    /// reader's entry point).
    pub(crate) fn from_parts(keys: Vec<u64>, filter: DynRangeFilter) -> Self {
        Self::eager(keys, filter)
    }

    /// A shard that materializes lazily from a mapped manifest.
    pub(crate) fn from_source(source: ShardSource) -> Self {
        Self {
            cell: OnceLock::new(),
            source: Some(source),
        }
    }

    /// The materialized contents, loading them on first touch.
    fn loaded(&self) -> &LoadedShard {
        if let Some(loaded) = self.cell.get() {
            return loaded;
        }
        match &self.source {
            Some(src) => self.cell.get_or_init(|| src.materialize()),
            // Eager constructors pre-set the cell, so a source-less shard
            // can never reach this arm.
            None => unreachable!("eager shards pre-set their cell"),
        }
    }

    /// The shard's sorted, deduplicated keys (materializes the shard).
    pub fn keys(&self) -> &[u64] {
        &self.loaded().keys
    }

    /// The filter serving this shard (materializes the shard).
    pub fn filter(&self) -> &DynRangeFilter {
        &self.loaded().filter
    }

    /// Whether a lazy shard has materialized yet (eager shards always have).
    pub fn is_materialized(&self) -> bool {
        self.cell.get().is_some()
    }

    /// The error behind a degraded shard: `Some` when materialization
    /// failed and the shard serves the pass-all fallback (materializes the
    /// shard).
    pub fn load_error(&self) -> Option<&FilterError> {
        self.loaded().error.as_ref()
    }
}

/// An immutable, lock-free view of the whole store at one version.
///
/// Obtained from [`FilterStore::snapshot`] as an `Arc`: clone it into any
/// number of reader threads and query away — a snapshot's answers are
/// frozen forever, no matter how many update batches land after it.
#[derive(Debug)]
pub struct Snapshot {
    routing: Routing,
    shards: Vec<Arc<Shard>>,
    version: u64,
}

impl Snapshot {
    /// Assembles a snapshot from its parts (the open/reload entry point).
    pub(crate) fn from_parts(routing: Routing, shards: Vec<Arc<Shard>>, version: u64) -> Self {
        Self {
            routing,
            shards,
            version,
        }
    }

    /// The update-batch epoch this snapshot reflects (0 = as built).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total distinct keys across shards (materializes every lazy shard).
    pub fn num_keys(&self) -> usize {
        self.shards.iter().map(|s| s.keys().len()).sum()
    }

    /// Total serialized footprint of the shard filters, in bits
    /// (materializes every lazy shard).
    pub fn serialized_bits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.filter().serialized_bits())
            .sum()
    }

    /// The first shard-materialization failure in this snapshot, if any
    /// shard is degraded to pass-all (materializes every lazy shard).
    pub fn load_error(&self) -> Option<&FilterError> {
        self.shards.iter().find_map(|s| s.load_error())
    }

    /// The routing table.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// The shards, in routing order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Whether the closed range `[a, b]` may contain a key, ORed across the
    /// shards the routing maps it to. Requires `a <= b` (debug-asserted,
    /// per the [`RangeFilter`] contract).
    #[must_use = "a range filter's answer is its only effect; dropping it means the query was wasted"]
    pub fn may_contain_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b, "inverted range [{a}, {b}]");
        match &self.routing {
            Routing::Range { .. } => {
                let (sa, sb) = (self.routing.shard_of(a), self.routing.shard_of(b));
                (sa..=sb).any(|s| {
                    let (lo, hi) = self.routing.shard_span(s);
                    self.shards[s]
                        .filter()
                        .may_contain_range(a.max(lo), b.min(hi))
                })
            }
            Routing::Hash { .. } => {
                if a == b {
                    self.shards[self.routing.shard_of(a)]
                        .filter()
                        .may_contain(a)
                } else {
                    // A width-above-one range can hold keys of any shard.
                    self.shards
                        .iter()
                        .any(|s| s.filter().may_contain_range(a, b))
                }
            }
        }
    }

    /// Whether the point `x` may be in the key set.
    #[must_use = "a range filter's answer is its only effect; dropping it means the query was wasted"]
    pub fn may_contain(&self, x: u64) -> bool {
        self.may_contain_range(x, x)
    }

    /// Calls `f(shard, clamped_query)` for every shard the routing maps
    /// `[a, b]` to — the one routing walk both batch passes share.
    #[inline]
    fn for_each_target(&self, a: u64, b: u64, mut f: impl FnMut(usize, (u64, u64))) {
        match &self.routing {
            Routing::Range { .. } => {
                let (sa, sb) = (self.routing.shard_of(a), self.routing.shard_of(b));
                for s in sa..=sb {
                    let (lo, hi) = self.routing.shard_span(s);
                    f(s, (a.max(lo), b.min(hi)));
                }
            }
            Routing::Hash { .. } => {
                if a == b {
                    f(self.routing.shard_of(a), (a, b));
                } else {
                    // A width-above-one range can hold keys of any shard.
                    for s in 0..self.shards.len() {
                        f(s, (a, b));
                    }
                }
            }
        }
    }

    /// Answers a batch of closed ranges, one `bool` per query, into `out`
    /// (cleared first) — the serving counterpart of
    /// [`RangeFilter::may_contain_ranges`].
    ///
    /// The batch is routed shard by shard: each shard receives its
    /// sub-batch (clamped to the shard's span under range routing) in the
    /// caller's query order through one `may_contain_ranges` call, so a
    /// family's batch specialisation — e.g. Grafite's one-pass sorted
    /// probe — runs once per shard, and answers scatter back to their
    /// query's position. The scatter is a count-then-fill pass over two
    /// flat arrays: a constant number of allocations per call, however
    /// many shards the store has.
    pub fn query_ranges(&self, queries: &[(u64, u64)], out: &mut Vec<bool>) {
        out.clear();
        if queries.is_empty() {
            return;
        }
        let n_shards = self.shards.len();
        if n_shards == 1 {
            self.shards[0].filter().may_contain_ranges(queries, out);
            return;
        }
        out.resize(queries.len(), false);
        // Count pass: offsets[s + 1] = number of sub-queries shard s gets.
        let mut offsets = vec![0usize; n_shards + 1];
        for &(a, b) in queries {
            debug_assert!(a <= b, "inverted range [{a}, {b}]");
            self.for_each_target(a, b, |s, _| offsets[s + 1] += 1);
        }
        for s in 0..n_shards {
            offsets[s + 1] += offsets[s];
        }
        // Fill pass: each shard's slice, in the caller's query order.
        let total = offsets[n_shards];
        let mut slot_q = vec![(0u64, 0u64); total];
        let mut slot_idx = vec![0u32; total];
        let mut cursor = offsets[..n_shards].to_vec();
        for (i, &(a, b)) in queries.iter().enumerate() {
            self.for_each_target(a, b, |s, q| {
                slot_q[cursor[s]] = q;
                slot_idx[cursor[s]] = i as u32;
                cursor[s] += 1;
            });
        }
        let mut answers = Vec::new();
        for s in 0..n_shards {
            let (lo, hi) = (offsets[s], offsets[s + 1]);
            if lo == hi {
                continue;
            }
            self.shards[s]
                .filter()
                .may_contain_ranges(&slot_q[lo..hi], &mut answers);
            for (&i, &hit) in slot_idx[lo..hi].iter().zip(&answers) {
                if hit {
                    out[i as usize] = true;
                }
            }
        }
    }
}

/// Builds one shard per job across up to `parallelism` scoped workers,
/// returning the shards in job order (and, on failure, the error of the
/// *lowest-indexed* failing job, after every worker has joined — callers
/// rely on that to leave the store untouched deterministically).
///
/// The thread budget nests: the fan-out spawns `workers =
/// parallelism.capped(jobs)` threads and hands each job a
/// `threads / workers` budget for its internal hash/sort/encode pipeline —
/// one shard gets the whole budget, eight shards on eight threads each
/// build serially. Job order, not completion order, decides placement, so
/// the result is identical at every thread count. Every job's wall time
/// lands in `stats`' shard-build histogram.
fn fan_out_shards<J, F>(
    parallelism: Parallelism,
    stats: &StoreStats,
    jobs: Vec<J>,
    build: F,
) -> Result<Vec<Arc<Shard>>, FilterError>
where
    J: Send,
    F: Fn(J, Parallelism) -> Result<Shard, FilterError> + Sync,
{
    let n_jobs = jobs.len();
    let workers = parallelism.capped(n_jobs);
    let per_shard = Parallelism::fixed(parallelism.threads() / workers.max(1));
    stats.record_rebuild_workers(workers as u64);
    let timed = |job: J| -> Result<Shard, FilterError> {
        let start = std::time::Instant::now();
        let shard = build(job, per_shard)?;
        stats.record_shard_build(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        Ok(shard)
    };
    if workers <= 1 {
        return jobs.into_iter().map(|j| timed(j).map(Arc::new)).collect();
    }
    // Contiguous chunks + ordered joins keep the results in job order
    // without any cross-worker coordination.
    let chunk = n_jobs.div_ceil(workers);
    let mut results: Vec<Result<Shard, FilterError>> = Vec::with_capacity(n_jobs);
    std::thread::scope(|scope| {
        let timed = &timed;
        let mut handles = Vec::with_capacity(workers);
        let mut iter = jobs.into_iter();
        loop {
            let chunk_jobs: Vec<J> = iter.by_ref().take(chunk).collect();
            if chunk_jobs.is_empty() {
                break;
            }
            handles
                .push(scope.spawn(move || chunk_jobs.into_iter().map(timed).collect::<Vec<_>>()));
        }
        for handle in handles {
            results.extend(handle.join().expect("shard build worker panicked"));
        }
    });
    results.into_iter().map(|r| r.map(Arc::new)).collect()
}

/// What one [`FilterStore::apply`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplyReport {
    /// Shards whose filters were rebuilt.
    pub dirty_shards: usize,
    /// Keys that were rebuilt into fresh filters (the sum of dirty shards'
    /// key counts after the batch).
    pub rebuilt_keys: usize,
    /// Keys newly present (inserts of absent keys).
    pub inserted: usize,
    /// Keys newly absent (deletes of present keys).
    pub deleted: usize,
    /// The version of the snapshot the batch produced.
    pub version: u64,
}

/// The sharded, snapshot-swapping serving store over any
/// [`FamilySpec`] filter family. See the [module docs](self) for the
/// consistency model and [`StoreConfig`] for the knobs.
pub struct FilterStore {
    registry: Registry,
    /// Behind a lock because [`FilterStore::reload`] may install a manifest
    /// with a different configuration; readers touch it only through
    /// [`FilterStore::config`]'s clone.
    config: RwLock<StoreConfig>,
    stats: Arc<StoreStats>,
    current: RwLock<Arc<Snapshot>>,
    /// The version of the last snapshot swapped into `current`, published
    /// with `Release` after each swap so [`FilterStore::version`] is a
    /// lock-free change detector: a poller that observes version `n` here
    /// happens-after the swap that produced `n`, and a `snapshot()` taken
    /// next is guaranteed to be at least that new.
    published_version: AtomicU64,
    /// Serializes writers; readers never touch it.
    writer: Mutex<()>,
}

impl std::fmt::Debug for FilterStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("FilterStore")
            .field("family", &self.config().family)
            .field("num_shards", &snap.num_shards())
            .field("version", &snap.version())
            .finish_non_exhaustive()
    }
}

impl FilterStore {
    /// Builds a sharded store over `keys` (unsorted, duplicates welcome):
    /// plans the routing, partitions the keys, and builds one filter per
    /// shard. `registry` must have a builder for the configured family
    /// (and is retained for shard rebuilds and loads).
    pub fn build(
        registry: &Registry,
        config: StoreConfig,
        keys: &[u64],
    ) -> Result<Self, FilterError> {
        let mut sorted = keys.to_vec();
        sort::partition_radix_sort(&mut sorted, config.parallelism.threads());
        sorted.dedup();
        let routing = Routing::plan(config.partitioning, config.seed, &sorted);
        let stats = Arc::new(StoreStats::default());
        let shards = match &routing {
            Routing::Range { starts } => {
                // Keys are sorted: each shard's keys are one contiguous
                // slice of `sorted`, so the jobs are index pairs and the
                // single per-shard copy happens inside the worker.
                let mut bounds = Vec::with_capacity(routing.num_shards());
                let mut from = 0usize;
                for s in 0..routing.num_shards() {
                    let to = match starts.get(s + 1) {
                        Some(&next) => from + sorted[from..].partition_point(|&k| k < next),
                        None => sorted.len(),
                    };
                    bounds.push((from, to));
                    from = to;
                }
                let sorted = &sorted;
                fan_out_shards(config.parallelism, &stats, bounds, |(from, to), par| {
                    Shard::build(&config, registry, sorted[from..to].to_vec(), par)
                })?
            }
            Routing::Hash { .. } => {
                // Iterating in sorted order keeps every bucket sorted.
                let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); routing.num_shards()];
                for &k in &sorted {
                    per_shard[routing.shard_of(k)].push(k);
                }
                fan_out_shards(config.parallelism, &stats, per_shard, |ks, par| {
                    Shard::build(&config, registry, ks, par)
                })?
            }
        };
        Ok(Self::from_parts(registry, config, routing, shards, stats))
    }

    /// Assembles a store around an initial snapshot at version 0.
    fn from_parts(
        registry: &Registry,
        config: StoreConfig,
        routing: Routing,
        shards: Vec<Arc<Shard>>,
        stats: Arc<StoreStats>,
    ) -> Self {
        Self {
            registry: registry.clone(),
            config: RwLock::new(config),
            stats,
            current: RwLock::new(Arc::new(Snapshot::from_parts(routing, shards, 0))),
            published_version: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The configuration the store currently builds and rebuilds with
    /// (cloned: a concurrent [`FilterStore::reload`] may replace it).
    pub fn config(&self) -> StoreConfig {
        self.config.read().expect("store lock poisoned").clone()
    }

    /// The store's operational counters (lazy loads, load failures,
    /// reloads), shared with every lazy shard the store hands out.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// The current snapshot. The read lock is held only for the `Arc`
    /// clone — queries on the returned snapshot are entirely lock-free, and
    /// the snapshot stays valid (and unchanging) however many updates land
    /// afterwards.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.read().expect("store lock poisoned").clone()
    }

    /// Applies a batch of updates atomically: routes them to shards,
    /// rebuilds only the dirty shards' filters (clean shards are shared
    /// with the previous snapshot by `Arc`), and swaps the new snapshot in.
    ///
    /// Within a batch, updates to the same key apply in slice order (last
    /// one wins). On error (a shard rebuild failed) the store is
    /// unchanged. Concurrent writers serialize; readers are never blocked.
    pub fn apply(&self, updates: &[Update]) -> Result<ApplyReport, FilterError> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let config = self.config();
        let base = self.snapshot();
        // Route, then sort by (shard, key, slice position): the sort both
        // groups the batch into per-shard runs — so the walk below scales
        // with the *touched* shards and the batch size, never the store's
        // shard count — and puts same-key updates in slice order, so
        // keeping the last one per (shard, key) is exactly last-wins.
        let mut routed: Vec<(usize, u64, usize, bool)> = updates
            .iter()
            .enumerate()
            .map(|(seq, u)| {
                (
                    base.routing.shard_of(u.key()),
                    u.key(),
                    seq,
                    matches!(u, Update::Insert(_)),
                )
            })
            .collect();
        routed.sort_unstable();
        let mut wanted: Vec<(usize, u64, bool)> = Vec::with_capacity(routed.len());
        for (s, k, _, present) in routed {
            match wanted.last_mut() {
                Some(last) if last.0 == s && last.1 == k => last.2 = present,
                _ => wanted.push((s, k, present)),
            }
        }
        let mut report = ApplyReport {
            dirty_shards: 0,
            rebuilt_keys: 0,
            inserted: 0,
            deleted: 0,
            version: base.version,
        };
        // Walk the batch run by run; each dirty shard becomes one rebuild
        // job carrying its post-batch key set (built by a linear merge of
        // the shard's sorted keys with the run's sorted keys).
        let mut jobs: Vec<(usize, Vec<u64>)> = Vec::new();
        let mut run_start = 0usize;
        while run_start < wanted.len() {
            let s = wanted[run_start].0;
            let run_end = run_start + wanted[run_start..].partition_point(|w| w.0 == s);
            let old = &base.shards[s];
            // A degraded shard lost its keys: rebuilding it from the batch
            // alone would silently drop them, so updates touching it refuse
            // with the original materialization error. (Merely *sharing* a
            // degraded shard into the next snapshot is fine — no data moves.)
            if let Some(err) = old.load_error() {
                return Err(err.clone());
            }
            let old_keys = old.keys();
            let mut keys: Vec<u64> = Vec::with_capacity(old_keys.len());
            let (mut inserted, mut deleted) = (0usize, 0usize);
            let mut oi = 0usize;
            for &(_, k, present) in &wanted[run_start..run_end] {
                while oi < old_keys.len() && old_keys[oi] < k {
                    keys.push(old_keys[oi]);
                    oi += 1;
                }
                let already = oi < old_keys.len() && old_keys[oi] == k;
                if already {
                    oi += 1;
                }
                // An update only dirties its shard if it changes presence.
                match (present, already) {
                    (true, false) => {
                        keys.push(k);
                        inserted += 1;
                    }
                    (false, true) => deleted += 1,
                    (true, true) => keys.push(k),
                    (false, false) => {}
                }
            }
            keys.extend_from_slice(&old_keys[oi..]);
            if inserted > 0 || deleted > 0 {
                report.dirty_shards += 1;
                report.rebuilt_keys += keys.len();
                report.inserted += inserted;
                report.deleted += deleted;
                jobs.push((s, keys));
            }
            run_start = run_end;
        }
        if jobs.is_empty() {
            return Ok(report);
        }
        // Rebuild the dirty shards — and only them — across the fan-out;
        // clean shards are shared with the base snapshot by `Arc`. Any
        // failure joins all workers and leaves the store unchanged.
        let registry = &self.registry;
        let slots: Vec<usize> = jobs.iter().map(|&(s, _)| s).collect();
        let built = fan_out_shards(
            config.parallelism,
            &self.stats,
            jobs.into_iter().map(|(_, ks)| ks).collect(),
            |ks, par| Shard::build(&config, registry, ks, par),
        )?;
        let mut shards = base.shards.clone();
        for (slot, shard) in slots.into_iter().zip(built) {
            shards[slot] = shard;
        }
        report.version = base.version + 1;
        let next = Arc::new(Snapshot {
            routing: base.routing.clone(),
            shards,
            version: report.version,
        });
        *self.current.write().expect("store lock poisoned") = next;
        // ordering: Release->Acquire pairs-with published_version.load;
        // publishes the snapshot swap above to lock-free version pollers.
        self.published_version
            .store(report.version, Ordering::Release);
        Ok(report)
    }

    /// Serializes the whole store — routing, configuration, and one blob
    /// per shard — as the versioned multi-shard manifest of
    /// [`crate::manifest`], returning the bytes written.
    pub fn save_to(&self, out: &mut dyn io::Write) -> Result<usize, FilterError> {
        let snap = self.snapshot();
        // A degraded shard serves pass-all placeholders in place of the
        // keys and filter that failed to load; serializing it would write a
        // manifest that silently lost data. Refuse with the original error.
        if let Some(err) = snap.load_error() {
            return Err(err.clone());
        }
        let config = self.config();
        manifest::write(&config, &snap, out)
    }

    /// Serializes into a fresh byte vector.
    ///
    /// # Panics
    ///
    /// Panics if the store holds a degraded (failed-to-materialize) shard;
    /// use [`FilterStore::save_to`] for the typed error.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.save_to(&mut out)
            .expect("store is degraded or unserializable");
        out
    }

    /// Revives a store from a manifest written by [`FilterStore::save_to`]
    /// — possibly on another machine. Shard filters load rebuild-free
    /// through the family's persistence codec; the returned store answers
    /// bit-identically to the one that was saved, and keeps accepting
    /// updates under its original configuration.
    pub fn open(registry: &Registry, bytes: &[u8]) -> Result<Self, FilterError> {
        let (config, routing, shards) = manifest::read(registry, bytes)?;
        let stats = Arc::new(StoreStats::default());
        Ok(Self::from_parts(registry, config, routing, shards, stats))
    }

    /// Opens the manifest file at `path` *lazily*: scans only the header,
    /// routing table, and per-shard extents (`O(shards)` small reads — a
    /// multi-gigabyte store opens in milliseconds), and materializes each
    /// shard from disk on its first query. Answers are bit-identical to
    /// [`FilterStore::open`] over the same manifest; a shard whose bytes
    /// fail validation at materialization time degrades to pass-all (no
    /// false negatives) and records the failure in
    /// [`FilterStore::stats`] and [`Shard::load_error`]. See
    /// [`crate::mapped`] for the validation model.
    pub fn open_mapped(registry: &Registry, path: &Path) -> Result<Self, FilterError> {
        let manifest = Arc::new(MappedManifest::scan(registry, path)?);
        let stats = Arc::new(StoreStats::default());
        let (config, routing, shards) = Self::lazy_parts(&manifest, &stats);
        Ok(Self {
            registry: registry.clone(),
            config: RwLock::new(config),
            stats,
            current: RwLock::new(Arc::new(Snapshot::from_parts(routing, shards, 0))),
            published_version: AtomicU64::new(0),
            writer: Mutex::new(()),
        })
    }

    /// Lazy shards (plus config and routing) over a scanned manifest.
    fn lazy_parts(
        manifest: &Arc<MappedManifest>,
        stats: &Arc<StoreStats>,
    ) -> (StoreConfig, Routing, Vec<Arc<Shard>>) {
        let shards = (0..manifest.num_shards())
            .map(|i| {
                let source = ShardSource::new(
                    Arc::clone(manifest),
                    u32::try_from(i).unwrap_or(u32::MAX),
                    Arc::clone(stats),
                );
                Arc::new(Shard::from_source(source))
            })
            .collect();
        (
            manifest.config().clone(),
            manifest.routing().clone(),
            shards,
        )
    }

    /// Hot-reloads the store from manifest `bytes`: parses and validates
    /// the whole manifest eagerly, then atomically swaps in the new
    /// snapshot (and its configuration) at `current version + 1`. In-flight
    /// queries keep their old snapshot and finish unaffected; queries
    /// taking a snapshot after the swap see only the new state. On error
    /// the store is unchanged. Returns the new version.
    pub fn reload(&self, bytes: &[u8]) -> Result<u64, FilterError> {
        let (config, routing, shards) = manifest::read(&self.registry, bytes)?;
        Ok(self.install(config, routing, shards))
    }

    /// Hot-reloads from the manifest file at `path` through the lazy
    /// mapped path (see [`FilterStore::open_mapped`]): the swap installs
    /// unmaterialized shards, so the reload itself is `O(shards)` however
    /// large the store. Returns the new version.
    pub fn reload_mapped(&self, path: &Path) -> Result<u64, FilterError> {
        let manifest = Arc::new(MappedManifest::scan(&self.registry, path)?);
        let (config, routing, shards) = Self::lazy_parts(&manifest, &self.stats);
        Ok(self.install(config, routing, shards))
    }

    /// Swaps in a fully-prepared replacement state under the writer lock.
    fn install(&self, config: StoreConfig, routing: Routing, shards: Vec<Arc<Shard>>) -> u64 {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let version = self.snapshot().version() + 1;
        *self.config.write().expect("store lock poisoned") = config;
        *self.current.write().expect("store lock poisoned") =
            Arc::new(Snapshot::from_parts(routing, shards, version));
        // ordering: Release->Acquire pairs-with published_version.load;
        // publishes the snapshot swap above to lock-free version pollers.
        self.published_version.store(version, Ordering::Release);
        self.stats.record_reload();
        version
    }

    /// The version of the most recently installed snapshot, without
    /// touching the snapshot lock. Useful as a cheap change detector: a
    /// telemetry poller or cache can compare versions and only take a real
    /// [`FilterStore::snapshot`] when the number moved. Reading version
    /// `n` here happens-after the swap that produced `n`, so a snapshot
    /// taken afterwards is at least that new.
    pub fn version(&self) -> u64 {
        // ordering: Release->Acquire pairs-with published_version.store;
        // a version observed here happens-after the swap that produced it.
        self.published_version.load(Ordering::Acquire)
    }

    /// [`Snapshot::may_contain_range`] on a fresh snapshot — convenience
    /// for one-shot callers; take a [`FilterStore::snapshot`] for query
    /// loops.
    #[must_use = "a range filter's answer is its only effect; dropping it means the query was wasted"]
    pub fn may_contain_range(&self, a: u64, b: u64) -> bool {
        self.snapshot().may_contain_range(a, b)
    }

    /// [`Snapshot::may_contain`] on a fresh snapshot.
    #[must_use = "a range filter's answer is its only effect; dropping it means the query was wasted"]
    pub fn may_contain(&self, x: u64) -> bool {
        self.snapshot().may_contain(x)
    }

    /// [`Snapshot::query_ranges`] on a fresh snapshot.
    pub fn query_ranges(&self, queries: &[(u64, u64)], out: &mut Vec<bool>) {
        self.snapshot().query_ranges(queries, out)
    }

    /// Total distinct keys in the current snapshot.
    pub fn num_keys(&self) -> usize {
        self.snapshot().num_keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafite_core::registry::FilterSpec;

    fn test_keys(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1)
            .collect()
    }

    fn grafite_config(partitioning: Partitioning) -> StoreConfig {
        StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
            .bits_per_key(14.0)
            .max_range(64)
            .partitioning(partitioning)
    }

    #[test]
    fn range_routing_covers_universe_and_is_monotone() {
        let keys = test_keys(5000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let routing = Routing::plan(Partitioning::Range { shards: 8 }, 1, &sorted);
        assert_eq!(routing.num_shards(), 8);
        assert_eq!(routing.shard_of(0), 0);
        assert_eq!(routing.shard_of(u64::MAX), 7);
        let mut last = 0;
        for &k in &sorted {
            let s = routing.shard_of(k);
            assert!(s >= last, "routing not monotone in key order");
            last = s;
            let (lo, hi) = routing.shard_span(s);
            assert!(lo <= k && k <= hi);
        }
    }

    #[test]
    fn hash_routing_balances() {
        let keys: Vec<u64> = (0..8000u64).collect(); // adversarially regular
        let routing = Routing::plan(Partitioning::Hash { shards: 8 }, 42, &keys);
        let mut counts = [0usize; 8];
        for &k in &keys {
            counts[routing.shard_of(k)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "hash shard imbalance: {counts:?}");
        }
    }

    /// Shard counts clamp to the key count: an absurd request must not
    /// truncate through the u32 hash modulus (panic) or allocate millions
    /// of empty shards.
    #[test]
    fn absurd_shard_counts_clamp_to_key_count() {
        let keys = test_keys(100);
        let registry = Registry::new();
        for partitioning in [
            Partitioning::Hash { shards: usize::MAX },
            Partitioning::Range { shards: 1 << 40 },
        ] {
            let store = FilterStore::build(&registry, grafite_config(partitioning), &keys).unwrap();
            let snap = store.snapshot();
            assert!(
                (1..=keys.len()).contains(&snap.num_shards()),
                "{partitioning:?} produced {} shards",
                snap.num_shards()
            );
            for &k in keys.iter().step_by(9) {
                assert!(snap.may_contain(k), "FN at {k}");
            }
        }
        // Empty key set: one shard, still servable and updatable.
        let store = FilterStore::build(
            &registry,
            grafite_config(Partitioning::Hash { shards: 7 }),
            &[],
        )
        .unwrap();
        assert_eq!(store.snapshot().num_shards(), 1);
        assert!(!store.may_contain_range(0, u64::MAX));
        store.apply(&[Update::Insert(42)]).unwrap();
        assert!(store.may_contain(42));
    }

    #[test]
    fn store_has_no_false_negatives_under_both_partitionings() {
        let keys = test_keys(4000);
        let registry = Registry::new();
        for partitioning in [
            Partitioning::Range { shards: 5 },
            Partitioning::Hash { shards: 5 },
        ] {
            let store = FilterStore::build(&registry, grafite_config(partitioning), &keys).unwrap();
            assert_eq!(store.num_keys(), {
                let mut s = keys.clone();
                s.sort_unstable();
                s.dedup();
                s.len()
            });
            let snap = store.snapshot();
            for &k in keys.iter().step_by(7) {
                assert!(snap.may_contain(k), "point FN at {k}");
                assert!(
                    snap.may_contain_range(k.saturating_sub(9), k),
                    "range FN at {k}"
                );
            }
        }
    }

    #[test]
    fn batch_answers_equal_singles_across_shards() {
        let keys = test_keys(3000);
        let registry = Registry::new();
        for partitioning in [
            Partitioning::Range { shards: 4 },
            Partitioning::Hash { shards: 4 },
        ] {
            let store = FilterStore::build(&registry, grafite_config(partitioning), &keys).unwrap();
            let snap = store.snapshot();
            let queries: Vec<(u64, u64)> = (0..2000u64)
                .map(|i| {
                    let a = i.wrapping_mul(0xD134_2543_DE82_EF95) >> 1;
                    (a, a.saturating_add(i % 64))
                })
                .collect();
            let mut batched = Vec::new();
            snap.query_ranges(&queries, &mut batched);
            let singles: Vec<bool> = queries
                .iter()
                .map(|&(a, b)| snap.may_contain_range(a, b))
                .collect();
            assert_eq!(batched, singles, "{partitioning:?} batch diverged");
        }
    }

    #[test]
    fn apply_rebuilds_only_dirty_shards_and_shares_the_rest() {
        let keys = test_keys(4000);
        let registry = Registry::new();
        let store = FilterStore::build(
            &registry,
            grafite_config(Partitioning::Range { shards: 8 }),
            &keys,
        )
        .unwrap();
        let before = store.snapshot();
        // One brand-new key dirties exactly one shard.
        let probe = 0xDEAD_BEEF_0000_0001;
        assert!(!before.may_contain(probe), "probe must start absent");
        let report = store.apply(&[Update::Insert(probe)]).unwrap();
        assert_eq!(report.dirty_shards, 1);
        assert_eq!(report.inserted, 1);
        assert_eq!(report.version, 1);
        let after = store.snapshot();
        assert!(after.may_contain(probe));
        // The old snapshot is immutable — it still answers false.
        assert!(!before.may_contain(probe));
        // Clean shards are the same Arc allocation, not rebuilt copies.
        let shared = before
            .shards()
            .iter()
            .zip(after.shards())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count();
        assert_eq!(shared, 7, "clean shards must be shared, not rebuilt");
    }

    #[test]
    fn apply_is_last_wins_and_idempotent() {
        let keys = test_keys(1000);
        let registry = Registry::new();
        let store = FilterStore::build(
            &registry,
            grafite_config(Partitioning::Hash { shards: 3 }),
            &keys,
        )
        .unwrap();
        let k = 0xABCD_EF01_2345_6789;
        // Insert-then-delete in one batch: net absent, nothing dirty if the
        // key was absent before.
        let report = store
            .apply(&[Update::Insert(k), Update::Delete(k)])
            .unwrap();
        assert_eq!(report.dirty_shards, 0);
        assert_eq!(
            report.version, 0,
            "clean batch must not advance the version"
        );
        // Delete-then-insert: net present.
        let report = store
            .apply(&[Update::Delete(k), Update::Insert(k)])
            .unwrap();
        assert_eq!((report.inserted, report.deleted), (1, 0));
        assert!(store.may_contain(k));
        // Re-inserting a present key is clean.
        let report = store.apply(&[Update::Insert(k)]).unwrap();
        assert_eq!(report.dirty_shards, 0);
        // Deleting it really removes it (Grafite per-shard rebuild).
        let n_before = store.num_keys();
        let report = store.apply(&[Update::Delete(k)]).unwrap();
        assert_eq!(report.deleted, 1);
        assert_eq!(store.num_keys(), n_before - 1);
    }

    #[test]
    fn failed_apply_leaves_store_unchanged() {
        let keys = test_keys(500);
        let registry = Registry::new();
        // SuRF-style floors don't exist for Grafite, so force failure via a
        // family with no registered builder in this registry.
        let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Snarf));
        assert!(FilterStore::build(&registry, config, &keys).is_err());
        // And via a rebuild that cannot succeed: budget goes invalid only
        // if config is mutated, which the API forbids — so instead check
        // atomicity with an empty-registry reload path.
        let store = FilterStore::build(
            &registry,
            grafite_config(Partitioning::Range { shards: 2 }),
            &keys,
        )
        .unwrap();
        let empty = Registry::empty();
        let reopened = FilterStore::open(&empty, &store.to_bytes());
        assert!(reopened.is_err(), "open without a loader must fail typed");
    }
}
