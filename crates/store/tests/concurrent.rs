//! Concurrent serving smoke test: N reader threads query snapshots while
//! one updater applies insert/delete batches, for **every** servable
//! family (the eleven registry specs plus StringGrafite) under both
//! partitionings.
//!
//! The property under test is the serving-side no-false-negative
//! guarantee across the snapshot swap boundary:
//!
//! * a key in the *stable core* (never updated) answers `true` in every
//!   snapshot any reader ever observes, point, range, and batch alike;
//! * as soon as `apply` returns, a fresh snapshot serves the batch;
//! * snapshots taken *before* a batch keep answering the old truth.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

use grafite_core::Parallelism;
use grafite_filters::standard_registry;
use grafite_store::{FamilySpec, FilterStore, Partitioning, StoreConfig, Update};

const READERS: usize = 4;
const ROUNDS: usize = 3;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// `n` distinct pseudo-random keys, disjoint across different `tag`s by
/// construction (tag selects a high bit pattern).
fn keys(n: usize, tag: u64) -> Vec<u64> {
    let mut state = 0x5EED ^ (tag << 8);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Clear the top bit, then stamp the tag into bits 62..61 so core
        // and volatile sets cannot collide.
        let k = (lcg(&mut state) >> 3) | (tag << 61);
        out.push(k);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Key-avoiding empty ranges for the auto-tuned families' samples.
fn sample_queries(sorted_keys: &[u64]) -> Vec<(u64, u64)> {
    let mut sample = Vec::new();
    let mut state = 3u64;
    while sample.len() < 64 {
        let a = lcg(&mut state);
        let Some(b) = a.checked_add(31) else { continue };
        let i = sorted_keys.partition_point(|&k| k < a);
        if i < sorted_keys.len() && sorted_keys[i] <= b {
            continue;
        }
        sample.push((a, b));
    }
    sample
}

fn run_family(family: FamilySpec, partitioning: Partitioning) {
    let registry = standard_registry();
    let core = keys(900, 0);
    let volatile = keys(300, 1);
    let mut all: Vec<u64> = core.iter().chain(&volatile).copied().collect();
    all.sort_unstable();
    let config = StoreConfig::new(family)
        .bits_per_key(18.0)
        .max_range(64)
        .seed(13)
        .sample(sample_queries(&all))
        .partitioning(partitioning);
    let store = FilterStore::build(&registry, config, &core)
        .unwrap_or_else(|e| panic!("{} build failed: {e}", family.label()));

    let stop = AtomicBool::new(false);
    let reader_rounds = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                let mut first = true;
                while first || !stop.load(Ordering::Relaxed) {
                    first = false;
                    let snap = store.snapshot();
                    // Core keys are never updated: no snapshot may ever
                    // lose one, whichever side of a swap it was taken on.
                    for &k in core.iter().step_by(5) {
                        assert!(
                            snap.may_contain(k),
                            "{}: reader saw point FN on core key {k} at version {}",
                            family.label(),
                            snap.version()
                        );
                    }
                    let queries: Vec<(u64, u64)> = core
                        .iter()
                        .step_by(7)
                        .map(|&k| (k.saturating_sub(3), k.saturating_add(3)))
                        .collect();
                    let mut out = Vec::new();
                    snap.query_ranges(&queries, &mut out);
                    assert!(
                        out.iter().all(|&hit| hit),
                        "{}: reader saw batch FN on a core-anchored range at version {}",
                        family.label(),
                        snap.version()
                    );
                    reader_rounds.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        s.spawn(|| {
            for _ in 0..ROUNDS {
                let inserts: Vec<Update> = volatile.iter().map(|&k| Update::Insert(k)).collect();
                let report = store.apply(&inserts).unwrap();
                assert_eq!(report.inserted, volatile.len(), "{}", family.label());
                let snap = store.snapshot();
                for &k in &volatile {
                    assert!(
                        snap.may_contain(k),
                        "{}: applied insert of {k} not visible in the next snapshot",
                        family.label()
                    );
                }
                // A snapshot taken before the delete keeps the old truth.
                let before_delete = store.snapshot();
                let deletes: Vec<Update> = volatile.iter().map(|&k| Update::Delete(k)).collect();
                let report = store.apply(&deletes).unwrap();
                assert_eq!(report.deleted, volatile.len(), "{}", family.label());
                for &k in volatile.iter().step_by(17) {
                    assert!(
                        before_delete.may_contain(k),
                        "{}: pre-delete snapshot lost {k} after the swap",
                        family.label()
                    );
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    assert_eq!(store.num_keys(), core.len(), "{}", family.label());
    assert!(
        reader_rounds.load(Ordering::Relaxed) >= READERS,
        "every reader must complete at least one full scan"
    );
}

/// `apply` rebuilding dirty shards on an 8-thread fan-out must not
/// disturb concurrent readers: the same no-false-negative guarantee as
/// above, but with the rebuild itself running parallel shard builds, so
/// the snapshot swap happens under maximal construction concurrency.
#[test]
fn parallel_apply_under_concurrent_readers() {
    let registry = standard_registry();
    let core = keys(2000, 0);
    let volatile = keys(600, 1);
    let mut all: Vec<u64> = core.iter().chain(&volatile).copied().collect();
    all.sort_unstable();
    let config = StoreConfig::new(FamilySpec::ALL[0])
        .bits_per_key(18.0)
        .max_range(64)
        .seed(13)
        .sample(sample_queries(&all))
        .partitioning(Partitioning::Range { shards: 8 })
        .parallelism(Parallelism::fixed(8));
    let store = FilterStore::build(&registry, config, &core).unwrap();

    let stop = AtomicBool::new(false);
    thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                let mut first = true;
                while first || !stop.load(Ordering::Relaxed) {
                    first = false;
                    let snap = store.snapshot();
                    for &k in core.iter().step_by(3) {
                        assert!(
                            snap.may_contain(k),
                            "reader saw FN on core key {k} during a parallel apply \
                             (snapshot version {})",
                            snap.version()
                        );
                    }
                }
            });
        }
        s.spawn(|| {
            for _ in 0..ROUNDS {
                let inserts: Vec<Update> = volatile.iter().map(|&k| Update::Insert(k)).collect();
                let report = store.apply(&inserts).unwrap();
                assert_eq!(report.inserted, volatile.len());
                let snap = store.snapshot();
                assert!(volatile.iter().all(|&k| snap.may_contain(k)));
                let deletes: Vec<Update> = volatile.iter().map(|&k| Update::Delete(k)).collect();
                let report = store.apply(&deletes).unwrap();
                assert_eq!(report.deleted, volatile.len());
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    assert_eq!(store.num_keys(), core.len());
    // The telemetry gauge must reflect the 8-way fan-out request (capped
    // by how many shards the final batch actually dirtied).
    let workers = store.stats().rebuild_workers();
    assert!(
        (1..=8).contains(&workers),
        "rebuild_workers gauge out of range: {workers}"
    );
}

#[test]
fn concurrent_readers_see_no_false_negatives_range_partitioned() {
    for family in FamilySpec::ALL {
        run_family(family, Partitioning::Range { shards: 3 });
    }
}

#[test]
fn concurrent_readers_see_no_false_negatives_hash_partitioned() {
    for family in FamilySpec::ALL {
        run_family(family, Partitioning::Hash { shards: 3 });
    }
}
