//! Exhaustive-interleaving models of the store's lock-free protocols,
//! run under the offline loom shim (`shims/loom`).
//!
//! `FilterStore` itself uses `std` atomics, so these tests model the
//! *protocols* — the same operation sequences `store.rs` and `stats.rs`
//! perform, expressed over shim atomics — and assert their invariants
//! under every schedule the shim can produce:
//!
//! - **snapshot-swap version publish** (`apply`/`install` +
//!   [`grafite_store::FilterStore::version`]): the snapshot slot is
//!   written *before* `published_version`, so a poller that observes
//!   version `n` and then reads the slot never sees a snapshot older
//!   than `n`.
//! - **degraded flag** ([`grafite_store::StoreStats::is_degraded`]): the
//!   error counter is incremented *before* the flag is set, so observing
//!   the flag implies a non-zero error count.
//! - **telemetry counters**: concurrent relaxed increments lose nothing.
//!
//! The shim explores at sequential-consistency granularity — it verifies
//! the operation *ordering* within each protocol, while the TSan CI leg
//! covers the weak-memory side on the real types.

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

/// The `apply`/`install` shape: swap the snapshot (modeled as an atomic
/// slot holding the snapshot's version), then publish the version with
/// `Release`. A reader that sees `published_version == n` must find the
/// slot at version `>= n`.
#[test]
fn snapshot_swap_publishes_version_after_slot() {
    let executions = loom::model(|| {
        let slot = Arc::new(AtomicU64::new(0)); // `current: RwLock<Arc<Snapshot>>`
        let published = Arc::new(AtomicU64::new(0)); // `published_version`
        let writer = {
            let (slot, published) = (Arc::clone(&slot), Arc::clone(&published));
            thread::spawn(move || {
                // install(): *self.current.write() = next; then Release.
                slot.store(1, Ordering::Release);
                published.store(1, Ordering::Release);
                slot.store(2, Ordering::Release);
                published.store(2, Ordering::Release);
            })
        };
        // version() then snapshot(): the snapshot may be *newer* than the
        // polled version (a later swap landed in between) but never older.
        let v = published.load(Ordering::Acquire);
        let snap = slot.load(Ordering::Acquire);
        assert!(
            snap >= v,
            "observed published_version {v} but a snapshot at {snap}"
        );
        writer.join().unwrap();
    });
    assert!(executions > 1, "the model must branch, got {executions}");
}

/// The `record_load_error` shape: increment `shard_load_errors`, then set
/// `degraded` with `Release`. Observing the flag implies the count.
#[test]
fn degraded_flag_implies_recorded_error() {
    loom::model(|| {
        let errors = Arc::new(AtomicU64::new(0));
        let degraded = Arc::new(AtomicBool::new(false));
        let failing_loader = {
            let (errors, degraded) = (Arc::clone(&errors), Arc::clone(&degraded));
            thread::spawn(move || {
                errors.fetch_add(1, Ordering::Relaxed);
                degraded.store(true, Ordering::Release);
            })
        };
        if degraded.load(Ordering::Acquire) {
            assert!(
                errors.load(Ordering::Relaxed) >= 1,
                "degraded observed with a zero error count"
            );
        }
        failing_loader.join().unwrap();
    });
}

/// Concurrent relaxed counter increments (the telemetry/stats shape)
/// lose no updates in any interleaving.
#[test]
fn concurrent_counter_increments_all_land() {
    loom::model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        counter.fetch_add(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    });
}

/// Two writers racing `install` under the writer lock are serialized in
/// the real store; model the lock with a CAS turnstile and check the
/// published version is monotone from any reader's point of view.
#[test]
fn version_is_monotone_under_racing_writers() {
    loom::model(|| {
        let published = Arc::new(AtomicU64::new(0));
        let writer = {
            let published = Arc::clone(&published);
            thread::spawn(move || {
                // Each install publishes current + 1 (writer-lock-serial).
                let v = published.load(Ordering::Acquire);
                published.store(v + 1, Ordering::Release);
                let v = published.load(Ordering::Acquire);
                published.store(v + 1, Ordering::Release);
            })
        };
        let first = published.load(Ordering::Acquire);
        let second = published.load(Ordering::Acquire);
        assert!(
            second >= first,
            "version went backwards: {first} then {second}"
        );
        writer.join().unwrap();
    });
}
