//! Parallel builds must be byte-identical to serial builds.
//!
//! The construction pipeline (partitioned radix sort, chunked Elias–Fano
//! assembly, shard fan-out) is parallel only in *schedule*, never in
//! *outcome*: for every servable family, both partitionings, and any
//! thread count, `FilterStore::build` and `apply` must produce the same
//! serialized manifest as a forced-serial run. This is what lets CI pin
//! `GRAFITE_THREADS=1` on one leg and diff artifacts across legs.

use grafite_core::{GrafiteFilter, Parallelism, PersistentFilter};
use grafite_filters::standard_registry;
use grafite_store::{FamilySpec, FilterStore, Partitioning, StoreConfig, Update};

/// Thread counts exercised against the serial reference: an even split,
/// a prime that divides nothing, and the paper's 8-thread sweet spot.
const THREADS: [usize; 3] = [2, 7, 8];

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

fn keys(n: usize, tag: u64) -> Vec<u64> {
    let mut state = 0xDE7E_2213 ^ (tag << 9);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        out.push((lcg(&mut state) >> 3) | (tag << 61));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Key-avoiding ranges for the auto-tuned families' workload samples.
fn sample_queries(sorted_keys: &[u64]) -> Vec<(u64, u64)> {
    let mut sample = Vec::new();
    let mut state = 11u64;
    while sample.len() < 64 {
        let a = lcg(&mut state);
        let Some(b) = a.checked_add(47) else { continue };
        let i = sorted_keys.partition_point(|&k| k < a);
        if i < sorted_keys.len() && sorted_keys[i] <= b {
            continue;
        }
        sample.push((a, b));
    }
    sample
}

fn config(family: FamilySpec, partitioning: Partitioning, sample: &[(u64, u64)]) -> StoreConfig {
    StoreConfig::new(family)
        .bits_per_key(16.0)
        .max_range(64)
        .seed(97)
        .sample(sample.to_vec())
        .partitioning(partitioning)
}

fn build_bytes(
    family: FamilySpec,
    partitioning: Partitioning,
    parallelism: Parallelism,
    core: &[u64],
    sample: &[(u64, u64)],
) -> Vec<u8> {
    let registry = standard_registry();
    let store = FilterStore::build(
        &registry,
        config(family, partitioning, sample).parallelism(parallelism),
        core,
    )
    .unwrap_or_else(|e| panic!("{} build failed: {e}", family.label()));
    store.to_bytes()
}

/// `build` then one insert batch and one delete batch; returns the
/// manifest after each step so `apply`'s rebuild path is diffed too.
fn apply_bytes(
    family: FamilySpec,
    partitioning: Partitioning,
    parallelism: Parallelism,
    core: &[u64],
    volatile: &[u64],
    sample: &[(u64, u64)],
) -> [Vec<u8>; 2] {
    let registry = standard_registry();
    let store = FilterStore::build(
        &registry,
        config(family, partitioning, sample).parallelism(parallelism),
        core,
    )
    .unwrap_or_else(|e| panic!("{} build failed: {e}", family.label()));
    let inserts: Vec<Update> = volatile.iter().map(|&k| Update::Insert(k)).collect();
    store.apply(&inserts).unwrap();
    let after_insert = store.to_bytes();
    let deletes: Vec<Update> = volatile.iter().map(|&k| Update::Delete(k)).collect();
    store.apply(&deletes).unwrap();
    [after_insert, store.to_bytes()]
}

fn run_family(family: FamilySpec, partitioning: Partitioning) {
    let core = keys(1200, 0);
    let volatile = keys(300, 1);
    let all: Vec<u64> = {
        let mut v: Vec<u64> = core.iter().chain(&volatile).copied().collect();
        v.sort_unstable();
        v
    };
    let sample = sample_queries(&all);

    let serial = build_bytes(family, partitioning, Parallelism::serial(), &core, &sample);
    let serial_applied = apply_bytes(
        family,
        partitioning,
        Parallelism::serial(),
        &core,
        &volatile,
        &sample,
    );
    for threads in THREADS {
        let par = Parallelism::fixed(threads);
        assert_eq!(
            build_bytes(family, partitioning, par, &core, &sample),
            serial,
            "{} {partitioning:?}: {threads}-thread build differs from serial",
            family.label()
        );
        let applied = apply_bytes(family, partitioning, par, &core, &volatile, &sample);
        assert_eq!(
            applied,
            serial_applied,
            "{} {partitioning:?}: {threads}-thread apply differs from serial",
            family.label()
        );
    }
}

#[test]
fn all_families_byte_identical_range_partitioned() {
    for family in FamilySpec::ALL {
        run_family(family, Partitioning::Range { shards: 5 });
    }
}

#[test]
fn all_families_byte_identical_hash_partitioned() {
    for family in FamilySpec::ALL {
        run_family(family, Partitioning::Hash { shards: 5 });
    }
}

/// `Parallelism::auto()` (whatever `GRAFITE_THREADS` / core count says)
/// must also match the forced-serial manifest. On CI's forced-serial leg
/// this pins the env override; elsewhere it pins the default thread pool.
#[test]
fn auto_parallelism_matches_forced_serial() {
    let core = keys(1500, 2);
    let sample = sample_queries(&core);
    let family = FamilySpec::ALL[0];
    for partitioning in [
        Partitioning::Range { shards: 4 },
        Partitioning::Hash { shards: 4 },
    ] {
        assert_eq!(
            build_bytes(family, partitioning, Parallelism::auto(), &core, &sample),
            build_bytes(family, partitioning, Parallelism::serial(), &core, &sample),
            "auto-parallelism build differs from serial under {partitioning:?}"
        );
    }
}

/// Filter-level byte identity at a size that actually crosses the
/// parallel thresholds (`PARTITION_PARALLEL_MIN` / `EF_PARALLEL_MIN`
/// are both 1 << 15), so the partitioned sort, parallel hashing, and
/// chunked Elias–Fano assembly all genuinely run.
#[test]
fn grafite_filter_parallel_paths_byte_identical() {
    let n = (1 << 15) + 4113;
    let mut state = 0xFEED_F00Du64;
    let keys: Vec<u64> = (0..n).map(|_| lcg(&mut state)).collect();
    let serial = GrafiteFilter::builder()
        .bits_per_key(14.0)
        .parallelism(Parallelism::serial())
        .build(&keys)
        .unwrap()
        .to_bytes();
    for threads in THREADS {
        let parallel = GrafiteFilter::builder()
            .bits_per_key(14.0)
            .parallelism(Parallelism::fixed(threads))
            .build(&keys)
            .unwrap()
            .to_bytes();
        assert_eq!(
            parallel, serial,
            "{threads}-thread GrafiteFilter build differs from serial at n={n}"
        );
    }
}
