//! A word-packed bit vector with bit-field access, generic over its
//! backing word store.

use crate::io::{DecodeError, WordSource, WordWriter};
use crate::{div_ceil, WORD_BITS};

/// A plain bit vector packed into `u64` words.
///
/// Supports single-bit get/set, appending, and reading/writing arbitrary
/// bit-fields of up to 64 bits that may straddle a word boundary. This is the
/// mutable building block; query-time structures freeze it into an
/// [`crate::RsBitVec`] for rank/select support.
///
/// The backing store is generic: `BitVec` (= `BitVec<Vec<u64>>`) owns its
/// words and is mutable; [`BitVecView`] borrows them from a loaded buffer
/// and is read-only — the zero-copy load path of the persistence layer. All
/// read operations live on the generic impl and behave identically on both.
#[derive(Clone, Debug, Default)]
pub struct BitVec<S = Vec<u64>> {
    words: S,
    len: usize,
}

/// A read-only bit vector borrowing its words from a loaded `&[u64]` buffer.
pub type BitVecView<'a> = BitVec<&'a [u64]>;

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; div_ceil(len.max(1), WORD_BITS)],
            len,
        }
    }

    /// Wraps already-packed `words` as a bit vector of `len` bits — the
    /// word-level construction path used when the caller sets bits directly
    /// in a word buffer (e.g. Elias–Fano's high-bits build) instead of
    /// going through per-bit [`BitVec::set`] calls.
    ///
    /// # Panics
    /// Panics if the word count does not match `len`, or if any bit at a
    /// position `>= len` is set (the invariant `count_ones` relies on).
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            div_ceil(len.max(1), WORD_BITS),
            "word count does not match bit length"
        );
        let tail_zero = if len == 0 {
            words[0] == 0
        } else if len % WORD_BITS != 0 {
            words[len / WORD_BITS] >> (len % WORD_BITS) == 0
        } else {
            true
        };
        assert!(tail_zero, "bits beyond len must be zero");
        Self { words, len }
    }

    /// Creates an empty bit vector with room for `cap` bits.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            words: Vec::with_capacity(div_ceil(cap.max(1), WORD_BITS)),
            len: 0,
        }
    }

    /// Sets the bit at `pos` to `value`.
    ///
    /// # Panics
    /// Panics if `pos >= len`.
    #[inline]
    pub fn set(&mut self, pos: usize, value: bool) {
        assert!(pos < self.len, "bit index {pos} out of range {}", self.len);
        let w = &mut self.words[pos / WORD_BITS];
        let mask = 1u64 << (pos % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn push(&mut self, value: bool) {
        let word = self.len / WORD_BITS;
        if word == self.words.len() {
            self.words.push(0);
        }
        if value {
            self.words[word] |= 1u64 << (self.len % WORD_BITS);
        }
        self.len += 1;
    }

    /// Appends the `width` low bits of `value` (LSB first).
    ///
    /// # Panics
    /// Panics if `width > 64` or if `value` has bits above `width`.
    pub fn push_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} > 64");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} wider than {width} bits"
            );
        }
        if width == 0 {
            return;
        }
        let pos = self.len;
        self.len += width;
        let needed = div_ceil(self.len, WORD_BITS);
        while self.words.len() < needed {
            self.words.push(0);
        }
        let word = pos / WORD_BITS;
        let offset = pos % WORD_BITS;
        self.words[word] |= value << offset;
        if offset + width > WORD_BITS {
            self.words[word + 1] |= value >> (WORD_BITS - offset);
        }
    }

    /// Writes the `width` low bits of `value` at bit position `pos`.
    pub fn set_bits(&mut self, pos: usize, value: u64, width: usize) {
        assert!(width <= 64);
        assert!(pos + width <= self.len, "bit field out of range");
        if width < 64 {
            assert!(value < (1u64 << width));
        }
        if width == 0 {
            return;
        }
        let word = pos / WORD_BITS;
        let offset = pos % WORD_BITS;
        let mask = if width == 64 {
            !0u64
        } else {
            (1u64 << width) - 1
        };
        self.words[word] = (self.words[word] & !(mask << offset)) | (value << offset);
        if offset + width > WORD_BITS {
            let spill = WORD_BITS - offset;
            let hi_mask = mask >> spill;
            self.words[word + 1] = (self.words[word + 1] & !hi_mask) | (value >> spill);
        }
    }
}

impl<S: AsRef<[u64]>> BitVec<S> {
    /// Number of bits stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= len`.
    #[inline]
    pub fn get(&self, pos: usize) -> bool {
        assert!(pos < self.len, "bit index {pos} out of range {}", self.len);
        (self.words.as_ref()[pos / WORD_BITS] >> (pos % WORD_BITS)) & 1 == 1
    }

    /// Reads `width` bits starting at bit `pos` (LSB first).
    ///
    /// # Panics
    /// Panics if `width > 64` or the field extends past the end.
    #[inline]
    pub fn get_bits(&self, pos: usize, width: usize) -> u64 {
        assert!(width <= 64);
        assert!(pos + width <= self.len, "bit field out of range");
        if width == 0 {
            return 0;
        }
        let words = self.words.as_ref();
        let word = pos / WORD_BITS;
        let offset = pos % WORD_BITS;
        let mask = if width == 64 {
            !0u64
        } else {
            (1u64 << width) - 1
        };
        if offset + width <= WORD_BITS {
            (words[word] >> offset) & mask
        } else {
            ((words[word] >> offset) | (words[word + 1] << (WORD_BITS - offset))) & mask
        }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        // Trailing bits beyond `len` are maintained as zero, so a plain
        // popcount over the words is exact.
        self.words
            .as_ref()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// The backing words. Bits at positions `>= len` are zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        self.words.as_ref()
    }

    /// The `i`-th backing word.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words.as_ref()[i]
    }

    /// Iterator over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Position of the first set bit at or after `pos`, if any.
    pub fn next_one(&self, pos: usize) -> Option<usize> {
        if pos >= self.len {
            return None;
        }
        let words = self.words.as_ref();
        let mut word_idx = pos / WORD_BITS;
        let mut w = words[word_idx] & (!0u64 << (pos % WORD_BITS));
        loop {
            if w != 0 {
                let p = word_idx * WORD_BITS + w.trailing_zeros() as usize;
                return if p < self.len { Some(p) } else { None };
            }
            word_idx += 1;
            if word_idx >= words.len() {
                return None;
            }
            w = words[word_idx];
        }
    }

    /// Iterator over the positions of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .as_ref()
            .iter()
            .enumerate()
            .flat_map(move |(wi, &w)| {
                let mut w = w;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let tz = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some(wi * WORD_BITS + tz)
                    }
                })
            })
    }

    /// Heap size of the structure in bits (for space accounting).
    pub fn size_in_bits(&self) -> usize {
        self.words.as_ref().len() * WORD_BITS
    }

    /// Copies into an owning `BitVec` (views become independent of their
    /// buffer).
    pub fn to_owned_bits(&self) -> BitVec {
        BitVec {
            words: self.words.as_ref().to_vec(),
            len: self.len,
        }
    }

    /// Serializes as `[len, n_words, words…]`, returning the word count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.len as u64)?;
        w.prefixed(self.words.as_ref())?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`BitVec::write_to`] wrote. The storage kind follows
    /// the source: a [`crate::io::WordCursor`] yields a borrowed
    /// [`BitVecView`], a [`crate::io::ReadSource`] an owned `BitVec` — no
    /// directories or bits are recomputed either way.
    pub fn read_from<Src: WordSource<Storage = S>>(src: &mut Src) -> Result<Self, DecodeError> {
        let len = src.length()?;
        let n_words = src.length()?;
        let min_words = div_ceil(len, WORD_BITS);
        // `zeros(0)` legitimately carries one word for zero bits; anything
        // beyond one slack word is malformed.
        if n_words < min_words || n_words > div_ceil(len.max(1), WORD_BITS) {
            return Err(DecodeError::Invalid("bit vector word count"));
        }
        let words = src.take(n_words)?;
        {
            let ws = words.as_ref();
            // Enforce the "bits beyond len are zero" invariant `count_ones`
            // relies on.
            let tail_ok = if len % WORD_BITS != 0 {
                ws.get(len / WORD_BITS)
                    .is_some_and(|&w| w >> (len % WORD_BITS) == 0)
            } else {
                true
            } && ws.get(min_words..).into_iter().flatten().all(|&w| w == 0);
            if !tail_ok {
                return Err(DecodeError::Invalid("bit vector tail bits set"));
            }
        }
        Ok(Self { words, len })
    }
}

impl<S1: AsRef<[u64]>, S2: AsRef<[u64]>> PartialEq<BitVec<S2>> for BitVec<S1> {
    /// Equality across backing stores: a view equals the owned vector it was
    /// parsed from.
    fn eq(&self, other: &BitVec<S2>) -> bool {
        self.len == other.len && self.words.as_ref() == other.words.as_ref()
    }
}

impl<S: AsRef<[u64]>> Eq for BitVec<S> {}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut bv = BitVec::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            bv.push(b);
        }
        assert_eq!(bv.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bv.get(i), b, "bit {i}");
        }
        assert_eq!(bv.count_ones(), pattern.iter().filter(|&&b| b).count());
    }

    #[test]
    fn zeros_then_set() {
        let mut bv = BitVec::zeros(130);
        assert_eq!(bv.count_ones(), 0);
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert_eq!(bv.count_ones(), 3);
        assert!(bv.get(64));
        bv.set(64, false);
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    fn bit_fields_straddle_words() {
        let mut bv = BitVec::new();
        bv.push_bits(0b1011, 4);
        bv.push_bits(0xFFFF_FFFF_FFFF, 48); // crosses into word 0 tail
        bv.push_bits(0x3, 2);
        bv.push_bits(0xDEAD_BEEF, 32); // straddles words 0/1
        assert_eq!(bv.get_bits(0, 4), 0b1011);
        assert_eq!(bv.get_bits(4, 48), 0xFFFF_FFFF_FFFF);
        assert_eq!(bv.get_bits(52, 2), 0x3);
        assert_eq!(bv.get_bits(54, 32), 0xDEAD_BEEF);
    }

    #[test]
    fn set_bits_roundtrip() {
        let mut bv = BitVec::zeros(256);
        bv.set_bits(60, 0xABCD, 16); // straddles boundary
        bv.set_bits(0, 0x5, 3);
        bv.set_bits(192, u64::MAX, 64);
        assert_eq!(bv.get_bits(60, 16), 0xABCD);
        assert_eq!(bv.get_bits(0, 3), 0x5);
        assert_eq!(bv.get_bits(192, 64), u64::MAX);
        // Overwrite.
        bv.set_bits(60, 0x1234, 16);
        assert_eq!(bv.get_bits(60, 16), 0x1234);
    }

    #[test]
    fn iter_ones_matches() {
        let mut bv = BitVec::zeros(300);
        let positions = [0usize, 1, 63, 64, 65, 127, 128, 255, 299];
        for &p in &positions {
            bv.set(p, true);
        }
        let got: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(got, positions);
    }

    #[test]
    fn push_bits_width_edge_cases() {
        let mut bv = BitVec::new();
        bv.push_bits(0, 0); // no-op
        assert_eq!(bv.len(), 0);
        bv.push_bits(u64::MAX, 64);
        assert_eq!(bv.len(), 64);
        assert_eq!(bv.get_bits(0, 64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bv = BitVec::zeros(10);
        bv.get(10);
    }

    #[test]
    fn serialization_roundtrips_owned_and_view() {
        use crate::io::{ReadSource, WordCursor};
        for bv in [
            BitVec::new(),
            BitVec::zeros(0),
            BitVec::zeros(130),
            (0..777).map(|i| i % 5 == 0).collect::<BitVec>(),
        ] {
            let mut bytes = Vec::new();
            let mut w = WordWriter::new(&mut bytes);
            let written = bv.write_to(&mut w).unwrap();
            assert_eq!(written * 8, bytes.len());

            let owned = BitVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
            assert_eq!(owned, bv);

            let words: Vec<u64> = bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let view = BitVecView::read_from(&mut WordCursor::new(&words)).unwrap();
            assert_eq!(view, bv);
            if !bv.is_empty() {
                assert_eq!(view.get(0), bv.get(0));
                assert_eq!(view.count_ones(), bv.count_ones());
            }
        }
    }

    #[test]
    fn corrupt_tail_bits_rejected() {
        use crate::io::WordCursor;
        // len = 3 but a bit beyond position 3 is set.
        let words = [3u64, 1, 0b1000];
        assert_eq!(
            BitVecView::read_from(&mut WordCursor::new(&words)),
            Err(DecodeError::Invalid("bit vector tail bits set"))
        );
        // Word count below what len needs.
        let words = [100u64, 1, 0];
        assert_eq!(
            BitVecView::read_from(&mut WordCursor::new(&words)),
            Err(DecodeError::Invalid("bit vector word count"))
        );
    }
}

#[cfg(test)]
mod next_one_tests {
    use super::*;

    #[test]
    fn next_one_scans_correctly() {
        let mut bv = BitVec::zeros(300);
        for &p in &[5usize, 64, 65, 190, 299] {
            bv.set(p, true);
        }
        assert_eq!(bv.next_one(0), Some(5));
        assert_eq!(bv.next_one(5), Some(5));
        assert_eq!(bv.next_one(6), Some(64));
        assert_eq!(bv.next_one(65), Some(65));
        assert_eq!(bv.next_one(66), Some(190));
        assert_eq!(bv.next_one(191), Some(299));
        assert_eq!(bv.next_one(299), Some(299));
        assert_eq!(bv.next_one(300), None);
    }

    #[test]
    fn next_one_empty_and_full() {
        let bv = BitVec::zeros(100);
        assert_eq!(bv.next_one(0), None);
        let bv: BitVec = (0..100).map(|_| true).collect();
        for p in 0..100 {
            assert_eq!(bv.next_one(p), Some(p));
        }
    }

    #[test]
    fn next_one_matches_linear_scan() {
        let mut state = 7u64;
        let bv: BitVec = (0..1000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state & 0x11 == 0
            })
            .collect();
        for pos in 0..1000 {
            let expect = (pos..1000).find(|&i| bv.get(i));
            assert_eq!(bv.next_one(pos), expect, "pos {pos}");
        }
    }
}
