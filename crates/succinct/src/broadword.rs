//! Branch-reduced bit tricks on single 64-bit words.
//!
//! The only non-trivial primitive needed by the rank/select structures is
//! *select within a word*: the position of the `k`-th set bit. We use the
//! classic broadword formulation (Vigna, "Broadword implementation of
//! rank/select queries"): SWAR byte-wise prefix popcounts locate the byte
//! holding the `k`-th one without a single branch, then a 2 KiB
//! compile-time table resolves the position within that byte. This is
//! straight-line code — roughly a dozen arithmetic ops plus one always-hot
//! table load — replacing the earlier six-round halving search whose
//! serial dependency chain sat on every `select` call of the query hot
//! path.

const ONES_STEP_8: u64 = 0x0101_0101_0101_0101;
const MSBS_STEP_8: u64 = 0x8080_8080_8080_8080;

/// `SELECT_IN_BYTE[(k << 8) | b]` = position of the `k`-th (0-based) set
/// bit of the byte `b` (8 if out of range). Built at compile time.
const SELECT_IN_BYTE: [u8; 2048] = {
    let mut table = [8u8; 2048];
    let mut b = 0usize;
    while b < 256 {
        let mut k = 0usize;
        let mut pos = 0usize;
        while pos < 8 {
            if (b >> pos) & 1 == 1 {
                table[(k << 8) | b] = pos as u8;
                k += 1;
            }
            pos += 1;
        }
        b += 1;
    }
    table
};

/// Returns the position (0-based, from the LSB) of the `k`-th (0-based) set
/// bit of `word`.
///
/// # Panics
/// In debug builds, panics if `word` has fewer than `k + 1` set bits.
#[inline]
pub fn select_in_word(word: u64, k: u32) -> u32 {
    debug_assert!(
        k < word.count_ones(),
        "select_in_word: rank {k} out of range for word with {} ones",
        word.count_ones()
    );
    // Byte-wise popcounts (the SWAR popcount without the final fold)…
    let mut byte_sums = word - ((word & 0xAAAA_AAAA_AAAA_AAAA) >> 1);
    byte_sums = (byte_sums & 0x3333_3333_3333_3333) + ((byte_sums >> 2) & 0x3333_3333_3333_3333);
    byte_sums = (byte_sums + (byte_sums >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    // …turned into prefix sums: byte i of `byte_sums` now holds the number
    // of ones in bytes 0..=i.
    byte_sums = byte_sums.wrapping_mul(ONES_STEP_8);
    // Per-byte parallel `prefix <= k` comparison; the popcount of the MSB
    // flags is the index of the byte containing the k-th one, times one.
    let k_step_8 = (k as u64) * ONES_STEP_8;
    let place = ((((k_step_8 | MSBS_STEP_8) - byte_sums) & MSBS_STEP_8).count_ones() * 8) as u64;
    let byte_rank = (k as u64) - (((byte_sums << 8) >> place) & 0xFF);
    place as u32 + SELECT_IN_BYTE[((byte_rank << 8) | ((word >> place) & 0xFF)) as usize] as u32
}

/// Returns the position of the `k`-th (0-based) **zero** bit of `word`.
#[inline]
pub fn select_zero_in_word(word: u64, k: u32) -> u32 {
    select_in_word(!word, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_select(word: u64, k: u32) -> u32 {
        let mut seen = 0;
        for i in 0..64 {
            if word & (1u64 << i) != 0 {
                if seen == k {
                    return i;
                }
                seen += 1;
            }
        }
        panic!("rank out of range");
    }

    #[test]
    fn single_bits() {
        for i in 0..64 {
            assert_eq!(select_in_word(1u64 << i, 0), i);
        }
    }

    #[test]
    fn all_ones() {
        for k in 0..64 {
            assert_eq!(select_in_word(!0u64, k), k);
        }
    }

    #[test]
    fn matches_naive_on_patterns() {
        let patterns = [
            0x8000_0000_0000_0001u64,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            0xF0F0_F0F0_F0F0_F0F0,
            0x0123_4567_89AB_CDEF,
            0xFFFF_0000_FFFF_0000,
            u64::MAX,
            1,
            1 << 63,
        ];
        for &w in &patterns {
            for k in 0..w.count_ones() {
                assert_eq!(select_in_word(w, k), naive_select(w, k), "w={w:#x} k={k}");
            }
        }
    }

    #[test]
    fn pseudo_random_words() {
        // SplitMix64-style generator keeps the test dependency-free.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2000 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let w = z ^ (z >> 31);
            if w == 0 {
                continue;
            }
            for k in 0..w.count_ones() {
                assert_eq!(select_in_word(w, k), naive_select(w, k));
            }
        }
    }

    #[test]
    fn select_zero() {
        assert_eq!(select_zero_in_word(0, 0), 0);
        assert_eq!(select_zero_in_word(0, 63), 63);
        assert_eq!(select_zero_in_word(0b1011, 0), 2);
        assert_eq!(select_zero_in_word(u64::MAX - 1, 0), 0);
    }
}
