//! Branch-reduced bit tricks on single 64-bit words.
//!
//! The only non-trivial primitive needed by the rank/select structures is
//! *select within a word*: the position of the `k`-th set bit. We use a
//! portable halving search (six rounds of popcount on progressively narrower
//! halves), which needs no lookup tables and compiles to straight-line code.

/// Returns the position (0-based, from the LSB) of the `k`-th (0-based) set
/// bit of `word`.
///
/// # Panics
/// In debug builds, panics if `word` has fewer than `k + 1` set bits.
#[inline]
pub fn select_in_word(word: u64, k: u32) -> u32 {
    debug_assert!(
        k < word.count_ones(),
        "select_in_word: rank {k} out of range for word with {} ones",
        word.count_ones()
    );
    let mut w = word;
    let mut k = k;
    let mut pos = 0u32;
    // Invariant: the answer lies within the low `width` bits of `w`,
    // and equals `pos` + (position of the `k`-th one of `w`).
    let mut width = 64u32;
    while width > 1 {
        let half = width / 2;
        let lo = w & (!0u64 >> (64 - half));
        let ones_lo = lo.count_ones();
        if k >= ones_lo {
            k -= ones_lo;
            pos += half;
            w >>= half;
        } else {
            w = lo;
        }
        width = half;
    }
    pos
}

/// Returns the position of the `k`-th (0-based) **zero** bit of `word`.
#[inline]
pub fn select_zero_in_word(word: u64, k: u32) -> u32 {
    select_in_word(!word, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_select(word: u64, k: u32) -> u32 {
        let mut seen = 0;
        for i in 0..64 {
            if word & (1u64 << i) != 0 {
                if seen == k {
                    return i;
                }
                seen += 1;
            }
        }
        panic!("rank out of range");
    }

    #[test]
    fn single_bits() {
        for i in 0..64 {
            assert_eq!(select_in_word(1u64 << i, 0), i);
        }
    }

    #[test]
    fn all_ones() {
        for k in 0..64 {
            assert_eq!(select_in_word(!0u64, k), k);
        }
    }

    #[test]
    fn matches_naive_on_patterns() {
        let patterns = [
            0x8000_0000_0000_0001u64,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            0xF0F0_F0F0_F0F0_F0F0,
            0x0123_4567_89AB_CDEF,
            0xFFFF_0000_FFFF_0000,
            u64::MAX,
            1,
            1 << 63,
        ];
        for &w in &patterns {
            for k in 0..w.count_ones() {
                assert_eq!(select_in_word(w, k), naive_select(w, k), "w={w:#x} k={k}");
            }
        }
    }

    #[test]
    fn pseudo_random_words() {
        // SplitMix64-style generator keeps the test dependency-free.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2000 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let w = z ^ (z >> 31);
            if w == 0 {
                continue;
            }
            for k in 0..w.count_ones() {
                assert_eq!(select_in_word(w, k), naive_select(w, k));
            }
        }
    }

    #[test]
    fn select_zero() {
        assert_eq!(select_zero_in_word(0, 0), 0);
        assert_eq!(select_zero_in_word(0, 63), 63);
        assert_eq!(select_zero_in_word(0b1011, 0), 2);
        assert_eq!(select_zero_in_word(u64::MAX - 1, 0), 0);
    }
}
