//! The Elias–Fano encoding of monotone integer sequences, with the
//! `predecessor` operation Grafite's query algorithm is built on (paper §3).
//!
//! Given `n` non-decreasing values `z_0 <= … <= z_{n-1}` from a universe
//! `[0, universe)`, each value is split into `l = floor(log2(universe / n))`
//! low bits, stored verbatim in an [`IntVec`] `V`, and the remaining high
//! bits, encoded in negated-unary form in a bit vector `H`: bit `(z_i >> l) + i`
//! of `H` is set. The total size is `n * l + 2n + o(n)` bits, which is what
//! gives Grafite its `n log(L/eps) + 2n + o(n)` space bound (Theorem 3.4).
//!
//! # The fused hot path
//!
//! The paper's Example 3.3 locates the bucket of `y`'s high part with *two*
//! `select0` calls and then binary-searches the bucket's low parts. This
//! implementation fuses the locate into **one** `select0`: bucket `p`'s
//! elements occupy a contiguous run of ones ending right below the `p`-th
//! zero of `H`, so a word-local backward scan from that zero recovers both
//! bucket endpoints (a second `select0` is issued only for degenerate
//! multi-hundred-element buckets). The low parts are then resolved with a
//! word-addressed sequential probe — one running bit cursor over the packed
//! array — instead of a binary search that re-derives word offsets per
//! probe; buckets are a couple of elements at the paper's densities, so the
//! sequential probe wins on every real workload (a binary search remains as
//! the fallback for adversarially deep buckets). `successor` and `rank`
//! share the same machinery, and batch callers walk `H` with monotone state
//! through an [`EfCursor`] instead of restarting per probe.

use crate::intvec::IntVec;
use crate::io::{DecodeError, WordSource, WordWriter};
use crate::rs_bitvec::RsBitVec;
use crate::{BitVec, WORD_BITS};

/// Word budget of the word-local scans around a bucket's delimiting zero;
/// past it the classic `select0`/`select1` probes answer exactly. At the
/// paper's densities (a set bit every ~2–3 positions of `H`) one word
/// almost always suffices.
const RUN_SCAN_WORDS: usize = 8;

/// Buckets up to this deep take the sequential word-addressed low-bits
/// probe; deeper (adversarially duplicated) buckets binary-search instead.
const LINEAR_SCAN_MAX: usize = 48;

/// When a cursor's target bucket starts more than this many `H` bits past
/// the scan frontier, the cursor jumps with one fused probe instead of
/// walking the gap. The walk costs a few ns per set bit passed and a fused
/// probe ~100 ns, so the crossover sits at a few dozen bits of `H`.
const GALLOP_BITS: usize = 64;

/// Below this element count [`EliasFano::new_parallel`] encodes serially
/// regardless of the requested thread count — spawn overhead cannot pay
/// for itself on sequences that encode in tens of microseconds.
const EF_PARALLEL_MIN: usize = 1 << 15;

/// An Elias–Fano encoded monotone sequence supporting random access,
/// predecessor/successor, and rank.
///
/// Generic over the word store: [`EliasFanoView`] answers every query
/// straight out of a loaded `&[u64]` buffer, rank/select directories
/// included — nothing is rebuilt on load.
#[derive(Clone, Debug)]
pub struct EliasFano<S = Vec<u64>> {
    n: usize,
    universe: u64,
    low_bits: usize,
    low: IntVec<S>,
    high: RsBitVec<S>,
    first: u64,
    last: u64,
}

/// An Elias–Fano sequence borrowing its storage from a loaded buffer.
pub type EliasFanoView<'a> = EliasFano<&'a [u64]>;

impl EliasFano {
    /// Encodes `values`, which must be non-decreasing and all `< universe`.
    ///
    /// Duplicate values are allowed (the encoding is a multiset); Grafite
    /// deduplicates before encoding, as in the paper, but other users (and
    /// tests) may not.
    ///
    /// Validation is hoisted out of the encode loop: one upfront
    /// monotonicity pass plus a single bounds check on the maximum (the
    /// last element, by monotonicity); the loop itself carries only
    /// `debug_assert!`s and writes the high bits word-directly.
    ///
    /// # Panics
    /// Panics if the values are not non-decreasing or exceed the universe.
    pub fn new(values: &[u64], universe: u64) -> Self {
        Self::new_parallel(values, universe, 1)
    }

    /// [`EliasFano::new`] with a chunked parallel high-bits assembly.
    ///
    /// The high-bit positions `(z_i >> l) + i` are strictly increasing in
    /// `i`, so splitting `values` into index chunks splits `H` into word
    /// ranges that overlap only at chunk-boundary words. Each scoped worker
    /// encodes its chunk into a local word buffer; the splice ORs those
    /// buffers into the shared word array (adjacent chunks can share at
    /// most the one boundary word, and the serial encoder also ORs every
    /// bit in), so the produced words — and therefore the serialized
    /// sequence — are **bit-identical** to [`EliasFano::new`] for every
    /// input and thread count. `threads <= 1` or small inputs take the
    /// serial encode loop directly.
    ///
    /// # Panics
    /// Panics if the values are not non-decreasing or exceed the universe.
    pub fn new_parallel(values: &[u64], universe: u64, threads: usize) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                n: 0,
                universe,
                low_bits: 0,
                low: IntVec::new(0),
                high: RsBitVec::new(BitVec::zeros(1)),
                first: 0,
                last: 0,
            };
        }
        assert!(
            universe > 0,
            "universe must be positive for a non-empty set"
        );
        assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "values must be non-decreasing"
        );
        assert!(
            values[n - 1] < universe,
            "value {} >= universe {universe}",
            values[n - 1]
        );
        let low_bits = if universe > n as u64 {
            (universe / n as u64).ilog2() as usize
        } else {
            0
        };
        let mask = if low_bits == 0 {
            0
        } else {
            (1u64 << low_bits) - 1
        };

        let hi_max = (universe - 1) >> low_bits;
        let high_len = (hi_max as usize) + n + 1;
        let mut high_words = vec![0u64; crate::div_ceil(high_len.max(1), WORD_BITS)];
        let workers = threads.max(1).min(n);
        if workers > 1 && n >= EF_PARALLEL_MIN {
            let chunk_len = n.div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = values
                    .chunks(chunk_len)
                    .enumerate()
                    .map(|(c, chunk)| {
                        scope.spawn(move || {
                            let base = c * chunk_len;
                            let first_pos = (chunk[0] >> low_bits) as usize + base;
                            let last_pos =
                                (chunk[chunk.len() - 1] >> low_bits) as usize + base + chunk.len()
                                    - 1;
                            let start_word = first_pos / WORD_BITS;
                            let mut words = vec![0u64; last_pos / WORD_BITS - start_word + 1];
                            for (i, &v) in chunk.iter().enumerate() {
                                let pos = (v >> low_bits) as usize + base + i;
                                words[pos / WORD_BITS - start_word] |= 1u64 << (pos % WORD_BITS);
                            }
                            (start_word, words)
                        })
                    })
                    .collect();
                // Splice: strictly increasing positions mean only the word
                // straddling a chunk boundary is touched by two buffers, and
                // OR makes that case order-independent.
                for handle in handles {
                    let (start_word, words) = handle.join().expect("encode worker panicked");
                    for (j, w) in words.into_iter().enumerate() {
                        high_words[start_word + j] |= w;
                    }
                }
            });
        } else {
            for (i, &v) in values.iter().enumerate() {
                debug_assert!(v < universe, "value {v} >= universe {universe}");
                debug_assert!(
                    i == 0 || v >= values[i - 1],
                    "values must be non-decreasing"
                );
                let pos = (v >> low_bits) as usize + i;
                high_words[pos / WORD_BITS] |= 1u64 << (pos % WORD_BITS);
            }
        }
        let mut low = IntVec::with_capacity(low_bits, n);
        for &v in values {
            low.push(v & mask);
        }
        let high = BitVec::from_words(high_words, high_len);

        Self {
            n,
            universe,
            low_bits,
            low,
            high: RsBitVec::new(high),
            first: values[0],
            last: values[n - 1],
        }
    }

    /// Reads the **format-v1** stream (whose embedded [`RsBitVec`] stores
    /// the legacy block-index select hints): the bits and rank directory
    /// load verbatim, the select position samples are rebuilt. Owned
    /// storage only.
    pub fn read_from_v1<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
    ) -> Result<Self, DecodeError> {
        let head = Self::read_head(src)?;
        let low = IntVec::read_from(src)?;
        let high = RsBitVec::read_from_v1(src)?;
        Self::validate_parts(head, low, high)
    }
}

/// The five scalar header words of an Elias–Fano stream.
type EfHead = (usize, u64, usize, u64, u64);

impl<S: AsRef<[u64]>> EliasFano<S> {
    /// Number of stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The universe bound the sequence was built with.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The number of low bits `l` per element.
    #[inline]
    pub fn low_bit_width(&self) -> usize {
        self.low_bits
    }

    /// The smallest stored value.
    ///
    /// # Panics
    /// Panics if the sequence is empty.
    #[inline]
    pub fn first(&self) -> u64 {
        assert!(self.n > 0, "empty sequence");
        self.first
    }

    /// The largest stored value.
    ///
    /// # Panics
    /// Panics if the sequence is empty.
    #[inline]
    pub fn last(&self) -> u64 {
        assert!(self.n > 0, "empty sequence");
        self.last
    }

    /// Random access: the `i`-th smallest stored value.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.n, "index {i} out of range {}", self.n);
        let hi = (self.high.select1(i) - i) as u64;
        (hi << self.low_bits) | self.low.get(i)
    }

    #[inline]
    fn low_mask(&self) -> u64 {
        if self.low_bits == 0 {
            0
        } else {
            (1u64 << self.low_bits) - 1
        }
    }

    /// Fused bucket locate: index range `[start, end)` of the elements with
    /// high part `p`, plus the `H` position of bucket `p`'s delimiting
    /// zero — from **one** `select0`. The bucket's ones sit contiguously
    /// right below that zero (element `i` lives at bit `hi_i + i`), so a
    /// word-local backward run scan recovers `start`; only a degenerate
    /// bucket deeper than `RUN_SCAN_WORDS` words falls back to the second
    /// probe.
    #[inline]
    fn bucket_one_probe(&self, p: u64) -> (usize, usize, usize) {
        let p = p as usize;
        let zpos = self.high.select0(p);
        let end = zpos - p;
        let words = self.high.bits().words();
        let mut run = 0usize;
        let mut pos = zpos;
        let mut budget = RUN_SCAN_WORDS;
        while pos > 0 {
            let w_idx = (pos - 1) / WORD_BITS;
            let used = (pos - 1) % WORD_BITS + 1;
            let chunk = words[w_idx] << (WORD_BITS - used);
            let ones_at_top = chunk.leading_ones() as usize;
            if ones_at_top < used {
                return (end - (run + ones_at_top), end, zpos);
            }
            run += used;
            pos -= used;
            budget -= 1;
            if budget == 0 {
                let start = if p == 0 {
                    0
                } else {
                    self.high.select0(p - 1) - (p - 1)
                };
                return (start, end, zpos);
            }
        }
        (end - run, end, zpos)
    }

    /// First index in `[start, end)` whose low part passes `y_lo` — past
    /// equal lows when `include_equal` (predecessor's partition), at the
    /// first `>= y_lo` otherwise (successor/rank). Sequential
    /// word-addressed probe for real-world bucket depths, binary search for
    /// adversarial ones.
    #[inline]
    fn low_partition(&self, start: usize, end: usize, y_lo: u64, include_equal: bool) -> usize {
        if start == end {
            return start;
        }
        let width = self.low_bits;
        if width == 0 {
            // Every low is zero, and so is y_lo.
            return if include_equal { end } else { start };
        }
        if end - start > LINEAR_SCAN_MAX {
            let (mut lo, mut hi) = (start, end);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let v = self.low.get(mid);
                if v < y_lo || (include_equal && v == y_lo) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            return lo;
        }
        // The word-addressed sequential probe is the dispatched
        // `simd::low_partition` kernel — vectorized (gather + variable
        // shifts) where the CPU allows, the same running-cursor scalar
        // loop otherwise.
        crate::simd::low_partition(self.low.raw_words(), width, start, end, y_lo, include_equal)
    }

    /// `predecessor` with the element's index — the shared core of
    /// [`EliasFano::predecessor`] and the cursor's gallop jumps.
    fn pred_entry(&self, y: u64) -> Option<(usize, u64)> {
        if self.n == 0 || y < self.first {
            return None;
        }
        if y >= self.last {
            return Some((self.n - 1, self.last));
        }
        let p = y >> self.low_bits;
        let y_lo = y & self.low_mask();
        let (start, end, zpos) = self.bucket_one_probe(p);
        let lo = self.low_partition(start, end, y_lo, true);
        if lo > start {
            return Some((lo - 1, (p << self.low_bits) | self.low.get(lo - 1)));
        }
        if start == 0 {
            return None;
        }
        // No candidate in bucket p: the answer is element start-1, whose
        // one is the first set bit below the zero delimiting bucket p from
        // below (at position zpos - bucket_size - 1). Word-local backward
        // scan, with the classic select1 as the long-gap fallback.
        let idx = start - 1;
        let words = self.high.bits().words();
        let mut pos = zpos - (end - start) - 1;
        let mut budget = RUN_SCAN_WORDS;
        while pos > 0 {
            let w_idx = (pos - 1) / WORD_BITS;
            let used = (pos - 1) % WORD_BITS + 1;
            let chunk = words[w_idx] << (WORD_BITS - used);
            if chunk != 0 {
                let one_pos = pos - 1 - chunk.leading_zeros() as usize;
                let hi = (one_pos - idx) as u64;
                return Some((idx, (hi << self.low_bits) | self.low.get(idx)));
            }
            pos -= used;
            budget -= 1;
            if budget == 0 {
                return Some((idx, self.get(idx)));
            }
        }
        unreachable!("start > 0 guarantees a preceding element")
    }

    /// The largest stored value `<= y`, or `None` if every value is `> y`.
    ///
    /// This is the `predecessor` of the paper's Section 3, on the fused
    /// single-probe path described in the module docs: one `select0`, a
    /// word-local bucket scan, and a word-addressed low-bits probe.
    #[inline]
    pub fn predecessor(&self, y: u64) -> Option<u64> {
        self.pred_entry(y).map(|(_, v)| v)
    }

    /// The seed implementation of `predecessor` — two `select0` probes plus
    /// a binary search through [`IntVec::get`] — kept as the measured
    /// baseline for the fused path. Benches and equivalence tests call it;
    /// it is not part of the public API surface.
    #[doc(hidden)]
    pub fn predecessor_two_probe(&self, y: u64) -> Option<u64> {
        if self.n == 0 || y < self.first {
            return None;
        }
        if y >= self.last {
            return Some(self.last);
        }
        let p = y >> self.low_bits;
        let y_lo = y & self.low_mask();
        let (start, end) = self.bucket_two_select(p);
        let (mut lo, mut hi) = (start, end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.low.get(mid) <= y_lo {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo > start {
            Some((p << self.low_bits) | self.low.get(lo - 1))
        } else if start > 0 {
            Some(self.get(start - 1))
        } else {
            None
        }
    }

    /// The seed's two-probe bucket locate, serving only
    /// [`EliasFano::predecessor_two_probe`].
    #[inline]
    fn bucket_two_select(&self, p: u64) -> (usize, usize) {
        let p = p as usize;
        let start = if p == 0 {
            0
        } else {
            self.high.select0(p - 1) - (p - 1)
        };
        let end = self.high.select0(p) - p;
        (start, end)
    }

    /// The smallest stored value `>= y`, or `None` if every value is `< y`.
    pub fn successor(&self, y: u64) -> Option<u64> {
        if self.n == 0 || y > self.last {
            return None;
        }
        if y <= self.first {
            return Some(self.first);
        }
        let p = y >> self.low_bits;
        let y_lo = y & self.low_mask();
        let (start, end, zpos) = self.bucket_one_probe(p);
        let lo = self.low_partition(start, end, y_lo, false);
        if lo < end {
            return Some((p << self.low_bits) | self.low.get(lo));
        }
        // First element of a later bucket; `end < n` is guaranteed because
        // y < last here. Its one is the first set bit after zpos: forward
        // word scan, select1 as the long-gap fallback.
        let idx = end;
        let words = self.high.bits().words();
        let mut w_idx = (zpos + 1) / WORD_BITS;
        let mut w = words[w_idx] & (!0u64 << ((zpos + 1) % WORD_BITS));
        let mut budget = RUN_SCAN_WORDS;
        loop {
            if w != 0 {
                let one_pos = w_idx * WORD_BITS + w.trailing_zeros() as usize;
                let hi = (one_pos - idx) as u64;
                return Some((hi << self.low_bits) | self.low.get(idx));
            }
            budget -= 1;
            if budget == 0 {
                return Some(self.get(idx));
            }
            w_idx += 1;
            w = words[w_idx];
        }
    }

    /// Number of stored values strictly smaller than `y`.
    ///
    /// Combined with `predecessor`, this provides the approximate range-count
    /// extension of the paper (Section 3, last paragraph): the number of
    /// stored values in `[a, b]` is `rank(b + 1) - rank(a)`.
    pub fn rank(&self, y: u64) -> usize {
        if self.n == 0 || y <= self.first {
            return 0;
        }
        if y > self.last {
            return self.n;
        }
        let p = y >> self.low_bits;
        let y_lo = y & self.low_mask();
        let (start, end, _) = self.bucket_one_probe(p);
        self.low_partition(start, end, y_lo, false)
    }

    /// Whether any stored value lies in the closed interval `[a, b]`.
    #[inline]
    pub fn any_in_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b);
        match self.predecessor(b) {
            Some(v) => v >= a,
            None => false,
        }
    }

    /// A stateful cursor for resolving a **non-decreasing** sequence of
    /// predecessor probes in one forward pass — see [`EfCursor`].
    pub fn cursor(&self) -> EfCursor<'_, S> {
        let words = self.high.bits().words();
        EfCursor {
            ef: self,
            idx: 0,
            word_idx: 0,
            word: words.first().copied().unwrap_or(0),
            prev: None,
            #[cfg(debug_assertions)]
            last_y: 0,
        }
    }

    /// Iterator over the stored values in non-decreasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.high
            .bits()
            .iter_ones()
            .enumerate()
            .map(move |(i, pos)| (((pos - i) as u64) << self.low_bits) | self.low.get(i))
    }

    /// Total heap size in bits (low parts + high bits + rank/select
    /// directories). This is the quantity reported as "space" in the
    /// experiments.
    pub fn size_in_bits(&self) -> usize {
        self.low.size_in_bits() + self.high.size_in_bits()
    }

    /// Serializes as `[n, universe, low_bits, first, last] + low + high`.
    /// Returns the word count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.n as u64)?;
        w.word(self.universe)?;
        w.word(self.low_bits as u64)?;
        w.word(self.first)?;
        w.word(self.last)?;
        self.low.write_to(w)?;
        self.high.write_to(w)?;
        Ok(w.words_written() - before)
    }

    fn read_head<Src: WordSource<Storage = S>>(src: &mut Src) -> Result<EfHead, DecodeError> {
        let n = src.length()?;
        let universe = src.word()?;
        let low_bits = src.length()?;
        if low_bits >= 64 {
            return Err(DecodeError::Invalid("Elias-Fano low-bit width"));
        }
        let first = src.word()?;
        let last = src.word()?;
        Ok((n, universe, low_bits, first, last))
    }

    fn validate_parts(
        head: EfHead,
        low: IntVec<S>,
        high: RsBitVec<S>,
    ) -> Result<Self, DecodeError> {
        let (n, universe, low_bits, first, last) = head;
        if low.len() != n || low.width() != low_bits {
            return Err(DecodeError::Invalid("Elias-Fano low array shape"));
        }
        if high.count_ones() != n {
            return Err(DecodeError::Invalid("Elias-Fano high bit count"));
        }
        if n > 0 && (first > last || last >= universe) {
            return Err(DecodeError::Invalid("Elias-Fano bounds"));
        }
        Ok(Self {
            n,
            universe,
            low_bits,
            low,
            high,
            first,
            last,
        })
    }

    /// Reads back what [`EliasFano::write_to`] wrote; storage kind follows
    /// the source, so a [`crate::io::WordCursor`] yields a zero-copy
    /// [`EliasFanoView`] ready to answer `predecessor` queries without any
    /// rebuilding. For format-v1 streams use [`EliasFano::read_from_v1`].
    pub fn read_from<Src: WordSource<Storage = S>>(src: &mut Src) -> Result<Self, DecodeError> {
        let head = Self::read_head(src)?;
        let low = IntVec::read_from(src)?;
        let high = RsBitVec::read_from(src)?;
        Self::validate_parts(head, low, high)
    }
}

/// A stateful scanner resolving a **non-decreasing** sequence of
/// `predecessor` probes with monotone state: the cursor remembers its
/// position in `H` and the last element it decoded, so a batch of sorted
/// probes walks the high bits once instead of restarting a probe per query.
/// Gaps larger than a couple of kilobits are skipped with one fused probe
/// (galloping), so sparse batches never degrade to a full scan.
///
/// Answers are bit-identical to [`EliasFano::predecessor`]; feeding probes
/// out of order is a contract violation (debug-asserted).
pub struct EfCursor<'a, S: AsRef<[u64]> = Vec<u64>> {
    ef: &'a EliasFano<S>,
    /// Element index of the next undecoded element.
    idx: usize,
    /// Word index of the scan frontier in `H`.
    word_idx: usize,
    /// The frontier word with already-consumed bits cleared.
    word: u64,
    /// Last consumed element as `(index, H position)` — its value decodes
    /// lazily, once per answered probe, never once per element walked.
    prev: Option<(usize, usize)>,
    #[cfg(debug_assertions)]
    last_y: u64,
}

impl<S: AsRef<[u64]>> EfCursor<'_, S> {
    /// The largest stored value `<= y`. Probes must be non-decreasing
    /// across calls on the same cursor.
    pub fn predecessor(&mut self, y: u64) -> Option<u64> {
        #[cfg(debug_assertions)]
        {
            debug_assert!(y >= self.last_y, "cursor probes must be non-decreasing");
            self.last_y = y;
        }
        let ef = self.ef;
        if ef.n == 0 || y < ef.first {
            return None;
        }
        if y >= ef.last {
            return Some(ef.last);
        }
        let p = y >> ef.low_bits;
        let y_lo = y & ef.low_mask();
        // Gallop: bucket p's delimiting zero sits at H position
        // p + |{elements below bucket p+1}| >= p + idx. If that is past the
        // frontier by more than the walk/probe crossover, one fused probe
        // beats walking the gap.
        if (p as usize + self.idx).saturating_sub(self.word_idx * WORD_BITS) > GALLOP_BITS {
            let (idx, v) = ef.pred_entry(y).expect("y >= first implies a predecessor");
            let pos = ((v >> ef.low_bits) as usize) + idx;
            self.prev = Some((idx, pos));
            self.reposition_after(pos, idx);
            return Some(v);
        }
        let words = ef.high.bits().words();
        while self.idx < ef.n {
            if self.word == 0 {
                // Zero-run skip through H (vectorized where available):
                // idx < n guarantees a set bit remains ahead.
                let nz = crate::simd::next_nonzero_word(words, self.word_idx + 1)
                    .expect("H holds a set bit for every remaining element");
                self.word_idx = nz;
                self.word = words[nz];
            }
            // Whole-word consume: element indices rise one per set bit, so
            // `hi = pos - idx` is non-decreasing along the walk. If even the
            // *last* one of the frontier word lands in a bucket below p,
            // every one in the word is a predecessor of y and the word can
            // be accepted wholesale — bit-identical to stepping, without
            // the per-bit loop.
            let ones = self.word.count_ones() as usize;
            let last_pos =
                self.word_idx * WORD_BITS + (WORD_BITS - 1 - self.word.leading_zeros() as usize);
            if ((last_pos - (self.idx + ones - 1)) as u64) < p {
                self.prev = Some((self.idx + ones - 1, last_pos));
                self.idx += ones;
                self.word = 0;
                continue;
            }
            let pos = self.word_idx * WORD_BITS + self.word.trailing_zeros() as usize;
            let hi = (pos - self.idx) as u64;
            if hi > p {
                break; // this and every later element exceeds y
            }
            // Elements below bucket p are `<= y` by construction; only
            // bucket p's own elements need their low bits compared.
            if hi == p && ef.low.get(self.idx) > y_lo {
                break;
            }
            self.prev = Some((self.idx, pos));
            self.word &= self.word - 1;
            self.idx += 1;
        }
        self.prev
            .map(|(i, pos)| (((pos - i) as u64) << ef.low_bits) | ef.low.get(i))
    }

    /// The PR 5 per-bit frontier walk, kept verbatim as the measured
    /// baseline for the word-consuming walk above (mirroring
    /// [`EliasFano::predecessor_two_probe`]). Benches and equivalence tests
    /// call it; it is not part of the public API surface.
    #[doc(hidden)]
    pub fn predecessor_bitwise(&mut self, y: u64) -> Option<u64> {
        #[cfg(debug_assertions)]
        {
            debug_assert!(y >= self.last_y, "cursor probes must be non-decreasing");
            self.last_y = y;
        }
        let ef = self.ef;
        if ef.n == 0 || y < ef.first {
            return None;
        }
        if y >= ef.last {
            return Some(ef.last);
        }
        let p = y >> ef.low_bits;
        let y_lo = y & ef.low_mask();
        if (p as usize + self.idx).saturating_sub(self.word_idx * WORD_BITS) > GALLOP_BITS {
            let (idx, v) = ef.pred_entry(y).expect("y >= first implies a predecessor");
            let pos = ((v >> ef.low_bits) as usize) + idx;
            self.prev = Some((idx, pos));
            self.reposition_after(pos, idx);
            return Some(v);
        }
        let words = ef.high.bits().words();
        while self.idx < ef.n {
            while self.word == 0 {
                self.word_idx += 1;
                self.word = words[self.word_idx];
            }
            let pos = self.word_idx * WORD_BITS + self.word.trailing_zeros() as usize;
            let hi = (pos - self.idx) as u64;
            if hi > p {
                break;
            }
            if hi == p && ef.low.get(self.idx) > y_lo {
                break;
            }
            self.prev = Some((self.idx, pos));
            self.word &= self.word - 1;
            self.idx += 1;
        }
        self.prev
            .map(|(i, pos)| (((pos - i) as u64) << ef.low_bits) | ef.low.get(i))
    }

    /// Moves the frontier to just past the element at H position `pos`.
    fn reposition_after(&mut self, pos: usize, idx: usize) {
        self.idx = idx + 1;
        self.word_idx = pos / WORD_BITS;
        let consumed = pos % WORD_BITS + 1;
        let w = self.ef.high.bits().words()[self.word_idx];
        self.word = if consumed == WORD_BITS {
            0
        } else {
            w & (!0u64 << consumed)
        };
    }
}

impl<S1: AsRef<[u64]>, S2: AsRef<[u64]>> PartialEq<EliasFano<S2>> for EliasFano<S1> {
    fn eq(&self, other: &EliasFano<S2>) -> bool {
        self.n == other.n
            && self.universe == other.universe
            && self.low_bits == other.low_bits
            && self.first == other.first
            && self.last == other.last
            && self.low == other.low
            && self.high.bits() == other.high.bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn reference_predecessor(set: &BTreeSet<u64>, y: u64) -> Option<u64> {
        set.range(..=y).next_back().copied()
    }

    fn reference_successor(set: &BTreeSet<u64>, y: u64) -> Option<u64> {
        set.range(y..).next().copied()
    }

    fn check(values: &[u64], universe: u64, probes: impl Iterator<Item = u64>) {
        let ef = EliasFano::new(values, universe);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        assert_eq!(ef.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "get({i})");
        }
        let collected: Vec<u64> = ef.iter().collect();
        assert_eq!(collected, values);
        let mut sorted_probes = Vec::new();
        for y in probes {
            let y = y.min(universe - 1);
            sorted_probes.push(y);
            let expect = reference_predecessor(&set, y);
            assert_eq!(ef.predecessor(y), expect, "pred({y})");
            assert_eq!(ef.predecessor_two_probe(y), expect, "pred2({y})");
            assert_eq!(ef.successor(y), reference_successor(&set, y), "succ({y})");
            let expect_rank = values.iter().filter(|&&v| v < y).count();
            assert_eq!(ef.rank(y), expect_rank, "rank({y})");
        }
        // The cursor answers the same probes identically when sorted, on
        // both the word-consuming walk and the per-bit baseline.
        sorted_probes.sort_unstable();
        let mut cur = ef.cursor();
        let mut cur_bitwise = ef.cursor();
        for &y in &sorted_probes {
            let expect = reference_predecessor(&set, y);
            assert_eq!(cur.predecessor(y), expect, "cursor pred({y})");
            assert_eq!(
                cur_bitwise.predecessor_bitwise(y),
                expect,
                "cursor bitwise pred({y})"
            );
        }
    }

    #[test]
    fn paper_example_3_2() {
        // Hash codes of Example 3.2: sorted h(S) with r = 100.
        let codes = [6u64, 14, 32, 51, 53, 55, 66, 70, 91, 94];
        let ef = EliasFano::new(&codes, 100);
        // l = floor(log2(100 / 10)) = 3, exactly as in Figure 2.
        assert_eq!(ef.low_bit_width(), 3);
        // Example 3.3: predecessor(52) = 51 (= z_4 in 1-based indexing).
        assert_eq!(ef.predecessor(52), Some(51));
        // And the query [44, 47] hashes to [49, 52]: pred(52)=51 >= 49, so the
        // structure reports "not empty" — the paper's false positive.
        assert!(ef.any_in_range(49, 52));
        check(&codes, 100, 0..100);
    }

    #[test]
    fn empty_sequence() {
        let ef = EliasFano::new(&[], 1000);
        assert!(ef.is_empty());
        assert_eq!(ef.predecessor(500), None);
        assert_eq!(ef.successor(500), None);
        assert_eq!(ef.rank(500), 0);
        assert!(!ef.any_in_range(0, 999));
        assert_eq!(ef.cursor().predecessor(500), None);
    }

    #[test]
    fn single_value() {
        let ef = EliasFano::new(&[42], 100);
        assert_eq!(ef.predecessor(41), None);
        assert_eq!(ef.predecessor(42), Some(42));
        assert_eq!(ef.predecessor(99), Some(42));
        assert_eq!(ef.successor(42), Some(42));
        assert_eq!(ef.successor(43), None);
        assert_eq!(ef.first(), 42);
        assert_eq!(ef.last(), 42);
    }

    #[test]
    fn duplicates() {
        let values = [5u64, 5, 5, 9, 9, 20];
        check(&values, 32, 0..32);
    }

    /// Adversarially deep buckets: enough duplicates to exhaust both the
    /// backward run scan and the linear low probe, forcing the second
    /// select0 and the binary-search fallbacks.
    #[test]
    fn degenerate_buckets() {
        let mut values = vec![100_000u64; 3000];
        values.extend([100_001u64; 70]);
        values.extend((0..200u64).map(|i| 500_000 + i * 1000));
        values.sort_unstable();
        check(&values, 1_000_000, (0..2000u64).map(|i| i * 499));
    }

    #[test]
    fn dense_universe() {
        // universe == n: zero low bits.
        let values: Vec<u64> = (0..64).collect();
        check(&values, 64, 0..64);
    }

    #[test]
    fn value_at_universe_edge() {
        let values = [0u64, u64::MAX - 1];
        let ef = EliasFano::new(&values, u64::MAX);
        assert_eq!(ef.predecessor(u64::MAX - 1), Some(u64::MAX - 1));
        assert_eq!(ef.predecessor(1), Some(0));
        assert_eq!(ef.successor(1), Some(u64::MAX - 1));
    }

    fn serialized(ef: &EliasFano) -> Vec<u8> {
        use crate::io::WordWriter;
        let mut bytes = Vec::new();
        ef.write_to(&mut WordWriter::new(&mut bytes)).unwrap();
        bytes
    }

    /// The parallel encoder's whole contract: serialized output is
    /// byte-identical to the serial encoder's for every thread count, over
    /// sequence shapes that exercise every chunk-boundary case — sparse
    /// (wide low bits), dense (`low_bits == 0`), duplicate-heavy (many
    /// positions landing in shared words), and clustered.
    #[test]
    fn parallel_encode_is_byte_identical() {
        let n = EF_PARALLEL_MIN + 1031;
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let shapes: Vec<(Vec<u64>, u64)> = vec![
            // Sparse: wide low bits.
            {
                let mut v: Vec<u64> = (0..n).map(|_| next() % (1u64 << 50)).collect();
                v.sort_unstable();
                (v, 1u64 << 50)
            },
            // Dense: universe == n, zero low bits.
            ((0..n as u64).collect(), n as u64),
            // Duplicate-heavy: many equal values share high-bit buckets.
            {
                let mut v: Vec<u64> = (0..n).map(|_| next() % 512).collect();
                v.sort_unstable();
                (v, 512)
            },
            // Clustered: long runs of near-equal values around chunk joins.
            {
                let mut v: Vec<u64> = (0..n as u64).map(|i| (i / 97) * 1_000_003).collect();
                v.sort_unstable();
                let max = *v.last().unwrap();
                (v, max + 1)
            },
        ];
        for (i, (values, universe)) in shapes.iter().enumerate() {
            let serial = serialized(&EliasFano::new(values, *universe));
            for threads in [2usize, 3, 7, 8, 64] {
                let parallel = serialized(&EliasFano::new_parallel(values, *universe, threads));
                assert_eq!(serial, parallel, "shape {i} threads {threads}");
            }
        }
    }

    /// Below the parallel threshold (and at threads=1) `new_parallel` is
    /// exactly `new`, including on empty input.
    #[test]
    fn parallel_encode_small_and_serial_fallbacks() {
        let values = [6u64, 14, 32, 51, 53, 55, 66, 70, 91, 94];
        let serial = serialized(&EliasFano::new(&values, 100));
        for threads in [1usize, 8] {
            assert_eq!(
                serial,
                serialized(&EliasFano::new_parallel(&values, 100, threads))
            );
        }
        let empty = serialized(&EliasFano::new(&[], 1000));
        assert_eq!(empty, serialized(&EliasFano::new_parallel(&[], 1000, 8)));
    }

    #[test]
    fn clustered_values() {
        let mut values = Vec::new();
        for base in [0u64, 10_000, 10_001, 500_000, 999_999] {
            values.push(base);
        }
        check(&values, 1_000_000, (0..1000).map(|i| i * 997));
    }

    #[test]
    fn pseudo_random_bulk() {
        let mut state = 999u64;
        let mut values: Vec<u64> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state % 1_000_000
            })
            .collect();
        values.sort_unstable();
        let probes: Vec<u64> = (0..3000u64).map(|i| (i * 337) % 1_000_000).collect();
        check(&values, 1_000_000, probes.into_iter());
    }

    /// The cursor's gallop path: sorted probes with kilobit-scale gaps in H
    /// between them must answer identically to the scalar fused path.
    #[test]
    fn cursor_gallops_across_sparse_regions() {
        let values: Vec<u64> = (0..2000u64).map(|i| i * 131_071).collect();
        let universe = 2000 * 131_071 + 1;
        let ef = EliasFano::new(&values, universe);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        let mut probes: Vec<u64> = (0..4000u64).map(|i| (i * 7_919_999) % universe).collect();
        probes.sort_unstable();
        let mut cur = ef.cursor();
        for &y in &probes {
            assert_eq!(
                cur.predecessor(y),
                reference_predecessor(&set, y),
                "gallop pred({y})"
            );
        }
    }

    #[test]
    fn serialization_roundtrips_owned_and_view() {
        use crate::io::{ReadSource, WordCursor, WordWriter};
        let mut state = 999u64;
        let mut values: Vec<u64> = (0..3000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state % 5_000_000
            })
            .collect();
        values.sort_unstable();
        for (vals, universe) in [
            (values.as_slice(), 5_000_000u64),
            (&[][..], 100),
            (&[42][..], 100),
        ] {
            let ef = EliasFano::new(vals, universe);
            let mut bytes = Vec::new();
            ef.write_to(&mut WordWriter::new(&mut bytes)).unwrap();

            let owned = EliasFano::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
            assert_eq!(owned, ef);
            let words: Vec<u64> = bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let view = EliasFanoView::read_from(&mut WordCursor::new(&words)).unwrap();
            assert_eq!(view, ef);
            // The loaded structures answer the paper's operations
            // bit-identically, without having rebuilt anything.
            for y in (0..universe).step_by((universe as usize / 500).max(1)) {
                assert_eq!(owned.predecessor(y), ef.predecessor(y), "pred({y})");
                assert_eq!(view.predecessor(y), ef.predecessor(y), "view pred({y})");
                assert_eq!(view.successor(y), ef.successor(y), "view succ({y})");
                assert_eq!(view.rank(y), ef.rank(y), "view rank({y})");
            }
        }
    }

    #[test]
    fn space_close_to_theory() {
        let n = 10_000usize;
        let universe = 1u64 << 40;
        let values: Vec<u64> = (0..n as u64).map(|i| i * (universe / n as u64)).collect();
        let ef = EliasFano::new(&values, universe);
        // Theory: n * (log2(u/n) + 2) + o(n) bits.
        let theory = n as f64 * ((universe as f64 / n as f64).log2() + 2.0);
        let actual = ef.size_in_bits() as f64;
        assert!(
            actual < theory * 1.35,
            "EF size {actual} too far above theory {theory}"
        );
    }
}
