//! The Elias–Fano encoding of monotone integer sequences, with the
//! `predecessor` operation Grafite's query algorithm is built on (paper §3).
//!
//! Given `n` non-decreasing values `z_0 <= … <= z_{n-1}` from a universe
//! `[0, universe)`, each value is split into `l = floor(log2(universe / n))`
//! low bits, stored verbatim in an [`IntVec`] `V`, and the remaining high
//! bits, encoded in negated-unary form in a bit vector `H`: bit `(z_i >> l) + i`
//! of `H` is set. The total size is `n * l + 2n + o(n)` bits, which is what
//! gives Grafite its `n log(L/eps) + 2n + o(n)` space bound (Theorem 3.4).
//!
//! `predecessor(y)` follows the paper's three steps (Example 3.3): locate the
//! bucket of `y`'s high part with two `select0` calls, binary search the low
//! parts within the bucket, and fall back to the last element of an earlier
//! bucket via `select1` when the bucket yields nothing.

use crate::intvec::IntVec;
use crate::io::{DecodeError, WordSource, WordWriter};
use crate::rs_bitvec::RsBitVec;
use crate::BitVec;

/// An Elias–Fano encoded monotone sequence supporting random access,
/// predecessor/successor, and rank.
///
/// Generic over the word store: [`EliasFanoView`] answers every query
/// straight out of a loaded `&[u64]` buffer, rank/select directories
/// included — nothing is rebuilt on load.
#[derive(Clone, Debug)]
pub struct EliasFano<S = Vec<u64>> {
    n: usize,
    universe: u64,
    low_bits: usize,
    low: IntVec<S>,
    high: RsBitVec<S>,
    first: u64,
    last: u64,
}

/// An Elias–Fano sequence borrowing its storage from a loaded buffer.
pub type EliasFanoView<'a> = EliasFano<&'a [u64]>;

impl EliasFano {
    /// Encodes `values`, which must be non-decreasing and all `< universe`.
    ///
    /// Duplicate values are allowed (the encoding is a multiset); Grafite
    /// deduplicates before encoding, as in the paper, but other users (and
    /// tests) may not.
    ///
    /// # Panics
    /// Panics if the values are not non-decreasing or exceed the universe.
    pub fn new(values: &[u64], universe: u64) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                n: 0,
                universe,
                low_bits: 0,
                low: IntVec::new(0),
                high: RsBitVec::new(BitVec::zeros(1)),
                first: 0,
                last: 0,
            };
        }
        assert!(
            universe > 0,
            "universe must be positive for a non-empty set"
        );
        let low_bits = if universe > n as u64 {
            (universe / n as u64).ilog2() as usize
        } else {
            0
        };
        let mask = if low_bits == 0 {
            0
        } else {
            (1u64 << low_bits) - 1
        };

        let hi_max = (universe - 1) >> low_bits;
        let mut high = BitVec::zeros((hi_max as usize) + n + 1);
        let mut low = IntVec::with_capacity(low_bits, n);
        let mut prev = 0u64;
        for (i, &v) in values.iter().enumerate() {
            assert!(v < universe, "value {v} >= universe {universe}");
            assert!(i == 0 || v >= prev, "values must be non-decreasing");
            prev = v;
            high.set((v >> low_bits) as usize + i, true);
            low.push(v & mask);
        }

        Self {
            n,
            universe,
            low_bits,
            low,
            high: RsBitVec::new(high),
            first: values[0],
            last: values[n - 1],
        }
    }
}

impl<S: AsRef<[u64]>> EliasFano<S> {
    /// Number of stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The universe bound the sequence was built with.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The number of low bits `l` per element.
    #[inline]
    pub fn low_bit_width(&self) -> usize {
        self.low_bits
    }

    /// The smallest stored value.
    ///
    /// # Panics
    /// Panics if the sequence is empty.
    #[inline]
    pub fn first(&self) -> u64 {
        assert!(self.n > 0, "empty sequence");
        self.first
    }

    /// The largest stored value.
    ///
    /// # Panics
    /// Panics if the sequence is empty.
    #[inline]
    pub fn last(&self) -> u64 {
        assert!(self.n > 0, "empty sequence");
        self.last
    }

    /// Random access: the `i`-th smallest stored value.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.n, "index {i} out of range {}", self.n);
        let hi = (self.high.select1(i) - i) as u64;
        (hi << self.low_bits) | self.low.get(i)
    }

    /// Index range `[start, end)` of the elements whose high part equals `p`.
    #[inline]
    fn bucket(&self, p: u64) -> (usize, usize) {
        let p = p as usize;
        let start = if p == 0 {
            0
        } else {
            self.high.select0(p - 1) - (p - 1)
        };
        let end = self.high.select0(p) - p;
        (start, end)
    }

    /// The largest stored value `<= y`, or `None` if every value is `> y`.
    ///
    /// This is the `predecessor` of the paper's Section 3; it runs in
    /// `O(log(universe / n))` time (the binary search spans one bucket of at
    /// most `2^l` low parts).
    pub fn predecessor(&self, y: u64) -> Option<u64> {
        if self.n == 0 || y < self.first {
            return None;
        }
        if y >= self.last {
            return Some(self.last);
        }
        let y = y.min(self.universe - 1);
        let p = y >> self.low_bits;
        let y_lo = y & if self.low_bits == 0 {
            0
        } else {
            (1u64 << self.low_bits) - 1
        };
        let (start, end) = self.bucket(p);
        // Binary search for the first index in [start, end) with low > y_lo.
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.low.get(mid) <= y_lo {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo > start {
            // Predecessor lies inside the bucket.
            Some((p << self.low_bits) | self.low.get(lo - 1))
        } else if start > 0 {
            // Bucket is empty of candidates; take the last element of the
            // previous non-empty bucket (corner case of the paper, recovered
            // through select1).
            Some(self.get(start - 1))
        } else {
            None
        }
    }

    /// The smallest stored value `>= y`, or `None` if every value is `< y`.
    pub fn successor(&self, y: u64) -> Option<u64> {
        if self.n == 0 || y > self.last {
            return None;
        }
        if y <= self.first {
            return Some(self.first);
        }
        let p = y >> self.low_bits;
        let y_lo = y & if self.low_bits == 0 {
            0
        } else {
            (1u64 << self.low_bits) - 1
        };
        let (start, end) = self.bucket(p);
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.low.get(mid) < y_lo {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < end {
            Some((p << self.low_bits) | self.low.get(lo))
        } else {
            // First element of a later bucket; `end < n` is guaranteed
            // because y <= last.
            Some(self.get(end))
        }
    }

    /// Number of stored values strictly smaller than `y`.
    ///
    /// Combined with `predecessor`, this provides the approximate range-count
    /// extension of the paper (Section 3, last paragraph): the number of
    /// stored values in `[a, b]` is `rank(b + 1) - rank(a)`.
    pub fn rank(&self, y: u64) -> usize {
        if self.n == 0 || y <= self.first {
            return 0;
        }
        if y > self.last {
            return self.n;
        }
        let p = y >> self.low_bits;
        let y_lo = y & if self.low_bits == 0 {
            0
        } else {
            (1u64 << self.low_bits) - 1
        };
        let (start, end) = self.bucket(p);
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.low.get(mid) < y_lo {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Whether any stored value lies in the closed interval `[a, b]`.
    #[inline]
    pub fn any_in_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b);
        match self.predecessor(b) {
            Some(v) => v >= a,
            None => false,
        }
    }

    /// Iterator over the stored values in non-decreasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.high
            .bits()
            .iter_ones()
            .enumerate()
            .map(move |(i, pos)| (((pos - i) as u64) << self.low_bits) | self.low.get(i))
    }

    /// Total heap size in bits (low parts + high bits + rank/select
    /// directories). This is the quantity reported as "space" in the
    /// experiments.
    pub fn size_in_bits(&self) -> usize {
        self.low.size_in_bits() + self.high.size_in_bits()
    }

    /// Serializes as `[n, universe, low_bits, first, last] + low + high`.
    /// Returns the word count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.n as u64)?;
        w.word(self.universe)?;
        w.word(self.low_bits as u64)?;
        w.word(self.first)?;
        w.word(self.last)?;
        self.low.write_to(w)?;
        self.high.write_to(w)?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`EliasFano::write_to`] wrote; storage kind follows
    /// the source, so a [`crate::io::WordCursor`] yields a zero-copy
    /// [`EliasFanoView`] ready to answer `predecessor` queries without any
    /// rebuilding.
    pub fn read_from<Src: WordSource<Storage = S>>(src: &mut Src) -> Result<Self, DecodeError> {
        let n = src.length()?;
        let universe = src.word()?;
        let low_bits = src.length()?;
        if low_bits > 64 {
            return Err(DecodeError::Invalid("Elias-Fano low-bit width"));
        }
        let first = src.word()?;
        let last = src.word()?;
        let low = IntVec::read_from(src)?;
        let high = RsBitVec::read_from(src)?;
        if low.len() != n || low.width() != low_bits {
            return Err(DecodeError::Invalid("Elias-Fano low array shape"));
        }
        if high.count_ones() != n {
            return Err(DecodeError::Invalid("Elias-Fano high bit count"));
        }
        if n > 0 && (first > last || last >= universe) {
            return Err(DecodeError::Invalid("Elias-Fano bounds"));
        }
        Ok(Self {
            n,
            universe,
            low_bits,
            low,
            high,
            first,
            last,
        })
    }
}

impl<S1: AsRef<[u64]>, S2: AsRef<[u64]>> PartialEq<EliasFano<S2>> for EliasFano<S1> {
    fn eq(&self, other: &EliasFano<S2>) -> bool {
        self.n == other.n
            && self.universe == other.universe
            && self.low_bits == other.low_bits
            && self.first == other.first
            && self.last == other.last
            && self.low == other.low
            && self.high.bits() == other.high.bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn reference_predecessor(set: &BTreeSet<u64>, y: u64) -> Option<u64> {
        set.range(..=y).next_back().copied()
    }

    fn reference_successor(set: &BTreeSet<u64>, y: u64) -> Option<u64> {
        set.range(y..).next().copied()
    }

    fn check(values: &[u64], universe: u64, probes: impl Iterator<Item = u64>) {
        let ef = EliasFano::new(values, universe);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        assert_eq!(ef.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "get({i})");
        }
        let collected: Vec<u64> = ef.iter().collect();
        assert_eq!(collected, values);
        for y in probes {
            let y = y.min(universe - 1);
            assert_eq!(
                ef.predecessor(y),
                reference_predecessor(&set, y),
                "pred({y})"
            );
            assert_eq!(ef.successor(y), reference_successor(&set, y), "succ({y})");
            let expect_rank = values.iter().filter(|&&v| v < y).count();
            assert_eq!(ef.rank(y), expect_rank, "rank({y})");
        }
    }

    #[test]
    fn paper_example_3_2() {
        // Hash codes of Example 3.2: sorted h(S) with r = 100.
        let codes = [6u64, 14, 32, 51, 53, 55, 66, 70, 91, 94];
        let ef = EliasFano::new(&codes, 100);
        // l = floor(log2(100 / 10)) = 3, exactly as in Figure 2.
        assert_eq!(ef.low_bit_width(), 3);
        // Example 3.3: predecessor(52) = 51 (= z_4 in 1-based indexing).
        assert_eq!(ef.predecessor(52), Some(51));
        // And the query [44, 47] hashes to [49, 52]: pred(52)=51 >= 49, so the
        // structure reports "not empty" — the paper's false positive.
        assert!(ef.any_in_range(49, 52));
        check(&codes, 100, 0..100);
    }

    #[test]
    fn empty_sequence() {
        let ef = EliasFano::new(&[], 1000);
        assert!(ef.is_empty());
        assert_eq!(ef.predecessor(500), None);
        assert_eq!(ef.successor(500), None);
        assert_eq!(ef.rank(500), 0);
        assert!(!ef.any_in_range(0, 999));
    }

    #[test]
    fn single_value() {
        let ef = EliasFano::new(&[42], 100);
        assert_eq!(ef.predecessor(41), None);
        assert_eq!(ef.predecessor(42), Some(42));
        assert_eq!(ef.predecessor(99), Some(42));
        assert_eq!(ef.successor(42), Some(42));
        assert_eq!(ef.successor(43), None);
        assert_eq!(ef.first(), 42);
        assert_eq!(ef.last(), 42);
    }

    #[test]
    fn duplicates() {
        let values = [5u64, 5, 5, 9, 9, 20];
        check(&values, 32, 0..32);
    }

    #[test]
    fn dense_universe() {
        // universe == n: zero low bits.
        let values: Vec<u64> = (0..64).collect();
        check(&values, 64, 0..64);
    }

    #[test]
    fn value_at_universe_edge() {
        let values = [0u64, u64::MAX - 1];
        let ef = EliasFano::new(&values, u64::MAX);
        assert_eq!(ef.predecessor(u64::MAX - 1), Some(u64::MAX - 1));
        assert_eq!(ef.predecessor(1), Some(0));
        assert_eq!(ef.successor(1), Some(u64::MAX - 1));
    }

    #[test]
    fn clustered_values() {
        let mut values = Vec::new();
        for base in [0u64, 10_000, 10_001, 500_000, 999_999] {
            values.push(base);
        }
        check(&values, 1_000_000, (0..1000).map(|i| i * 997));
    }

    #[test]
    fn pseudo_random_bulk() {
        let mut state = 999u64;
        let mut values: Vec<u64> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state % 1_000_000
            })
            .collect();
        values.sort_unstable();
        let probes: Vec<u64> = (0..3000u64).map(|i| (i * 337) % 1_000_000).collect();
        check(&values, 1_000_000, probes.into_iter());
    }

    #[test]
    fn serialization_roundtrips_owned_and_view() {
        use crate::io::{ReadSource, WordCursor, WordWriter};
        let mut state = 999u64;
        let mut values: Vec<u64> = (0..3000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state % 5_000_000
            })
            .collect();
        values.sort_unstable();
        for (vals, universe) in [
            (values.as_slice(), 5_000_000u64),
            (&[][..], 100),
            (&[42][..], 100),
        ] {
            let ef = EliasFano::new(vals, universe);
            let mut bytes = Vec::new();
            ef.write_to(&mut WordWriter::new(&mut bytes)).unwrap();

            let owned = EliasFano::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
            assert_eq!(owned, ef);
            let words: Vec<u64> = bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let view = EliasFanoView::read_from(&mut WordCursor::new(&words)).unwrap();
            assert_eq!(view, ef);
            // The loaded structures answer the paper's operations
            // bit-identically, without having rebuilt anything.
            for y in (0..universe).step_by((universe as usize / 500).max(1)) {
                assert_eq!(owned.predecessor(y), ef.predecessor(y), "pred({y})");
                assert_eq!(view.predecessor(y), ef.predecessor(y), "view pred({y})");
                assert_eq!(view.successor(y), ef.successor(y), "view succ({y})");
                assert_eq!(view.rank(y), ef.rank(y), "view rank({y})");
            }
        }
    }

    #[test]
    fn space_close_to_theory() {
        let n = 10_000usize;
        let universe = 1u64 << 40;
        let values: Vec<u64> = (0..n as u64).map(|i| i * (universe / n as u64)).collect();
        let ef = EliasFano::new(&values, universe);
        // Theory: n * (log2(u/n) + 2) + o(n) bits.
        let theory = n as f64 * ((universe as f64 / n as f64).log2() + 2.0);
        let actual = ef.size_in_bits() as f64;
        assert!(
            actual < theory * 1.35,
            "EF size {actual} too far above theory {theory}"
        );
    }
}
