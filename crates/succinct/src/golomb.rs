//! A block-compressed monotone sequence with Golomb–Rice coded gaps.
//!
//! This is the storage layout of the SNARF paper \[36\]: the positions of the
//! 1-bits of a sparse bit array are delta-encoded with Rice codes and grouped
//! into fixed-size blocks; an uncompressed directory stores, per block, the
//! first value and the bit offset of the block payload, enabling a binary
//! search to the right block followed by a bounded sequential decode.

use crate::bitvec::BitVec;
use crate::io::{DecodeError, WordSource, WordWriter};

/// Number of values per compressed block (matching SNARF's engineering).
pub const DEFAULT_BLOCK_SIZE: usize = 128;

/// A monotone `u64` sequence stored as Rice-coded gaps in fixed-size blocks.
///
/// Generic over the word store like every structure in this crate;
/// [`GolombRiceSeqView`] decodes straight out of a loaded buffer.
#[derive(Clone, Debug)]
pub struct GolombRiceSeq<S = Vec<u64>> {
    n: usize,
    rice_param: usize,
    block_size: usize,
    data: BitVec<S>,
    /// Bit offset into `data` where each block's payload starts.
    block_offsets: S,
    /// First value of each block (stored verbatim, not in the payload).
    block_first: S,
    last: u64,
}

/// A Rice-coded sequence borrowing its storage from a loaded buffer.
pub type GolombRiceSeqView<'a> = GolombRiceSeq<&'a [u64]>;

impl GolombRiceSeq {
    /// Encodes a non-decreasing sequence with the given Rice parameter and
    /// block size.
    ///
    /// # Panics
    /// Panics if values are not non-decreasing, `rice_param > 63`, or
    /// `block_size == 0`.
    pub fn with_params(values: &[u64], rice_param: usize, block_size: usize) -> Self {
        assert!(rice_param < 64, "rice parameter {rice_param} too large");
        assert!(block_size > 0, "block size must be positive");
        let n = values.len();
        let mut data = BitVec::new();
        let mut block_offsets = Vec::with_capacity(n / block_size + 1);
        let mut block_first = Vec::with_capacity(n / block_size + 1);
        let mut prev = 0u64;
        for (i, &v) in values.iter().enumerate() {
            assert!(i == 0 || v >= prev, "values must be non-decreasing");
            if i % block_size == 0 {
                block_offsets.push(data.len() as u64);
                block_first.push(v);
            } else {
                let gap = v - prev;
                let q = gap >> rice_param;
                // Unary quotient: q zeros then a one.
                for _ in 0..q {
                    data.push(false);
                }
                data.push(true);
                if rice_param > 0 {
                    data.push_bits(gap & ((1u64 << rice_param) - 1), rice_param);
                }
            }
            prev = v;
        }
        Self {
            n,
            rice_param,
            block_size,
            data,
            block_offsets,
            block_first,
            last: values.last().copied().unwrap_or(0),
        }
    }

    /// Encodes with [`DEFAULT_BLOCK_SIZE`] and a Rice parameter chosen from
    /// the average gap (`floor(log2(universe / n))`), the standard
    /// near-optimal choice.
    pub fn new(values: &[u64], universe: u64) -> Self {
        let param = Self::optimal_param(values.len(), universe);
        Self::with_params(values, param, DEFAULT_BLOCK_SIZE)
    }

    /// Near-optimal Rice parameter for `n` values in `[0, universe)`.
    pub fn optimal_param(n: usize, universe: u64) -> usize {
        if n == 0 || universe <= n as u64 {
            0
        } else {
            (universe / n as u64).ilog2() as usize
        }
    }
}

impl<S: AsRef<[u64]>> GolombRiceSeq<S> {
    #[inline]
    fn offsets(&self) -> &[u64] {
        self.block_offsets.as_ref()
    }

    #[inline]
    fn firsts(&self) -> &[u64] {
        self.block_first.as_ref()
    }

    /// Number of stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The largest stored value.
    #[inline]
    pub fn last(&self) -> u64 {
        assert!(self.n > 0, "empty sequence");
        self.last
    }

    /// Decodes one gap at bit position `pos`, returning `(gap, new_pos)`.
    #[inline]
    fn decode_gap(&self, mut pos: usize) -> (u64, usize) {
        // Unary part: count zeros until the terminating one. Scan word-wise.
        let mut q = 0u64;
        loop {
            let remaining = self.data.len() - pos;
            let chunk = remaining.min(64);
            debug_assert!(chunk > 0, "ran off the end of the Rice stream");
            if chunk == 0 {
                // Unreachable on well-formed streams (the load-time offset
                // checks and the encoder both prevent it); terminate with a
                // degenerate gap rather than spinning on damaged data.
                return (q << self.rice_param, pos);
            }
            let w = self.data.get_bits(pos, chunk);
            if w == 0 {
                q += chunk as u64;
                pos += chunk;
            } else {
                let tz = w.trailing_zeros() as u64;
                q += tz;
                pos += tz as usize + 1;
                break;
            }
        }
        let mut gap = q << self.rice_param;
        if self.rice_param > 0 {
            gap |= self.data.get_bits(pos, self.rice_param);
            pos += self.rice_param;
        }
        (gap, pos)
    }

    /// The smallest stored value `>= y`, or `None`.
    pub fn successor(&self, y: u64) -> Option<u64> {
        if self.n == 0 || y > self.last {
            return None;
        }
        // Number of blocks whose first value is <= y.
        let bi = self.firsts().partition_point(|&f| f <= y);
        if bi == 0 {
            return Some(self.firsts()[0]);
        }
        let block = bi - 1;
        let mut cur = self.firsts()[block];
        if cur >= y {
            return Some(cur);
        }
        let in_block = (self.n - block * self.block_size).min(self.block_size);
        let mut pos = self.offsets()[block] as usize;
        for _ in 1..in_block {
            let (gap, new_pos) = self.decode_gap(pos);
            pos = new_pos;
            cur += gap;
            if cur >= y {
                return Some(cur);
            }
        }
        // Successor must start a later block.
        self.firsts().get(block + 1).copied()
    }

    /// Whether any stored value lies in the closed interval `[a, b]`.
    #[inline]
    pub fn any_in_range(&self, a: u64, b: u64) -> bool {
        debug_assert!(a <= b);
        match self.successor(a) {
            Some(v) => v <= b,
            None => false,
        }
    }

    /// Iterator over all stored values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let mut block = 0usize;
        let mut idx_in_block = 0usize;
        let mut pos = 0usize;
        let mut cur = 0u64;
        let mut emitted = 0usize;
        std::iter::from_fn(move || {
            if emitted == self.n {
                return None;
            }
            if idx_in_block == 0 {
                cur = self.firsts()[block];
                pos = self.offsets()[block] as usize;
            } else {
                let (gap, new_pos) = self.decode_gap(pos);
                pos = new_pos;
                cur += gap;
            }
            idx_in_block += 1;
            if idx_in_block == self.block_size {
                idx_in_block = 0;
                block += 1;
            }
            emitted += 1;
            Some(cur)
        })
    }

    /// Total heap size in bits, including the block directory.
    pub fn size_in_bits(&self) -> usize {
        self.data.size_in_bits() + (self.offsets().len() + self.firsts().len()) * 64
    }

    /// The Rice parameter used for the gap remainders.
    #[inline]
    pub fn rice_param(&self) -> usize {
        self.rice_param
    }

    /// Serializes as `[n, rice_param, block_size, last] + data +
    /// [n_blocks, offsets…] + [n_blocks, firsts…]`. Returns the word count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.n as u64)?;
        w.word(self.rice_param as u64)?;
        w.word(self.block_size as u64)?;
        w.word(self.last)?;
        self.data.write_to(w)?;
        w.prefixed(self.offsets())?;
        w.prefixed(self.firsts())?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`GolombRiceSeq::write_to`] wrote; the block
    /// directory comes back verbatim, never rebuilt.
    pub fn read_from<Src: WordSource<Storage = S>>(src: &mut Src) -> Result<Self, DecodeError> {
        let n = src.length()?;
        let rice_param = src.length()?;
        if rice_param >= 64 {
            return Err(DecodeError::Invalid("Rice parameter above 63"));
        }
        let block_size = src.length()?;
        if block_size == 0 {
            return Err(DecodeError::Invalid("zero Rice block size"));
        }
        let last = src.word()?;
        let data = BitVec::read_from(src)?;
        let n_blocks = n.div_ceil(block_size);
        let off_len = src.length()?;
        if off_len != n_blocks {
            return Err(DecodeError::Invalid("Rice block offset count"));
        }
        let block_offsets = src.take(off_len)?;
        let first_len = src.length()?;
        if first_len != n_blocks {
            return Err(DecodeError::Invalid("Rice block first-value count"));
        }
        let block_first = src.take(first_len)?;
        // Offsets are bit positions into `data`: an out-of-range one would
        // make the gap decoder read past the stream at query time. An
        // offset *equal* to `data.len()` is legitimate only for a block
        // with no gap payload (a single-value tail block).
        for (i, &off) in block_offsets.as_ref().iter().enumerate() {
            let in_block = n
                .saturating_sub(i.saturating_mul(block_size))
                .min(block_size);
            let out_of_range =
                off > data.len() as u64 || (in_block > 1 && off == data.len() as u64);
            if out_of_range {
                return Err(DecodeError::Invalid("Rice block offset out of range"));
            }
        }
        Ok(Self {
            n,
            rice_param,
            block_size,
            data,
            block_offsets,
            block_first,
            last,
        })
    }
}

impl<S1: AsRef<[u64]>, S2: AsRef<[u64]>> PartialEq<GolombRiceSeq<S2>> for GolombRiceSeq<S1> {
    fn eq(&self, other: &GolombRiceSeq<S2>) -> bool {
        self.n == other.n
            && self.rice_param == other.rice_param
            && self.block_size == other.block_size
            && self.last == other.last
            && self.data == other.data
            && self.offsets() == other.offsets()
            && self.firsts() == other.firsts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn check(values: &[u64], universe: u64) {
        for (param, bs) in [(0usize, 4usize), (3, 7), (8, 128), (13, 128)] {
            let seq = GolombRiceSeq::with_params(values, param, bs);
            let decoded: Vec<u64> = seq.iter().collect();
            assert_eq!(decoded, values, "param={param} bs={bs}");
            let set: BTreeSet<u64> = values.iter().copied().collect();
            for probe in 0..universe.min(2000) {
                let expect = set.range(probe..).next().copied();
                assert_eq!(seq.successor(probe), expect, "succ({probe}) param={param}");
            }
        }
    }

    #[test]
    fn small() {
        check(&[3, 7, 7, 20, 100, 101, 102, 900], 1000);
    }

    #[test]
    fn empty_and_single() {
        let seq = GolombRiceSeq::new(&[], 100);
        assert!(seq.is_empty());
        assert_eq!(seq.successor(0), None);
        assert!(!seq.any_in_range(0, 99));

        let seq = GolombRiceSeq::new(&[42], 100);
        assert_eq!(seq.successor(0), Some(42));
        assert_eq!(seq.successor(42), Some(42));
        assert_eq!(seq.successor(43), None);
        assert!(seq.any_in_range(40, 44));
        assert!(!seq.any_in_range(43, 99));
    }

    #[test]
    fn exact_block_boundaries() {
        let values: Vec<u64> = (0..256u64).map(|i| i * 3).collect();
        let seq = GolombRiceSeq::with_params(&values, 2, 128);
        let decoded: Vec<u64> = seq.iter().collect();
        assert_eq!(decoded, values);
        assert_eq!(seq.successor(383), Some(384));
        assert_eq!(seq.successor(765), Some(765));
        assert_eq!(seq.successor(766), None);
    }

    #[test]
    fn pseudo_random() {
        let mut state = 7u64;
        let mut values: Vec<u64> = (0..1500)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                state % 100_000
            })
            .collect();
        values.sort_unstable();
        values.dedup();
        check(&values, 2000);
        let seq = GolombRiceSeq::new(&values, 100_000);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        for probe in (0..100_000u64).step_by(97) {
            assert_eq!(seq.successor(probe), set.range(probe..).next().copied());
        }
    }

    #[test]
    fn large_gaps_small_param() {
        // Stress the unary decoder across word boundaries.
        let values = [0u64, 1 << 20, (1 << 20) + 1, 1 << 21];
        let seq = GolombRiceSeq::with_params(&values, 0, 128);
        let decoded: Vec<u64> = seq.iter().collect();
        assert_eq!(decoded, values);
        assert_eq!(seq.successor(5), Some(1 << 20));
    }

    #[test]
    fn compression_beats_raw() {
        let n = 10_000usize;
        let universe = 1u64 << 34;
        let mut state = 11u64;
        let mut values: Vec<u64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state % universe
            })
            .collect();
        values.sort_unstable();
        let seq = GolombRiceSeq::new(&values, universe);
        // Rice-coded gaps should land near log2(u/n) + 2 bits per value.
        let per_key = seq.size_in_bits() as f64 / n as f64;
        let theory = (universe as f64 / n as f64).log2() + 2.0;
        assert!(per_key < theory * 1.5, "rice {per_key} vs theory {theory}");
    }
}
