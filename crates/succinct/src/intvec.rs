//! A packed vector of fixed-width integers.

use crate::bitvec::BitVec;
use crate::io::{DecodeError, WordSource, WordWriter};

/// A vector of `len` integers, each stored in exactly `width` bits
/// (`0 <= width <= 64`).
///
/// This is the array `V` of low parts in the paper's Elias–Fano layout
/// (Figure 2), but it is generally useful: the FST uses it for value slots and
/// SNARF for spline bookkeeping. Generic over the word store like
/// [`BitVec`]; [`IntVecView`] reads straight out of a loaded buffer.
#[derive(Clone, Debug, Default)]
pub struct IntVec<S = Vec<u64>> {
    bits: BitVec<S>,
    width: usize,
    len: usize,
}

/// A packed integer vector borrowing its words from a loaded buffer.
pub type IntVecView<'a> = IntVec<&'a [u64]>;

impl IntVec {
    /// Creates an empty vector of `width`-bit integers.
    pub fn new(width: usize) -> Self {
        assert!(width <= 64, "width {width} > 64");
        Self {
            bits: BitVec::new(),
            width,
            len: 0,
        }
    }

    /// Creates an empty vector with room for `cap` values.
    pub fn with_capacity(width: usize, cap: usize) -> Self {
        assert!(width <= 64);
        Self {
            bits: BitVec::with_capacity(width * cap),
            width,
            len: 0,
        }
    }

    /// Builds from a slice, using the given width.
    ///
    /// # Panics
    /// Panics if any value does not fit in `width` bits.
    pub fn from_slice(width: usize, values: &[u64]) -> Self {
        let mut v = Self::with_capacity(width, values.len());
        for &x in values {
            v.push(x);
        }
        v
    }

    /// Appends a value.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    #[inline]
    pub fn push(&mut self, value: u64) {
        self.bits.push_bits(value, self.width);
        self.len += 1;
    }

    /// Overwrites the `i`-th value.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.bits.set_bits(i * self.width, value, self.width);
    }

    /// Smallest width able to represent `value`.
    #[inline]
    pub fn width_for(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }
}

impl<S: AsRef<[u64]>> IntVec<S> {
    /// The width in bits of each element.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the `i`-th value.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.bits.get_bits(i * self.width, self.width)
    }

    /// Iterator over the values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The raw backing words, for callers that stream fields sequentially
    /// with their own bit cursor (the Elias–Fano low-bits scan).
    #[inline]
    pub(crate) fn raw_words(&self) -> &[u64] {
        self.bits.words()
    }

    /// Heap size in bits.
    pub fn size_in_bits(&self) -> usize {
        self.bits.size_in_bits() + 128 // width + len bookkeeping
    }

    /// Serializes as `[width, len] + bits`. Returns the word count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.width as u64)?;
        w.word(self.len as u64)?;
        self.bits.write_to(w)?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`IntVec::write_to`] wrote; storage kind follows the
    /// source as in [`BitVec::read_from`].
    pub fn read_from<Src: WordSource<Storage = S>>(src: &mut Src) -> Result<Self, DecodeError> {
        let width = src.length()?;
        if width > 64 {
            return Err(DecodeError::Invalid("integer width above 64"));
        }
        let len = src.length()?;
        let bits = BitVec::read_from(src)?;
        if bits.len()
            != width
                .checked_mul(len)
                .ok_or(DecodeError::Invalid("length overflow"))?
        {
            return Err(DecodeError::Invalid("packed integer bit count"));
        }
        Ok(Self { bits, width, len })
    }
}

impl<S1: AsRef<[u64]>, S2: AsRef<[u64]>> PartialEq<IntVec<S2>> for IntVec<S1> {
    fn eq(&self, other: &IntVec<S2>) -> bool {
        self.width == other.width && self.len == other.len && self.bits == other.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for width in [0usize, 1, 3, 7, 8, 13, 31, 32, 33, 63, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..200u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) & mask)
                .collect();
            let iv = IntVec::from_slice(width, &values);
            assert_eq!(iv.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(iv.get(i), v, "width={width} i={i}");
            }
            let collected: Vec<u64> = iv.iter().collect();
            assert_eq!(collected, values);
        }
    }

    #[test]
    fn zero_width_is_all_zeros() {
        let iv = IntVec::from_slice(0, &[0, 0, 0]);
        assert_eq!(iv.len(), 3);
        assert_eq!(iv.get(2), 0);
    }

    #[test]
    fn set_overwrites() {
        let mut iv = IntVec::from_slice(10, &[1, 2, 3, 4]);
        iv.set(2, 1023);
        assert_eq!(iv.get(1), 2);
        assert_eq!(iv.get(2), 1023);
        assert_eq!(iv.get(3), 4);
    }

    #[test]
    fn width_for_values() {
        assert_eq!(IntVec::width_for(0), 0);
        assert_eq!(IntVec::width_for(1), 1);
        assert_eq!(IntVec::width_for(2), 2);
        assert_eq!(IntVec::width_for(255), 8);
        assert_eq!(IntVec::width_for(256), 9);
        assert_eq!(IntVec::width_for(u64::MAX), 64);
    }

    #[test]
    #[should_panic]
    fn push_too_wide_panics() {
        let mut iv = IntVec::new(4);
        iv.push(16);
    }

    #[test]
    fn serialization_roundtrips_owned_and_view() {
        use crate::io::{ReadSource, WordCursor};
        for width in [0usize, 5, 13, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..150u64)
                .map(|i| i.wrapping_mul(0xABCDE12345) & mask)
                .collect();
            let iv = IntVec::from_slice(width, &values);
            let mut bytes = Vec::new();
            iv.write_to(&mut WordWriter::new(&mut bytes)).unwrap();

            let owned = IntVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
            assert_eq!(owned, iv, "width {width}");
            let words: Vec<u64> = bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let view = IntVecView::read_from(&mut WordCursor::new(&words)).unwrap();
            assert_eq!(view, iv, "width {width}");
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(view.get(i), v);
            }
        }
    }

    #[test]
    fn corrupt_width_rejected() {
        use crate::io::WordCursor;
        let iv = IntVec::from_slice(8, &[1, 2, 3]);
        let mut bytes = Vec::new();
        iv.write_to(&mut WordWriter::new(&mut bytes)).unwrap();
        let mut words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        words[0] = 65;
        assert_eq!(
            IntVecView::read_from(&mut WordCursor::new(&words)),
            Err(DecodeError::Invalid("integer width above 64"))
        );
    }
}
