//! A packed vector of fixed-width integers.

use crate::bitvec::BitVec;

/// A vector of `len` integers, each stored in exactly `width` bits
/// (`0 <= width <= 64`).
///
/// This is the array `V` of low parts in the paper's Elias–Fano layout
/// (Figure 2), but it is generally useful: the FST uses it for value slots and
/// SNARF for spline bookkeeping.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntVec {
    bits: BitVec,
    width: usize,
    len: usize,
}

impl IntVec {
    /// Creates an empty vector of `width`-bit integers.
    pub fn new(width: usize) -> Self {
        assert!(width <= 64, "width {width} > 64");
        Self {
            bits: BitVec::new(),
            width,
            len: 0,
        }
    }

    /// Creates an empty vector with room for `cap` values.
    pub fn with_capacity(width: usize, cap: usize) -> Self {
        assert!(width <= 64);
        Self {
            bits: BitVec::with_capacity(width * cap),
            width,
            len: 0,
        }
    }

    /// Builds from a slice, using the given width.
    ///
    /// # Panics
    /// Panics if any value does not fit in `width` bits.
    pub fn from_slice(width: usize, values: &[u64]) -> Self {
        let mut v = Self::with_capacity(width, values.len());
        for &x in values {
            v.push(x);
        }
        v
    }

    /// The width in bits of each element.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a value.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    #[inline]
    pub fn push(&mut self, value: u64) {
        self.bits.push_bits(value, self.width);
        self.len += 1;
    }

    /// Returns the `i`-th value.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.bits.get_bits(i * self.width, self.width)
    }

    /// Overwrites the `i`-th value.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.bits.set_bits(i * self.width, value, self.width);
    }

    /// Iterator over the values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Heap size in bits.
    pub fn size_in_bits(&self) -> usize {
        self.bits.size_in_bits() + 128 // width + len bookkeeping
    }

    /// Smallest width able to represent `value`.
    #[inline]
    pub fn width_for(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for width in [0usize, 1, 3, 7, 8, 13, 31, 32, 33, 63, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..200u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) & mask)
                .collect();
            let iv = IntVec::from_slice(width, &values);
            assert_eq!(iv.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(iv.get(i), v, "width={width} i={i}");
            }
            let collected: Vec<u64> = iv.iter().collect();
            assert_eq!(collected, values);
        }
    }

    #[test]
    fn zero_width_is_all_zeros() {
        let iv = IntVec::from_slice(0, &[0, 0, 0]);
        assert_eq!(iv.len(), 3);
        assert_eq!(iv.get(2), 0);
    }

    #[test]
    fn set_overwrites() {
        let mut iv = IntVec::from_slice(10, &[1, 2, 3, 4]);
        iv.set(2, 1023);
        assert_eq!(iv.get(1), 2);
        assert_eq!(iv.get(2), 1023);
        assert_eq!(iv.get(3), 4);
    }

    #[test]
    fn width_for_values() {
        assert_eq!(IntVec::width_for(0), 0);
        assert_eq!(IntVec::width_for(1), 1);
        assert_eq!(IntVec::width_for(2), 2);
        assert_eq!(IntVec::width_for(255), 8);
        assert_eq!(IntVec::width_for(256), 9);
        assert_eq!(IntVec::width_for(u64::MAX), 64);
    }

    #[test]
    #[should_panic]
    fn push_too_wide_panics() {
        let mut iv = IntVec::new(4);
        iv.push(16);
    }
}
