//! Word-oriented serialization primitives shared by every persistent
//! structure in the workspace.
//!
//! The on-disk unit is the little-endian `u64` word: every structure's
//! encoding is a flat word sequence, so a serialized blob can be parsed
//! either *owned* (words copied out of any [`std::io::Read`] source, via
//! [`ReadSource`]) or *zero-copy* (sub-slices borrowed straight out of an
//! in-memory `&[u64]` buffer, via [`WordCursor`]). The two paths share one
//! set of `read_from` implementations through the [`WordSource`]
//! abstraction, whose associated `Storage` type is what the parsed
//! structure ends up backed by — `Vec<u64>` or `&[u64]`.

use std::io;
use std::ops::Range;
use std::sync::Arc;

/// Errors produced while decoding a word stream.
///
/// These are storage-level errors; `grafite-core` wraps them into its typed
/// `FilterError` variants at the filter boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the structure was complete.
    Truncated {
        /// Words the decoder needed.
        needed: usize,
        /// Words actually available.
        have: usize,
    },
    /// A decoded field is structurally impossible (e.g. a bit width above
    /// 64). Carries a short static description.
    Invalid(&'static str),
    /// The underlying reader failed (owned loading only).
    Io(io::ErrorKind),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated word stream: needed {needed} words, have {have}"
                )
            }
            DecodeError::Invalid(what) => write!(f, "invalid field: {what}"),
            DecodeError::Io(kind) => write!(f, "i/o error while decoding: {kind}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Folds (up to) the first eight bytes of `chunk` into a little-endian
/// word. Panic-free for any input length: missing high bytes read as zero,
/// extra bytes are ignored — callers pair it with `chunks_exact(8)` or an
/// explicit length check when exactness matters.
#[inline]
pub fn le_word(chunk: &[u8]) -> u64 {
    chunk
        .iter()
        .take(8)
        .enumerate()
        .fold(0u64, |acc, (slot, &b)| acc | (u64::from(b) << (8 * slot)))
}

/// A counting writer of little-endian `u64` words over any byte sink.
///
/// Non-generic (the sink is a `&mut dyn Write`) so persistence traits using
/// it stay object-safe.
pub struct WordWriter<'a> {
    out: &'a mut dyn io::Write,
    words: usize,
}

impl<'a> WordWriter<'a> {
    /// Wraps a byte sink.
    pub fn new(out: &'a mut dyn io::Write) -> Self {
        Self { out, words: 0 }
    }

    /// Writes one word.
    #[inline]
    pub fn word(&mut self, w: u64) -> io::Result<()> {
        self.out.write_all(&w.to_le_bytes())?;
        self.words = self.words.saturating_add(1);
        Ok(())
    }

    /// Writes a slice of words.
    pub fn words(&mut self, ws: &[u64]) -> io::Result<()> {
        for &w in ws {
            self.out.write_all(&w.to_le_bytes())?;
        }
        self.words = self.words.saturating_add(ws.len());
        Ok(())
    }

    /// Writes a length-prefixed word slice: `[len, w_0, …, w_{len-1}]`.
    pub fn prefixed(&mut self, ws: &[u64]) -> io::Result<()> {
        self.word(ws.len() as u64)?;
        self.words(ws)
    }

    /// Writes `bytes` packed into words (little-endian, zero-padded to the
    /// next word boundary). The *byte* length is not written; pair with an
    /// explicit length word and [`WordSource::take_bytes`].
    pub fn bytes_padded(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.word(u64::from_le_bytes(w))?;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            self.word(le_word(rem))?;
        }
        Ok(())
    }

    /// Number of words written so far.
    #[inline]
    pub fn words_written(&self) -> usize {
        self.words
    }
}

/// A source of decode words, abstracting over owned and borrowed parsing.
///
/// `Storage` is what bulk reads come back as — `&[u64]` for the zero-copy
/// [`WordCursor`], `Vec<u64>` for the owned [`ReadSource`] — and is exactly
/// the backing-store parameter of the succinct structures, so one
/// `read_from` implementation serves both paths.
pub trait WordSource {
    /// Backing store bulk reads produce.
    type Storage: AsRef<[u64]>;

    /// Reads one word.
    fn word(&mut self) -> Result<u64, DecodeError>;

    /// Reads `n` words as a backing store.
    fn take(&mut self, n: usize) -> Result<Self::Storage, DecodeError>;

    /// Reads one word and checks it fits a `usize` length/index.
    fn length(&mut self) -> Result<usize, DecodeError> {
        let w = self.word()?;
        usize::try_from(w).map_err(|_| DecodeError::Invalid("length exceeds usize"))
    }

    /// Reads a word-padded byte run of `n` bytes (see
    /// [`WordWriter::bytes_padded`]). Always owned: byte payloads (e.g.
    /// trie labels) are stored owned even in view structures.
    fn take_bytes(&mut self, n: usize) -> Result<Vec<u8>, DecodeError> {
        let words = n.div_ceil(8);
        let ws = self.take(words)?;
        let mut out = Vec::with_capacity(words.saturating_mul(8));
        for w in ws.as_ref() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(n);
        Ok(out)
    }
}

/// Zero-copy word source over an in-memory word buffer: [`WordSource::take`]
/// returns sub-slices borrowing from the buffer, so structures parsed from
/// it are views that share the buffer's memory (the mmap-style load path).
#[derive(Clone, Debug)]
pub struct WordCursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> WordCursor<'a> {
    /// Starts a cursor at the beginning of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        Self { words, pos: 0 }
    }

    /// Words consumed so far.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Words left.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }
}

impl<'a> WordSource for WordCursor<'a> {
    type Storage = &'a [u64];

    #[inline]
    fn word(&mut self) -> Result<u64, DecodeError> {
        let w = *self.words.get(self.pos).ok_or(DecodeError::Truncated {
            needed: self.pos.saturating_add(1),
            have: self.words.len(),
        })?;
        self.pos = self.pos.saturating_add(1);
        Ok(w)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u64], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DecodeError::Invalid("length overflow"))?;
        let s = self
            .words
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated {
                needed: end,
                have: self.words.len(),
            })?;
        self.pos = end;
        Ok(s)
    }
}

/// A shareable, owning word store over a reference-counted buffer: the
/// backing store of the *mapped* load path.
///
/// A `MappedSource` names a word range inside an `Arc<[u64]>` buffer —
/// typically the word image of one file region loaded once and then served
/// by many structures. Unlike the borrowed `&[u64]` of [`WordCursor`], a
/// `MappedSource` has no lifetime: structures parsed over it (e.g.
/// `GrafiteFilter<MappedSource>` in `grafite-core`) are `'static`, clone by
/// bumping the reference count, and share the underlying words across
/// threads without copying. The workspace forbids `unsafe`, so the buffer
/// is populated by an ordinary read (one byte→word conversion pass per
/// region, see [`MappedSource::from_le_bytes`]) rather than a raw
/// `mmap(2)`; the operating system's page cache still backs the file reads
/// themselves, so concurrently serving processes share pages the usual way.
#[derive(Clone, Debug)]
pub struct MappedSource {
    words: Arc<[u64]>,
    range: Range<usize>,
}

impl MappedSource {
    /// Wraps an owned word buffer (the whole buffer is the range).
    pub fn from_words(words: Vec<u64>) -> Self {
        let range = 0..words.len();
        Self {
            words: words.into(),
            range,
        }
    }

    /// Converts a little-endian byte image into a mapped word store (one
    /// copying conversion pass — the only copy the mapped path ever makes).
    /// The byte length must be whole words.
    pub fn from_le_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() % 8 != 0 {
            return Err(DecodeError::Invalid("byte image is not whole words"));
        }
        Ok(Self::from_words(
            bytes.chunks_exact(8).map(le_word).collect(),
        ))
    }

    /// A sub-range of this source sharing the same buffer (no copy).
    /// Returns a typed error when the range exceeds this source's extent.
    pub fn slice(&self, range: Range<usize>) -> Result<Self, DecodeError> {
        let len = self.len();
        if range.start > range.end || range.end > len {
            return Err(DecodeError::Truncated {
                needed: range.end,
                have: len,
            });
        }
        let start = self
            .range
            .start
            .checked_add(range.start)
            .ok_or(DecodeError::Invalid("mapped range offset overflow"))?;
        let end = self
            .range
            .start
            .checked_add(range.end)
            .ok_or(DecodeError::Invalid("mapped range offset overflow"))?;
        Ok(Self {
            words: Arc::clone(&self.words),
            range: start..end,
        })
    }

    /// Number of words in this source's range.
    #[inline]
    pub fn len(&self) -> usize {
        self.range.end - self.range.start
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

impl AsRef<[u64]> for MappedSource {
    #[inline]
    fn as_ref(&self) -> &[u64] {
        // The constructors uphold `range ⊆ 0..words.len()`, so this cannot
        // be out of bounds; `get` keeps the accessor panic-free regardless.
        self.words.get(self.range.clone()).unwrap_or(&[])
    }
}

/// Word source over a [`MappedSource`]: [`WordSource::take`] returns
/// sub-range `MappedSource`s sharing the buffer, so structures parsed from
/// it own their storage by reference count instead of borrowing it — the
/// `'static` twin of [`WordCursor`].
#[derive(Clone, Debug)]
pub struct MappedCursor {
    source: MappedSource,
    pos: usize,
}

impl MappedCursor {
    /// Starts a cursor at the beginning of `source`.
    pub fn new(source: MappedSource) -> Self {
        Self { source, pos: 0 }
    }

    /// Words consumed so far.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Words left.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.source.len().saturating_sub(self.pos)
    }
}

impl WordSource for MappedCursor {
    type Storage = MappedSource;

    #[inline]
    fn word(&mut self) -> Result<u64, DecodeError> {
        let w = *self
            .source
            .as_ref()
            .get(self.pos)
            .ok_or(DecodeError::Truncated {
                needed: self.pos.saturating_add(1),
                have: self.source.len(),
            })?;
        self.pos = self.pos.saturating_add(1);
        Ok(w)
    }

    fn take(&mut self, n: usize) -> Result<MappedSource, DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DecodeError::Invalid("length overflow"))?;
        let s = self.source.slice(self.pos..end)?;
        self.pos = end;
        Ok(s)
    }
}

/// Owned word source over any byte reader; bulk reads allocate fresh
/// `Vec<u64>` storage. This is the load path of
/// `PersistentFilter::deserialize` in `grafite-core`.
pub struct ReadSource<R: io::Read> {
    inner: R,
    words_read: usize,
}

impl<R: io::Read> ReadSource<R> {
    /// Wraps a byte reader positioned at the start of a word stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            words_read: 0,
        }
    }

    /// Words consumed so far.
    #[inline]
    pub fn position(&self) -> usize {
        self.words_read
    }

    fn read_exact(&mut self, buf: &mut [u8], needed_words: usize) -> Result<(), DecodeError> {
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                DecodeError::Truncated {
                    needed: self.words_read.saturating_add(needed_words),
                    have: self.words_read,
                }
            } else {
                DecodeError::Io(e.kind())
            }
        })
    }
}

impl<R: io::Read> WordSource for ReadSource<R> {
    type Storage = Vec<u64>;

    fn word(&mut self) -> Result<u64, DecodeError> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf, 1)?;
        self.words_read = self.words_read.saturating_add(1);
        Ok(u64::from_le_bytes(buf))
    }

    fn take(&mut self, n: usize) -> Result<Vec<u64>, DecodeError> {
        // Bulk reads in bounded chunks: one read_exact per chunk instead of
        // one per word, while a corrupt (huge) length prefix read from an
        // unchecksummed stream cannot demand an arbitrary up-front
        // allocation.
        const CHUNK_WORDS: usize = 1 << 15;
        let start = self.words_read;
        let mut out = Vec::with_capacity(n.min(CHUNK_WORDS));
        let mut buf = vec![0u8; n.min(CHUNK_WORDS).saturating_mul(8)];
        let mut remaining = n;
        while remaining > 0 {
            let chunk = remaining.min(CHUNK_WORDS);
            let bytes = buf
                .get_mut(..chunk.saturating_mul(8))
                .ok_or(DecodeError::Invalid("chunk exceeds staging buffer"))?;
            self.inner.read_exact(bytes).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    DecodeError::Truncated {
                        needed: start.saturating_add(n),
                        have: self.words_read,
                    }
                } else {
                    DecodeError::Io(e.kind())
                }
            })?;
            out.extend(bytes.chunks_exact(8).map(le_word));
            self.words_read = self.words_read.saturating_add(chunk);
            remaining -= chunk;
        }
        Ok(out)
    }
}

/// A byte sink that only counts: backs `serialized_bits` measurements
/// without allocating.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingSink {
    bytes: usize,
}

impl CountingSink {
    /// A fresh zero-count sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes "written" so far.
    #[inline]
    pub fn bytes_written(&self) -> usize {
        self.bytes
    }
}

impl io::Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes = self.bytes.saturating_add(buf.len());
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_counts_and_roundtrips() {
        let mut buf = Vec::new();
        let mut w = WordWriter::new(&mut buf);
        w.word(7).unwrap();
        w.prefixed(&[1, 2, 3]).unwrap();
        w.bytes_padded(b"hello").unwrap();
        assert_eq!(w.words_written(), 6);
        assert_eq!(buf.len(), 48);

        let words: Vec<u64> = buf
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut cur = WordCursor::new(&words);
        assert_eq!(cur.word().unwrap(), 7);
        let n = cur.length().unwrap();
        assert_eq!(cur.take(n).unwrap(), &[1, 2, 3]);
        assert_eq!(cur.take_bytes(5).unwrap(), b"hello");
        assert_eq!(cur.remaining(), 0);

        let mut src = ReadSource::new(buf.as_slice());
        assert_eq!(src.word().unwrap(), 7);
        let n = src.length().unwrap();
        assert_eq!(src.take(n).unwrap(), vec![1, 2, 3]);
        assert_eq!(src.take_bytes(5).unwrap(), b"hello");
    }

    #[test]
    fn truncation_is_typed() {
        let words = [1u64, 2];
        let mut cur = WordCursor::new(&words);
        cur.take(2).unwrap();
        assert_eq!(
            cur.word(),
            Err(DecodeError::Truncated { needed: 3, have: 2 })
        );
        let mut cur = WordCursor::new(&words);
        assert_eq!(
            cur.take(5),
            Err(DecodeError::Truncated { needed: 5, have: 2 })
        );
        let bytes = 7u64.to_le_bytes();
        let mut src = ReadSource::new(&bytes[..4]);
        assert!(matches!(src.word(), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn mapped_source_shares_and_slices() {
        let src = MappedSource::from_words((0..16u64).collect());
        assert_eq!(src.len(), 16);
        let sub = src.slice(4..8).unwrap();
        assert_eq!(sub.as_ref(), &[4, 5, 6, 7]);
        // Sub-slicing a sub-range stays relative to the sub-range.
        let subsub = sub.slice(1..3).unwrap();
        assert_eq!(subsub.as_ref(), &[5, 6]);
        // Out-of-range slices are typed, never panics.
        assert!(matches!(
            sub.slice(2..9),
            Err(DecodeError::Truncated { needed: 9, have: 4 })
        ));
        // Byte images must be whole words.
        assert!(matches!(
            MappedSource::from_le_bytes(&[1, 2, 3]),
            Err(DecodeError::Invalid(_))
        ));
        let bytes: Vec<u8> = [7u64, 9].iter().flat_map(|w| w.to_le_bytes()).collect();
        let from_bytes = MappedSource::from_le_bytes(&bytes).unwrap();
        assert_eq!(from_bytes.as_ref(), &[7, 9]);
    }

    #[test]
    fn mapped_cursor_matches_word_cursor() {
        let mut buf = Vec::new();
        let mut w = WordWriter::new(&mut buf);
        w.word(7).unwrap();
        w.prefixed(&[1, 2, 3]).unwrap();
        w.bytes_padded(b"hello").unwrap();
        let src = MappedSource::from_le_bytes(&buf).unwrap();
        let mut cur = MappedCursor::new(src);
        assert_eq!(cur.word().unwrap(), 7);
        let n = cur.length().unwrap();
        assert_eq!(cur.take(n).unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(cur.take_bytes(5).unwrap(), b"hello");
        assert_eq!(cur.remaining(), 0);
        assert!(matches!(
            cur.word(),
            Err(DecodeError::Truncated { needed: 7, have: 6 })
        ));
    }

    /// An Elias–Fano parsed over a `MappedCursor` is backed by the shared
    /// buffer and answers exactly like its owned twin.
    #[test]
    fn elias_fano_parses_over_mapped_storage() {
        let values: Vec<u64> = (0..500u64).map(|i| i * 37).collect();
        let ef = crate::EliasFano::new(&values, 20_000);
        let mut buf = Vec::new();
        let mut w = WordWriter::new(&mut buf);
        ef.write_to(&mut w).unwrap();
        let src = MappedSource::from_le_bytes(&buf).unwrap();
        let mut cur = MappedCursor::new(src);
        let mapped = crate::EliasFano::<MappedSource>::read_from(&mut cur).unwrap();
        for probe in [0u64, 36, 37, 1000, 19_999] {
            assert_eq!(mapped.predecessor(probe), ef.predecessor(probe));
        }
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        let mut w = WordWriter::new(&mut sink);
        w.words(&[0; 10]).unwrap();
        assert_eq!(sink.bytes_written(), 80);
    }
}
