//! Word-oriented serialization primitives shared by every persistent
//! structure in the workspace.
//!
//! The on-disk unit is the little-endian `u64` word: every structure's
//! encoding is a flat word sequence, so a serialized blob can be parsed
//! either *owned* (words copied out of any [`std::io::Read`] source, via
//! [`ReadSource`]) or *zero-copy* (sub-slices borrowed straight out of an
//! in-memory `&[u64]` buffer, via [`WordCursor`]). The two paths share one
//! set of `read_from` implementations through the [`WordSource`]
//! abstraction, whose associated `Storage` type is what the parsed
//! structure ends up backed by — `Vec<u64>` or `&[u64]`.

use std::io;

/// Errors produced while decoding a word stream.
///
/// These are storage-level errors; `grafite-core` wraps them into its typed
/// `FilterError` variants at the filter boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the structure was complete.
    Truncated {
        /// Words the decoder needed.
        needed: usize,
        /// Words actually available.
        have: usize,
    },
    /// A decoded field is structurally impossible (e.g. a bit width above
    /// 64). Carries a short static description.
    Invalid(&'static str),
    /// The underlying reader failed (owned loading only).
    Io(io::ErrorKind),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated word stream: needed {needed} words, have {have}"
                )
            }
            DecodeError::Invalid(what) => write!(f, "invalid field: {what}"),
            DecodeError::Io(kind) => write!(f, "i/o error while decoding: {kind}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Folds (up to) the first eight bytes of `chunk` into a little-endian
/// word. Panic-free for any input length: missing high bytes read as zero,
/// extra bytes are ignored — callers pair it with `chunks_exact(8)` or an
/// explicit length check when exactness matters.
#[inline]
pub fn le_word(chunk: &[u8]) -> u64 {
    chunk
        .iter()
        .take(8)
        .enumerate()
        .fold(0u64, |acc, (slot, &b)| acc | (u64::from(b) << (8 * slot)))
}

/// A counting writer of little-endian `u64` words over any byte sink.
///
/// Non-generic (the sink is a `&mut dyn Write`) so persistence traits using
/// it stay object-safe.
pub struct WordWriter<'a> {
    out: &'a mut dyn io::Write,
    words: usize,
}

impl<'a> WordWriter<'a> {
    /// Wraps a byte sink.
    pub fn new(out: &'a mut dyn io::Write) -> Self {
        Self { out, words: 0 }
    }

    /// Writes one word.
    #[inline]
    pub fn word(&mut self, w: u64) -> io::Result<()> {
        self.out.write_all(&w.to_le_bytes())?;
        self.words = self.words.saturating_add(1);
        Ok(())
    }

    /// Writes a slice of words.
    pub fn words(&mut self, ws: &[u64]) -> io::Result<()> {
        for &w in ws {
            self.out.write_all(&w.to_le_bytes())?;
        }
        self.words = self.words.saturating_add(ws.len());
        Ok(())
    }

    /// Writes a length-prefixed word slice: `[len, w_0, …, w_{len-1}]`.
    pub fn prefixed(&mut self, ws: &[u64]) -> io::Result<()> {
        self.word(ws.len() as u64)?;
        self.words(ws)
    }

    /// Writes `bytes` packed into words (little-endian, zero-padded to the
    /// next word boundary). The *byte* length is not written; pair with an
    /// explicit length word and [`WordSource::take_bytes`].
    pub fn bytes_padded(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.word(u64::from_le_bytes(w))?;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            self.word(le_word(rem))?;
        }
        Ok(())
    }

    /// Number of words written so far.
    #[inline]
    pub fn words_written(&self) -> usize {
        self.words
    }
}

/// A source of decode words, abstracting over owned and borrowed parsing.
///
/// `Storage` is what bulk reads come back as — `&[u64]` for the zero-copy
/// [`WordCursor`], `Vec<u64>` for the owned [`ReadSource`] — and is exactly
/// the backing-store parameter of the succinct structures, so one
/// `read_from` implementation serves both paths.
pub trait WordSource {
    /// Backing store bulk reads produce.
    type Storage: AsRef<[u64]>;

    /// Reads one word.
    fn word(&mut self) -> Result<u64, DecodeError>;

    /// Reads `n` words as a backing store.
    fn take(&mut self, n: usize) -> Result<Self::Storage, DecodeError>;

    /// Reads one word and checks it fits a `usize` length/index.
    fn length(&mut self) -> Result<usize, DecodeError> {
        let w = self.word()?;
        usize::try_from(w).map_err(|_| DecodeError::Invalid("length exceeds usize"))
    }

    /// Reads a word-padded byte run of `n` bytes (see
    /// [`WordWriter::bytes_padded`]). Always owned: byte payloads (e.g.
    /// trie labels) are stored owned even in view structures.
    fn take_bytes(&mut self, n: usize) -> Result<Vec<u8>, DecodeError> {
        let words = n.div_ceil(8);
        let ws = self.take(words)?;
        let mut out = Vec::with_capacity(words.saturating_mul(8));
        for w in ws.as_ref() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(n);
        Ok(out)
    }
}

/// Zero-copy word source over an in-memory word buffer: [`WordSource::take`]
/// returns sub-slices borrowing from the buffer, so structures parsed from
/// it are views that share the buffer's memory (the mmap-style load path).
#[derive(Clone, Debug)]
pub struct WordCursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> WordCursor<'a> {
    /// Starts a cursor at the beginning of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        Self { words, pos: 0 }
    }

    /// Words consumed so far.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Words left.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }
}

impl<'a> WordSource for WordCursor<'a> {
    type Storage = &'a [u64];

    #[inline]
    fn word(&mut self) -> Result<u64, DecodeError> {
        let w = *self.words.get(self.pos).ok_or(DecodeError::Truncated {
            needed: self.pos.saturating_add(1),
            have: self.words.len(),
        })?;
        self.pos = self.pos.saturating_add(1);
        Ok(w)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u64], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DecodeError::Invalid("length overflow"))?;
        let s = self
            .words
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated {
                needed: end,
                have: self.words.len(),
            })?;
        self.pos = end;
        Ok(s)
    }
}

/// Owned word source over any byte reader; bulk reads allocate fresh
/// `Vec<u64>` storage. This is the load path of
/// `PersistentFilter::deserialize` in `grafite-core`.
pub struct ReadSource<R: io::Read> {
    inner: R,
    words_read: usize,
}

impl<R: io::Read> ReadSource<R> {
    /// Wraps a byte reader positioned at the start of a word stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            words_read: 0,
        }
    }

    /// Words consumed so far.
    #[inline]
    pub fn position(&self) -> usize {
        self.words_read
    }

    fn read_exact(&mut self, buf: &mut [u8], needed_words: usize) -> Result<(), DecodeError> {
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                DecodeError::Truncated {
                    needed: self.words_read.saturating_add(needed_words),
                    have: self.words_read,
                }
            } else {
                DecodeError::Io(e.kind())
            }
        })
    }
}

impl<R: io::Read> WordSource for ReadSource<R> {
    type Storage = Vec<u64>;

    fn word(&mut self) -> Result<u64, DecodeError> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf, 1)?;
        self.words_read = self.words_read.saturating_add(1);
        Ok(u64::from_le_bytes(buf))
    }

    fn take(&mut self, n: usize) -> Result<Vec<u64>, DecodeError> {
        // Bulk reads in bounded chunks: one read_exact per chunk instead of
        // one per word, while a corrupt (huge) length prefix read from an
        // unchecksummed stream cannot demand an arbitrary up-front
        // allocation.
        const CHUNK_WORDS: usize = 1 << 15;
        let start = self.words_read;
        let mut out = Vec::with_capacity(n.min(CHUNK_WORDS));
        let mut buf = vec![0u8; n.min(CHUNK_WORDS).saturating_mul(8)];
        let mut remaining = n;
        while remaining > 0 {
            let chunk = remaining.min(CHUNK_WORDS);
            let bytes = buf
                .get_mut(..chunk.saturating_mul(8))
                .ok_or(DecodeError::Invalid("chunk exceeds staging buffer"))?;
            self.inner.read_exact(bytes).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    DecodeError::Truncated {
                        needed: start.saturating_add(n),
                        have: self.words_read,
                    }
                } else {
                    DecodeError::Io(e.kind())
                }
            })?;
            out.extend(bytes.chunks_exact(8).map(le_word));
            self.words_read = self.words_read.saturating_add(chunk);
            remaining -= chunk;
        }
        Ok(out)
    }
}

/// A byte sink that only counts: backs `serialized_bits` measurements
/// without allocating.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingSink {
    bytes: usize,
}

impl CountingSink {
    /// A fresh zero-count sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes "written" so far.
    #[inline]
    pub fn bytes_written(&self) -> usize {
        self.bytes
    }
}

impl io::Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes = self.bytes.saturating_add(buf.len());
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_counts_and_roundtrips() {
        let mut buf = Vec::new();
        let mut w = WordWriter::new(&mut buf);
        w.word(7).unwrap();
        w.prefixed(&[1, 2, 3]).unwrap();
        w.bytes_padded(b"hello").unwrap();
        assert_eq!(w.words_written(), 6);
        assert_eq!(buf.len(), 48);

        let words: Vec<u64> = buf
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut cur = WordCursor::new(&words);
        assert_eq!(cur.word().unwrap(), 7);
        let n = cur.length().unwrap();
        assert_eq!(cur.take(n).unwrap(), &[1, 2, 3]);
        assert_eq!(cur.take_bytes(5).unwrap(), b"hello");
        assert_eq!(cur.remaining(), 0);

        let mut src = ReadSource::new(buf.as_slice());
        assert_eq!(src.word().unwrap(), 7);
        let n = src.length().unwrap();
        assert_eq!(src.take(n).unwrap(), vec![1, 2, 3]);
        assert_eq!(src.take_bytes(5).unwrap(), b"hello");
    }

    #[test]
    fn truncation_is_typed() {
        let words = [1u64, 2];
        let mut cur = WordCursor::new(&words);
        cur.take(2).unwrap();
        assert_eq!(
            cur.word(),
            Err(DecodeError::Truncated { needed: 3, have: 2 })
        );
        let mut cur = WordCursor::new(&words);
        assert_eq!(
            cur.take(5),
            Err(DecodeError::Truncated { needed: 5, have: 2 })
        );
        let bytes = 7u64.to_le_bytes();
        let mut src = ReadSource::new(&bytes[..4]);
        assert!(matches!(src.word(), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        let mut w = WordWriter::new(&mut sink);
        w.words(&[0; 10]).unwrap();
        assert_eq!(sink.bytes_written(), 80);
    }
}
