//! Succinct data structures underpinning the Grafite range-filter reproduction.
//!
//! This crate provides, from scratch, the storage layer that the paper's data
//! structures are built on:
//!
//! * [`BitVec`] — a plain, word-packed bit vector with arbitrary-width bit-field
//!   reads and writes.
//! * [`RsBitVec`] — an immutable bit vector augmented with *rank* and *select*
//!   support for both bit polarities, in `o(n)` extra space.
//! * [`IntVec`] — a fixed-width packed integer vector (the `V` array of the
//!   paper's Figure 2).
//! * [`EliasFano`] — the quasi-succinct monotone-sequence encoding of
//!   Elias \[14\] and Fano \[16\], extended with the `predecessor`, `successor`,
//!   and `rank` operations that Section 3 of the paper builds Grafite's query
//!   algorithm on.
//! * [`GolombRiceSeq`] — a block-compressed monotone sequence with Golomb–Rice
//!   coded gaps, used as the compressed bit array of our SNARF reproduction.
//!
//! All structures are deterministic, allocation-conscious, and extensively
//! unit- and property-tested against naive references.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod broadword;
pub mod elias_fano;
pub mod golomb;
pub mod intvec;
pub mod rs_bitvec;

pub use bitvec::BitVec;
pub use elias_fano::EliasFano;
pub use golomb::GolombRiceSeq;
pub use intvec::IntVec;
pub use rs_bitvec::RsBitVec;

/// Number of bits in a machine word used throughout the crate.
pub const WORD_BITS: usize = 64;

/// Ceiling division of `a` by `b`.
#[inline]
pub(crate) fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}
