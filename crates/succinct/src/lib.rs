//! Succinct data structures underpinning the Grafite range-filter reproduction.
//!
//! This crate provides, from scratch, the storage layer that the paper's data
//! structures are built on:
//!
//! * [`BitVec`] — a plain, word-packed bit vector with arbitrary-width bit-field
//!   reads and writes.
//! * [`RsBitVec`] — an immutable bit vector augmented with *rank* and *select*
//!   support for both bit polarities, in `o(n)` extra space.
//! * [`IntVec`] — a fixed-width packed integer vector (the `V` array of the
//!   paper's Figure 2).
//! * [`EliasFano`] — the quasi-succinct monotone-sequence encoding of
//!   Elias \[14\] and Fano \[16\], extended with the `predecessor`, `successor`,
//!   and `rank` operations that Section 3 of the paper builds Grafite's query
//!   algorithm on, plus an [`EfCursor`] that resolves sorted batches of
//!   predecessor probes with monotone state.
//! * [`GolombRiceSeq`] — a block-compressed monotone sequence with Golomb–Rice
//!   coded gaps, used as the compressed bit array of our SNARF reproduction.
//!
//! All structures are deterministic, allocation-conscious, and extensively
//! unit- and property-tested against naive references.
//!
//! # Persistence
//!
//! Every structure is generic over its word store (`S: AsRef<[u64]>`,
//! defaulting to `Vec<u64>`) and serializes to a flat little-endian `u64`
//! stream through a `write_to` / `read_from` pair built on the [`io`]
//! module. Rank/select directories travel with the bits and are read back
//! **verbatim** — loading never rebuilds them — and parsing from an
//! in-memory buffer through [`io::WordCursor`] yields borrowed *views*
//! ([`BitVecView`], [`EliasFanoView`], …) that answer queries zero-copy,
//! straight out of the loaded buffer.

// Deny rather than forbid: `simd::kernels` is the one module allowed to
// opt back in (xtask lint L6 enforces the allowlist and requires a
// `// safety:` justification on every unsafe block there).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod broadword;
pub mod elias_fano;
pub mod golomb;
pub mod intvec;
pub mod io;
pub mod predecessor;
pub mod rs_bitvec;
pub mod simd;

pub use bitvec::{BitVec, BitVecView};
pub use elias_fano::{EfCursor, EliasFano, EliasFanoView};
pub use golomb::{GolombRiceSeq, GolombRiceSeqView};
pub use intvec::{IntVec, IntVecView};
pub use predecessor::{BucketedArray, PredecessorSearch, SampledIndex};
pub use rs_bitvec::{RsBitVec, RsBitVecView};
pub use simd::SimdLevel;

/// Number of bits in a machine word used throughout the crate.
pub const WORD_BITS: usize = 64;

/// Ceiling division of `a` by `b`.
#[inline]
pub(crate) fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}
