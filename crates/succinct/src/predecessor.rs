//! Alternative predecessor structures and the trait that lets the
//! hotpath bake-off compare them head-to-head.
//!
//! Grafite's query algorithm is, at its core, repeated predecessor
//! search over the sorted hash-code set. [`EliasFano`] is the
//! space-optimal choice the paper builds on, but "fast as the hardware
//! allows" is only honest against measured alternatives, so this module
//! supplies two classic contenders at different space/time trade-offs:
//!
//! * [`BucketedArray`] — the raw sorted array re-laid-out in 64-byte
//!   buckets with a separate minima directory, so the binary search
//!   runs over one cache line per level and the final scan touches a
//!   single line.
//! * [`SampledIndex`] — a two-level sampled search: a radix table over
//!   the high bits of the universe narrows every query to one small
//!   slice, then a short binary search finishes inside it.
//!
//! All three (plus the plain sorted `Vec` baseline kept in the bench
//! itself) answer the same `predecessor` contract and report their
//! footprint, which `repro hotpath` turns into the bake-off rows of
//! `BENCH_query.json`.

use crate::elias_fano::EliasFano;

/// Common interface for the predecessor-structure bake-off:
/// `predecessor(x)` returns the largest stored value `<= x`.
pub trait PredecessorSearch {
    /// Largest stored value `<= x`, or `None` if every value exceeds `x`.
    fn predecessor(&self, x: u64) -> Option<u64>;
    /// Total footprint of the structure in bits (payload + directories).
    fn size_in_bits(&self) -> usize;
    /// Short stable identifier used in bench output keys.
    fn name(&self) -> &'static str;
}

impl PredecessorSearch for EliasFano {
    fn predecessor(&self, x: u64) -> Option<u64> {
        EliasFano::predecessor(self, x)
    }

    fn size_in_bits(&self) -> usize {
        EliasFano::size_in_bits(self)
    }

    fn name(&self) -> &'static str {
        "elias_fano"
    }
}

/// Values per bucket: 8 × `u64` = one 64-byte cache line.
const BUCKET: usize = 8;

/// Cache-line-bucketed sorted array.
///
/// The sorted values are stored verbatim; a directory of per-bucket
/// minima (one `u64` per 8 values) is searched first, so the expensive
/// binary-search phase touches `log2(n/8)` cache lines instead of
/// `log2(n)`, and the final phase is a `<= 8`-element scan inside one
/// line. Space is `64 + 8` bits per key — the anti-succinct end of the
/// bake-off.
#[derive(Debug, Clone, Default)]
pub struct BucketedArray {
    values: Vec<u64>,
    minima: Vec<u64>,
}

impl BucketedArray {
    /// Builds from a sorted (non-decreasing) slice of values.
    ///
    /// # Panics
    /// Panics if `values` is not sorted.
    pub fn new(values: &[u64]) -> Self {
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        let minima = values.chunks(BUCKET).map(|c| c[0]).collect();
        BucketedArray {
            values: values.to_vec(),
            minima,
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl PredecessorSearch for BucketedArray {
    fn predecessor(&self, x: u64) -> Option<u64> {
        // Last bucket whose minimum is <= x; earlier buckets are all
        // smaller, later buckets are all larger than x.
        let b = self.minima.partition_point(|&m| m <= x);
        if b == 0 {
            return None;
        }
        let start = (b - 1) * BUCKET;
        let line = &self.values[start..(start + BUCKET).min(self.values.len())];
        // The bucket minimum is <= x, so the backward scan always hits.
        line.iter().rev().find(|&&v| v <= x).copied()
    }

    fn size_in_bits(&self) -> usize {
        (self.values.len() + self.minima.len()) * 64
    }

    fn name(&self) -> &'static str {
        "bucketed_array"
    }
}

/// Two-level sampled-search index.
///
/// Level one is a radix table over the top bits of the universe:
/// `table[h]` holds the index of the first value whose high chunk is
/// `>= h`, so `values[table[h]..table[h + 1]]` is exactly the run of
/// values sharing high chunk `h`. A query reads one table slot (O(1))
/// and finishes with a binary search confined to that run. The table is
/// sized at roughly one slot per key, making the expected run length
/// constant for uniform keys — the classic way to buy near-O(1)
/// predecessor with ~2× the space of the raw array.
#[derive(Debug, Clone, Default)]
pub struct SampledIndex {
    values: Vec<u64>,
    /// `table.len() == (1 << table_bits) + 1`; slot `h` is the index of
    /// the first value with `v >> shift >= h`.
    table: Vec<u32>,
    shift: u32,
}

impl SampledIndex {
    /// Builds from a sorted (non-decreasing) slice of values.
    ///
    /// # Panics
    /// Panics if `values` is not sorted or holds `2^32` or more values.
    pub fn new(values: &[u64]) -> Self {
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        assert!(values.len() < u32::MAX as usize, "too many values");
        if values.is_empty() {
            return SampledIndex {
                values: Vec::new(),
                table: vec![0, 0],
                shift: 63,
            };
        }
        let max = *values.last().expect("non-empty");
        // Bits needed to express every value, and a table of about one
        // slot per key (capped so tiny universes don't over-allocate).
        let ubits = 64 - max.leading_zeros();
        let want = usize::BITS - values.len().next_power_of_two().leading_zeros() - 1;
        let table_bits = want.min(ubits).min(24);
        let shift = ubits - table_bits;
        let slots = 1usize << table_bits;
        let mut table = vec![0u32; slots + 1];
        let mut next = 0usize;
        for (h, slot) in table.iter_mut().enumerate().take(slots) {
            while next < values.len() && (values[next] >> shift) < h as u64 {
                next += 1;
            }
            *slot = next as u32;
        }
        table[slots] = values.len() as u32;
        SampledIndex {
            values: values.to_vec(),
            table,
            shift,
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl PredecessorSearch for SampledIndex {
    fn predecessor(&self, x: u64) -> Option<u64> {
        if self.values.is_empty() {
            return None;
        }
        let h = ((x >> self.shift) as usize).min(self.table.len() - 2);
        let lo = self.table[h] as usize;
        let hi = self.table[h + 1] as usize;
        // Values before `lo` have a smaller high chunk (all <= x); values
        // from `hi` on have a larger one (all > x, given h wasn't
        // clamped — and if it was, hi == values.len()).
        let idx = lo + self.values[lo..hi].partition_point(|&v| v <= x);
        if idx == 0 {
            None
        } else {
            Some(self.values[idx - 1])
        }
    }

    fn size_in_bits(&self) -> usize {
        self.values.len() * 64 + self.table.len() * 32
    }

    fn name(&self) -> &'static str {
        "sampled_index"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_pred(values: &[u64], x: u64) -> Option<u64> {
        values.iter().copied().filter(|&v| v <= x).max()
    }

    fn check_all(values: &[u64], probes: impl Iterator<Item = u64>) {
        let ba = BucketedArray::new(values);
        let si = SampledIndex::new(values);
        let ef = if values.windows(2).all(|w| w[0] < w[1]) {
            Some(EliasFano::new(values, values.last().map_or(1, |&m| m + 1)))
        } else {
            None
        };
        for x in probes {
            let want = naive_pred(values, x);
            assert_eq!(ba.predecessor(x), want, "bucketed x={x}");
            assert_eq!(si.predecessor(x), want, "sampled x={x}");
            if let Some(ef) = &ef {
                assert_eq!(
                    PredecessorSearch::predecessor(ef, x),
                    want,
                    "elias_fano x={x}"
                );
            }
        }
    }

    #[test]
    fn empty_structures() {
        check_all(&[], [0, 1, u64::MAX].into_iter());
        assert!(BucketedArray::new(&[]).is_empty());
        assert!(SampledIndex::new(&[]).is_empty());
    }

    #[test]
    fn small_sets_exhaustive() {
        check_all(&[5], 0..20);
        check_all(&[0, 1, 2, 3], 0..10);
        check_all(&[10, 20, 30, 40, 50, 60, 70, 80, 90], 0..101);
        // Duplicates (EF skipped — it requires strictly increasing).
        check_all(&[7, 7, 7, 9, 9], 0..15);
    }

    #[test]
    fn bucket_boundaries() {
        // Exactly 3 full cache-line buckets plus a 1-element tail.
        let values: Vec<u64> = (0..25).map(|i| i * 3 + 1).collect();
        check_all(&values, 0..80);
    }

    #[test]
    fn pseudo_random_agreement() {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut values: Vec<u64> = (0..1000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 20
            })
            .collect();
        values.sort_unstable();
        values.dedup();
        let probes: Vec<u64> = (0..2000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 19
            })
            .collect();
        check_all(&values, probes.into_iter());
    }

    #[test]
    fn reports_footprint_and_names() {
        let values: Vec<u64> = (0..100).map(|i| i * 7).collect();
        let ba = BucketedArray::new(&values);
        let si = SampledIndex::new(&values);
        assert!(ba.size_in_bits() >= 100 * 64);
        assert!(si.size_in_bits() >= 100 * 64);
        assert_eq!(ba.name(), "bucketed_array");
        assert_eq!(si.name(), "sampled_index");
        assert_eq!(ba.len(), 100);
        assert_eq!(si.len(), 100);
    }
}
