//! An immutable bit vector with constant-time rank and constant-time-ish
//! select for both bit polarities.
//!
//! # Layout (format v2, position-sampled select)
//!
//! The bit sequence is divided into 512-bit blocks (8 words). A block
//! directory stores the absolute number of ones before each block (12.5 %
//! overhead); `rank` popcounts the block's words under per-word masks on top
//! of a directory lookup — a fixed-shape, branch-free loop rather than a
//! data-dependent word walk.
//!
//! `select` uses *position samples*: the directory stores the **exact bit
//! position** of every 512-th one (resp. zero). A query `select1(k)` whose
//! rank hits a sample answers in O(1) with no memory touched beyond the
//! sample itself; otherwise the two samples bracketing `k` bound the block
//! range the answer can live in, and a binary search over that window of the
//! block directory (the inter-sample block locate) lands in the right block
//! without ever walking the directory linearly. At the densities the
//! Elias–Fano high bits exhibit (one set bit every ~2–3 positions) the
//! window spans 2–4 blocks, so the locate is one or two comparisons. The
//! final step is an in-word broadword select. `select0` shares the machinery
//! through a *cumulative-zeros view* derived from the ones directory
//! (`zeros before block b = min(b·512, len) − ones before block b`) — no
//! second directory array is stored or serialized.
//!
//! This replaces the seed's scheme (block-index hints plus a forward scan of
//! the directory), trading the same space for strictly less work per query;
//! it is the classic rank/select engineering trade-off described by
//! Navarro \[28\], tuned for the query hot path of the paper's filters.
//!
//! # Persistence
//!
//! Like every structure in this crate, `RsBitVec` is generic over its word
//! store: the rank/select directories serialize alongside the bits and are
//! read back **verbatim** — loading never recomputes them, and the
//! [`RsBitVecView`] variant answers queries directly out of a loaded
//! buffer. Blobs written by the format-v1 layout (block-index hints) load
//! through [`RsBitVec::read_from_v1`], which rebuilds the position samples
//! from the bits in one O(n/64) pass.

use crate::bitvec::BitVec;
use crate::io::{DecodeError, WordSource, WordWriter};
use crate::simd::select_in_word;
use crate::WORD_BITS;

const BLOCK_WORDS: usize = 8;
const BLOCK_BITS: usize = BLOCK_WORDS * WORD_BITS; // 512
const SELECT_SAMPLE: usize = 512;

/// Word budget of the select fast path that scans forward from the sampled
/// position (sequential loads, no directory touch). 32 words = 2048 bits
/// cover a full inter-sample gap at any density >= 1/4 — the Elias–Fano
/// high bits sit near 1/2 — so only genuinely sparse stretches take the
/// block-locate fallback.
const SCAN_FROM_SAMPLE_WORDS: usize = 32;

/// The low `n` bits set, for `n` in `0..=64`.
#[inline]
fn mask_low(n: usize) -> u64 {
    1u64.checked_shl(n as u32).map_or(!0, |m| m.wrapping_sub(1))
}

/// An immutable rank/select bit vector.
#[derive(Clone, Debug)]
pub struct RsBitVec<S = Vec<u64>> {
    bits: BitVec<S>,
    /// `blocks[b]` = number of ones in bits `[0, b * 512)`; one sentinel entry
    /// at the end holding the total.
    blocks: S,
    /// `select1_pos[i]` = exact bit position of the `(i * SELECT_SAMPLE)`-th
    /// one.
    select1_pos: S,
    /// Same for zeros.
    select0_pos: S,
    ones: usize,
}

/// A rank/select bit vector whose bits *and* directories borrow from a
/// loaded `&[u64]` buffer.
pub type RsBitVecView<'a> = RsBitVec<&'a [u64]>;

/// One pass over the words: the exact positions of every `SELECT_SAMPLE`-th
/// one and zero. Returns `(select1_pos, select0_pos, ones_seen)` so callers
/// can cross-check the claimed total.
fn build_select_samples(bits: &BitVec, ones: usize, zeros: usize) -> (Vec<u64>, Vec<u64>, usize) {
    let mut s1 = Vec::with_capacity(ones.div_ceil(SELECT_SAMPLE));
    let mut s0 = Vec::with_capacity(zeros.div_ceil(SELECT_SAMPLE));
    let (mut next1, mut next0) = (0usize, 0usize);
    let (mut ones_seen, mut zeros_seen) = (0usize, 0usize);
    let len = bits.len();
    for (wi, &w) in bits.words().iter().enumerate() {
        let valid = (len - (wi * WORD_BITS).min(len)).min(WORD_BITS);
        if valid == 0 {
            break;
        }
        let w_ones = w.count_ones() as usize; // tail bits beyond len are zero
        while next1 < ones && next1 < ones_seen + w_ones {
            let in_word = select_in_word(w, (next1 - ones_seen) as u32) as usize;
            s1.push((wi * WORD_BITS + in_word) as u64);
            next1 += SELECT_SAMPLE;
        }
        let inv = !w & mask_low(valid);
        let w_zeros = valid - w_ones;
        while next0 < zeros && next0 < zeros_seen + w_zeros {
            let in_word = select_in_word(inv, (next0 - zeros_seen) as u32) as usize;
            s0.push((wi * WORD_BITS + in_word) as u64);
            next0 += SELECT_SAMPLE;
        }
        ones_seen += w_ones;
        zeros_seen += w_zeros;
    }
    (s1, s0, ones_seen)
}

impl RsBitVec {
    /// Freezes `bits` and builds rank/select support.
    pub fn new(bits: BitVec) -> Self {
        let n_blocks = crate::div_ceil(bits.len().max(1), BLOCK_BITS);
        let mut blocks = Vec::with_capacity(n_blocks + 1);
        let mut acc = 0u64;
        for b in 0..n_blocks {
            blocks.push(acc);
            let start = b * BLOCK_WORDS;
            let end = ((b + 1) * BLOCK_WORDS).min(bits.words().len());
            for w in start..end {
                acc += bits.word(w).count_ones() as u64;
            }
        }
        blocks.push(acc);
        let ones = acc as usize;
        Self::assemble(bits, blocks, ones)
    }

    fn assemble(bits: BitVec, blocks: Vec<u64>, ones: usize) -> Self {
        let zeros = bits.len() - ones;
        let (select1_pos, select0_pos, seen) = build_select_samples(&bits, ones, zeros);
        debug_assert_eq!(seen, ones, "rank directory inconsistent with bits");
        Self {
            bits,
            blocks,
            select1_pos,
            select0_pos,
            ones,
        }
    }

    /// Reads the **format-v1** layout (select directories stored as
    /// block-index *hints* rather than positions) and upgrades it: the bits
    /// and the rank directory come back verbatim, the position samples are
    /// rebuilt in one O(n/64) word pass. Owned storage only — a zero-copy
    /// view cannot hold rebuilt directories.
    pub fn read_from_v1<Src: WordSource<Storage = Vec<u64>>>(
        src: &mut Src,
    ) -> Result<Self, DecodeError> {
        let ones = src.length()?;
        let bits = BitVec::read_from(src)?;
        if ones > bits.len() {
            return Err(DecodeError::Invalid("rank directory total exceeds length"));
        }
        let n_blocks = crate::div_ceil(bits.len().max(1), BLOCK_BITS);
        let blocks_len = src.length()?;
        if n_blocks.checked_add(1) != Some(blocks_len) {
            return Err(DecodeError::Invalid("rank directory block count"));
        }
        let blocks = src.take(blocks_len)?;
        if blocks.windows(2).any(|w| matches!(w, [a, b] if a > b))
            || blocks.last() != Some(&(ones as u64))
        {
            return Err(DecodeError::Invalid("rank directory inconsistent"));
        }
        let zeros = bits.len() - ones;
        // The v1 hints are consumed and validated but not kept: the v2
        // position samples are rebuilt from the bits below.
        let h1_len = src.length()?;
        if h1_len != ones.div_ceil(SELECT_SAMPLE) {
            return Err(DecodeError::Invalid("select1 hint count"));
        }
        let h1 = src.take(h1_len)?;
        let h0_len = src.length()?;
        if h0_len != zeros.div_ceil(SELECT_SAMPLE) {
            return Err(DecodeError::Invalid("select0 hint count"));
        }
        let h0 = src.take(h0_len)?;
        if h1.iter().chain(&h0).any(|&h| h >= n_blocks as u64) {
            return Err(DecodeError::Invalid("select hint out of range"));
        }
        let (select1_pos, select0_pos, seen) = build_select_samples(&bits, ones, zeros);
        if seen != ones {
            return Err(DecodeError::Invalid("rank directory total mismatches bits"));
        }
        Ok(Self {
            bits,
            blocks,
            select1_pos,
            select0_pos,
            ones,
        })
    }
}

impl<S: AsRef<[u64]>> RsBitVec<S> {
    #[inline]
    fn block_dir(&self) -> &[u64] {
        self.blocks.as_ref()
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of zero bits.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len() - self.ones
    }

    /// The bit at `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> bool {
        self.bits.get(pos)
    }

    /// The underlying bit vector.
    #[inline]
    pub fn bits(&self) -> &BitVec<S> {
        &self.bits
    }

    /// Number of ones in `[0, pos)`. `pos` may equal `len`.
    ///
    /// Branch-free over the 8-word block: every block word is popcounted
    /// under a mask that keeps exactly its bits below `pos` (possibly none,
    /// possibly all). The masked block popcount is the dispatched
    /// [`crate::simd::rank1_x8`] kernel — vectorized where the CPU allows,
    /// the same fixed-shape scalar loop otherwise.
    #[inline]
    pub fn rank1(&self, pos: usize) -> usize {
        assert!(pos <= self.len(), "rank position {pos} out of range");
        let block = pos / BLOCK_BITS;
        let mut r = self.block_dir()[block] as usize;
        let words = self.bits.words();
        let first_word = block * BLOCK_WORDS;
        let end = (first_word + BLOCK_WORDS).min(words.len());
        let in_block = pos - block * BLOCK_BITS;
        r += crate::simd::rank1_x8(&words[first_word..end], in_block);
        r
    }

    /// Number of zeros in `[0, pos)`.
    #[inline]
    pub fn rank0(&self, pos: usize) -> usize {
        pos - self.rank1(pos)
    }

    /// Zeros in `[0, b * 512)` — the cumulative-zeros view over the ones
    /// directory. Valid for `b` up to and including the sentinel index.
    #[inline]
    fn zeros_before_block(&self, b: usize) -> usize {
        (b * BLOCK_BITS).min(self.len()) - self.block_dir()[b] as usize
    }

    /// Last block index in `[lo, hi]` whose directory value (per `key`) is
    /// `<= k` — the bounded inter-sample block locate shared by both
    /// selects. The invariant `key(lo) <= k` must hold on entry.
    #[inline]
    fn locate_block(&self, mut lo: usize, mut hi: usize, k: usize, zeros: bool) -> usize {
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            let before = if zeros {
                self.zeros_before_block(mid)
            } else {
                self.block_dir()[mid] as usize
            };
            if before <= k {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    /// Position of the `k`-th (0-based) set bit.
    ///
    /// The fast path scans **forward from the sampled position** — a
    /// sequential, prefetch-friendly walk of a bounded number of bit words
    /// with no directory touch at all; sparse stretches that exhaust the
    /// budget fall back to the bounded block locate.
    ///
    /// # Panics
    /// Panics if `k >= count_ones()`.
    pub fn select1(&self, k: usize) -> usize {
        assert!(k < self.ones, "select1 rank {k} out of range {}", self.ones);
        let samples = self.select1_pos.as_ref();
        let s = k / SELECT_SAMPLE;
        let sampled = samples[s] as usize;
        let rem = k % SELECT_SAMPLE;
        if rem == 0 {
            return sampled;
        }
        // The k-th one is the rem-th one strictly after the sampled
        // position: walk the words from there, clearing the sampled bit
        // and everything below it in the first word.
        let words = self.bits.words();
        let mut w_idx = sampled / WORD_BITS;
        let above = sampled % WORD_BITS + 1;
        let mut mask = if above == WORD_BITS {
            w_idx += 1;
            !0
        } else {
            !mask_low(above)
        };
        let mut remaining = rem; // ones still to cross, target included
        for _ in 0..SCAN_FROM_SAMPLE_WORDS {
            let Some(&raw) = words.get(w_idx) else { break };
            let w = raw & mask;
            let ones = w.count_ones() as usize;
            if remaining <= ones {
                return w_idx * WORD_BITS + select_in_word(w, (remaining - 1) as u32) as usize;
            }
            remaining -= ones;
            mask = !0;
            w_idx += 1;
        }
        self.select1_via_blocks(k, s)
    }

    /// The block-directory slow path of [`RsBitVec::select1`], for sparse
    /// stretches the sample-local scan cannot cover.
    #[cold]
    fn select1_via_blocks(&self, k: usize, s: usize) -> usize {
        let samples = self.select1_pos.as_ref();
        let sampled = samples[s] as usize;
        let hi = samples
            .get(s + 1)
            .map_or(self.block_dir().len() - 2, |&p| p as usize / BLOCK_BITS);
        let block = self.locate_block(sampled / BLOCK_BITS, hi, k, false);
        let mut remaining = k - self.block_dir()[block] as usize;
        let words = self.bits.words();
        let first_word = block * BLOCK_WORDS;
        for (j, &w) in words[first_word..].iter().enumerate() {
            let ones = w.count_ones() as usize;
            if remaining < ones {
                return (first_word + j) * WORD_BITS + select_in_word(w, remaining as u32) as usize;
            }
            remaining -= ones;
        }
        unreachable!("select1: inconsistent rank directory");
    }

    /// Position of the `k`-th (0-based) zero bit. Fast path as in
    /// [`RsBitVec::select1`]: sequential scan from the sample, block locate
    /// as the sparse fallback.
    ///
    /// # Panics
    /// Panics if `k >= count_zeros()`.
    pub fn select0(&self, k: usize) -> usize {
        let zeros = self.count_zeros();
        assert!(k < zeros, "select0 rank {k} out of range {zeros}");
        let samples = self.select0_pos.as_ref();
        let s = k / SELECT_SAMPLE;
        let sampled = samples[s] as usize;
        let rem = k % SELECT_SAMPLE;
        if rem == 0 {
            return sampled;
        }
        let words = self.bits.words();
        let len = self.len();
        let mut w_idx = sampled / WORD_BITS;
        let above = sampled % WORD_BITS + 1;
        let mut mask = if above == WORD_BITS {
            w_idx += 1;
            !0
        } else {
            !mask_low(above)
        };
        let mut remaining = rem; // zeros still to cross, target included
        for _ in 0..SCAN_FROM_SAMPLE_WORDS {
            let Some(&raw) = words.get(w_idx) else { break };
            let word_start = w_idx * WORD_BITS;
            // Mask out phantom zeros beyond len in the final word.
            let valid = (len - word_start.min(len)).min(WORD_BITS);
            let inv = !raw & mask_low(valid) & mask;
            let zeros_here = inv.count_ones() as usize;
            if remaining <= zeros_here {
                return word_start + select_in_word(inv, (remaining - 1) as u32) as usize;
            }
            remaining -= zeros_here;
            mask = !0;
            w_idx += 1;
        }
        self.select0_via_blocks(k, s)
    }

    /// The block-directory slow path of [`RsBitVec::select0`].
    #[cold]
    fn select0_via_blocks(&self, k: usize, s: usize) -> usize {
        let samples = self.select0_pos.as_ref();
        let sampled = samples[s] as usize;
        let hi = samples
            .get(s + 1)
            .map_or(self.block_dir().len() - 2, |&p| p as usize / BLOCK_BITS);
        let block = self.locate_block(sampled / BLOCK_BITS, hi, k, true);
        let mut remaining = k - self.zeros_before_block(block);
        let words = self.bits.words();
        let first_word = block * BLOCK_WORDS;
        let len = self.len();
        for (j, &w) in words[first_word..].iter().enumerate() {
            let word_start = (first_word + j) * WORD_BITS;
            let valid = (len - word_start).min(WORD_BITS);
            let inv = !w & mask_low(valid);
            let zeros_here = inv.count_ones() as usize;
            if remaining < zeros_here {
                return word_start + select_in_word(inv, remaining as u32) as usize;
            }
            remaining -= zeros_here;
        }
        unreachable!("select0: inconsistent rank directory");
    }

    /// Heap size of the structure in bits, including the directories.
    pub fn size_in_bits(&self) -> usize {
        self.bits.size_in_bits()
            + self.block_dir().len() * 64
            + self.select1_pos.as_ref().len() * 64
            + self.select0_pos.as_ref().len() * 64
    }

    /// Size of the rank/select overhead only, in bits.
    pub fn overhead_in_bits(&self) -> usize {
        self.size_in_bits() - self.bits.size_in_bits()
    }

    /// Serializes bits **and** directories: `[ones] + bits + [n_blocks,
    /// blocks…] + [n_s1, select1_pos…] + [n_s0, select0_pos…]`. Returns the
    /// word count. This is the format-v2 layout; the sample arrays hold the
    /// exact positions described in the module docs.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.ones as u64)?;
        self.bits.write_to(w)?;
        w.prefixed(self.block_dir())?;
        w.prefixed(self.select1_pos.as_ref())?;
        w.prefixed(self.select0_pos.as_ref())?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`RsBitVec::write_to`] wrote. The rank/select
    /// directories come back verbatim from the stream — nothing is rebuilt,
    /// which is what makes cold loads O(size) copies (owned) or O(1)
    /// (borrowed view). For blobs written by the v1 layout use
    /// [`RsBitVec::read_from_v1`].
    pub fn read_from<Src: WordSource<Storage = S>>(src: &mut Src) -> Result<Self, DecodeError> {
        let ones = src.length()?;
        let bits = BitVec::read_from(src)?;
        if ones > bits.len() {
            return Err(DecodeError::Invalid("rank directory total exceeds length"));
        }
        let n_blocks = crate::div_ceil(bits.len().max(1), BLOCK_BITS);
        let blocks_len = src.length()?;
        if n_blocks.checked_add(1) != Some(blocks_len) {
            return Err(DecodeError::Invalid("rank directory block count"));
        }
        let blocks = src.take(blocks_len)?;
        // The directory must be non-decreasing and close on the claimed
        // total: that is what bounds `select`'s block locate before the
        // sentinel. O(n/512) at load, no popcounting.
        {
            let dir = blocks.as_ref();
            if dir.windows(2).any(|w| matches!(w, [a, b] if a > b))
                || dir.last() != Some(&(ones as u64))
            {
                return Err(DecodeError::Invalid("rank directory inconsistent"));
            }
        }
        let s1_len = src.length()?;
        if s1_len != ones.div_ceil(SELECT_SAMPLE) {
            return Err(DecodeError::Invalid("select1 sample count"));
        }
        let select1_pos = src.take(s1_len)?;
        let zeros = bits.len() - ones;
        let s0_len = src.length()?;
        if s0_len != zeros.div_ceil(SELECT_SAMPLE) {
            return Err(DecodeError::Invalid("select0 sample count"));
        }
        let select0_pos = src.take(s0_len)?;
        // Samples are exact bit positions: strictly increasing and within
        // the bit range, or a query would index out of bounds. O(n/512).
        let len = bits.len() as u64;
        for samples in [select1_pos.as_ref(), select0_pos.as_ref()] {
            if samples.iter().any(|&p| p >= len)
                || samples.windows(2).any(|w| matches!(w, [a, b] if a >= b))
            {
                return Err(DecodeError::Invalid("select sample out of range"));
            }
        }
        Ok(Self {
            bits,
            blocks,
            select1_pos,
            select0_pos,
            ones,
        })
    }
}

/// Test support, not public API: hand-encodes the **frozen format-v1**
/// stream layout (block-index select hints) for a pattern, exactly as the
/// seed's `write_to` produced it. This is the single reference encoder
/// behind every v1-compatibility suite — the unit tests here and the
/// property tests in `tests/proptests.rs` — so a fix to the reference
/// encoding lands in one place.
#[doc(hidden)]
pub fn encode_v1_for_tests(pattern: &[bool]) -> Vec<u64> {
    let len = pattern.len();
    let n_words = crate::div_ceil(len.max(1), WORD_BITS);
    let mut words = vec![0u64; n_words];
    for (i, &b) in pattern.iter().enumerate() {
        if b {
            words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
        }
    }
    let n_blocks = crate::div_ceil(len.max(1), BLOCK_BITS);
    let mut blocks = Vec::with_capacity(n_blocks + 1);
    let mut acc = 0u64;
    for b in 0..n_blocks {
        blocks.push(acc);
        for w in words
            .iter()
            .take(((b + 1) * BLOCK_WORDS).min(n_words))
            .skip(b * BLOCK_WORDS)
        {
            acc += w.count_ones() as u64;
        }
    }
    blocks.push(acc);
    let ones = acc as usize;
    let zeros = len - ones;
    let (mut h1, mut h0) = (Vec::new(), Vec::new());
    let (mut next1, mut next0) = (0usize, 0usize);
    for b in 0..n_blocks {
        let ones_through = blocks[b + 1] as usize;
        let bits_through = ((b + 1) * BLOCK_BITS).min(len);
        let zeros_through = bits_through - ones_through;
        while next1 < ones && next1 < ones_through {
            h1.push(b as u64);
            next1 += SELECT_SAMPLE;
        }
        while next0 < zeros && next0 < zeros_through {
            h0.push(b as u64);
            next0 += SELECT_SAMPLE;
        }
    }
    let mut out = vec![ones as u64, len as u64, n_words as u64];
    out.extend_from_slice(&words);
    out.push(blocks.len() as u64);
    out.extend_from_slice(&blocks);
    out.push(h1.len() as u64);
    out.extend_from_slice(&h1);
    out.push(h0.len() as u64);
    out.extend_from_slice(&h0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Naive {
        bits: Vec<bool>,
    }

    impl Naive {
        fn rank1(&self, pos: usize) -> usize {
            self.bits[..pos].iter().filter(|&&b| b).count()
        }
        fn select1(&self, k: usize) -> usize {
            self.bits
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .nth(k)
                .unwrap()
                .0
        }
        fn select0(&self, k: usize) -> usize {
            self.bits
                .iter()
                .enumerate()
                .filter(|(_, &b)| !b)
                .nth(k)
                .unwrap()
                .0
        }
    }

    fn check_all(pattern: Vec<bool>) {
        let naive = Naive {
            bits: pattern.clone(),
        };
        let rs = RsBitVec::new(pattern.iter().copied().collect());
        assert_eq!(rs.len(), pattern.len());
        let ones = pattern.iter().filter(|&&b| b).count();
        assert_eq!(rs.count_ones(), ones);
        for pos in 0..=pattern.len() {
            assert_eq!(rs.rank1(pos), naive.rank1(pos), "rank1({pos})");
            assert_eq!(rs.rank0(pos), pos - naive.rank1(pos), "rank0({pos})");
        }
        for k in 0..ones {
            assert_eq!(rs.select1(k), naive.select1(k), "select1({k})");
        }
        for k in 0..(pattern.len() - ones) {
            assert_eq!(rs.select0(k), naive.select0(k), "select0({k})");
        }
    }

    #[test]
    fn small_patterns() {
        check_all(vec![true]);
        check_all(vec![false]);
        check_all(vec![true, false, true, true, false]);
        check_all((0..64).map(|i| i % 2 == 0).collect());
        check_all((0..65).map(|i| i % 2 == 1).collect());
    }

    #[test]
    fn block_boundaries() {
        check_all((0..513).map(|i| i == 512).collect());
        check_all((0..1025).map(|i| i % 512 == 0).collect());
        check_all((0..1024).map(|_| true).collect());
        check_all((0..1024).map(|_| false).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_and_dense_mix() {
        // Long run of zeros, burst of ones, long run of zeros.
        let mut v = vec![false; 5000];
        for item in v.iter_mut().skip(2000).take(100) {
            *item = true;
        }
        v[4999] = true;
        check_all(v);
    }

    /// The adversarial densities of the issue: all-zero runs long enough to
    /// spread one select sample over many blocks, dense bursts that pack
    /// multiple samples into one block, and near-full blocks around the
    /// 512-boundaries where the inter-sample window degenerates.
    #[test]
    fn adversarial_densities() {
        // >512 ones packed right before and after a block boundary.
        let mut v = vec![false; 4096];
        for item in v.iter_mut().skip(200).take(700) {
            *item = true;
        }
        check_all(v);
        // Sparse: one set bit every 600 positions (samples span many blocks).
        check_all((0..20_000).map(|i| i % 600 == 599).collect());
        // Near-full blocks with single-zero punctures at 512-boundaries.
        check_all((0..8192).map(|i| i % 512 != 0).collect());
        // Alternating full / empty blocks.
        check_all((0..8192).map(|i| (i / 512) % 2 == 0).collect());
        // Exactly 512 ones then exactly 512 zeros, repeated (samples land on
        // block boundaries for both polarities).
        check_all((0..6144).map(|i| (i / 512) % 2 == 1).collect());
    }

    #[test]
    fn pseudo_random_large() {
        let mut state = 12345u64;
        let v: Vec<bool> = (0..20_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) & 1 == 1
            })
            .collect();
        check_all(v);
    }

    #[test]
    fn rank_at_len() {
        let rs = RsBitVec::new((0..100).map(|i| i < 50).collect());
        assert_eq!(rs.rank1(100), 50);
        assert_eq!(rs.rank0(100), 50);
    }

    fn serialize(rs: &RsBitVec) -> Vec<u64> {
        let mut bytes = Vec::new();
        let mut w = WordWriter::new(&mut bytes);
        rs.write_to(&mut w).unwrap();
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    use super::encode_v1_for_tests as encode_v1;

    #[test]
    fn legacy_v1_stream_loads_and_answers() {
        use crate::io::ReadSource;
        let mut state = 77u64;
        let pattern: Vec<bool> = (0..9000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state & 7 < 3
            })
            .collect();
        let words = encode_v1(&pattern);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let legacy = RsBitVec::read_from_v1(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let fresh = RsBitVec::new(pattern.iter().copied().collect());
        assert_eq!(legacy.count_ones(), fresh.count_ones());
        for pos in 0..=pattern.len() {
            assert_eq!(legacy.rank1(pos), fresh.rank1(pos), "rank1({pos})");
        }
        for k in 0..fresh.count_ones() {
            assert_eq!(legacy.select1(k), fresh.select1(k), "select1({k})");
        }
        for k in 0..fresh.count_zeros() {
            assert_eq!(legacy.select0(k), fresh.select0(k), "select0({k})");
        }
        // Re-serializing the upgraded structure produces the v2 image.
        assert_eq!(serialize(&legacy), serialize(&fresh));
    }

    #[test]
    fn legacy_v1_rejects_corrupt_streams() {
        use crate::io::ReadSource;
        let pattern: Vec<bool> = (0..1200).map(|i| i % 3 == 0).collect();
        let words = encode_v1(&pattern);
        let as_bytes =
            |ws: &[u64]| -> Vec<u8> { ws.iter().flat_map(|w| w.to_le_bytes()).collect() };
        // Claimed ones above the length.
        let mut bad = words.clone();
        bad[0] = 5000;
        assert!(RsBitVec::read_from_v1(&mut ReadSource::new(as_bytes(&bad).as_slice())).is_err());
        // Claimed ones consistent with the directory but not the bits.
        let mut bad = words.clone();
        bad[0] -= 1;
        let dir_last = 3 + crate::div_ceil(1200, WORD_BITS) + 1 + crate::div_ceil(1200, BLOCK_BITS);
        bad[dir_last] -= 1;
        assert!(matches!(
            RsBitVec::read_from_v1(&mut ReadSource::new(as_bytes(&bad).as_slice())),
            Err(DecodeError::Invalid("rank directory total mismatches bits"))
        ));
    }

    #[test]
    fn roundtrip_preserves_every_operation() {
        use crate::io::{ReadSource, WordCursor};
        let mut state = 5u64;
        let pattern: Vec<bool> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state & 3 == 0
            })
            .collect();
        let rs = RsBitVec::new(pattern.iter().copied().collect());
        let words = serialize(&rs);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();

        let owned = RsBitVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = RsBitVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        assert_eq!(owned.count_ones(), rs.count_ones());
        assert_eq!(view.count_ones(), rs.count_ones());
        for pos in (0..=rs.len()).step_by(97) {
            assert_eq!(owned.rank1(pos), rs.rank1(pos));
            assert_eq!(view.rank1(pos), rs.rank1(pos));
        }
        for k in (0..rs.count_ones()).step_by(101) {
            assert_eq!(owned.select1(k), rs.select1(k));
            assert_eq!(view.select1(k), rs.select1(k));
        }
        for k in (0..rs.count_zeros()).step_by(103) {
            assert_eq!(owned.select0(k), rs.select0(k));
            assert_eq!(view.select0(k), rs.select0(k));
        }
    }

    /// Loading must use the serialized directories verbatim, not rebuild
    /// them: tampering with a directory word visibly changes `rank1`, which
    /// a rebuild would silently repair.
    #[test]
    fn load_is_rebuild_free() {
        use crate::io::WordCursor;
        let rs = RsBitVec::new((0..2048).map(|i| i % 2 == 0).collect());
        let mut words = serialize(&rs);
        // Layout: [ones][len][n_words][words…][n_blocks][blocks…]. Bump the
        // *second* block-directory entry (ones before block 1) by one.
        let dir_start = 1 + 2 + rs.bits().words().len() + 1;
        words[dir_start + 1] += 1;
        let view = RsBitVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        assert_eq!(
            view.rank1(512),
            rs.rank1(512) + 1,
            "loaded rank must come from the stored directory"
        );
    }

    #[test]
    fn corrupt_directory_counts_rejected() {
        use crate::io::WordCursor;
        let rs = RsBitVec::new((0..100).map(|i| i < 50).collect());
        let mut words = serialize(&rs);
        words[0] = 1000; // ones > len
        assert!(matches!(
            RsBitVecView::read_from(&mut WordCursor::new(&words)),
            Err(DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn corrupt_select_samples_rejected() {
        use crate::io::WordCursor;
        let rs = RsBitVec::new((0..4096).map(|i| i % 3 == 0).collect());
        let words = serialize(&rs);
        // First select1 sample (right after the block directory prefix).
        let s1_start = 1 + 2 + rs.bits().words().len() + 1 + rs.block_dir().len() + 1;
        // Out-of-range position.
        let mut bad = words.clone();
        bad[s1_start] = rs.len() as u64 + 7;
        assert!(matches!(
            RsBitVecView::read_from(&mut WordCursor::new(&bad)),
            Err(DecodeError::Invalid("select sample out of range"))
        ));
        // Non-increasing samples.
        let mut bad = words.clone();
        bad[s1_start + 1] = bad[s1_start];
        assert!(matches!(
            RsBitVecView::read_from(&mut WordCursor::new(&bad)),
            Err(DecodeError::Invalid("select sample out of range"))
        ));
    }
}
