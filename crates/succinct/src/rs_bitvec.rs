//! An immutable bit vector with constant-time rank and fast select for both
//! bit polarities.
//!
//! Layout: the bit sequence is divided into 512-bit blocks (8 words). A block
//! directory stores the absolute number of ones before each block (12.5 %
//! overhead); `rank` popcounts at most 8 words on top of a directory lookup.
//! `select` uses sampled *hints* — the index of the block containing every
//! 512-th occurrence — followed by a directory scan and an in-word broadword
//! select. This is the classic engineering trade-off described by
//! Navarro \[28\] and used by all the filters in the paper; queries are
//! `O(1)` amortised at our densities.
//!
//! Like every structure in this crate, `RsBitVec` is generic over its word
//! store: the rank/select directories serialize alongside the bits and are
//! read back **verbatim** — loading never recomputes them, and the
//! [`RsBitVecView`] variant answers queries directly out of a loaded
//! buffer.

use crate::bitvec::BitVec;
use crate::broadword::select_in_word;
use crate::io::{DecodeError, WordSource, WordWriter};
use crate::WORD_BITS;

const BLOCK_WORDS: usize = 8;
const BLOCK_BITS: usize = BLOCK_WORDS * WORD_BITS; // 512
const SELECT_SAMPLE: usize = 512;

/// An immutable rank/select bit vector.
#[derive(Clone, Debug)]
pub struct RsBitVec<S = Vec<u64>> {
    bits: BitVec<S>,
    /// `blocks[b]` = number of ones in bits `[0, b * 512)`; one sentinel entry
    /// at the end holding the total.
    blocks: S,
    /// `select1_hints[i]` = index of the block containing the
    /// `(i * SELECT_SAMPLE)`-th one.
    select1_hints: S,
    /// Same for zeros.
    select0_hints: S,
    ones: usize,
}

/// A rank/select bit vector whose bits *and* directories borrow from a
/// loaded `&[u64]` buffer.
pub type RsBitVecView<'a> = RsBitVec<&'a [u64]>;

impl RsBitVec {
    /// Freezes `bits` and builds rank/select support.
    pub fn new(bits: BitVec) -> Self {
        let n_blocks = crate::div_ceil(bits.len().max(1), BLOCK_BITS);
        let mut blocks = Vec::with_capacity(n_blocks + 1);
        let mut acc = 0u64;
        for b in 0..n_blocks {
            blocks.push(acc);
            let start = b * BLOCK_WORDS;
            let end = ((b + 1) * BLOCK_WORDS).min(bits.words().len());
            for w in start..end {
                acc += bits.word(w).count_ones() as u64;
            }
        }
        blocks.push(acc);
        let ones = acc as usize;
        let zeros = bits.len() - ones;

        let mut select1_hints = Vec::with_capacity(ones / SELECT_SAMPLE + 1);
        let mut select0_hints = Vec::with_capacity(zeros / SELECT_SAMPLE + 1);
        {
            // For each sampled occurrence index, record the containing block.
            let mut next1 = 0usize;
            let mut next0 = 0usize;
            for b in 0..n_blocks {
                let ones_through = blocks[b + 1] as usize;
                let bits_through = ((b + 1) * BLOCK_BITS).min(bits.len());
                let zeros_through = bits_through - ones_through;
                while next1 < ones && next1 < ones_through {
                    select1_hints.push(b as u64);
                    next1 += SELECT_SAMPLE;
                }
                while next0 < zeros && next0 < zeros_through {
                    select0_hints.push(b as u64);
                    next0 += SELECT_SAMPLE;
                }
            }
        }

        Self {
            bits,
            blocks,
            select1_hints,
            select0_hints,
            ones,
        }
    }
}

impl<S: AsRef<[u64]>> RsBitVec<S> {
    #[inline]
    fn block_dir(&self) -> &[u64] {
        self.blocks.as_ref()
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of zero bits.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len() - self.ones
    }

    /// The bit at `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> bool {
        self.bits.get(pos)
    }

    /// The underlying bit vector.
    #[inline]
    pub fn bits(&self) -> &BitVec<S> {
        &self.bits
    }

    /// Number of ones in `[0, pos)`. `pos` may equal `len`.
    #[inline]
    pub fn rank1(&self, pos: usize) -> usize {
        assert!(pos <= self.len(), "rank position {pos} out of range");
        if pos == 0 {
            return 0;
        }
        let block = pos / BLOCK_BITS;
        let mut r = self.block_dir()[block] as usize;
        let first_word = block * BLOCK_WORDS;
        let last_word = pos / WORD_BITS;
        for w in first_word..last_word {
            r += self.bits.word(w).count_ones() as usize;
        }
        let rem = pos % WORD_BITS;
        if rem != 0 {
            r += (self.bits.word(last_word) & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of zeros in `[0, pos)`.
    #[inline]
    pub fn rank0(&self, pos: usize) -> usize {
        pos - self.rank1(pos)
    }

    /// Position of the `k`-th (0-based) set bit.
    ///
    /// # Panics
    /// Panics if `k >= count_ones()`.
    pub fn select1(&self, k: usize) -> usize {
        assert!(k < self.ones, "select1 rank {k} out of range {}", self.ones);
        let blocks = self.block_dir();
        // Start from the sampled hint and scan the block directory forward.
        let mut block = self.select1_hints.as_ref()[k / SELECT_SAMPLE] as usize;
        while blocks[block + 1] as usize <= k {
            block += 1;
        }
        let mut remaining = k - blocks[block] as usize;
        let first_word = block * BLOCK_WORDS;
        let last_word = self.bits.words().len();
        for w in first_word..last_word {
            let ones = self.bits.word(w).count_ones() as usize;
            if remaining < ones {
                return w * WORD_BITS
                    + select_in_word(self.bits.word(w), remaining as u32) as usize;
            }
            remaining -= ones;
        }
        unreachable!("select1: inconsistent rank directory");
    }

    /// Position of the `k`-th (0-based) zero bit.
    ///
    /// # Panics
    /// Panics if `k >= count_zeros()`.
    pub fn select0(&self, k: usize) -> usize {
        let zeros = self.count_zeros();
        assert!(k < zeros, "select0 rank {k} out of range {zeros}");
        let blocks = self.block_dir();
        let mut block = self.select0_hints.as_ref()[k / SELECT_SAMPLE] as usize;
        // Zeros before block b+1 = min(len, (b+1)*512) - ones before it.
        loop {
            let bits_through = ((block + 1) * BLOCK_BITS).min(self.len());
            let zeros_through = bits_through - blocks[block + 1] as usize;
            if zeros_through > k {
                break;
            }
            block += 1;
        }
        let zeros_before = (block * BLOCK_BITS).min(self.len()) - blocks[block] as usize;
        let mut remaining = k - zeros_before;
        let first_word = block * BLOCK_WORDS;
        let last_word = self.bits.words().len();
        for w in first_word..last_word {
            // Mask out phantom zeros beyond len in the final partial word.
            let word_start = w * WORD_BITS;
            let valid = (self.len() - word_start).min(WORD_BITS);
            let inv = !self.bits.word(w) & if valid == 64 { !0 } else { (1u64 << valid) - 1 };
            let zeros_here = inv.count_ones() as usize;
            if remaining < zeros_here {
                return word_start + select_in_word(inv, remaining as u32) as usize;
            }
            remaining -= zeros_here;
        }
        unreachable!("select0: inconsistent rank directory");
    }

    /// Heap size of the structure in bits, including the directories.
    pub fn size_in_bits(&self) -> usize {
        self.bits.size_in_bits()
            + self.block_dir().len() * 64
            + self.select1_hints.as_ref().len() * 64
            + self.select0_hints.as_ref().len() * 64
    }

    /// Size of the rank/select overhead only, in bits.
    pub fn overhead_in_bits(&self) -> usize {
        self.size_in_bits() - self.bits.size_in_bits()
    }

    /// Serializes bits **and** directories: `[ones] + bits + [n_blocks,
    /// blocks…] + [n_h1, h1…] + [n_h0, h0…]`. Returns the word count.
    pub fn write_to(&self, w: &mut WordWriter<'_>) -> std::io::Result<usize> {
        let before = w.words_written();
        w.word(self.ones as u64)?;
        self.bits.write_to(w)?;
        w.prefixed(self.block_dir())?;
        w.prefixed(self.select1_hints.as_ref())?;
        w.prefixed(self.select0_hints.as_ref())?;
        Ok(w.words_written() - before)
    }

    /// Reads back what [`RsBitVec::write_to`] wrote. The rank/select
    /// directories come back verbatim from the stream — nothing is rebuilt,
    /// which is what makes cold loads O(size) copies (owned) or O(1)
    /// (borrowed view).
    pub fn read_from<Src: WordSource<Storage = S>>(src: &mut Src) -> Result<Self, DecodeError> {
        let ones = src.length()?;
        let bits = BitVec::read_from(src)?;
        if ones > bits.len() {
            return Err(DecodeError::Invalid("rank directory total exceeds length"));
        }
        let n_blocks = crate::div_ceil(bits.len().max(1), BLOCK_BITS);
        let blocks_len = src.length()?;
        if blocks_len != n_blocks + 1 {
            return Err(DecodeError::Invalid("rank directory block count"));
        }
        let blocks = src.take(blocks_len)?;
        // The directory must be non-decreasing and close on the claimed
        // total: that is what bounds `select`'s directory walk before the
        // sentinel. O(n/512) at load, no popcounting.
        {
            let dir = blocks.as_ref();
            if dir.windows(2).any(|w| w[0] > w[1]) || dir.last() != Some(&(ones as u64)) {
                return Err(DecodeError::Invalid("rank directory inconsistent"));
            }
        }
        let h1_len = src.length()?;
        if h1_len != ones.div_ceil(SELECT_SAMPLE) {
            return Err(DecodeError::Invalid("select1 hint count"));
        }
        let select1_hints = src.take(h1_len)?;
        let zeros = bits.len() - ones;
        let h0_len = src.length()?;
        if h0_len != zeros.div_ceil(SELECT_SAMPLE) {
            return Err(DecodeError::Invalid("select0 hint count"));
        }
        let select0_hints = src.take(h0_len)?;
        // Hints are block indices: an out-of-range one would index past the
        // directory at query time. O(hints) = O(n/512), negligible at load.
        if select1_hints
            .as_ref()
            .iter()
            .chain(select0_hints.as_ref())
            .any(|&h| h >= n_blocks as u64)
        {
            return Err(DecodeError::Invalid("select hint out of range"));
        }
        Ok(Self {
            bits,
            blocks,
            select1_hints,
            select0_hints,
            ones,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Naive {
        bits: Vec<bool>,
    }

    impl Naive {
        fn rank1(&self, pos: usize) -> usize {
            self.bits[..pos].iter().filter(|&&b| b).count()
        }
        fn select1(&self, k: usize) -> usize {
            self.bits
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .nth(k)
                .unwrap()
                .0
        }
        fn select0(&self, k: usize) -> usize {
            self.bits
                .iter()
                .enumerate()
                .filter(|(_, &b)| !b)
                .nth(k)
                .unwrap()
                .0
        }
    }

    fn check_all(pattern: Vec<bool>) {
        let naive = Naive {
            bits: pattern.clone(),
        };
        let rs = RsBitVec::new(pattern.iter().copied().collect());
        assert_eq!(rs.len(), pattern.len());
        let ones = pattern.iter().filter(|&&b| b).count();
        assert_eq!(rs.count_ones(), ones);
        for pos in 0..=pattern.len() {
            assert_eq!(rs.rank1(pos), naive.rank1(pos), "rank1({pos})");
            assert_eq!(rs.rank0(pos), pos - naive.rank1(pos), "rank0({pos})");
        }
        for k in 0..ones {
            assert_eq!(rs.select1(k), naive.select1(k), "select1({k})");
        }
        for k in 0..(pattern.len() - ones) {
            assert_eq!(rs.select0(k), naive.select0(k), "select0({k})");
        }
    }

    #[test]
    fn small_patterns() {
        check_all(vec![true]);
        check_all(vec![false]);
        check_all(vec![true, false, true, true, false]);
        check_all((0..64).map(|i| i % 2 == 0).collect());
        check_all((0..65).map(|i| i % 2 == 1).collect());
    }

    #[test]
    fn block_boundaries() {
        check_all((0..513).map(|i| i == 512).collect());
        check_all((0..1025).map(|i| i % 512 == 0).collect());
        check_all((0..1024).map(|_| true).collect());
        check_all((0..1024).map(|_| false).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_and_dense_mix() {
        // Long run of zeros, burst of ones, long run of zeros.
        let mut v = vec![false; 5000];
        for item in v.iter_mut().skip(2000).take(100) {
            *item = true;
        }
        v[4999] = true;
        check_all(v);
    }

    #[test]
    fn pseudo_random_large() {
        let mut state = 12345u64;
        let v: Vec<bool> = (0..20_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) & 1 == 1
            })
            .collect();
        check_all(v);
    }

    #[test]
    fn rank_at_len() {
        let rs = RsBitVec::new((0..100).map(|i| i < 50).collect());
        assert_eq!(rs.rank1(100), 50);
        assert_eq!(rs.rank0(100), 50);
    }

    fn serialize(rs: &RsBitVec) -> Vec<u64> {
        let mut bytes = Vec::new();
        let mut w = WordWriter::new(&mut bytes);
        rs.write_to(&mut w).unwrap();
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_every_operation() {
        use crate::io::{ReadSource, WordCursor};
        let mut state = 5u64;
        let pattern: Vec<bool> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state & 3 == 0
            })
            .collect();
        let rs = RsBitVec::new(pattern.iter().copied().collect());
        let words = serialize(&rs);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();

        let owned = RsBitVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = RsBitVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        assert_eq!(owned.count_ones(), rs.count_ones());
        assert_eq!(view.count_ones(), rs.count_ones());
        for pos in (0..=rs.len()).step_by(97) {
            assert_eq!(owned.rank1(pos), rs.rank1(pos));
            assert_eq!(view.rank1(pos), rs.rank1(pos));
        }
        for k in (0..rs.count_ones()).step_by(101) {
            assert_eq!(owned.select1(k), rs.select1(k));
            assert_eq!(view.select1(k), rs.select1(k));
        }
        for k in (0..rs.count_zeros()).step_by(103) {
            assert_eq!(owned.select0(k), rs.select0(k));
            assert_eq!(view.select0(k), rs.select0(k));
        }
    }

    /// Loading must use the serialized directories verbatim, not rebuild
    /// them: tampering with a directory word visibly changes `rank1`, which
    /// a rebuild would silently repair.
    #[test]
    fn load_is_rebuild_free() {
        use crate::io::WordCursor;
        let rs = RsBitVec::new((0..2048).map(|i| i % 2 == 0).collect());
        let mut words = serialize(&rs);
        // Layout: [ones][len][n_words][words…][n_blocks][blocks…]. Bump the
        // *second* block-directory entry (ones before block 1) by one.
        let dir_start = 1 + 2 + rs.bits().words().len() + 1;
        words[dir_start + 1] += 1;
        let view = RsBitVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        assert_eq!(
            view.rank1(512),
            rs.rank1(512) + 1,
            "loaded rank must come from the stored directory"
        );
    }

    #[test]
    fn corrupt_directory_counts_rejected() {
        use crate::io::WordCursor;
        let rs = RsBitVec::new((0..100).map(|i| i < 50).collect());
        let mut words = serialize(&rs);
        words[0] = 1000; // ones > len
        assert!(matches!(
            RsBitVecView::read_from(&mut WordCursor::new(&words)),
            Err(DecodeError::Invalid(_))
        ));
    }
}
