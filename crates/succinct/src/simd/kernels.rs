//! x86_64 vector implementations of the dispatched kernels.
//!
//! This is the **only** module in the workspace allowed to contain
//! `unsafe` (xtask lint L6 enforces the allowlist and requires a
//! `// safety:` justification adjacent to every `unsafe` token). The
//! discipline here:
//!
//! - every `pub fn` is a *safe* entry point that re-verifies the CPU
//!   feature it needs with `is_x86_feature_detected!` and falls back to
//!   the scalar kernel when the feature is absent, so calling any
//!   function in this module at the "wrong" dispatch level is still
//!   sound and still bit-identical;
//! - `#[target_feature]` inner functions keep their bodies safe
//!   (feature-gated intrinsics are callable without `unsafe` inside
//!   them since target_feature 1.1); `unsafe` appears only at the two
//!   places it is irreducible — calling a `#[target_feature]` function
//!   from a non-annotated caller, and raw-pointer loads/gathers — and
//!   each such block carries its own `// safety:` justification.
#![allow(unsafe_code)]

use super::scalar;
use crate::WORD_BITS;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

// ---------------------------------------------------------------------------
// select_in_word — BMI2 PDEP
// ---------------------------------------------------------------------------

/// PDEP formulation of in-word select: depositing `1 << k` into the set
/// bits of `word` lands the single 1 exactly at the position of the k-th
/// set bit, which `trailing_zeros` then reads off.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
fn select_in_word_pdep(word: u64, k: u32) -> u32 {
    _pdep_u64(1u64 << k, word).trailing_zeros()
}

/// BMI2 in-word select; scalar broadword fallback when BMI2 is absent.
#[cfg(target_arch = "x86_64")]
pub fn select_in_word_bmi2(word: u64, k: u32) -> u32 {
    debug_assert!(k < word.count_ones());
    if std::arch::is_x86_feature_detected!("bmi2") {
        // safety: the callee only requires BMI2, which the runtime
        // detection above just confirmed; it touches no memory.
        unsafe { select_in_word_pdep(word, k) }
    } else {
        scalar::select_in_word(word, k)
    }
}

// ---------------------------------------------------------------------------
// rank1_x8 — masked 8-word popcount
// ---------------------------------------------------------------------------

/// Pads a (≤ 8)-word block to exactly 8 words of zeros so the vector
/// kernels can consume fixed-shape input; bits past the real words are
/// zero, matching the scalar semantics for short tail blocks.
#[cfg(target_arch = "x86_64")]
#[inline]
fn pad8(words: &[u64]) -> [u64; 8] {
    let mut buf = [0u64; 8];
    buf[..words.len()].copy_from_slice(words);
    buf
}

/// AVX2 masked block rank: per-lane mask generation with variable
/// shifts, Mula nibble-LUT popcount, `sad_epu8` horizontal sums.
///
/// Lane `j` keeps `clamp(upto - 64j, 0, 64)` low bits. We compute the
/// *discard* count `d_j = 64(j+1) - upto`, clamp negatives to zero with
/// a sign-mask `andnot`, and shift an all-ones lane right by `d_j`:
/// `_mm256_srlv_epi64` yields 0 for shifts ≥ 64, which is exactly the
/// "keep nothing" case, so the whole mask construction is branch-free.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn rank1_x8_avx2_inner(words: &[u64], upto: usize) -> usize {
    let buf = pad8(words);
    let ones = _mm256_set1_epi64x(-1);
    let zero = _mm256_setzero_si256();
    let upto_v = _mm256_set1_epi64x(upto as i64);
    let nibble = _mm256_set1_epi8(0x0f);
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let mut total = zero;
    for half in 0..2usize {
        let base = half * 4;
        let v = _mm256_set_epi64x(
            buf[base + 3] as i64,
            buf[base + 2] as i64,
            buf[base + 1] as i64,
            buf[base] as i64,
        );
        let bounds = _mm256_set_epi64x(
            (base as i64 + 4) * 64,
            (base as i64 + 3) * 64,
            (base as i64 + 2) * 64,
            (base as i64 + 1) * 64,
        );
        let discard = _mm256_sub_epi64(bounds, upto_v);
        // Negative discard (word fully below `upto`) → shift 0.
        let discard = _mm256_andnot_si256(_mm256_cmpgt_epi64(zero, discard), discard);
        let mask = _mm256_srlv_epi64(ones, discard);
        let masked = _mm256_and_si256(v, mask);
        let lo = _mm256_and_si256(masked, nibble);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(masked), nibble);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        total = _mm256_add_epi64(total, _mm256_sad_epu8(cnt, zero));
    }
    (_mm256_extract_epi64::<0>(total)
        + _mm256_extract_epi64::<1>(total)
        + _mm256_extract_epi64::<2>(total)
        + _mm256_extract_epi64::<3>(total)) as usize
}

/// AVX2 masked block rank; scalar fallback when AVX2 is absent.
#[cfg(target_arch = "x86_64")]
pub fn rank1_x8_avx2(words: &[u64], upto: usize) -> usize {
    debug_assert!(words.len() <= 8 && upto <= 8 * WORD_BITS);
    if std::arch::is_x86_feature_detected!("avx2") {
        // safety: the callee only requires AVX2, which the runtime
        // detection above just confirmed; all its loads go through safe
        // value-constructor intrinsics on a stack copy.
        unsafe { rank1_x8_avx2_inner(words, upto) }
    } else {
        scalar::rank1_x8(words, upto)
    }
}

/// SSE2 masked block rank: scalar mask construction (cheap), then a
/// 128-bit SWAR popcount over word pairs finished with `_mm_sad_epu8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
fn rank1_x8_sse2_inner(words: &[u64], upto: usize) -> usize {
    let buf = pad8(words);
    let mut masked = [0u64; 8];
    for (j, m) in masked.iter_mut().enumerate() {
        let take = upto.saturating_sub(j * WORD_BITS).min(WORD_BITS);
        *m = buf[j] & scalar::mask_low(take);
    }
    let m33 = _mm_set1_epi8(0x33);
    let m0f = _mm_set1_epi8(0x0f);
    let zero = _mm_setzero_si128();
    let mut total = zero;
    for pair in 0..4usize {
        let v = _mm_set_epi64x(masked[pair * 2 + 1] as i64, masked[pair * 2] as i64);
        // SWAR bit-pair / nibble / byte reduction, then SAD to u64 sums.
        let v = _mm_sub_epi8(
            v,
            _mm_and_si128(_mm_srli_epi64::<1>(v), _mm_set1_epi8(0x55)),
        );
        let v = _mm_add_epi8(
            _mm_and_si128(v, m33),
            _mm_and_si128(_mm_srli_epi64::<2>(v), m33),
        );
        let v = _mm_and_si128(_mm_add_epi8(v, _mm_srli_epi64::<4>(v)), m0f);
        total = _mm_add_epi64(total, _mm_sad_epu8(v, zero));
    }
    (_mm_cvtsi128_si64(total) + _mm_cvtsi128_si64(_mm_unpackhi_epi64(total, total))) as usize
}

/// SSE2 masked block rank. SSE2 is baseline on x86_64, but keep the
/// detection-or-fallback shape for uniformity (and 32-bit safety).
#[cfg(target_arch = "x86_64")]
pub fn rank1_x8_sse2(words: &[u64], upto: usize) -> usize {
    debug_assert!(words.len() <= 8 && upto <= 8 * WORD_BITS);
    if std::arch::is_x86_feature_detected!("sse2") {
        // safety: the callee only requires SSE2, which the runtime
        // detection above just confirmed; all its loads go through safe
        // value-constructor intrinsics on a stack copy.
        unsafe { rank1_x8_sse2_inner(words, upto) }
    } else {
        scalar::rank1_x8(words, upto)
    }
}

// ---------------------------------------------------------------------------
// low_partition — AVX2 gather over packed fields
// ---------------------------------------------------------------------------

/// AVX2 packed-field partition probe: 4 fields per iteration via 64-bit
/// gathers of each field's word and (clamped) next word, variable-shift
/// extraction, one signed compare, `movemask` to find the first lane
/// that passes.
///
/// Correctness notes encoded below:
/// - fields are `< 2^width ≤ 2^63`, so they are non-negative as i64 and
///   `_mm256_cmpgt_epi64`'s signed compare agrees with unsigned;
/// - the carry word index is clamped to the last valid word: whenever a
///   field does not actually straddle a boundary (`off + width ≤ 64`),
///   the carry is shifted left by `≥ width` (or by ≥ 64, where `sllv`
///   yields 0), so whatever word the clamped gather read contributes
///   nothing after the field mask.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn low_partition_avx2_inner(
    words: &[u64],
    width: usize,
    start: usize,
    end: usize,
    cmp_target: u64,
) -> usize {
    let mask = (1u64 << width) - 1;
    let field_mask = _mm256_set1_epi64x(mask as i64);
    let target = _mm256_set1_epi64x(cmp_target as i64);
    let w64 = _mm256_set1_epi64x(WORD_BITS as i64);
    let last_word = _mm256_set1_epi32(words.len() as i32 - 1);
    let base = words.as_ptr();
    let mut i = start;
    while i + 4 <= end {
        let bit0 = (i * width) as i64;
        let bitpos = _mm256_add_epi64(
            _mm256_set1_epi64x(bit0),
            _mm256_set_epi64x(3 * width as i64, 2 * width as i64, width as i64, 0),
        );
        let word_idx64 = _mm256_srli_epi64::<6>(bitpos);
        let off = _mm256_and_si256(bitpos, _mm256_set1_epi64x(63));
        // Compress the four 64-bit word indices (all < words.len() ≤
        // 2^31) into the low 128 bits as i32 gather indices.
        let idx32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
            word_idx64,
            _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0),
        ));
        let next32 = _mm_min_epi32(
            _mm_add_epi32(idx32, _mm_set1_epi32(1)),
            _mm256_castsi256_si128(last_word),
        );
        // safety: every gathered index derives from a field in
        // [start, end), which the caller guarantees lies inside
        // `words`, and the +1 carry index is clamped to the last valid
        // word above, so all eight lane addresses are in bounds.
        let cur = unsafe { _mm256_i32gather_epi64::<8>(base as *const i64, idx32) };
        // safety: same bounds argument as the gather above — all four
        // clamped next-word indices are in bounds.
        let nxt = unsafe { _mm256_i32gather_epi64::<8>(base as *const i64, next32) };
        let lo = _mm256_srlv_epi64(cur, off);
        // Shift ≥ 64 (off == 0) self-erases in sllv, so non-straddling
        // lanes get a zero or fully-masked-out carry.
        let carry = _mm256_sllv_epi64(nxt, _mm256_sub_epi64(w64, off));
        let v = _mm256_and_si256(_mm256_or_si256(lo, carry), field_mask);
        let pass = _mm256_cmpgt_epi64(v, target);
        let bits = _mm256_movemask_pd(_mm256_castsi256_pd(pass));
        if bits != 0 {
            return i + bits.trailing_zeros() as usize;
        }
        i += 4;
    }
    // Scalar tail (< 4 fields) and the uniform `v > cmp_target` predicate
    // agree because cmp_target already folded include_equal.
    for j in i..end {
        let bitpos = j * width;
        let word = bitpos / WORD_BITS;
        let off = bitpos % WORD_BITS;
        let mut v = words[word] >> off;
        if off + width > WORD_BITS {
            v |= words[word + 1] << (WORD_BITS - off);
        }
        if v & mask > cmp_target {
            return j;
        }
    }
    end
}

/// AVX2 packed-field partition probe; scalar fallback when AVX2 is
/// absent. Same contract as [`scalar::low_partition`].
#[cfg(target_arch = "x86_64")]
pub fn low_partition_avx2(
    words: &[u64],
    width: usize,
    start: usize,
    end: usize,
    y_lo: u64,
    include_equal: bool,
) -> usize {
    debug_assert!((1..WORD_BITS).contains(&width));
    // Runs shorter than two vector iterations can't amortise the lane
    // setup (measured crossover ~8 fields even on full scans); typical
    // Elias–Fano buckets are 1–3 elements, so the common case must not
    // pay the preamble.
    if end.saturating_sub(start) < 8
        || !std::arch::is_x86_feature_detected!("avx2")
        || words.len() > i32::MAX as usize
    {
        return scalar::low_partition(words, width, start, end, y_lo, include_equal);
    }
    let y_lo = y_lo & ((1u64 << width) - 1);
    // Fold include_equal into one strict compare: `v >= y_lo` is
    // `v > y_lo - 1`, except y_lo == 0 where every field passes.
    let cmp_target = if include_equal {
        y_lo
    } else if y_lo == 0 {
        return start.min(end);
    } else {
        y_lo - 1
    };
    // safety: the callee only requires AVX2, which the runtime
    // detection above just confirmed; its in-bounds obligations are
    // discharged at its own gather sites.
    unsafe { low_partition_avx2_inner(words, width, start, end, cmp_target) }
}

// ---------------------------------------------------------------------------
// next_nonzero_word — vector zero-run skipping
// ---------------------------------------------------------------------------

/// AVX2 zero-run skip: test 4 words at a time with `vptest`, then let
/// the scalar scan pinpoint the word inside the hit quad.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn next_nonzero_word_avx2_inner(words: &[u64], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 4 <= words.len() {
        // safety: i + 4 <= words.len() by the loop condition, so the
        // unaligned 32-byte load covers only in-bounds elements.
        let v = unsafe { _mm256_loadu_si256(words.as_ptr().add(i) as *const __m256i) };
        if _mm256_testz_si256(v, v) == 0 {
            break;
        }
        i += 4;
    }
    scalar::next_nonzero_word(words, i)
}

/// AVX2 zero-run skip; scalar fallback when AVX2 is absent.
#[cfg(target_arch = "x86_64")]
pub fn next_nonzero_word_avx2(words: &[u64], from: usize) -> Option<usize> {
    if std::arch::is_x86_feature_detected!("avx2") && from <= words.len() {
        // safety: the callee only requires AVX2, which the runtime
        // detection above just confirmed; its load bounds are
        // discharged at its own load site.
        unsafe { next_nonzero_word_avx2_inner(words, from) }
    } else {
        scalar::next_nonzero_word(words, from)
    }
}
