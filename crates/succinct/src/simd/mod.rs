//! Runtime-dispatched vector kernels for the succinct hot paths.
//!
//! Four kernels sit on the query-time critical path — the masked 8-word
//! block rank, in-word select, the Elias-Fano low-bits partition probe,
//! and zero-word skipping for cursor walks. Each has a portable scalar
//! reference implementation ([`scalar`]) and, on x86_64, vector
//! variants ([`kernels`]) selected once per process by CPU feature
//! detection. The dispatchers here are the only entry points the rest
//! of the crate uses.
//!
//! Dispatch levels form a total order `Scalar < Sse2 < Avx2` on x86_64
//! (`Neon` is an aarch64 placeholder that currently delegates to
//! scalar). The detected level can be *capped* with the `GRAFITE_SIMD`
//! environment variable (`scalar`, `sse2`, `avx2`, `neon`,
//! case-insensitive) — forcing a level above what the CPU supports is
//! clamped down, so setting `GRAFITE_SIMD=avx2` on a non-AVX2 machine
//! is safe and simply yields the best available level. Every vector
//! kernel is property-tested for bit-identical agreement with its
//! scalar reference (`tests/simd_agreement.rs`), and the `*_at` entry
//! points let those tests pin a specific level without touching the
//! process-global cache.

pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod kernels;

use std::sync::atomic::{AtomicU8, Ordering};

/// Vector instruction tier used by the dispatched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar reference kernels (always available).
    Scalar = 0,
    /// x86_64 SSE2 (baseline on the 64-bit ISA).
    Sse2 = 1,
    /// x86_64 AVX2 (+ BMI2 PDEP select when the CPU has it).
    Avx2 = 2,
    /// aarch64 NEON — detection placeholder; kernels delegate to
    /// scalar until vector implementations land.
    Neon = 3,
}

impl SimdLevel {
    /// Stable lowercase name (matches the `GRAFITE_SIMD` values).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            1 => SimdLevel::Sse2,
            2 => SimdLevel::Avx2,
            3 => SimdLevel::Neon,
            _ => SimdLevel::Scalar,
        }
    }

    fn parse(s: &str) -> Option<SimdLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" | "off" | "0" => Some(SimdLevel::Scalar),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            "neon" => Some(SimdLevel::Neon),
            _ => None,
        }
    }
}

/// What the hardware supports, ignoring any environment override.
pub fn detect_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return SimdLevel::Sse2;
        }
        SimdLevel::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// All levels worth exercising on this machine: scalar, plus every
/// hardware tier up to the detected one. Agreement tests iterate this.
pub fn available_levels() -> Vec<SimdLevel> {
    let top = detect_level();
    let mut levels = vec![SimdLevel::Scalar];
    for l in [SimdLevel::Sse2, SimdLevel::Avx2] {
        if l <= top {
            levels.push(l);
        }
    }
    if top == SimdLevel::Neon {
        levels.push(SimdLevel::Neon);
    }
    levels
}

/// 0 = not yet resolved; otherwise `SimdLevel as u8 + 1`.
static LEVEL_CACHE: AtomicU8 = AtomicU8::new(0);

/// The dispatch level in effect for this process: hardware detection
/// capped by `GRAFITE_SIMD`, resolved once and cached.
pub fn level() -> SimdLevel {
    // ordering: the cache is a monotone write-once memo of a pure
    // computation — any thread recomputing it stores the same value, so
    // relaxed loads/stores cannot expose inconsistent state.
    let cached = LEVEL_CACHE.load(Ordering::Relaxed);
    if cached != 0 {
        return SimdLevel::from_u8(cached - 1);
    }
    let detected = detect_level();
    let effective = match std::env::var("GRAFITE_SIMD") {
        Ok(v) => match SimdLevel::parse(&v) {
            // Neon requested on non-aarch64 (or any level above the
            // hardware) clamps down to what is actually available.
            Some(req) => {
                if req == SimdLevel::Neon && detected != SimdLevel::Neon {
                    SimdLevel::Scalar
                } else {
                    req.min(detected)
                }
            }
            None => detected,
        },
        Err(_) => detected,
    };
    // ordering: see the load above — write-once memo of a pure value.
    LEVEL_CACHE.store(effective as u8 + 1, Ordering::Relaxed);
    effective
}

// ---------------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------------

/// Ones among bits `[0, upto)` of a block of up to 8 words (bits past
/// `words.len() * 64` count as zero). See [`scalar::rank1_x8`].
#[inline]
pub fn rank1_x8(words: &[u64], upto: usize) -> usize {
    rank1_x8_at(level(), words, upto)
}

/// [`rank1_x8`] pinned to an explicit dispatch level (levels the
/// hardware lacks fall back to scalar inside the kernel, keeping the
/// result identical).
#[inline]
pub fn rank1_x8_at(level: SimdLevel, words: &[u64], upto: usize) -> usize {
    #[cfg(target_arch = "x86_64")]
    match level {
        SimdLevel::Avx2 => return kernels::rank1_x8_avx2(words, upto),
        SimdLevel::Sse2 => return kernels::rank1_x8_sse2(words, upto),
        SimdLevel::Scalar | SimdLevel::Neon => {}
    }
    let _ = level;
    scalar::rank1_x8(words, upto)
}

/// Position of the `k`-th (0-based) set bit of `word`; `k` must be less
/// than `word.count_ones()`.
#[inline]
pub fn select_in_word(word: u64, k: u32) -> u32 {
    select_in_word_at(level(), word, k)
}

/// [`select_in_word`] pinned to an explicit dispatch level. The PDEP
/// variant rides the Avx2 tier (BMI2 and AVX2 arrived together on
/// mainstream cores, and the kernel re-checks BMI2 itself).
#[inline]
pub fn select_in_word_at(level: SimdLevel, word: u64, k: u32) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        return kernels::select_in_word_bmi2(word, k);
    }
    let _ = level;
    scalar::select_in_word(word, k)
}

/// First index in `[start, end)` of the `width`-bit packed array whose
/// field exceeds `y_lo` (or equals it, when `include_equal` is false).
/// See [`scalar::low_partition`] for the full contract.
#[inline]
pub fn low_partition(
    words: &[u64],
    width: usize,
    start: usize,
    end: usize,
    y_lo: u64,
    include_equal: bool,
) -> usize {
    low_partition_at(level(), words, width, start, end, y_lo, include_equal)
}

/// [`low_partition`] pinned to an explicit dispatch level.
#[inline]
pub fn low_partition_at(
    level: SimdLevel,
    words: &[u64],
    width: usize,
    start: usize,
    end: usize,
    y_lo: u64,
    include_equal: bool,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        return kernels::low_partition_avx2(words, width, start, end, y_lo, include_equal);
    }
    let _ = level;
    scalar::low_partition(words, width, start, end, y_lo, include_equal)
}

/// Index of the first non-zero word at or after `from`, or `None`.
#[inline]
pub fn next_nonzero_word(words: &[u64], from: usize) -> Option<usize> {
    next_nonzero_word_at(level(), words, from)
}

/// [`next_nonzero_word`] pinned to an explicit dispatch level.
#[inline]
pub fn next_nonzero_word_at(level: SimdLevel, words: &[u64], from: usize) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        return kernels::next_nonzero_word_avx2(words, from);
    }
    let _ = level;
    scalar::next_nonzero_word(words, from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(SimdLevel::parse("scalar"), Some(SimdLevel::Scalar));
        assert_eq!(SimdLevel::parse("AVX2 "), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("sse2"), Some(SimdLevel::Sse2));
        assert_eq!(SimdLevel::parse("neon"), Some(SimdLevel::Neon));
        assert_eq!(SimdLevel::parse("bogus"), None);
    }

    #[test]
    fn available_levels_start_scalar_and_are_ordered() {
        let levels = available_levels();
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        assert!(levels.contains(&detect_level()) || detect_level() == SimdLevel::Scalar);
    }

    #[test]
    fn level_is_at_most_detected() {
        assert!(level() <= detect_level() || detect_level() == SimdLevel::Neon);
    }
}
