//! Portable scalar reference implementations of every dispatched kernel.
//!
//! These are the semantics: every accelerated variant in
//! [`super::kernels`] must agree bit-for-bit with the functions here on
//! every input (enforced by the agreement property tests in
//! `tests/simd_agreement.rs`). They are always compiled, on every
//! architecture, and are what [`super`]'s dispatchers fall back to when no
//! vector extension is detected or when `GRAFITE_SIMD=scalar` forces them.

use crate::broadword;
use crate::WORD_BITS;

/// The low `n` bits set, for `n` in `0..=64`.
#[inline]
pub(crate) fn mask_low(n: usize) -> u64 {
    1u64.checked_shl(n as u32).map_or(!0, |m| m.wrapping_sub(1))
}

/// Ones among bits `[0, upto)` of a block of up to 8 words. Bits past
/// `words.len() * 64` are treated as zero, so a short tail block counts
/// correctly with any `upto <= 512`.
///
/// Branch-free over the block: every word is popcounted under a mask that
/// keeps exactly its bits below `upto` (possibly none, possibly all).
#[inline]
pub fn rank1_x8(words: &[u64], upto: usize) -> usize {
    debug_assert!(words.len() <= 8 && upto <= 8 * WORD_BITS);
    let mut r = 0usize;
    for (j, &w) in words.iter().enumerate() {
        let take = upto.saturating_sub(j * WORD_BITS).min(WORD_BITS);
        r += (w & mask_low(take)).count_ones() as usize;
    }
    r
}

/// Position of the `k`-th (0-based) set bit of `word` — the broadword
/// byte-sums + table formulation.
#[inline]
pub fn select_in_word(word: u64, k: u32) -> u32 {
    broadword::select_in_word(word, k)
}

/// First index in `[start, end)` of the `width`-bit packed array `words`
/// whose field "passes" `y_lo`: the first field `> y_lo` when
/// `include_equal` (predecessor's partition point), the first `>= y_lo`
/// otherwise (successor/rank). Returns `end` if every field is below the
/// partition. Sequential word-addressed probe with one running bit cursor.
///
/// `width` must be in `1..=63` and every field of `[start, end)` must lie
/// inside `words`.
#[inline]
pub fn low_partition(
    words: &[u64],
    width: usize,
    start: usize,
    end: usize,
    y_lo: u64,
    include_equal: bool,
) -> usize {
    debug_assert!((1..WORD_BITS).contains(&width));
    let mask = (1u64 << width) - 1;
    let mut bitpos = start * width;
    for i in start..end {
        let word = bitpos / WORD_BITS;
        let off = bitpos % WORD_BITS;
        let mut v = words[word] >> off;
        if off + width > WORD_BITS {
            v |= words[word + 1] << (WORD_BITS - off);
        }
        let v = v & mask;
        if v > y_lo || (!include_equal && v == y_lo) {
            return i;
        }
        bitpos += width;
    }
    end
}

/// Index of the first non-zero word at or after `from`, or `None` if every
/// remaining word is zero.
#[inline]
pub fn next_nonzero_word(words: &[u64], from: usize) -> Option<usize> {
    words[from.min(words.len())..]
        .iter()
        .position(|&w| w != 0)
        .map(|p| from + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_matches_naive() {
        let words = [0xAAAA_AAAA_AAAA_AAAAu64, !0, 0, 1, 0xF0F0, 7, 1 << 63, !1];
        for upto in 0..=512 {
            let naive: usize = (0..upto)
                .filter(|&b| words[b / 64] >> (b % 64) & 1 == 1)
                .count();
            assert_eq!(rank1_x8(&words, upto), naive, "upto={upto}");
        }
        // Short tail blocks.
        assert_eq!(rank1_x8(&words[..3], 192), 32 + 64);
        assert_eq!(rank1_x8(&[], 0), 0);
    }

    #[test]
    fn partition_matches_linear() {
        // width=5 fields 0..31 ascending with duplicates.
        let vals: Vec<u64> = (0..40u64).map(|i| (i / 2).min(19)).collect();
        let mut words = vec![0u64; 4];
        for (i, &v) in vals.iter().enumerate() {
            let pos = i * 5;
            words[pos / 64] |= v << (pos % 64);
            if pos % 64 + 5 > 64 {
                words[pos / 64 + 1] |= v >> (64 - pos % 64);
            }
        }
        for y in 0..21u64 {
            for eq in [false, true] {
                let want = vals
                    .iter()
                    .position(|&v| v > y || (!eq && v == y))
                    .unwrap_or(vals.len());
                assert_eq!(low_partition(&words, 5, 0, vals.len(), y, eq), want);
            }
        }
    }

    #[test]
    fn nonzero_scan() {
        assert_eq!(next_nonzero_word(&[0, 0, 4, 0, 1], 0), Some(2));
        assert_eq!(next_nonzero_word(&[0, 0, 4, 0, 1], 3), Some(4));
        assert_eq!(next_nonzero_word(&[0, 0], 0), None);
        assert_eq!(next_nonzero_word(&[1], 5), None);
    }
}
